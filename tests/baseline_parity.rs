//! Cross-architecture parity: the four aggregation architectures must
//! agree on the answer while differing, in the documented directions, on
//! cost (the precondition for every B7 claim).

use sensorcer_suite::baselines::scenario::{all_scenarios, expected_average};
use sensorcer_suite::sim::prelude::SimDuration;

#[test]
fn all_architectures_agree_on_the_average() {
    for n in [4usize, 16, 48] {
        let want = expected_average(n);
        for mut s in all_scenarios(n, 1234) {
            let r = s.round();
            let got = r
                .value
                .unwrap_or_else(|| panic!("{} produced nothing at n={n}", s.name));
            assert!(
                (got - want).abs() < 1e-9,
                "{} at n={n}: {got} != {want}",
                s.name
            );
        }
    }
}

#[test]
fn repeated_rounds_stay_correct_and_bounded() {
    for mut s in all_scenarios(16, 99) {
        let first = s.round();
        for i in 0..10 {
            let r = s.round();
            assert!(r.value.is_some(), "{} round {i}", s.name);
            // Steady state: no round costs more than 3x the first
            // (guards against leak-style growth in any architecture).
            assert!(
                r.wire_bytes < first.wire_bytes * 3 + 1000,
                "{} round {i}: {} vs first {}",
                s.name,
                r.wire_bytes,
                first.wire_bytes
            );
        }
    }
}

#[test]
fn cost_orderings_match_the_papers_story() {
    let n = 24;
    let mut profiles = Vec::new();
    for mut s in all_scenarios(n, 7) {
        let _warm = s.round();
        let r = s.round();
        let idle0 = s.total_wire_bytes();
        s.idle(SimDuration::from_secs(30));
        let idle = s.total_wire_bytes() - idle0;
        profiles.push((s.name, r.latency, r.wire_bytes, idle));
    }
    let get = |name: &str| profiles.iter().find(|(n, ..)| *n == name).copied().unwrap();
    let direct = get("direct-polling");
    let ours = get("sensorcer-csp");
    let surrogate = get("surrogate");

    // Latency: parallel federation beats sequential polling.
    assert!(
        ours.1 < direct.1,
        "sensorcer {} vs direct {}",
        ours.1,
        direct.1
    );
    // Idle: only the surrogate architecture streams continuously.
    assert!(surrogate.3 > 0);
    assert_eq!(direct.3, 0);
    assert_eq!(ours.3, 0);
}
