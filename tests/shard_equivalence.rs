//! Sharded-engine equivalence gate: enabling per-subnet event shards is
//! a performance lever, never a semantic one. For any seed, a soak run
//! with sharding on (any shard count) must produce the *bit-identical*
//! report — every read outcome, retry count and injected fault — and the
//! bit-identical flight-recorder export, because the sharded queue still
//! pops timers in global `(deadline, seq)` order; only the window
//! bookkeeping differs.
//!
//! This is the PR-4 determinism story extended to the sharded engine:
//! the DPOR/happens-before machinery explores schedules *within* the
//! model, while this gate pins that the engine itself never reorders.

use std::cell::RefCell;
use std::rc::Rc;

use sensorcer_bench::chaos::{run_soak, run_soak_traced, SoakConfig};
use sensorcer_bench::trace::TRACE_CAPACITY;
use sensorcer_sim::chaos::ChaosConfig;
use sensorcer_sim::prelude::*;

/// Three distinct fault mixes, same spirit as `tests/chaos_soak.rs`.
const SEEDS: [u64; 3] = [1, 42, 0x5E2509];

/// The shard counts under test — including counts that don't divide the
/// six-mote world evenly.
const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

/// A bounded soak (the default horizon is for CI's soak gate, not a
/// 12-run equivalence matrix).
fn quick_cfg(seed: u64) -> SoakConfig {
    SoakConfig {
        chaos: ChaosConfig {
            horizon: SimDuration::from_secs(180),
            ..Default::default()
        },
        tail_reads: 5,
        ..SoakConfig::new(seed)
    }
}

/// The PR-2 chaos storm: aggressive pair-wide outages, recorder on.
/// Mirrors the storm the trace analytics are validated against.
fn storm_cfg(seed: u64) -> SoakConfig {
    SoakConfig {
        chaos: ChaosConfig {
            horizon: SimDuration::from_secs(240),
            period: SimDuration::from_secs(3),
            partition_prob: 0.35,
            isolate_prob: 0.30,
            crash_prob: 0.30,
            min_outage: SimDuration::from_secs(10),
            max_outage: SimDuration::from_secs(40),
            ..Default::default()
        },
        tail_reads: 5,
        trace_capacity: Some(TRACE_CAPACITY),
        ..SoakConfig::new(seed)
    }
}

#[test]
fn sharded_soak_reports_are_bit_identical_to_sequential() {
    for seed in SEEDS {
        let sequential = run_soak(&quick_cfg(seed));
        assert!(
            sequential.reads_total > 50,
            "seed {seed}: soak too short to be a meaningful oracle"
        );
        for shards in SHARD_COUNTS {
            let sharded = run_soak(&SoakConfig {
                shards: Some(shards),
                ..quick_cfg(seed)
            });
            assert_eq!(
                sequential, sharded,
                "seed {seed}, {shards} shards: report diverged from sequential"
            );
        }
    }
}

#[test]
fn sharded_storm_trace_export_is_bit_identical() {
    // The storm config is the hard case: dense fault/heal timer traffic,
    // retries and failovers interleaving at equal deadlines, with the
    // flight recorder capturing every span. One byte of reordering in
    // the engine shows up in the JSON export.
    let seed = SEEDS[1];
    let (seq_report, seq_rec) = run_soak_traced(&storm_cfg(seed));
    let (sh_report, sh_rec) = run_soak_traced(&SoakConfig {
        shards: Some(4),
        ..storm_cfg(seed)
    });
    assert_eq!(seq_report, sh_report, "storm report diverged under shards");
    let seq_json = seq_rec.expect("recorder on").to_json();
    let sh_json = sh_rec.expect("recorder on").to_json();
    assert_eq!(
        seq_json, sh_json,
        "storm trace export diverged under shards"
    );
    assert!(
        seq_report.reads_degraded > 0 || seq_report.reads_failed > 0,
        "storm produced no degradation — equivalence check proved too little"
    );
}

/// The mote-radio cross-subnet latency — the conservative window
/// lookahead for a mote-only multi-subnet world.
const LOOKAHEAD: SimDuration = SimDuration::from_millis(5);

/// Eight motes, one per subnet: every shard count under test gets at
/// least one populated lane, and the lookahead is the 5 ms radio hop.
fn mote_world(seed: u64) -> (Env, Vec<HostId>) {
    let mut env = Env::with_seed(seed);
    let hosts: Vec<HostId> = (0..8)
        .map(|i| {
            let h = env.add_host(format!("m{i}"), HostKind::SensorMote);
            env.topo.set_subnet(h, SubnetId(i));
            h
        })
        .collect();
    (env, hosts)
}

/// A seed-salted first deadline, so the window edge under test never
/// sits at a fixed absolute instant.
fn t0_for(seed: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(1 + seed % 7)
}

/// Schedule the boundary probe: events inside the first window, an
/// equal-deadline tie pair, one event at *exactly* `t0 + lookahead`
/// (the inclusive window edge) and one a microsecond past it. Each
/// callback appends `(label, fire_time)` to the shared log.
fn schedule_boundary_probe(
    env: &mut Env,
    hosts: &[HostId],
    t0: SimTime,
) -> Rc<RefCell<Vec<(u32, SimTime)>>> {
    let log = Rc::new(RefCell::new(Vec::new()));
    let record = |env: &mut Env, host: usize, at: SimTime, label: u32| {
        let log = Rc::clone(&log); // test-only shared log  lint:allow(shard)
        env.schedule_at_on(hosts[host], at, move |env| {
            log.borrow_mut().push((label, env.now()));
        });
    };
    record(env, 0, t0, 0);
    record(env, 7, t0 + SimDuration::from_millis(2), 1);
    // Equal deadlines on different subnets: registration order breaks
    // the tie identically on both engines.
    record(env, 1, t0 + SimDuration::from_millis(1), 2);
    record(env, 2, t0 + SimDuration::from_millis(1), 3);
    // The event at exactly the horizon — the inclusive edge.
    record(env, 3, t0 + LOOKAHEAD, 4);
    // And one strictly past it, which must wait for the next window.
    record(env, 5, t0 + LOOKAHEAD + SimDuration::from_micros(1), 5);
    log
}

#[test]
fn events_at_the_inclusive_window_edge_match_sequential() {
    for seed in SEEDS {
        let t0 = t0_for(seed);
        // Sequential oracle: no windows, plain (deadline, seq) order.
        let (mut env, hosts) = mote_world(seed);
        let log = schedule_boundary_probe(&mut env, &hosts, t0);
        env.run_until(t0 + SimDuration::from_millis(30));
        let baseline = log.borrow().clone();
        assert_eq!(
            baseline.iter().map(|&(l, _)| l).collect::<Vec<_>>(),
            vec![0, 2, 3, 1, 4, 5],
            "seed {seed}: sequential firing order is the oracle"
        );
        for shards in SHARD_COUNTS {
            let (mut env, hosts) = mote_world(seed);
            env.enable_sharding(shards);
            let log = schedule_boundary_probe(&mut env, &hosts, t0);
            env.run_until(t0 + SimDuration::from_millis(30));
            assert_eq!(
                *log.borrow(),
                baseline,
                "seed {seed}, {shards} shards: boundary events diverged"
            );
            // The edge is inclusive: the event at exactly t0 + lookahead
            // rides the first window; only the one strictly past it
            // opens a second. Three windows would mean an exclusive edge.
            assert_eq!(
                env.shard_stats().windows,
                2,
                "seed {seed}, {shards} shards: wrong window count"
            );
        }
    }
}

#[test]
fn strictly_past_horizon_opens_a_new_window() {
    for seed in SEEDS {
        let t0 = t0_for(seed);
        for (offset, want_windows) in [(LOOKAHEAD, 1), (LOOKAHEAD + SimDuration::from_micros(1), 2)]
        {
            for shards in SHARD_COUNTS {
                let (mut env, hosts) = mote_world(seed);
                env.enable_sharding(shards);
                let fired = Rc::new(RefCell::new(0u32));
                for (host, at) in [(0usize, t0), (4usize, t0 + offset)] {
                    let fired = Rc::clone(&fired); // test-only counter  lint:allow(shard)
                    env.schedule_at_on(hosts[host], at, move |_env| {
                        *fired.borrow_mut() += 1;
                    });
                }
                env.run_until(t0 + SimDuration::from_millis(30));
                assert_eq!(*fired.borrow(), 2, "seed {seed}: both events fired");
                assert_eq!(
                    env.shard_stats().windows,
                    want_windows,
                    "seed {seed}, {shards} shards, offset {offset:?}"
                );
            }
        }
    }
}
