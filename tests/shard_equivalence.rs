//! Sharded-engine equivalence gate: enabling per-subnet event shards is
//! a performance lever, never a semantic one. For any seed, a soak run
//! with sharding on (any shard count) must produce the *bit-identical*
//! report — every read outcome, retry count and injected fault — and the
//! bit-identical flight-recorder export, because the sharded queue still
//! pops timers in global `(deadline, seq)` order; only the window
//! bookkeeping differs.
//!
//! This is the PR-4 determinism story extended to the sharded engine:
//! the DPOR/happens-before machinery explores schedules *within* the
//! model, while this gate pins that the engine itself never reorders.

use sensorcer_bench::chaos::{run_soak, run_soak_traced, SoakConfig};
use sensorcer_bench::trace::TRACE_CAPACITY;
use sensorcer_sim::chaos::ChaosConfig;
use sensorcer_sim::prelude::*;

/// Three distinct fault mixes, same spirit as `tests/chaos_soak.rs`.
const SEEDS: [u64; 3] = [1, 42, 0x5E2509];

/// The shard counts under test — including counts that don't divide the
/// six-mote world evenly.
const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

/// A bounded soak (the default horizon is for CI's soak gate, not a
/// 12-run equivalence matrix).
fn quick_cfg(seed: u64) -> SoakConfig {
    SoakConfig {
        chaos: ChaosConfig {
            horizon: SimDuration::from_secs(180),
            ..Default::default()
        },
        tail_reads: 5,
        ..SoakConfig::new(seed)
    }
}

/// The PR-2 chaos storm: aggressive pair-wide outages, recorder on.
/// Mirrors the storm the trace analytics are validated against.
fn storm_cfg(seed: u64) -> SoakConfig {
    SoakConfig {
        chaos: ChaosConfig {
            horizon: SimDuration::from_secs(240),
            period: SimDuration::from_secs(3),
            partition_prob: 0.35,
            isolate_prob: 0.30,
            crash_prob: 0.30,
            min_outage: SimDuration::from_secs(10),
            max_outage: SimDuration::from_secs(40),
            ..Default::default()
        },
        tail_reads: 5,
        trace_capacity: Some(TRACE_CAPACITY),
        ..SoakConfig::new(seed)
    }
}

#[test]
fn sharded_soak_reports_are_bit_identical_to_sequential() {
    for seed in SEEDS {
        let sequential = run_soak(&quick_cfg(seed));
        assert!(
            sequential.reads_total > 50,
            "seed {seed}: soak too short to be a meaningful oracle"
        );
        for shards in SHARD_COUNTS {
            let sharded = run_soak(&SoakConfig {
                shards: Some(shards),
                ..quick_cfg(seed)
            });
            assert_eq!(
                sequential, sharded,
                "seed {seed}, {shards} shards: report diverged from sequential"
            );
        }
    }
}

#[test]
fn sharded_storm_trace_export_is_bit_identical() {
    // The storm config is the hard case: dense fault/heal timer traffic,
    // retries and failovers interleaving at equal deadlines, with the
    // flight recorder capturing every span. One byte of reordering in
    // the engine shows up in the JSON export.
    let seed = SEEDS[1];
    let (seq_report, seq_rec) = run_soak_traced(&storm_cfg(seed));
    let (sh_report, sh_rec) = run_soak_traced(&SoakConfig {
        shards: Some(4),
        ..storm_cfg(seed)
    });
    assert_eq!(seq_report, sh_report, "storm report diverged under shards");
    let seq_json = seq_rec.expect("recorder on").to_json();
    let sh_json = sh_rec.expect("recorder on").to_json();
    assert_eq!(
        seq_json, sh_json,
        "storm trace export diverged under shards"
    );
    assert!(
        seq_report.reads_degraded > 0 || seq_report.reads_failed > 0,
        "storm produced no degradation — equivalence check proved too little"
    );
}
