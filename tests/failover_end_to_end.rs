//! End-to-end outage tolerance (§VII): cybernode failover, partition
//! recovery, and lease-driven cleanup — through the public API only.

use sensorcer_suite::core::prelude::*;
use sensorcer_suite::provision::monitor::ProvisionMonitor;
use sensorcer_suite::sim::prelude::*;

fn world() -> (Env, Deployment) {
    let config = DeploymentConfig::fig2();
    let mut env = Env::with_seed(config.seed);
    let d = standard_deployment(&mut env, &config);
    (env, d)
}

/// Poll until the provider answers or `limit` passes; returns recovery time.
fn wait_until_up(env: &mut Env, d: &Deployment, name: &str, limit: SimDuration) -> SimDuration {
    let t0 = env.now();
    loop {
        env.run_for(SimDuration::from_millis(500));
        if d.facade.get_value(env, d.workstation, name).is_ok() {
            return env.now() - t0;
        }
        assert!(
            env.now() - t0 < limit,
            "'{name}' did not recover within {limit}"
        );
    }
}

#[test]
fn provisioned_composite_survives_cybernode_crash() {
    let (mut env, d) = world();
    d.facade
        .create_service(
            &mut env,
            d.workstation,
            "HA",
            &["Neem-Sensor", "Jade-Sensor"],
            Some("(a + b)/2"),
        )
        .unwrap();
    let first_home = env
        .find_service("HA")
        .and_then(|s| env.service_host(s))
        .expect("placed");
    env.crash_host(first_home);

    let recovery = wait_until_up(&mut env, &d, "HA", SimDuration::from_secs(120));
    // Recovery is dominated by the stale registration's lease (30 s): the
    // monitor re-provisions within a heartbeat, but requestors bind to the
    // stale item until it lapses.
    assert!(recovery < SimDuration::from_secs(60), "{recovery}");

    let instances = env
        .with_service(d.monitor.service, |_e, m: &mut ProvisionMonitor| {
            m.instances("sensor-HA")
        })
        .unwrap();
    assert_eq!(instances.len(), 1);
    assert_ne!(
        instances[0].node.host, first_home,
        "must move to the survivor"
    );
}

#[test]
fn double_crash_exhausts_pool_then_recovers_on_restart() {
    let (mut env, d) = world();
    d.facade
        .create_service(&mut env, d.workstation, "HA", &["Neem-Sensor"], None)
        .unwrap();
    // Kill both cybernodes: nowhere to run.
    for &h in &d.cybernode_hosts {
        env.crash_host(h);
    }
    env.run_for(SimDuration::from_secs(60));
    assert!(
        d.facade.get_value(&mut env, d.workstation, "HA").is_err(),
        "no cybernodes, no composite"
    );
    // Bring one back: the monitor's pending placement retries.
    env.restart_host(d.cybernode_hosts[0]);
    let recovery = wait_until_up(&mut env, &d, "HA", SimDuration::from_secs(120));
    assert!(recovery < SimDuration::from_secs(60), "{recovery}");
}

#[test]
fn partitioned_mote_degrades_loudly_and_heals() {
    let (mut env, d) = world();
    let neem_mote = d.mote_hosts[0];
    env.topo.isolate(neem_mote);
    let err = d
        .facade
        .get_value(&mut env, d.workstation, "Neem-Sensor")
        .unwrap_err();
    assert!(
        err.contains("partition") || err.contains("unreachable"),
        "{err}"
    );
    env.topo.reconnect(neem_mote);
    assert!(d
        .facade
        .get_value(&mut env, d.workstation, "Neem-Sensor")
        .is_ok());
}

#[test]
fn dead_sensor_disappears_from_listing_and_restarts_rejoin() {
    let (mut env, d) = world();
    let coral_mote = d.mote_hosts[2];
    env.crash_host(coral_mote);
    env.run_for(SimDuration::from_secs(90)); // > 2 lease periods

    let mut model = BrowserModel::new();
    model
        .refresh_services(&mut env, d.workstation, d.facade)
        .unwrap();
    assert!(
        !model.services.iter().any(|(n, _)| n == "Coral-Sensor"),
        "ghost registration must evaporate"
    );

    // The paper: "when it is up the node is immediately available in the
    // network" — our ESP's renewal stopped permanently, so rejoin means
    // re-registering (the deploy path does that); simulate a fresh deploy.
    env.restart_host(coral_mote);
    deploy_esp(
        &mut env,
        EspConfig {
            renewal: Some(d.renewal),
            lease: SimDuration::from_secs(30),
            ..EspConfig::new(
                coral_mote,
                "Coral-Sensor",
                Box::new(sensorcer_suite::sensors::probe::ScriptedProbe::new(
                    vec![21.0],
                    sensorcer_suite::sensors::units::Unit::Celsius,
                )),
                d.lus,
            )
        },
    );
    model
        .refresh_services(&mut env, d.workstation, d.facade)
        .unwrap();
    assert!(model.services.iter().any(|(n, _)| n == "Coral-Sensor"));
    assert!(d
        .facade
        .get_value(&mut env, d.workstation, "Coral-Sensor")
        .is_ok());
}

#[test]
fn composite_over_dead_child_fails_with_named_culprit() {
    let (mut env, d) = world();
    d.facade
        .create_service(
            &mut env,
            d.workstation,
            "Pair",
            &["Neem-Sensor", "Coral-Sensor"],
            None,
        )
        .unwrap();
    env.crash_host(d.mote_hosts[2]); // Coral
    let err = d
        .facade
        .get_value(&mut env, d.workstation, "Pair")
        .unwrap_err();
    assert!(err.contains("Coral-Sensor"), "culprit must be named: {err}");
}
