//! Chaos soak regression gate: the deterministic fault-injection harness
//! must pass — no invariant violations, full post-heal reconvergence —
//! for a set of fixed seeds, every run, bit-for-bit.
//!
//! Each soak drives hundreds of composite reads (thousands of federated
//! child dispatches) through a world where motes are partitioned,
//! isolated, crashed and slowed on a seeded schedule, while the
//! `Quorum(4)` and `LastKnownGood` composites keep answering in degraded
//! mode. See `sensorcer_bench::chaos` for the invariants.

use sensorcer_bench::chaos::{run_soak, SoakConfig};

/// The fixed seeds CI pins. Three distinct fault mixes; all must pass.
const SEEDS: [u64; 3] = [1, 42, 0x5E2509];

#[test]
fn chaos_soak_passes_for_all_pinned_seeds() {
    for seed in SEEDS {
        let report = run_soak(&SoakConfig::new(seed));
        assert!(
            report.violations.is_empty(),
            "seed {seed} violated invariants: {:#?}",
            report.violations
        );
        assert!(
            report.reconverged,
            "seed {seed} did not reconverge post-heal"
        );
        assert!(
            report.injected.total() > 0,
            "seed {seed} injected no faults"
        );
        assert!(
            report.reads_total > 100,
            "seed {seed} soak too short: {} reads",
            report.reads_total
        );
    }
}

#[test]
fn chaos_soak_is_reproducible() {
    let cfg = SoakConfig::new(SEEDS[1]);
    assert_eq!(
        run_soak(&cfg),
        run_soak(&cfg),
        "same seed, same world, same report"
    );
}
