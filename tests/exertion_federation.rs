//! Exertion-oriented programming across the deployed sensor network:
//! jobs federating sensor reads through the jobber (push) and the
//! exertion space (pull), with transactions riding along.

use sensorcer_suite::core::prelude::*;
use sensorcer_suite::exertion::prelude::*;
use sensorcer_suite::registry::ids::interfaces;
use sensorcer_suite::registry::txn::{Participant, TxnState, Vote};
use sensorcer_suite::sim::prelude::*;

fn world() -> (Env, Deployment) {
    let config = DeploymentConfig::fig2();
    let mut env = Env::with_seed(config.seed);
    let d = standard_deployment(&mut env, &config);
    (env, d)
}

fn read_task(name: &str, provider: &str) -> Task {
    Task::new(
        name,
        Signature::new(interfaces::SENSOR_DATA_ACCESSOR, "getValue").on(provider),
        Context::new(),
    )
}

#[test]
fn parallel_job_reads_all_sensors_through_the_jobber() {
    let (mut env, d) = world();
    let job = Job::new("read-all", ControlStrategy::parallel())
        .with(read_task("neem", "Neem-Sensor"))
        .with(read_task("jade", "Jade-Sensor"))
        .with(read_task("coral", "Coral-Sensor"))
        .with(read_task("diamond", "Diamond-Sensor"));
    let done = exert(&mut env, d.workstation, job.into(), &d.accessor, None);
    assert!(done.status().is_done(), "{:?}", done.status());
    // "All results of the execution can be found in the returned
    // exertion's service contexts."
    for child in ["neem", "jade", "coral", "diamond"] {
        let v = done
            .context()
            .get_f64(&format!("{child}/sensor/value"))
            .unwrap_or_else(|| panic!("missing {child} value"));
        assert!((15.0..30.0).contains(&v), "{child}: {v}");
    }
}

#[test]
fn hierarchical_job_mirrors_composite_structure() {
    let (mut env, d) = world();
    let subnet = Job::new("subnet", ControlStrategy::parallel())
        .with(read_task("neem", "Neem-Sensor"))
        .with(read_task("jade", "Jade-Sensor"));
    let outer = Job::new("network", ControlStrategy::sequence())
        .with(subnet)
        .with(read_task("coral", "Coral-Sensor"));
    let done = exert(&mut env, d.workstation, outer.into(), &d.accessor, None);
    assert!(done.status().is_done(), "{:?}", done.status());
    assert!(done.context().get_f64("subnet/neem/sensor/value").is_some());
    assert!(done.context().get_f64("coral/sensor/value").is_some());
}

#[test]
fn pull_mode_federation_over_the_exertion_space() {
    let (mut env, d) = world();
    // Stand up the space machinery: space, spacer, and a worker fronting a
    // compute tasker.
    let space_host = env.add_host("space-host", HostKind::Server);
    let space = ExertionSpace::deploy(&mut env, space_host, "Exertion Space");
    Spacer::deploy(&mut env, space_host, "Spacer", d.accessor.clone(), space);
    let tasker = Tasker::new("Converter", "UnitConversion").on("toFahrenheit", |_env, ctx| {
        let c = ctx.get_f64("arg/celsius").ok_or("missing arg/celsius")?;
        ctx.put(paths::RESULT, c * 1.8 + 32.0);
        Ok(())
    });
    let provider = env.deploy(space_host, "Converter", ServicerBox::new(tasker));
    attach_worker(&mut env, provider, space, SimDuration::from_millis(20));

    let job = Job::new("convert", ControlStrategy::parallel().pull()).with(Task::new(
        "f",
        Signature::new("UnitConversion", "toFahrenheit"),
        Context::new().with("arg/celsius", 21.5),
    ));
    let done = exert(&mut env, d.workstation, job.into(), &d.accessor, None);
    assert!(done.status().is_done(), "{:?}", done.status());
    let f = done.context().get_f64("f/result/value").unwrap();
    assert!((f - 70.7).abs() < 1e-9);
}

#[test]
fn transactions_commit_across_providers() {
    let (mut env, d) = world();
    // Stage a calibration change on two participants; commit atomically.
    let staged: std::rc::Rc<std::cell::RefCell<Vec<&'static str>>> = Default::default();
    let id =
        d.tm.create(&mut env, d.workstation, SimDuration::from_secs(30))
            .unwrap();
    for (name, host) in [("a", d.mote_hosts[0]), ("b", d.mote_hosts[1])] {
        let s1 = std::rc::Rc::clone(&staged);
        let s2 = std::rc::Rc::clone(&staged);
        d.tm.join(
            &mut env,
            d.workstation,
            id,
            Participant {
                host,
                prepare: Box::new(move |_e, _id| {
                    s1.borrow_mut().push(name);
                    Vote::Prepared
                }),
                commit: Box::new(move |_e, _id| {
                    s2.borrow_mut().push("committed");
                }),
                abort: Box::new(|_e, _id| panic!("must not abort")),
            },
        )
        .unwrap()
        .unwrap();
    }
    d.tm.commit(&mut env, d.workstation, id).unwrap().unwrap();
    let log = staged.borrow();
    assert_eq!(log.as_slice(), ["a", "b", "committed", "committed"]);
    env.with_service(
        d.tm.service,
        |_e, tm: &mut sensorcer_suite::registry::txn::TransactionManager| {
            assert_eq!(tm.state(id), Some(TxnState::Committed));
        },
    )
    .unwrap();
}

#[test]
fn transaction_aborts_when_participant_host_dies() {
    let (mut env, d) = world();
    let id =
        d.tm.create(&mut env, d.workstation, SimDuration::from_secs(30))
            .unwrap();
    let aborted = std::rc::Rc::new(std::cell::Cell::new(false));
    let a2 = std::rc::Rc::clone(&aborted);
    d.tm.join(
        &mut env,
        d.workstation,
        id,
        Participant {
            host: d.lab,
            prepare: Box::new(|_e, _id| Vote::Prepared),
            commit: Box::new(|_e, _id| panic!("must not commit")),
            abort: Box::new(move |_e, _id| a2.set(true)),
        },
    )
    .unwrap()
    .unwrap();
    d.tm.join(
        &mut env,
        d.workstation,
        id,
        Participant {
            host: d.mote_hosts[0],
            prepare: Box::new(|_e, _id| Vote::Prepared),
            commit: Box::new(|_e, _id| {}),
            abort: Box::new(|_e, _id| {}),
        },
    )
    .unwrap()
    .unwrap();
    env.crash_host(d.mote_hosts[0]);
    let err =
        d.tm.commit(&mut env, d.workstation, id)
            .unwrap()
            .unwrap_err();
    assert_eq!(err, sensorcer_suite::registry::txn::TxnError::Aborted);
    assert!(aborted.get(), "the reachable participant must roll back");
}

#[test]
fn exertion_trace_records_the_federation() {
    let (mut env, d) = world();
    let done = exert(
        &mut env,
        d.workstation,
        read_task("t", "Neem-Sensor").into(),
        &d.accessor,
        None,
    );
    match done {
        Exertion::Task(t) => {
            assert!(
                t.trace.iter().any(|l| l.contains("Neem-Sensor")),
                "{:?}",
                t.trace
            );
        }
        _ => panic!("a task stays a task"),
    }
}
