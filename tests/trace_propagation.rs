//! Trace propagation through a degraded federated read (§VII outage
//! tolerance, seen through the flight recorder).
//!
//! A `Quorum(2)` composite over three ESPs loses one child to a
//! partition. The resulting read must leave a complete, self-explaining
//! span tree behind:
//!
//! * one `csp.read` parent, ended `degraded`, naming the substituted
//!   child in its fields and carrying the `degradation.substitute` event;
//! * one `csp.child` span per ESP underneath it — the healthy two ok,
//!   the partitioned one ended `error`;
//! * the failed child's subtree records its `retry.attempt`s before
//!   giving up, so the retry budget is visible per read, not only as a
//!   global counter;
//! * and the whole recorder exports bit-for-bit identically when the
//!   same seed is run again.

use std::collections::BTreeMap;

use sensorcer_suite::core::csp::DegradationPolicy;
use sensorcer_suite::core::prelude::*;
use sensorcer_suite::exertion::RetryPolicy;
use sensorcer_suite::registry::lease::LeasePolicy;
use sensorcer_suite::registry::lus::LookupService;
use sensorcer_suite::sensors::prelude::*;
use sensorcer_suite::sim::prelude::*;

/// Deterministic fault mixes to pin; same seeds as the chaos gate.
const SEEDS: [u64; 3] = [1, 42, 0x5E2509];

/// Build the three-ESP quorum world, prime the last-known-good cache,
/// partition `S2`'s mote, issue one degraded read, and hand back the
/// recorder.
fn degraded_read_recorder(seed: u64) -> FlightRecorder {
    let mut env = Env::with_seed(seed);
    env.enable_tracing(4096);
    let lab = env.add_host("lab", HostKind::Server);
    let workstation = env.add_host("client", HostKind::Workstation);
    let lus = LookupService::deploy(
        &mut env,
        lab,
        "LUS",
        "public",
        LeasePolicy {
            max_duration: SimDuration::from_secs(360_000),
            default_duration: SimDuration::from_secs(36_000),
        },
        SimDuration::from_millis(500),
    );
    let mut motes = Vec::new();
    for i in 0..3u64 {
        let mote = env.add_host(format!("m{i}"), HostKind::SensorMote);
        deploy_esp(
            &mut env,
            EspConfig {
                lease: SimDuration::from_secs(36_000),
                ..EspConfig::new(
                    mote,
                    format!("S{i}"),
                    Box::new(ScriptedProbe::new(vec![20.0 + i as f64], Unit::Celsius)),
                    lus,
                )
            },
        );
        motes.push(mote);
    }
    let mut cfg = CspConfig::new(lab, "Quorum-Read", lus);
    cfg.lease = SimDuration::from_secs(36_000);
    cfg.children = (0..3).map(|i| format!("S{i}")).collect();
    cfg.degradation = DegradationPolicy::Quorum(2);
    cfg.retry = RetryPolicy::transient();
    deploy_csp(&mut env, cfg).expect("composite");

    let accessor = sensorcer_suite::exertion::ServiceAccessor::new(vec![lus]);
    client::get_value(&mut env, workstation, &accessor, "Quorum-Read").expect("priming read");

    env.topo.partition(lab, motes[2]);
    env.run_for(SimDuration::from_secs(2));
    let (reading, degraded) =
        client::get_value_detailed(&mut env, workstation, &accessor, "Quorum-Read")
            .expect("quorum must still answer with one child gone");
    assert!(
        degraded.is_degraded(),
        "read with a partitioned child must be degraded"
    );
    assert!(
        degraded.substituted.iter().any(|s| s == "S2"),
        "S2 must be substituted from last-known-good: {degraded:?}"
    );
    assert!(!reading.good, "degraded reads are flagged suspect");

    env.disable_tracing().expect("recorder was enabled")
}

/// All spans in `root`'s subtree (inclusive), by recorder order.
fn subtree<'a>(spans: &[&'a Span], kids: &BTreeMap<u64, Vec<usize>>, root: usize) -> Vec<&'a Span> {
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        out.push(spans[i]);
        if let Some(children) = kids.get(&spans[i].id.0) {
            stack.extend(children.iter().copied());
        }
    }
    out
}

#[test]
fn degraded_quorum_read_leaves_a_complete_span_tree() {
    for seed in SEEDS {
        let rec = degraded_read_recorder(seed);
        assert_eq!(
            rec.validate(true),
            Vec::<String>::new(),
            "seed {seed}: broken trace"
        );

        let spans: Vec<&Span> = rec.spans().collect();
        let kids = rec.children_index();

        // Two composite reads happened (priming + degraded); exactly one
        // ended degraded.
        let reads: Vec<usize> = spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.name == "csp.read")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(reads.len(), 2, "seed {seed}: priming + degraded read");
        let degraded_reads: Vec<usize> = reads
            .iter()
            .copied()
            .filter(|&i| spans[i].outcome == Outcome::Degraded)
            .collect();
        assert_eq!(degraded_reads.len(), 1, "seed {seed}");
        let parent = degraded_reads[0];
        assert_eq!(&*spans[parent].label, "Quorum-Read");

        // The parent names the substituted child and carries the
        // substitution event itself.
        let substituted = spans[parent]
            .field("substituted")
            .and_then(|v| v.as_str())
            .expect("substituted field");
        assert!(substituted.contains("S2"), "seed {seed}: {substituted}");
        assert!(
            spans[parent].has_event("degradation.substitute"),
            "seed {seed}"
        );

        // One csp.child per ESP directly under the degraded read.
        let children: Vec<&Span> = kids
            .get(&spans[parent].id.0)
            .map(|c| c.iter().map(|&i| spans[i]).collect())
            .unwrap_or_default();
        let mut child_labels: Vec<&str> = children
            .iter()
            .filter(|s| s.name == "csp.child")
            .map(|s| &*s.label)
            .collect();
        child_labels.sort_unstable();
        assert_eq!(child_labels, ["S0", "S1", "S2"], "seed {seed}");

        for child in children.iter().filter(|s| s.name == "csp.child") {
            let idx = spans.iter().position(|s| s.id == child.id).unwrap();
            let below = subtree(&spans, &kids, idx);
            if &*child.label == "S2" {
                // The partitioned child fails after burning its retry
                // budget — both facts must be readable from its subtree.
                assert_eq!(child.outcome, Outcome::Error, "seed {seed}");
                assert!(child.field("error").is_some(), "seed {seed}");
                assert!(
                    below.iter().any(|s| s.has_event("retry.attempt")),
                    "seed {seed}: no retry.attempt in S2's subtree"
                );
            } else {
                assert_eq!(child.outcome, Outcome::Ok, "seed {seed}: {}", child.label);
            }
        }
    }
}

#[test]
fn trace_export_is_bit_for_bit_reproducible() {
    for seed in SEEDS {
        let a = degraded_read_recorder(seed).to_json();
        let b = degraded_read_recorder(seed).to_json();
        assert_eq!(
            a, b,
            "seed {seed}: same seed must export the identical trace"
        );
        assert!(a.contains("csp.read"));
    }
}
