//! Cross-run determinism: the foundation every experiment table stands
//! on. Same seed in, bit-identical world out — across deployments,
//! federated reads, failure schedules and whole experiment tables.

use sensorcer_suite::baselines::scenario::sensorcer_scenario;
use sensorcer_suite::core::prelude::*;
use sensorcer_suite::sim::prelude::*;

#[test]
fn scenario_rounds_are_bit_identical_across_runs() {
    let run = |seed: u64| {
        let mut s = sensorcer_scenario(16, seed);
        (0..5).map(|_| s.round()).collect::<Vec<_>>()
    };
    let a = run(77);
    let b = run(77);
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.value, rb.value);
        assert_eq!(ra.latency, rb.latency);
        assert_eq!(ra.wire_bytes, rb.wire_bytes);
    }
    let c = run(78);
    assert!(
        a.iter().zip(&c).any(|(x, y)| x.latency != y.latency),
        "different seeds must diverge somewhere"
    );
}

#[test]
fn failure_schedules_replay_exactly() {
    let run = || {
        let config = DeploymentConfig::fig2();
        let mut env = Env::with_seed(config.seed);
        let d = standard_deployment(&mut env, &config);
        d.facade
            .create_service(&mut env, d.workstation, "HA", &["Neem-Sensor"], None)
            .unwrap();
        let home = env
            .find_service("HA")
            .and_then(|s| env.service_host(s))
            .unwrap();
        env.crash_host(home);
        // Poll to recovery; record the exact recovery instant and traffic.
        loop {
            env.run_for(SimDuration::from_millis(500));
            if d.facade.get_value(&mut env, d.workstation, "HA").is_ok() {
                break;
            }
        }
        (
            env.now(),
            env.metrics.get(metric_keys::BYTES_WIRE),
            env.metrics.get(metric_keys::CALLS_OK),
        )
    };
    assert_eq!(run(), run(), "failover replay must be exact");
}

#[test]
fn experiment_tables_are_reproducible() {
    let t1 = sensorcer_bench_table();
    let t2 = sensorcer_bench_table();
    assert_eq!(t1, t2);
}

fn sensorcer_bench_table() -> String {
    // A virtual-time experiment (host-time ones legitimately vary).
    sensorcer_bench::b2_scalability::run(4242)
}

#[test]
fn metrics_account_conservation() {
    // Payload never exceeds wire bytes; ok + failed calls partition all
    // call attempts.
    let config = DeploymentConfig::fig2();
    let mut env = Env::with_seed(config.seed);
    let d = standard_deployment(&mut env, &config);
    // A crashed mote produces genuine failed network calls ("Ghost" would
    // fail at binding, which is a successful lookup returning nothing).
    env.crash_host(d.mote_hosts[1]);
    for _ in 0..5 {
        let _ = d.facade.get_value(&mut env, d.workstation, "Neem-Sensor");
        let _ = d.facade.get_value(&mut env, d.workstation, "Jade-Sensor");
    }
    let payload = env.metrics.get(metric_keys::BYTES_PAYLOAD);
    let wire = env.metrics.get(metric_keys::BYTES_WIRE);
    assert!(
        wire > payload,
        "headers must cost something: {wire} vs {payload}"
    );
    assert!(env.metrics.get(metric_keys::CALLS_OK) > 0);
    assert!(
        env.metrics.get(metric_keys::CALLS_FAILED) > 0,
        "dead-mote reads must fail"
    );
}
