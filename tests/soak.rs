//! Soak test: a virtual day of continuous operation with periodic reads,
//! management changes, provisioning and failures — watching for the slow
//! leaks a demo never shows (timer accumulation, registry growth,
//! unbounded event queues).

use sensorcer_suite::core::prelude::*;
use sensorcer_suite::sim::prelude::*;

#[test]
fn one_virtual_day_of_operations_leaks_nothing() {
    let config = DeploymentConfig::fig2();
    let mut env = Env::with_seed(config.seed);
    let d = standard_deployment(&mut env, &config);

    d.facade
        .create_service(
            &mut env,
            d.workstation,
            "Day-Composite",
            &["Neem-Sensor", "Jade-Sensor"],
            Some("(a + b)/2"),
        )
        .unwrap();

    // Baseline timer count after the world settles.
    env.run_for(SimDuration::from_secs(60));
    let timers_baseline = env.pending_timers();

    let mut reads_ok = 0u64;
    let mut reads_failed = 0u64;
    for hour in 0..24 {
        // Hourly routine: read everything, poke management, cause trouble.
        for name in &config.sensor_names {
            match d.facade.get_value(&mut env, d.workstation, name) {
                Ok(_) => reads_ok += 1,
                Err(_) => reads_failed += 1,
            }
        }
        match d.facade.get_value(&mut env, d.workstation, "Day-Composite") {
            Ok(_) => reads_ok += 1,
            Err(_) => reads_failed += 1,
        }

        // Every 6 hours: crash and restore a mote (outlasting nothing —
        // shorter than the lease, so registrations survive).
        if hour % 6 == 3 {
            let victim = d.mote_hosts[hour % d.mote_hosts.len()];
            env.crash_host(victim);
            env.run_for(SimDuration::from_secs(5));
            env.restart_host(victim);
        }

        // Every 8 hours: churn the composite's expression.
        if hour % 8 == 5 {
            d.facade
                .add_expression(
                    &mut env,
                    d.workstation,
                    "Day-Composite",
                    if hour % 16 == 5 {
                        "max(a, b)"
                    } else {
                        "(a + b)/2"
                    },
                )
                .unwrap();
        }

        env.run_for(SimDuration::from_secs(3600));

        // Leak checks, every hour.
        let timers = env.pending_timers();
        assert!(
            timers <= timers_baseline + 4,
            "hour {hour}: timer leak? baseline {timers_baseline}, now {timers}"
        );
    }

    // The day's tally: reads overwhelmingly succeed (brief crash windows
    // may eat a few), and the composite still answers correctly.
    assert!(reads_ok >= 110, "{reads_ok} ok / {reads_failed} failed");
    assert!(
        reads_failed <= 10,
        "{reads_failed} failures in a day is too many"
    );
    let r = d
        .facade
        .get_value(&mut env, d.workstation, "Day-Composite")
        .unwrap();
    assert!((15.0..30.0).contains(&r.value));

    // Registry holds exactly the expected registrations — nothing
    // accumulated, nothing lost.
    let mut model = BrowserModel::new();
    model
        .refresh_services(&mut env, d.workstation, d.facade)
        .unwrap();
    assert_eq!(model.of_type("ELEMENTARY").len(), 4);
    assert_eq!(model.of_type("COMPOSITE").len(), 1);

    // Lease renewals ran all day without runaway failure counts.
    env.with_service(
        d.renewal.service,
        |_e, s: &mut sensorcer_suite::registry::renewal::LeaseRenewalService| {
            assert!(s.renewals_ok() > 5_000, "renewals: {}", s.renewals_ok());
            assert!(
                s.renewals_failed() < s.renewals_ok() / 10,
                "failed {} vs ok {}",
                s.renewals_failed(),
                s.renewals_ok()
            );
        },
    )
    .unwrap();
}
