//! F3 integration test: the paper's §VI experiment, steps 1–6, with the
//! arithmetic verified end to end.

use sensorcer_suite::core::prelude::*;
use sensorcer_suite::sim::prelude::*;

struct World {
    env: Env,
    d: Deployment,
}

fn world() -> World {
    let config = DeploymentConfig::fig2();
    let mut env = Env::with_seed(config.seed);
    let d = standard_deployment(&mut env, &config);
    deploy_csp(
        &mut env,
        CspConfig {
            renewal: Some(d.renewal),
            ..CspConfig::new(d.lab, "Composite-Service", d.lus)
        },
    )
    .unwrap();
    World { env, d }
}

#[test]
fn steps_one_through_six() {
    let World { mut env, d } = world();

    // Step 1: subnet of three elementary services; variables are created
    // dynamically in composition order, exactly like Fig. 3.
    let vars = d
        .facade
        .compose_service(
            &mut env,
            d.workstation,
            "Composite-Service",
            &["Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"],
        )
        .unwrap();
    assert_eq!(vars, vec!["a", "b", "c"]);

    // Step 2.
    d.facade
        .add_expression(
            &mut env,
            d.workstation,
            "Composite-Service",
            "(a + b + c)/3",
        )
        .unwrap();

    // Step 3: provision New-Composite via Rio.
    d.facade
        .create_service(&mut env, d.workstation, "New-Composite", &[], None)
        .unwrap();
    // It must run on a cybernode host, not the lab server.
    let placed = env
        .find_service("New-Composite")
        .and_then(|s| env.service_host(s))
        .expect("provisioned service deployed");
    assert!(d.cybernode_hosts.contains(&placed), "placed on {placed:?}");

    // Step 4: the network = { subnet, Coral }. Fig. 3: 'a' binds to the
    // composite, 'b' to Coral.
    let vars = d
        .facade
        .compose_service(
            &mut env,
            d.workstation,
            "New-Composite",
            &["Composite-Service", "Coral-Sensor"],
        )
        .unwrap();
    assert_eq!(vars, vec!["a", "b"]);

    // Step 5.
    d.facade
        .add_expression(&mut env, d.workstation, "New-Composite", "(a + b)/2")
        .unwrap();

    // Step 6: read the value and check the arithmetic against near-in-time
    // component reads (sensors drift slightly between reads).
    let network = d
        .facade
        .get_value(&mut env, d.workstation, "New-Composite")
        .unwrap();
    let subnet = d
        .facade
        .get_value(&mut env, d.workstation, "Composite-Service")
        .unwrap();
    let coral = d
        .facade
        .get_value(&mut env, d.workstation, "Coral-Sensor")
        .unwrap();
    let expect = (subnet.value + coral.value) / 2.0;
    assert!(
        (network.value - expect).abs() < 0.5,
        "network {} vs (subnet {} + coral {})/2 = {}",
        network.value,
        subnet.value,
        coral.value,
        expect
    );

    // The info panel shows what Fig. 3 shows.
    let info = d
        .facade
        .get_info(&mut env, d.workstation, "New-Composite")
        .unwrap();
    assert_eq!(info.service_type, "COMPOSITE");
    assert_eq!(
        info.contained,
        vec!["Composite-Service".to_string(), "Coral-Sensor".to_string()]
    );
    assert_eq!(info.expression.as_deref(), Some("(a + b)/2"));
    assert!(!info.uuid.is_empty());
}

#[test]
fn nested_reads_are_federated_not_cached() {
    // Two consecutive network reads must reflect fresh sensor samples:
    // the composite federates on every request.
    let World { mut env, d } = world();
    d.facade
        .compose_service(
            &mut env,
            d.workstation,
            "Composite-Service",
            &["Neem-Sensor"],
        )
        .unwrap();
    let r1 = d
        .facade
        .get_value(&mut env, d.workstation, "Composite-Service")
        .unwrap();
    env.run_for(SimDuration::from_secs(7200)); // let the diurnal signal move
    let r2 = d
        .facade
        .get_value(&mut env, d.workstation, "Composite-Service")
        .unwrap();
    assert_ne!(r1.value, r2.value, "fresh federation per read");
    assert!(r2.at_ns > r1.at_ns);
}

#[test]
fn removing_a_sensor_from_the_network_reletters_variables() {
    let World { mut env, d } = world();
    d.facade
        .compose_service(
            &mut env,
            d.workstation,
            "Composite-Service",
            &["Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"],
        )
        .unwrap();
    d.facade
        .remove_service(&mut env, d.workstation, "Composite-Service", "Jade-Sensor")
        .unwrap();
    let info = d
        .facade
        .get_info(&mut env, d.workstation, "Composite-Service")
        .unwrap();
    assert_eq!(
        info.contained,
        vec!["Neem-Sensor".to_string(), "Diamond-Sensor".to_string()]
    );
    // Re-attach a two-variable expression: 'b' now binds Diamond.
    d.facade
        .add_expression(&mut env, d.workstation, "Composite-Service", "b - a")
        .unwrap();
    assert!(d
        .facade
        .get_value(&mut env, d.workstation, "Composite-Service")
        .is_ok());
}
