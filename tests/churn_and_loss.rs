//! The network under stress: lossy radio links, crash/restart churn, and
//! discovery under partitions — the conditions §II.2 ("adverse weather")
//! and §VII (plug-and-play) describe.

use sensorcer_suite::core::prelude::*;
use sensorcer_suite::registry::discovery::discover;
use sensorcer_suite::sim::prelude::*;

fn world() -> (Env, Deployment, DeploymentConfig) {
    let config = DeploymentConfig::fig2();
    let mut env = Env::with_seed(config.seed);
    let d = standard_deployment(&mut env, &config);
    (env, d, config)
}

#[test]
fn reads_succeed_over_lossy_radio_links() {
    let (mut env, d, config) = world();
    // Degrade every mote link to 10% loss — a rainy day in the orchard.
    for &mote in &d.mote_hosts {
        for host in [d.lab, d.workstation] {
            env.topo.set_link(
                mote,
                host,
                LinkModel {
                    loss: 0.10,
                    ..LinkModel::mote_radio()
                },
            );
        }
    }
    let mut ok = 0;
    let mut total = 0;
    for _ in 0..10 {
        for name in &config.sensor_names {
            total += 1;
            if d.facade.get_value(&mut env, d.workstation, name).is_ok() {
                ok += 1;
            }
        }
        env.run_for(SimDuration::from_secs(1));
    }
    // TCP retransmission should carry nearly everything through.
    assert!(
        ok as f64 >= total as f64 * 0.9,
        "{ok}/{total} reads survived 10% loss"
    );
    assert!(
        env.metrics.get(metric_keys::RETRANSMITS) > 0,
        "loss must actually have occurred"
    );
}

#[test]
fn crash_restart_churn_keeps_the_network_consistent() {
    let (mut env, d, config) = world();
    for round in 0..10 {
        let victim = d.mote_hosts[round % d.mote_hosts.len()];
        env.crash_host(victim);
        env.run_for(SimDuration::from_secs(3));
        env.restart_host(victim);
        env.run_for(SimDuration::from_secs(3));

        // Leases are 30 s and the outage 3 s: every registration survives,
        // and after restart every sensor answers again.
        let mut model = BrowserModel::new();
        model
            .refresh_services(&mut env, d.workstation, d.facade)
            .unwrap();
        assert_eq!(
            model.of_type("ELEMENTARY").len(),
            config.sensor_names.len(),
            "round {round}"
        );
        for name in &config.sensor_names {
            assert!(
                d.facade.get_value(&mut env, d.workstation, name).is_ok(),
                "round {round}: {name} must answer after restart"
            );
        }
    }
}

#[test]
fn discovery_heals_after_partition() {
    let (mut env, d, _config) = world();
    assert_eq!(discover(&mut env, d.workstation, "public").len(), 1);
    env.topo.partition(d.workstation, d.lab);
    assert_eq!(
        discover(&mut env, d.workstation, "public").len(),
        0,
        "no LUS reachable during the partition"
    );
    env.topo.heal(d.workstation, d.lab);
    assert_eq!(discover(&mut env, d.workstation, "public").len(), 1);
}

#[test]
fn composite_read_with_flapping_children() {
    let (mut env, d, _config) = world();
    d.facade
        .create_service(
            &mut env,
            d.workstation,
            "Flappy",
            &["Neem-Sensor", "Jade-Sensor"],
            Some("(a + b)/2"),
        )
        .unwrap();
    let mut successes = 0;
    for round in 0..20 {
        // Flap Neem's mote in and out of the network.
        if round % 2 == 0 {
            env.topo.isolate(d.mote_hosts[0]);
        } else {
            env.topo.reconnect(d.mote_hosts[0]);
        }
        env.run_for(SimDuration::from_millis(300));
        if d.facade
            .get_value(&mut env, d.workstation, "Flappy")
            .is_ok()
        {
            successes += 1;
        }
    }
    // Reads succeed exactly on reconnected rounds — failure is honest, not
    // silent garbage.
    assert!((8..=12).contains(&successes), "{successes}/20");
}

#[test]
fn facade_failure_is_not_a_data_plane_failure() {
    // The façade is an entry point, not a broker: direct federated access
    // keeps working when it dies (the paper's P2P claim in §VIII).
    let (mut env, d, _config) = world();
    env.crash_host(d.lab); // takes the façade AND the LUS down
                           // Requestors that already hold a binding can still reach providers.
    let esp = d.esps[0];
    let direct = sensorcer_suite::exertion::exert_on(
        &mut env,
        d.workstation,
        esp.service,
        sensorcer_suite::exertion::Task::new(
            "direct",
            sensorcer_suite::exertion::Signature::new(
                sensorcer_suite::registry::ids::interfaces::SENSOR_DATA_ACCESSOR,
                "getValue",
            ),
            sensorcer_suite::exertion::Context::new(),
        )
        .into(),
        None,
    )
    .unwrap();
    assert!(direct.status().is_done(), "{:?}", direct.status());
}
