//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, spanning the expression language, the composite algebra, the
//! wire codec and the simulated/local execution modes. Driven by the
//! deterministic harness in `sensorcer_sim::check`.

use sensorcer_suite::sim::check::run_cases;

use sensorcer_suite::core::local::{LocalFederation, LocalNode};
use sensorcer_suite::expr::{Program, Value};
use sensorcer_suite::sensors::probe::ScriptedProbe;
use sensorcer_suite::sensors::units::Unit;
use sensorcer_suite::sim::wire::{WireDecode, WireEncode};

/// The paper's average expression equals arithmetic for any readings.
#[test]
fn paper_average_is_exact() {
    run_cases("paper_average_is_exact", 256, |g| {
        let a = g.f64_in(-100.0, 150.0);
        let b = g.f64_in(-100.0, 150.0);
        let c = g.f64_in(-100.0, 150.0);
        let p = Program::compile("(a + b + c)/3").unwrap();
        let v = p.eval_with([("a", a), ("b", b), ("c", c)]).unwrap();
        let got = v.as_f64().unwrap();
        assert!((got - (a + b + c) / 3.0).abs() < 1e-9);
    });
}

/// Integer expression arithmetic matches i64 semantics for + - *.
#[test]
fn integer_ops_match_rust() {
    run_cases("integer_ops_match_rust", 256, |g| {
        let a = g.i64_in(-10_000, 10_000);
        let b = g.i64_in(-10_000, 10_000);
        for (op, want) in [("+", a + b), ("-", a - b), ("*", a * b)] {
            let p = Program::compile(&format!("a {op} b")).unwrap();
            let v = p.eval_with([("a", a), ("b", b)]).unwrap();
            assert_eq!(v, Value::Int(want));
        }
    });
}

/// Division never panics: it yields a value or DivisionByZero.
#[test]
fn division_total() {
    run_cases("division_total", 256, |g| {
        let a = g.i64_in(-1000, 1000);
        let b = g.i64_in(-1000, 1000);
        let p = Program::compile("a / b").unwrap();
        match p.eval_with([("a", a), ("b", b)]) {
            Ok(v) => assert!(v.as_f64().is_some()),
            Err(e) => assert!(b == 0 && e.to_string().contains("division")),
        }
    });
}

/// A composite with the default (average) aggregation over constant
/// leaves reads the true mean — sequentially and in parallel.
#[test]
fn local_composite_average() {
    run_cases("local_composite_average", 48, |g| {
        let values = g.vec_of(1, 24, |g| g.f64_in(-50.0, 100.0));
        let children: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                LocalNode::sensor(
                    format!("s{i}"),
                    Box::new(ScriptedProbe::new(vec![v], Unit::Celsius)),
                )
            })
            .collect();
        let want = values.iter().sum::<f64>() / values.len() as f64;
        let tree = LocalNode::composite("avg", children, None).unwrap();
        let fed = LocalFederation::new(tree);
        let seq = fed.read_sequential().unwrap();
        assert!((seq - want).abs() < 1e-9, "{} vs {}", seq, want);

        let pool = sensorcer_suite::runtime::ThreadPool::new(4);
        let par = fed.read_parallel(&pool).unwrap();
        assert!((par - want).abs() < 1e-9, "{} vs {}", par, want);
    });
}

/// Wire codec round-trips arbitrary strings and numeric vectors.
#[test]
fn wire_round_trip_strings() {
    run_cases("wire_round_trip_strings", 256, |g| {
        let s = g.ascii_string(64);
        let mut wire = s.to_wire();
        assert_eq!(String::decode(&mut wire).unwrap(), s);
    });
}

#[test]
fn wire_round_trip_f64_vec() {
    run_cases("wire_round_trip_f64_vec", 256, |g| {
        let xs = g.vec_of(0, 32, |g| g.f64_in(-1e12, 1e12));
        let mut wire = xs.to_wire();
        let back = Vec::<f64>::decode(&mut wire).unwrap();
        assert_eq!(back, xs);
    });
}

/// Parse → display → parse fixed point for expression values the CSP
/// info panel shows (the expression source survives installation).
#[test]
fn expression_source_is_preserved() {
    run_cases("expression_source_is_preserved", 64, |g| {
        let n = g.usize_in(2, 8);
        let vars: Vec<String> = (0..n)
            .map(sensorcer_suite::core::csp::variable_for)
            .collect();
        let src = format!("({}) / {n}", vars.join(" + "));
        let p = Program::compile(&src).unwrap();
        assert_eq!(p.source(), src.as_str());
        assert_eq!(p.inputs(), vars);
    });
}

/// Elvis and ternary agree where both apply.
#[test]
fn elvis_matches_ternary() {
    run_cases("elvis_matches_ternary", 256, |g| {
        let x = g.i64_in(-100, 100);
        let fallback = g.i64_in(-100, 100);
        let elvis = Program::compile("x ?: f")
            .unwrap()
            .eval_with([("x", x), ("f", fallback)])
            .unwrap();
        let ternary = Program::compile("x != 0 ? x : f")
            .unwrap()
            .eval_with([("x", x), ("f", fallback)])
            .unwrap();
        assert_eq!(elvis, ternary);
    });
}
