//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, spanning the expression language, the composite algebra, the
//! wire codec and the simulated/local execution modes.

use proptest::prelude::*;

use sensorcer_suite::core::local::{LocalFederation, LocalNode};
use sensorcer_suite::expr::{Program, Value};
use sensorcer_suite::sensors::probe::ScriptedProbe;
use sensorcer_suite::sensors::units::Unit;
use sensorcer_suite::sim::wire::{WireDecode, WireEncode};

proptest! {
    /// The paper's average expression equals arithmetic for any readings.
    #[test]
    fn paper_average_is_exact(a in -100.0f64..150.0, b in -100.0f64..150.0, c in -100.0f64..150.0) {
        let p = Program::compile("(a + b + c)/3").unwrap();
        let v = p.eval_with([("a", a), ("b", b), ("c", c)]).unwrap();
        let got = v.as_f64().unwrap();
        prop_assert!((got - (a + b + c) / 3.0).abs() < 1e-9);
    }

    /// Integer expression arithmetic matches i64 (wrapping) semantics for
    /// + - *.
    #[test]
    fn integer_ops_match_rust(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        for (op, want) in [("+", a + b), ("-", a - b), ("*", a * b)] {
            let p = Program::compile(&format!("a {op} b")).unwrap();
            let v = p.eval_with([("a", a), ("b", b)]).unwrap();
            prop_assert_eq!(v, Value::Int(want));
        }
    }

    /// Division never panics: it yields a value or DivisionByZero.
    #[test]
    fn division_total(a in -1000i64..1000, b in -1000i64..1000) {
        let p = Program::compile("a / b").unwrap();
        match p.eval_with([("a", a), ("b", b)]) {
            Ok(v) => prop_assert!(v.as_f64().is_some()),
            Err(e) => prop_assert!(b == 0 && e.to_string().contains("division")),
        }
    }

    /// A composite with the default (average) aggregation over constant
    /// leaves reads the true mean — sequentially and in parallel.
    #[test]
    fn local_composite_average(values in prop::collection::vec(-50.0f64..100.0, 1..24)) {
        let children: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                LocalNode::sensor(
                    format!("s{i}"),
                    Box::new(ScriptedProbe::new(vec![v], Unit::Celsius)),
                )
            })
            .collect();
        let want = values.iter().sum::<f64>() / values.len() as f64;
        let tree = LocalNode::composite("avg", children, None).unwrap();
        let fed = LocalFederation::new(tree);
        let seq = fed.read_sequential().unwrap();
        prop_assert!((seq - want).abs() < 1e-9, "{} vs {}", seq, want);

        let pool = sensorcer_suite::runtime::ThreadPool::new(4);
        let par = fed.read_parallel(&pool).unwrap();
        prop_assert!((par - want).abs() < 1e-9, "{} vs {}", par, want);
    }

    /// Wire codec round-trips arbitrary strings and numeric vectors.
    #[test]
    fn wire_round_trip_strings(s in ".{0,64}") {
        let mut wire = s.to_wire();
        prop_assert_eq!(String::decode(&mut wire).unwrap(), s);
    }

    #[test]
    fn wire_round_trip_f64_vec(xs in prop::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 0..32)) {
        let mut wire = xs.to_wire();
        let back = Vec::<f64>::decode(&mut wire).unwrap();
        prop_assert_eq!(back, xs);
    }

    /// Parse → display → parse fixed point for expression values the CSP
    /// info panel shows (the expression source survives installation).
    #[test]
    fn expression_source_is_preserved(n in 2usize..8) {
        let vars: Vec<String> = (0..n).map(sensorcer_suite::core::csp::variable_for).collect();
        let src = format!("({}) / {n}", vars.join(" + "));
        let p = Program::compile(&src).unwrap();
        prop_assert_eq!(p.source(), src.as_str());
        prop_assert_eq!(p.inputs(), vars);
    }

    /// Elvis and ternary agree where both apply.
    #[test]
    fn elvis_matches_ternary(x in -100i64..100, fallback in -100i64..100) {
        let elvis = Program::compile("x ?: f").unwrap().eval_with([("x", x), ("f", fallback)]).unwrap();
        let ternary = Program::compile("x != 0 ? x : f").unwrap().eval_with([("x", x), ("f", fallback)]).unwrap();
        prop_assert_eq!(elvis, ternary);
    }
}
