//! F2 integration test: the full Fig. 2 deployment comes up with every
//! service the paper's browser screenshot shows, and stays healthy.

use sensorcer_suite::core::prelude::*;
use sensorcer_suite::sim::prelude::*;

#[test]
fn fig2_world_matches_the_papers_browser() {
    let config = DeploymentConfig::fig2();
    let mut env = Env::with_seed(config.seed);
    let d = standard_deployment(&mut env, &config);

    let mut model = BrowserModel::new();
    model
        .refresh_services(&mut env, d.workstation, d.facade)
        .unwrap();

    // The notable services of Fig. 2: Jini infrastructure, Rio
    // provisioning, four elementary sensors, the façade.
    for expected in [
        "Lookup Service",
        "Transaction Manager",
        "Lease Renewal Service",
        "Event Mailbox",
        "Monitor",
        "Cybernode-0",
        "Cybernode-1",
        "Neem-Sensor",
        "Jade-Sensor",
        "Coral-Sensor",
        "Diamond-Sensor",
        "SenSORCER Facade",
    ] {
        assert!(
            model.services.iter().any(|(n, _)| n == expected),
            "missing service {expected}; have {:?}",
            model.services
        );
    }

    // The info panel carries the fields the screenshot shows.
    model
        .select_service(&mut env, d.workstation, d.facade, "Neem-Sensor")
        .unwrap();
    let info = model.info.clone().unwrap();
    assert_eq!(info.service_type, "ELEMENTARY");
    assert!(!info.uuid.is_empty(), "Service ID is displayed in Fig. 2");

    // Every sensor reports a plausible lab temperature.
    model.refresh_values(&mut env, d.workstation, d.facade);
    assert_eq!(model.values.len(), 4);
    for (name, reading) in &model.values {
        let r = reading.as_ref().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!((15.0..30.0).contains(&r.value), "{name}: {}", r.value);
        assert_eq!(r.unit, "°C");
    }
}

#[test]
fn fig2_world_is_deterministic_across_runs() {
    let build = || {
        let config = DeploymentConfig::fig2();
        let mut env = Env::with_seed(config.seed);
        let d = standard_deployment(&mut env, &config);
        let mut out = Vec::new();
        for name in &config.sensor_names {
            out.push(
                d.facade
                    .get_value(&mut env, d.workstation, name)
                    .unwrap()
                    .value,
            );
        }
        (out, env.now())
    };
    let (a, ta) = build();
    let (b, tb) = build();
    assert_eq!(a, b, "same seed, same readings");
    assert_eq!(ta, tb, "same seed, same virtual clock");
}

#[test]
fn fig2_world_stays_healthy_for_a_virtual_day() {
    let config = DeploymentConfig::fig2();
    let mut env = Env::with_seed(config.seed);
    let d = standard_deployment(&mut env, &config);
    for hour in 0..24 {
        env.run_for(SimDuration::from_secs(3600));
        let r = d.facade.get_value(&mut env, d.workstation, "Neem-Sensor");
        assert!(r.is_ok(), "hour {hour}: {r:?}");
    }
    // Lease renewals did real work over the day.
    env.with_service(
        d.renewal.service,
        |_e, s: &mut sensorcer_suite::registry::renewal::LeaseRenewalService| {
            assert!(s.renewals_ok() > 1000, "renewals: {}", s.renewals_ok());
        },
    )
    .unwrap();
}
