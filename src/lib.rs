//! # sensorcer-suite
//!
//! Facade crate re-exporting the complete SenSORCER reproduction — a
//! from-scratch Rust implementation of *"SenSORCER: A Framework for
//! Managing Sensor-Federated Networks"* (Bhosale & Sobolewski, ICPP
//! Workshops 2009), including every substrate the paper builds on:
//!
//! * [`sim`] — deterministic discrete-event network simulation,
//! * [`expr`] — the runtime expression language (Groovy substitute),
//! * [`sensors`] — probes, TEDS, calibration, faults, batteries,
//! * [`registry`] — discovery, lookup, leases, events, transactions (Jini),
//! * [`provision`] — cybernodes, opstrings, QoS, failover (Rio),
//! * [`exertion`] — contexts, tasks/jobs, FMI, jobber/spacer (SORCER),
//! * [`runtime`] — the real-thread work-stealing pool,
//! * [`core`] — ESP, CSP, façade, browser: the paper's contribution,
//! * [`baselines`] — the related-work comparators.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record. The runnable
//! examples (`cargo run --example quickstart`) start from here:
//!
//! ```
//! use sensorcer_suite::core::prelude::*;
//! use sensorcer_suite::sim::prelude::*;
//!
//! let config = DeploymentConfig::fig2();
//! let mut env = Env::with_seed(config.seed);
//! let d = standard_deployment(&mut env, &config);
//! let r = d.facade.get_value(&mut env, d.workstation, "Neem-Sensor").unwrap();
//! assert!(r.value.is_finite());
//! ```

pub use sensorcer_baselines as baselines;
pub use sensorcer_core as core;
pub use sensorcer_exertion as exertion;
pub use sensorcer_expr as expr;
pub use sensorcer_provision as provision;
pub use sensorcer_registry as registry;
pub use sensorcer_runtime as runtime;
pub use sensorcer_sensors as sensors;
pub use sensorcer_sim as sim;
