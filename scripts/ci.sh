#!/usr/bin/env sh
# CI entry point.
#
#   scripts/ci.sh           tier-1: release build + full test suite
#   scripts/ci.sh --smoke   tier-1, then the smoke bench pass writing
#                           the next free BENCH_<n>.json at the repo
#                           root (BENCH_1.json, the committed baseline,
#                           is never clobbered)
#   scripts/ci.sh --soak    tier-1, then the seeded chaos soak writing
#                           CHAOS_1.json at the repo root (bounded,
#                           deterministic; exits nonzero on any
#                           degraded-read invariant violation)
#   scripts/ci.sh --trace   tier-1, then the traced soak writing
#                           TRACE_1.json at the repo root (exits nonzero
#                           on orphan/unclosed/duplicate spans or any
#                           unexplained degraded read), plus a shape
#                           check on the exported file
#   scripts/ci.sh --lint    tier-1, then the static-analysis gate:
#                           cargo clippy -D warnings across the whole
#                           workspace, the in-repo `harness lint` banned
#                           pattern scan, `harness verify` (schedule
#                           exploration + mutation check, writes
#                           VERIFY_1.json), and cargo fmt --check when
#                           rustfmt is installed
#   scripts/ci.sh --obs     tier-1, then the federation health engine:
#                           `harness obs` (SLO burn-rate alerting over
#                           the chaos soak; the storm must page with
#                           trace exemplars, the clean run must not)
#                           writing OBS_1.json plus a shape check, a
#                           bench-compare self-check, and a smoke pass
#                           diffed against the committed BENCH_1.json
#                           baseline. Noise threshold for the baseline
#                           diff: 4.0 (only a >5x blowup fails) because
#                           the committed numbers come from different
#                           hardware; same-machine diffs use the tight
#                           0.35 default.
#   scripts/ci.sh --storm   tier-1, then the tenant storm writing
#                           STORM_1.json at the repo root: a bulk-tenant
#                           burst against the admission-controlled façade
#                           (typed sheds only, critical SLO intact, full
#                           circuit-breaker lifecycle, autoscaler up and
#                           back down without flapping), plus a shape
#                           check on the exported file
#   scripts/ci.sh --perfetto  tier-1, then the Perfetto export leg:
#                           `harness perfetto` runs the tenant storm with
#                           the telemetry sampler attached and writes the
#                           binary trace (federation.perfetto-trace, not
#                           committed) plus the PERFETTO_1.json summary;
#                           checks the protobuf magic byte, asserts the
#                           in-repo decoder validated the stream, re-runs
#                           the export on the same seed and requires
#                           bit-identical bytes, then runs the smoke
#                           bench with the 4.0 cross-hardware gate so the
#                           sampler can't quietly slow the hot paths
#   scripts/ci.sh --perfetto-scale  tier-1, then the streaming export
#                           leg on a reduced world (10⁴ motes — the full
#                           10⁵ federation is `harness perfetto-scale`
#                           with no SENSORCER_PERFETTO_MOTES override):
#                           the sharded world is streamed to disk
#                           incrementally, self-validated by the in-repo
#                           decoder, held under the documented encoder
#                           memory ceiling, and checked bit-identical
#                           across two runs on the same seed; the
#                           profile.*/stream.* metric names ride the
#                           `harness lint` audit
#   scripts/ci.sh --scale   tier-1, then the B9 scaling curve on a
#                           reduced mote sweep (10³ only — the full
#                           10³/10⁴/10⁵ curve is `harness scale` with no
#                           SENSORCER_SCALE_MOTES override): shape-checks
#                           the JSON rows, then diffs against the
#                           committed BENCH_2.json baseline at the wide
#                           4.0 cross-hardware threshold (rows only in
#                           the baseline's larger sweep never fail)
#   scripts/ci.sh --race    tier-1, then the shard-race leg: `harness
#                           race` explores the clean shard worlds (zero
#                           races on every interleaving), must catch the
#                           racy-map and hidden-race mutations, and
#                           measures detector overhead on the 16-shard
#                           churn; shape-checks RACE_1.json (clean
#                           scenarios report "races": 0, the mutations
#                           report detected_exhaustive, and the overall
#                           verdict passes)
#   scripts/ci.sh --tsan    tier-1, then ThreadSanitizer over the
#                           sensorcer-runtime pool tests when a nightly
#                           toolchain with rust-src is installed
#                           (-Zsanitizer=thread needs -Zbuild-std);
#                           degrades to a skipped-with-notice otherwise,
#                           so the deterministic FastTrack-lite gate in
#                           --race stays the portable race check
#
# Everything runs offline against the vendored workspace; no network,
# no external tools beyond cargo.
set -eu

cd "$(dirname "$0")/.."

smoke=0
soak=0
trace=0
lint=0
obs=0
scale=0
storm=0
perfetto=0
perfetto_scale=0
race=0
tsan=0
for arg in "$@"; do
    case "$arg" in
        --smoke) smoke=1 ;;
        --soak) soak=1 ;;
        --trace) trace=1 ;;
        --lint) lint=1 ;;
        --obs) obs=1 ;;
        --scale) scale=1 ;;
        --storm) storm=1 ;;
        --perfetto) perfetto=1 ;;
        --perfetto-scale) perfetto_scale=1 ;;
        --race) race=1 ;;
        --tsan) tsan=1 ;;
        *) echo "usage: scripts/ci.sh [--smoke] [--soak] [--trace] [--lint] [--obs] [--scale] [--storm] [--perfetto] [--perfetto-scale] [--race] [--tsan]" >&2; exit 2 ;;
    esac
done

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q --workspace

if [ "$smoke" -eq 1 ]; then
    echo "== smoke bench (writes BENCH_1.json) =="
    cargo run --release -p sensorcer-bench --bin harness -- smoke
fi

if [ "$soak" -eq 1 ]; then
    echo "== chaos soak (writes CHAOS_1.json) =="
    cargo run --release -p sensorcer-bench --bin harness -- chaos
fi

if [ "$trace" -eq 1 ]; then
    echo "== trace harness (writes TRACE_1.json) =="
    cargo run --release -p sensorcer-bench --bin harness -- trace
    # Shape check: the export is a span array with ids and names; an
    # empty or truncated file must fail even if the harness passed.
    for needle in '"schema_version"' '"spans"' '"id"' '"name"' '"outcome"'; do
        grep -q "$needle" TRACE_1.json || {
            echo "TRACE_1.json missing $needle" >&2
            exit 1
        }
    done
    [ "$(wc -c < TRACE_1.json)" -gt 1000 ] || {
        echo "TRACE_1.json suspiciously small" >&2
        exit 1
    }
fi

if [ "$lint" -eq 1 ]; then
    echo "== clippy (deny warnings) =="
    cargo clippy --workspace --all-targets -q -- \
        -D warnings -D clippy::dbg_macro -D clippy::todo -D clippy::unimplemented

    echo "== source lints (harness lint) =="
    cargo run --release -p sensorcer-bench --bin harness -- lint

    echo "== schedule exploration (writes VERIFY_1.json) =="
    cargo run --release -p sensorcer-bench --bin harness -- verify
    # Shape check: the gate must have recorded real coverage.
    for needle in '"distinct_schedules"' '"mutation"' '"passed": true'; do
        grep -q "$needle" VERIFY_1.json || {
            echo "VERIFY_1.json missing $needle" >&2
            exit 1
        }
    done

    if command -v rustfmt >/dev/null 2>&1; then
        echo "== rustfmt --check =="
        cargo fmt --check
    else
        echo "== rustfmt not installed; skipping format check =="
    fi
fi

if [ "$obs" -eq 1 ]; then
    echo "== health engine (writes OBS_1.json) =="
    cargo run --release -p sensorcer-bench --bin harness -- obs
    # Shape check: the export must carry the SLO verdicts, the alert
    # history with exemplars, and a passing self-assessment.
    for needle in '"schema_version"' '"storm_slos"' '"clean_slos"' '"alerts"' '"exemplars"' '"anomalies"' '"passed": true'; do
        grep -q "$needle" OBS_1.json || {
            echo "OBS_1.json missing $needle" >&2
            exit 1
        }
    done

    echo "== bench-compare self-check (must pass) =="
    cargo run --release -p sensorcer-bench --bin harness -- \
        bench-compare BENCH_1.json BENCH_1.json

    echo "== perf gate vs committed baseline (noise threshold 4.0) =="
    # The committed BENCH_1.json was measured on different hardware, so
    # only an order-of-magnitude blowup (>5x) fails here; same-machine
    # comparisons should use the tight 0.35 default instead.
    cargo run --release -p sensorcer-bench --bin harness -- smoke BENCH_ci.json
    cargo run --release -p sensorcer-bench --bin harness -- \
        bench-compare BENCH_1.json BENCH_ci.json 4.0
    rm -f BENCH_ci.json
fi

if [ "$storm" -eq 1 ]; then
    echo "== tenant storm (writes STORM_1.json) =="
    cargo run --release -p sensorcer-bench --bin harness -- storm
    # Shape check: the export must carry the per-class admission ledger,
    # the breaker lifecycle, the scaling timeline and a passing verdict.
    for needle in '"schema_version"' '"admission"' '"breaker"' '"scaling"' '"bulk"' '"critical"' '"passed": true'; do
        grep -q "$needle" STORM_1.json || {
            echo "STORM_1.json missing $needle" >&2
            exit 1
        }
    done
fi

if [ "$perfetto" -eq 1 ]; then
    echo "== perfetto export (writes federation.perfetto-trace + PERFETTO_1.json) =="
    cargo run --release -p sensorcer-bench --bin harness -- perfetto
    # The stream must open with the Trace.packet tag (field 1,
    # length-delimited = 0x0a) or ui.perfetto.dev will reject it.
    [ "$(head -c 1 federation.perfetto-trace | od -An -tx1 | tr -d ' \n')" = "0a" ] || {
        echo "federation.perfetto-trace: bad protobuf magic byte" >&2
        exit 1
    }
    # Shape check: the summary must carry the decoder's verdict and the
    # determinism fingerprint.
    for needle in '"schema_version"' '"fnv64"' '"tracks"' '"flows"' '"sampler_ticks"' '"passed": true'; do
        grep -q "$needle" PERFETTO_1.json || {
            echo "PERFETTO_1.json missing $needle" >&2
            exit 1
        }
    done

    echo "== perfetto determinism: same seed, bit-identical bytes =="
    # 6169865 = 0x5E2509, the harness default seed (the seed positional
    # is required to reach the output-path positional).
    cargo run --release -p sensorcer-bench --bin harness -- \
        perfetto 6169865 PERFETTO_ci.perfetto-trace
    cmp federation.perfetto-trace PERFETTO_ci.perfetto-trace || {
        echo "perfetto export is not bit-identical across runs on the same seed" >&2
        exit 1
    }
    rm -f PERFETTO_ci.perfetto-trace PERFETTO_ci.perfetto-trace.summary.json

    echo "== sampler overhead gate vs committed baseline (noise threshold 4.0) =="
    # Same cross-hardware threshold rationale as the --obs gate: the
    # smoke pass covers the B2/B5/B6 hot paths, so a sampler or exporter
    # regression that leaks into the read path fails here.
    cargo run --release -p sensorcer-bench --bin harness -- smoke BENCH_perfetto_ci.json
    cargo run --release -p sensorcer-bench --bin harness -- \
        bench-compare BENCH_1.json BENCH_perfetto_ci.json 4.0
    rm -f BENCH_perfetto_ci.json
fi

if [ "$perfetto_scale" -eq 1 ]; then
    echo "== streaming perfetto export (reduced world, 10^4 motes) =="
    # 6169865 = 0x5E2509, the harness default seed (the seed positional
    # is required to reach the output-path positional). The run
    # self-validates: decoder verdict, encoder-memory ceiling and the
    # profiler's self-time/window-time identity are all folded into the
    # summary's "passed" field.
    SENSORCER_PERFETTO_MOTES=10000 \
        cargo run --release -p sensorcer-bench --bin harness -- \
        perfetto-scale 6169865 PERFETTO_scale_ci.perfetto-trace
    [ "$(head -c 1 PERFETTO_scale_ci.perfetto-trace | od -An -tx1 | tr -d ' \n')" = "0a" ] || {
        echo "PERFETTO_scale_ci.perfetto-trace: bad protobuf magic byte" >&2
        exit 1
    }
    for needle in '"schema_version"' '"self_window_ratio_ppm"' '"fnv64"' \
        '"peak_buffered_bytes"' '"lane_state_peak"' \
        '"encoder_ceiling_bytes": 67108864' '"top_ops"' '"passed": true'; do
        grep -q "$needle" PERFETTO_scale_ci.perfetto-trace.summary.json || {
            echo "PERFETTO_scale_ci summary missing $needle" >&2
            exit 1
        }
    done

    echo "== streaming determinism: same seed, bit-identical bytes =="
    SENSORCER_PERFETTO_MOTES=10000 \
        cargo run --release -p sensorcer-bench --bin harness -- \
        perfetto-scale 6169865 PERFETTO_scale_ci2.perfetto-trace
    cmp PERFETTO_scale_ci.perfetto-trace PERFETTO_scale_ci2.perfetto-trace || {
        echo "streaming export is not bit-identical across runs on the same seed" >&2
        exit 1
    }
    rm -f PERFETTO_scale_ci.perfetto-trace PERFETTO_scale_ci.perfetto-trace.summary.json \
        PERFETTO_scale_ci2.perfetto-trace PERFETTO_scale_ci2.perfetto-trace.summary.json

    # The committed full-scale summary must keep its shape (field names
    # only, so regenerating the artifact on other hardware stays green).
    for needle in '"schema_version"' '"motes": 100000' '"self_window_ratio_ppm"' \
        '"stream"' '"top_ops"' '"passed": true'; do
        grep -q "$needle" PERFETTO_2.json || {
            echo "PERFETTO_2.json missing $needle" >&2
            exit 1
        }
    done

    echo "== profile/stream metric-name audit (harness lint) =="
    cargo run --release -p sensorcer-bench --bin harness -- lint
fi

if [ "$scale" -eq 1 ]; then
    echo "== B9 scaling curve (reduced sweep, 10^3 motes) =="
    # 6169865 = 0x5E2509, the harness default seed (the seed positional
    # is required to reach the output-path positional).
    SENSORCER_SCALE_MOTES=1000 \
        cargo run --release -p sensorcer-bench --bin harness -- \
        scale 6169865 BENCH_scale_ci.json
    # Shape check: every benchmark family must have produced a row.
    for needle in '"scale_b9"' 'flat_clone_scan/1000' 'flat_uuid_arc/1000' \
        'hier_universal_query/1000' 'hier_rare_query/1000' \
        'engine_timer_churn/1000' 'engine_timer_churn_sharded/1000' '"median_ns"'; do
        grep -q "$needle" BENCH_scale_ci.json || {
            echo "BENCH_scale_ci.json missing $needle" >&2
            exit 1
        }
    done

    echo "== scale perf gate vs committed baseline (noise threshold 4.0) =="
    # Same cross-hardware threshold rationale as the --obs gate; the
    # baseline's 10^4/10^5 rows have no counterpart in the reduced sweep
    # and are reported as only-old, never a failure.
    cargo run --release -p sensorcer-bench --bin harness -- \
        bench-compare BENCH_2.json BENCH_scale_ci.json 4.0
    rm -f BENCH_scale_ci.json
fi

if [ "$race" -eq 1 ]; then
    echo "== shard-race detection (writes RACE_1.json) =="
    cargo run --release -p sensorcer-bench --bin harness -- race
    # Shape check: the export must carry the clean-scenario race counts
    # (zero), the mutation verdicts and a passing self-assessment.
    for needle in '"schema_version"' '"scenarios"' '"races": 0' \
        '"mutations"' '"detected_exhaustive": true' \
        '"churn"' '"overhead_ratio"' '"passed": true'; do
        grep -q "$needle" RACE_1.json || {
            echo "RACE_1.json missing $needle" >&2
            exit 1
        }
    done
    # The clean scenarios and the churn must report zero races; any
    # nonzero count in the harness's own verdict already failed above,
    # but a schema drift that drops the field entirely must fail too.
    if grep -q '"races": [1-9]' RACE_1.json; then
        echo "RACE_1.json reports races outside the mutation legs" >&2
        exit 1
    fi
    echo "== race metric-name audit (race.* under harness lint) =="
    cargo run --release -p sensorcer-bench --bin harness -- lint
fi

if [ "$tsan" -eq 1 ]; then
    # ThreadSanitizer needs nightly (-Zsanitizer) plus rust-src
    # (-Zbuild-std rebuilds std with the sanitizer). Offline containers
    # without the nightly toolchain skip with a notice rather than fail:
    # the deterministic FastTrack-lite gate (--race) is the portable
    # race check; TSan is the extra belt for the real thread pool.
    if cargo +nightly --version >/dev/null 2>&1 \
        && rustup component list --installed --toolchain nightly 2>/dev/null | grep -q '^rust-src'; then
        echo "== thread sanitizer: sensorcer-runtime pool tests =="
        host="$(rustc -vV | sed -n 's/^host: //p')"
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -Zbuild-std -q \
            -p sensorcer-runtime --target "$host"
    else
        echo "== tsan skipped: nightly toolchain with rust-src not installed =="
        echo "   (rustup toolchain install nightly && rustup component add rust-src --toolchain nightly)"
    fi
fi

echo "ci: ok"
