#!/usr/bin/env sh
# CI entry point.
#
#   scripts/ci.sh           tier-1: release build + full test suite
#   scripts/ci.sh --smoke   tier-1, then the smoke bench pass writing
#                           BENCH_1.json at the repo root
#   scripts/ci.sh --soak    tier-1, then the seeded chaos soak writing
#                           CHAOS_1.json at the repo root (bounded,
#                           deterministic; exits nonzero on any
#                           degraded-read invariant violation)
#   scripts/ci.sh --trace   tier-1, then the traced soak writing
#                           TRACE_1.json at the repo root (exits nonzero
#                           on orphan/unclosed/duplicate spans or any
#                           unexplained degraded read), plus a shape
#                           check on the exported file
#   scripts/ci.sh --lint    tier-1, then the static-analysis gate:
#                           cargo clippy -D warnings across the whole
#                           workspace, the in-repo `harness lint` banned
#                           pattern scan, `harness verify` (schedule
#                           exploration + mutation check, writes
#                           VERIFY_1.json), and cargo fmt --check when
#                           rustfmt is installed
#
# Everything runs offline against the vendored workspace; no network,
# no external tools beyond cargo.
set -eu

cd "$(dirname "$0")/.."

smoke=0
soak=0
trace=0
lint=0
for arg in "$@"; do
    case "$arg" in
        --smoke) smoke=1 ;;
        --soak) soak=1 ;;
        --trace) trace=1 ;;
        --lint) lint=1 ;;
        *) echo "usage: scripts/ci.sh [--smoke] [--soak] [--trace] [--lint]" >&2; exit 2 ;;
    esac
done

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q --workspace

if [ "$smoke" -eq 1 ]; then
    echo "== smoke bench (writes BENCH_1.json) =="
    cargo run --release -p sensorcer-bench --bin harness -- smoke
fi

if [ "$soak" -eq 1 ]; then
    echo "== chaos soak (writes CHAOS_1.json) =="
    cargo run --release -p sensorcer-bench --bin harness -- chaos
fi

if [ "$trace" -eq 1 ]; then
    echo "== trace harness (writes TRACE_1.json) =="
    cargo run --release -p sensorcer-bench --bin harness -- trace
    # Shape check: the export is a span array with ids and names; an
    # empty or truncated file must fail even if the harness passed.
    for needle in '"spans"' '"id"' '"name"' '"outcome"'; do
        grep -q "$needle" TRACE_1.json || {
            echo "TRACE_1.json missing $needle" >&2
            exit 1
        }
    done
    [ "$(wc -c < TRACE_1.json)" -gt 1000 ] || {
        echo "TRACE_1.json suspiciously small" >&2
        exit 1
    }
fi

if [ "$lint" -eq 1 ]; then
    echo "== clippy (deny warnings) =="
    cargo clippy --workspace --all-targets -q -- \
        -D warnings -D clippy::dbg_macro -D clippy::todo -D clippy::unimplemented

    echo "== source lints (harness lint) =="
    cargo run --release -p sensorcer-bench --bin harness -- lint

    echo "== schedule exploration (writes VERIFY_1.json) =="
    cargo run --release -p sensorcer-bench --bin harness -- verify
    # Shape check: the gate must have recorded real coverage.
    for needle in '"distinct_schedules"' '"mutation"' '"passed": true'; do
        grep -q "$needle" VERIFY_1.json || {
            echo "VERIFY_1.json missing $needle" >&2
            exit 1
        }
    done

    if command -v rustfmt >/dev/null 2>&1; then
        echo "== rustfmt --check =="
        cargo fmt --check
    else
        echo "== rustfmt not installed; skipping format check =="
    fi
fi

echo "ci: ok"
