//! The paper's stated next step (§VIII): "we are planning for large-scale
//! air vehicles distributed applications" (the work was funded by the Air
//! Force Research Lab's Air Vehicles Directorate).
//!
//! A fleet of UAVs joins the federation in flight: each vehicle carries
//! redundant airspeed sensors (an equivalence group — if the primary pitot
//! probe ices up, "the request can be passed on to the equivalent
//! available service provider", §V.A) plus an altitude sensor; a
//! per-vehicle composite computes an energy-state metric; a fleet
//! composite tracks the formation. Vehicles drop out of radio contact and
//! return; the fleet view degrades and recovers accordingly.
//!
//! ```text
//! cargo run --example air_vehicle_fleet
//! ```

use sensorcer_core::prelude::*;
use sensorcer_exertion::ServicerBox;
use sensorcer_registry::lease::LeasePolicy;
use sensorcer_registry::lus::LookupService;
use sensorcer_sensors::prelude::*;
use sensorcer_sim::prelude::*;

fn airspeed_probe(env: &mut Env, serial: &str) -> Box<dyn SensorProbe> {
    // Cruise around 38 m/s with gust wander.
    Box::new(
        SimulatedProbe::new(
            Teds {
                manufacturer: "Aero".into(),
                model: "Pitot-XL".into(),
                serial: serial.into(),
                unit: Unit::Dimensionless,
                range_min: 0.0,
                range_max: 120.0,
                resolution: 0.1,
                min_sample_interval_ns: 10_000_000,
                technology: "pitot".into(),
            },
            Signal::RandomWalk {
                start: 38.0,
                step: 0.4,
                min: 25.0,
                max: 55.0,
            },
            env.fork_rng(),
        )
        .with_noise(0.3),
    )
}

fn altitude_probe(env: &mut Env, serial: &str) -> Box<dyn SensorProbe> {
    Box::new(
        SimulatedProbe::new(
            Teds {
                manufacturer: "Aero".into(),
                model: "BaroAlt".into(),
                serial: serial.into(),
                unit: Unit::Dimensionless,
                range_min: 0.0,
                range_max: 5000.0,
                resolution: 1.0,
                min_sample_interval_ns: 10_000_000,
                technology: "baro".into(),
            },
            Signal::RandomWalk {
                start: 1200.0,
                step: 5.0,
                min: 900.0,
                max: 1500.0,
            },
            env.fork_rng(),
        )
        .with_noise(2.0),
    )
}

fn main() {
    let mut env = Env::with_seed(0xA1F2009);
    let ground = env.add_host("ground-station", HostKind::Server);
    let ops = env.add_host("ops-console", HostKind::Workstation);
    env.topo.join_group(ops, "fleet");

    let lus = LookupService::deploy(
        &mut env,
        ground,
        "Fleet Lookup Service",
        "fleet",
        LeasePolicy {
            max_duration: SimDuration::from_secs(1_000_000),
            default_duration: SimDuration::from_secs(1_000_000),
        },
        SimDuration::from_millis(500),
    );
    let renewal = sensorcer_registry::renewal::LeaseRenewalService::deploy(
        &mut env,
        ground,
        "Lease Renewal Service",
    );
    let accessor = sensorcer_exertion::ServiceAccessor::new(vec![lus]);

    // Three UAVs, each its own airborne host with redundant pitot probes.
    let fleet = ["Raven", "Osprey", "Kestrel"];
    let mut vehicle_hosts = Vec::new();
    for uav in fleet {
        let airframe = env.add_host(format!("{uav}-airframe"), HostKind::SensorMote);
        vehicle_hosts.push(airframe);
        let group = format!("{uav}-airspeed");
        for pos in ["Primary", "Backup"] {
            let probe = airspeed_probe(&mut env, &format!("{uav}-{pos}"));
            deploy_esp(
                &mut env,
                EspConfig {
                    renewal: Some(renewal),
                    lease: SimDuration::from_secs(20),
                    equivalence_group: Some(group.clone()),
                    ..EspConfig::new(airframe, format!("{uav}-Pitot-{pos}"), probe, lus)
                },
            );
        }
        let alt = altitude_probe(&mut env, uav);
        deploy_esp(
            &mut env,
            EspConfig {
                renewal: Some(renewal),
                lease: SimDuration::from_secs(20),
                ..EspConfig::new(airframe, format!("{uav}-Altitude"), alt, lus)
            },
        );

        // Per-vehicle energy-state composite: a = airspeed, b = altitude.
        // Specific energy ~ h + v²/(2g), scaled for display.
        let handle = deploy_csp(
            &mut env,
            CspConfig {
                renewal: Some(renewal),
                ..CspConfig::new(ground, format!("{uav}-Energy"), lus)
            },
        )
        .expect("vehicle composite");
        env.with_service(handle.service, |_e, sb: &mut ServicerBox| {
            let csp = sb.downcast_mut::<CompositeSensorProvider>().unwrap();
            // Primary pitot pinned, with the redundant group as fallback.
            csp.add_service_grouped(&format!("{uav}-Pitot-Primary"), Some(group.clone()))
                .unwrap();
            csp.add_service(&format!("{uav}-Altitude")).unwrap();
            csp.set_expression("b + a*a / 19.62").unwrap();
        })
        .expect("composite configured");
    }

    // Fleet-level composite over the three vehicles.
    let mut fleet_cfg = CspConfig::new(ground, "Fleet-Energy", lus);
    fleet_cfg.renewal = Some(renewal);
    fleet_cfg.children = fleet.iter().map(|u| format!("{u}-Energy")).collect();
    fleet_cfg.expression = Some("(a + b + c)/3".into());
    deploy_csp(&mut env, fleet_cfg).expect("fleet composite");

    println!("minute  Raven    Osprey   Kestrel  fleet-mean  event");
    for minute in 0..12 {
        env.run_for(SimDuration::from_secs(60));
        let mut event = String::new();

        // Minute 3: Raven's primary pitot ices up — swap in a dead probe;
        // the equivalence group must take over transparently.
        if minute == 3 {
            let svc = env.find_service("Raven-Pitot-Primary").unwrap();
            env.with_service(svc, |_e, sb: &mut ServicerBox| {
                if let Some(esp) = sb.downcast_mut::<ElementarySensorProvider>() {
                    esp.swap_probe(Box::new(
                        SimulatedProbe::new(
                            Teds::sunspot_temperature("iced"),
                            Signal::Constant(0.0),
                            SimRng::new(0),
                        )
                        .with_battery(Battery::new(1.0, 100.0, 0.0)), // dead
                    ));
                }
            })
            .unwrap();
            event = "Raven primary pitot iced; failing over to backup".into();
        }

        // Minutes 6-8: Osprey banks behind a ridge — radio blackout.
        if minute == 6 {
            env.topo.isolate(vehicle_hosts[1]);
            event = "Osprey out of radio contact".into();
        }
        if minute == 8 {
            env.topo.reconnect(vehicle_hosts[1]);
            event = "Osprey back in contact".into();
        }

        let read = |env: &mut Env, name: &str| -> String {
            match client::get_value(env, ops, &accessor, name) {
                Ok(r) => format!("{:7.1}", r.value),
                Err(_) => "   ----".into(),
            }
        };
        let raven = read(&mut env, "Raven-Energy");
        let osprey = read(&mut env, "Osprey-Energy");
        let kestrel = read(&mut env, "Kestrel-Energy");
        let fleet_mean = read(&mut env, "Fleet-Energy");
        println!("  {minute:>2}   {raven}  {osprey}  {kestrel}   {fleet_mean}    {event}");
    }

    println!(
        "\nfleet ops complete: {} federated calls, {} of virtual flight time",
        env.metrics.get(sensorcer_sim::metrics::keys::CALLS_OK),
        env.now()
    );
}
