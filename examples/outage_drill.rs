//! Outage drill: the paper's §VII resilience claims, exercised live.
//!
//! "The system handles very well several types of network and computer
//! outages." This drill provisions a composite onto a cybernode, then:
//!
//! 1. crashes the cybernode — the provision monitor detects the missing
//!    heartbeat and re-provisions onto the surviving node;
//! 2. partitions a sensor mote — reads degrade loudly, then recover when
//!    the partition heals;
//! 3. kills a mote permanently — the lease lapses and the service
//!    disappears from the browser instead of lingering as a ghost.
//!
//! ```text
//! cargo run --example outage_drill
//! ```

use sensorcer_core::prelude::*;
use sensorcer_sim::prelude::*;

fn read(env: &mut Env, d: &Deployment, name: &str) -> String {
    match d.facade.get_value(env, d.workstation, name) {
        Ok(r) => format!(
            "{:.2}{}{}",
            r.value,
            r.unit,
            if r.good { "" } else { " (suspect)" }
        ),
        Err(e) => format!("<unavailable: {e}>"),
    }
}

fn main() {
    let config = DeploymentConfig::fig2();
    let mut env = Env::with_seed(config.seed);
    let d = standard_deployment(&mut env, &config);

    // A provisioned composite over two sensors.
    d.facade
        .create_service(
            &mut env,
            d.workstation,
            "HA-Composite",
            &["Neem-Sensor", "Jade-Sensor"],
            Some("(a + b)/2"),
        )
        .expect("provisioned");
    println!(
        "t={} provisioned HA-Composite: {}",
        env.now(),
        read(&mut env, &d, "HA-Composite")
    );

    // --- Drill 1: cybernode crash → Rio failover -------------------------
    let hosting = env
        .find_service("HA-Composite")
        .and_then(|s| env.service_host(s))
        .expect("composite placed");
    let node_name = env
        .topo
        .host(hosting)
        .map(|h| h.name.clone())
        .unwrap_or_default();
    println!("\n[drill 1] crashing {node_name} (hosts HA-Composite)");
    env.crash_host(hosting);
    let crash_at = env.now();
    println!(
        "t={} immediately after crash: {}",
        env.now(),
        read(&mut env, &d, "HA-Composite")
    );
    // Recovery = heartbeat detection + re-instantiation + the stale LUS
    // registration lapsing (its renewal stops once the host is down).
    loop {
        env.run_for(SimDuration::from_secs(2));
        if d.facade
            .get_value(&mut env, d.workstation, "HA-Composite")
            .is_ok()
        {
            break;
        }
        assert!(
            env.now() - crash_at < SimDuration::from_secs(120),
            "failover too slow"
        );
    }
    println!(
        "t={} recovered after {}: {}",
        env.now(),
        env.now() - crash_at,
        read(&mut env, &d, "HA-Composite")
    );
    let instances = env
        .with_service(
            d.monitor.service,
            |_e, m: &mut sensorcer_provision::monitor::ProvisionMonitor| {
                m.instances("sensor-HA-Composite")
            },
        )
        .expect("monitor up");
    println!(
        "HA-Composite moved {} -> {}",
        node_name,
        env.topo
            .host(instances[0].node.host)
            .map(|h| h.name.clone())
            .unwrap_or_default()
    );

    // --- Drill 2: network partition to a mote ----------------------------
    let neem_mote = d.mote_hosts[0];
    println!("\n[drill 2] partitioning Neem-Sensor's mote from the network");
    env.topo.isolate(neem_mote);
    println!(
        "t={} during partition: Neem = {}",
        env.now(),
        read(&mut env, &d, "Neem-Sensor")
    );
    println!(
        "t={} during partition: HA-Composite = {}",
        env.now(),
        read(&mut env, &d, "HA-Composite")
    );
    env.topo.reconnect(neem_mote);
    println!(
        "t={} after heal:       Neem = {}",
        env.now(),
        read(&mut env, &d, "Neem-Sensor")
    );

    // --- Drill 3: permanent mote death → lease cleanup --------------------
    println!("\n[drill 3] Coral-Sensor's mote dies permanently");
    env.crash_host(d.mote_hosts[2]);
    let mut model = BrowserModel::new();
    model
        .refresh_services(&mut env, d.workstation, d.facade)
        .expect("list");
    let before = model.of_type("ELEMENTARY").len();
    env.run_for(SimDuration::from_secs(90)); // > 2 lease periods
    model
        .refresh_services(&mut env, d.workstation, d.facade)
        .expect("list");
    let after = model.of_type("ELEMENTARY").len();
    println!("elementary services listed: {before} before, {after} after lease cleanup");
    assert_eq!(after, before - 1, "the ghost registration must evaporate");

    println!("\nall drills complete at virtual time {}", env.now());
}
