//! Reproduction of the paper's Fig. 3 / §VI experiment, steps 1–6:
//!
//! 1. form a sensor subnet (Composite-Service) from Neem, Jade and
//!    Diamond;
//! 2. attach the expression `(a + b + c)/3`;
//! 3. provision a new composite (New-Composite) onto a cybernode via Rio;
//! 4. form the sensor network = { subnet, Coral-Sensor };
//! 5. attach the expression `(a + b)/2`;
//! 6. read the Sensor Value from the newly created composite.
//!
//! ```text
//! cargo run --example fig3_logical_network
//! ```

use sensorcer_core::prelude::*;
use sensorcer_sim::prelude::*;

fn main() {
    let config = DeploymentConfig::fig2();
    let mut env = Env::with_seed(config.seed);
    let d = standard_deployment(&mut env, &config);

    deploy_csp(
        &mut env,
        CspConfig {
            renewal: Some(d.renewal),
            ..CspConfig::new(d.lab, "Composite-Service", d.lus)
        },
    )
    .expect("composite deploys");

    // Step 1
    let vars = d
        .facade
        .compose_service(
            &mut env,
            d.workstation,
            "Composite-Service",
            &["Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"],
        )
        .expect("step 1");
    println!("step 1: subnet composed, variables {vars:?}");

    // Step 2
    d.facade
        .add_expression(
            &mut env,
            d.workstation,
            "Composite-Service",
            "(a + b + c)/3",
        )
        .expect("step 2");
    println!("step 2: expression (a + b + c)/3 attached");

    // Step 3 — Rio provisioning through the façade's Sensor Service
    // Provisioner: the monitor matches QoS and instantiates the composite
    // on a cybernode.
    d.facade
        .create_service(&mut env, d.workstation, "New-Composite", &[], None)
        .expect("step 3");
    println!("step 3: New-Composite provisioned onto a cybernode");

    // Step 4
    d.facade
        .compose_service(
            &mut env,
            d.workstation,
            "New-Composite",
            &["Composite-Service", "Coral-Sensor"],
        )
        .expect("step 4");
    println!("step 4: network composed = [Composite-Service, Coral-Sensor]");

    // Step 5
    d.facade
        .add_expression(&mut env, d.workstation, "New-Composite", "(a + b)/2")
        .expect("step 5");
    println!("step 5: expression (a + b)/2 attached");

    // Step 6
    let value = d
        .facade
        .get_value(&mut env, d.workstation, "New-Composite")
        .expect("step 6");
    println!("step 6: New-Composite = {:.3}{}", value.value, value.unit);

    // Render the browser the way Fig. 3 shows it: info panel of the
    // provisioned service plus the Sensor Value section.
    let mut model = BrowserModel::new();
    model
        .refresh_services(&mut env, d.workstation, d.facade)
        .expect("list");
    model
        .select_service(&mut env, d.workstation, d.facade, "New-Composite")
        .expect("info");
    model.refresh_values(&mut env, d.workstation, d.facade);
    println!("\n{}", render_browser(&model));
}
