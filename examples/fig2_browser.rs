//! Reproduction of the paper's Fig. 2: the full service deployment as the
//! zero-install sensor browser shows it — Jini infrastructure services,
//! Rio cybernodes and monitor, four elementary temperature sensors, and
//! the SenSORCER façade.
//!
//! ```text
//! cargo run --example fig2_browser
//! ```

fn main() {
    let (screen, model) = sensorcer_bench_free::fig2();
    print!("{screen}");
    println!(
        "\n{} services listed; {} elementary sensors reporting values",
        model.services.len(),
        model.values.iter().filter(|(_, r)| r.is_ok()).count()
    );
}

/// A tiny local shim so the example has no dependency on the bench crate:
/// it recreates F2 from the public API directly.
mod sensorcer_bench_free {
    use sensorcer_core::prelude::*;
    use sensorcer_sim::prelude::*;

    pub fn fig2() -> (String, BrowserModel) {
        let config = DeploymentConfig::fig2();
        let mut env = Env::with_seed(config.seed);
        let d = standard_deployment(&mut env, &config);
        env.run_for(SimDuration::from_secs(10));

        let mut model = BrowserModel::new();
        model
            .refresh_services(&mut env, d.workstation, d.facade)
            .expect("facade reachable");
        model
            .select_service(&mut env, d.workstation, d.facade, "Neem-Sensor")
            .expect("sensor deployed");
        model.refresh_values(&mut env, d.workstation, d.facade);
        (render_browser(&model), model)
    }
}
