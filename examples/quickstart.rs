//! Quickstart: stand up a SenSORCER federation, read sensors, compose a
//! logical network with a runtime expression, and read the composite —
//! the paper's Measure–Compute–Communicate loop in ~60 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sensorcer_core::prelude::*;
use sensorcer_sim::prelude::*;

fn main() {
    // 1. A deterministic world with the paper's Fig. 2 deployment: Jini
    //    infrastructure, Rio provisioning, four SunSPOT temperature
    //    sensors and the SenSORCER façade.
    let config = DeploymentConfig::fig2();
    let mut env = Env::with_seed(config.seed);
    let d = standard_deployment(&mut env, &config);
    println!("deployment up at virtual time {}", env.now());

    // 2. Measure: read each elementary sensor through the façade (exactly
    //    the browser's "Get Value" button).
    for name in &config.sensor_names {
        let r = d
            .facade
            .get_value(&mut env, d.workstation, name)
            .expect("sensor answers");
        println!("  {name:<16} {:.2}{}", r.value, r.unit);
    }

    // 3. Compute: create a composite, compose three sensors into it and
    //    attach the paper's expression "(a + b + c)/3".
    deploy_csp(
        &mut env,
        CspConfig {
            renewal: Some(d.renewal),
            ..CspConfig::new(d.lab, "Composite-Service", d.lus)
        },
    )
    .expect("composite deploys");
    let vars = d
        .facade
        .compose_service(
            &mut env,
            d.workstation,
            "Composite-Service",
            &["Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"],
        )
        .expect("compose");
    println!("composed subnet; children bound to variables {vars:?}");
    d.facade
        .add_expression(
            &mut env,
            d.workstation,
            "Composite-Service",
            "(a + b + c)/3",
        )
        .expect("expression installs");

    // 4. Communicate: one federated read fans out to all three sensors in
    //    parallel, evaluates the expression, and returns the result.
    let avg = d
        .facade
        .get_value(&mut env, d.workstation, "Composite-Service")
        .expect("composite answers");
    println!("subnet average: {:.2}{}", avg.value, avg.unit);

    // 5. The network self-describes: ask for the composite's info panel.
    let info = d
        .facade
        .get_info(&mut env, d.workstation, "Composite-Service")
        .expect("info");
    println!(
        "info: type={} children={:?} expression={:?}",
        info.service_type, info.contained, info.expression
    );

    println!(
        "\nwire traffic so far: {} bytes across {} calls, all in {} of virtual time",
        env.metrics.get(sensorcer_sim::metrics::keys::BYTES_WIRE),
        env.metrics.get(sensorcer_sim::metrics::keys::CALLS_OK),
        env.now()
    );
}
