//! The paper's agricultural motivation (§II.2) made runnable: "sensors are
//! located at different locations on the farms for various measurements,
//! [and] the data collection specialist has to collect the data from the
//! sensors, directly visiting those places."
//!
//! Here the specialist never leaves their desk: each field gets soil
//! moisture, temperature and humidity motes; a per-field composite
//! computes an irrigation stress index with a runtime expression; a
//! farm-level composite averages the fields; and when a buried probe dies
//! mid-season the reading degrades gracefully instead of silently lying.
//!
//! ```text
//! cargo run --example farm_monitoring
//! ```

use sensorcer_core::prelude::*;
use sensorcer_registry::lease::LeasePolicy;
use sensorcer_registry::lus::LookupService;
use sensorcer_sensors::prelude::*;
use sensorcer_sim::prelude::*;

fn main() {
    let mut env = Env::with_seed(20260706);
    let barn = env.add_host("barn-server", HostKind::Server);
    let office = env.add_host("farm-office", HostKind::Workstation);
    env.topo.join_group(office, "farm");

    let lus = LookupService::deploy(
        &mut env,
        barn,
        "Farm Lookup Service",
        "farm",
        LeasePolicy {
            max_duration: SimDuration::from_secs(1_000_000),
            default_duration: SimDuration::from_secs(1_000_000),
        },
        SimDuration::from_secs(1),
    );
    let renewal = sensorcer_registry::renewal::LeaseRenewalService::deploy(
        &mut env,
        barn,
        "Lease Renewal Service",
    );
    let accessor = sensorcer_exertion::ServiceAccessor::new(vec![lus]);

    // Three fields, three sensor technologies per field — the framework is
    // "inclusive of various sensor technologies transparently": only the
    // probes differ, everything above them is identical.
    let fields = ["North", "Creek", "Hill"];
    for field in fields {
        for (kind, probe) in [
            (
                "Soil",
                Box::new(soil_moisture(&format!("{field}-soil"), env.fork_rng()))
                    as Box<dyn SensorProbe>,
            ),
            (
                "Temp",
                Box::new(sunspot_temperature(
                    &format!("{field}-temp"),
                    env.fork_rng(),
                )),
            ),
            (
                "Hum",
                Box::new(humidity(&format!("{field}-hum"), env.fork_rng())),
            ),
        ] {
            let mote = env.add_host(format!("{field}-{kind}-mote"), HostKind::SensorMote);
            deploy_esp(
                &mut env,
                EspConfig {
                    renewal: Some(renewal),
                    lease: SimDuration::from_secs(3600),
                    sample_every: Some(SimDuration::from_secs(30)),
                    location: Some(("farm".into(), field.into(), kind.into())),
                    ..EspConfig::new(mote, format!("{field}-{kind}"), probe, lus)
                },
            );
        }

        // Per-field irrigation stress index: dry soil and hot, dry air
        // push it up. Variables bind in composition order: a=soil,
        // b=temperature, c=humidity.
        let mut cfg = CspConfig::new(barn, format!("{field}-Stress"), lus);
        cfg.renewal = Some(renewal);
        cfg.children = vec![
            format!("{field}-Soil"),
            format!("{field}-Temp"),
            format!("{field}-Hum"),
        ];
        cfg.expression =
            Some("clamp((30 - a) * 2.0 + (b - 18) * 1.5 + (60 - c) * 0.5, 0, 100)".into());
        deploy_csp(&mut env, cfg).expect("field composite");
    }

    // Farm-level roll-up: average stress across the three fields.
    let mut farm = CspConfig::new(barn, "Farm-Stress", lus);
    farm.renewal = Some(renewal);
    farm.children = fields.iter().map(|f| format!("{f}-Stress")).collect();
    farm.expression = Some("(a + b + c)/3".into());
    deploy_csp(&mut env, farm).expect("farm composite");

    // A week of daily readings from the office.
    println!("day  field-stress (North/Creek/Hill)  farm-stress");
    for day in 0..7 {
        // Land between background sampling ticks so on-demand reads don't
        // collide with the transducers' minimum sampling interval.
        env.run_for(SimDuration::from_secs(86_400) + SimDuration::from_secs(7));
        let mut per_field = Vec::new();
        for field in fields {
            let v = client::get_value(&mut env, office, &accessor, &format!("{field}-Stress"))
                .map(|r| r.value)
                .unwrap_or(f64::NAN);
            per_field.push(format!("{v:5.1}"));
        }
        // Let the slow soil transducers (100 ms minimum sampling interval)
        // recover before the farm roll-up re-reads the same leaves —
        // otherwise the ESPs serve store values flagged suspect.
        env.run_for(SimDuration::from_millis(500));
        match client::get_value(&mut env, office, &accessor, "Farm-Stress") {
            Ok(r) => println!(
                "  {day}  {:28}  {:5.1}{}",
                per_field.join(" / "),
                r.value,
                if r.good { "" } else { "  (suspect)" }
            ),
            Err(e) => println!("  {day}  {:28}  unavailable: {e}", per_field.join(" / ")),
        }

        // Mid-week, the Creek soil probe drowns: swap in a dead probe and
        // watch quality degrade instead of values silently freezing.
        if day == 3 {
            let svc = env.find_service("Creek-Soil").expect("deployed");
            env.with_service(svc, |_e, sb: &mut sensorcer_exertion::ServicerBox| {
                if let Some(esp) = sb.downcast_mut::<ElementarySensorProvider>() {
                    esp.swap_probe(Box::new(
                        SimulatedProbe::new(
                            Teds::sunspot_temperature("drowned"),
                            Signal::Constant(0.0),
                            SimRng::new(0),
                        )
                        .with_faults(FaultInjector::new(FaultModel {
                            dropout_prob: 1.0,
                            ..Default::default()
                        })),
                    ));
                }
            })
            .expect("probe swapped");
            println!("  -- Creek soil probe failed in the field (day 3) --");
        }
    }

    println!(
        "\nno field visits required: {} federated calls, {} wire bytes, {} virtual days",
        env.metrics.get(sensorcer_sim::metrics::keys::CALLS_OK),
        env.metrics.get(sensorcer_sim::metrics::keys::BYTES_WIRE),
        7
    );
}
