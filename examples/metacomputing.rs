//! Exertion-oriented metacomputing over the sensor network (§IV.D):
//! "we send the request onto the network implicitly, not to a particular
//! service provider explicitly."
//!
//! This example writes an exertion-oriented program — a hierarchical job
//! whose tasks read sensors and convert units — and submits it with
//! `exert()`. The federation forms at runtime: the jobber binds each task
//! through the lookup service, fans parallel branches out, pipes sequence
//! results forward, and the answer comes back in the returned exertion's
//! service context. A pull-mode variant runs the same conversion through
//! the exertion space, taken by whichever worker is free.
//!
//! ```text
//! cargo run --example metacomputing
//! ```

use sensorcer_core::prelude::*;
use sensorcer_exertion::prelude::*;
use sensorcer_registry::ids::interfaces;
use sensorcer_sim::prelude::*;

fn read_task(name: &str, provider: &str) -> Task {
    Task::new(
        name,
        Signature::new(interfaces::SENSOR_DATA_ACCESSOR, "getValue").on(provider),
        Context::new(),
    )
}

fn main() {
    let config = DeploymentConfig::fig2();
    let mut env = Env::with_seed(config.seed);
    let d = standard_deployment(&mut env, &config);

    // A domain-specific tasker joins the grid: unit conversion. Its
    // operations extend the metainstruction set of the metacomputer.
    let lab = d.lab;
    let tasker = Tasker::new("Converter", "UnitConversion").on("toFahrenheit", |_env, ctx| {
        let c = ctx
            .get_f64("arg/celsius")
            .or_else(|| ctx.get_f64("pipe/in"))
            .ok_or("missing celsius input")?;
        ctx.put(paths::RESULT, c * 1.8 + 32.0);
        Ok(())
    });
    let converter = env.deploy(lab, "Converter", ServicerBox::new(tasker));
    d.lus
        .register(
            &mut env,
            lab,
            sensorcer_registry::item::ServiceItem::new(
                sensorcer_registry::ids::SvcUuid::NIL,
                lab,
                converter,
                vec!["UnitConversion".into(), interfaces::SERVICER.into()],
                vec![sensorcer_registry::attributes::Entry::Name(
                    "Converter".into(),
                )],
            ),
            None,
        )
        .expect("registered");

    // --- An exertion-oriented program ------------------------------------
    // Parallel inner job: read two sensors at once. Outer sequence: feed
    // the first reading through the converter via the dataflow pipe.
    let survey = Job::new("survey", ControlStrategy::parallel())
        .with(read_task("neem", "Neem-Sensor"))
        .with(read_task("jade", "Jade-Sensor"));
    let program = Job::new("survey-and-convert", ControlStrategy::sequence())
        .with(read_task("coral", "Coral-Sensor"))
        .with(Task::new(
            "coral-F",
            Signature::new("UnitConversion", "toFahrenheit"),
            Context::new(), // consumes the pipe from the previous stage
        ))
        .with(survey);

    println!("submitting exertion '{}' onto the network...", program.name);
    let done = exert(&mut env, d.workstation, program.into(), &d.accessor, None);
    println!("status: {:?}\n", done.status());

    // All results live in the returned exertion's service contexts.
    println!("returned service context:");
    for (path, value) in done.context().iter() {
        println!("  {path:<32} = {value}");
    }

    let coral_c = done
        .context()
        .get_f64("coral/sensor/value")
        .expect("coral read");
    let coral_f = done
        .context()
        .get_f64("coral-F/result/value")
        .expect("conversion");
    println!("\ncoral: {coral_c:.2}°C = {coral_f:.2}°F (via the federation's pipe)");
    assert!((coral_f - (coral_c * 1.8 + 32.0)).abs() < 1e-9);

    // --- The same conversion, pull-mode -----------------------------------
    // Tasks go into the exertion space; free workers take them.
    let space = ExertionSpace::deploy(&mut env, lab, "Exertion Space");
    Spacer::deploy(&mut env, lab, "Spacer", d.accessor.clone(), space);
    attach_worker(&mut env, converter, space, SimDuration::from_millis(20));

    let pulled = Job::new("pulled-conversions", ControlStrategy::parallel().pull())
        .with(Task::new(
            "t0",
            Signature::new("UnitConversion", "toFahrenheit"),
            Context::new().with("arg/celsius", 0.0),
        ))
        .with(Task::new(
            "t100",
            Signature::new("UnitConversion", "toFahrenheit"),
            Context::new().with("arg/celsius", 100.0),
        ));
    let done = exert(&mut env, d.workstation, pulled.into(), &d.accessor, None);
    println!(
        "\npull-mode via the exertion space: 0°C = {}°F, 100°C = {}°F ({:?})",
        done.context().get_f64("t0/result/value").unwrap(),
        done.context().get_f64("t100/result/value").unwrap(),
        done.status()
    );
}
