//! Pool stress tests: many threads hammering shared state through
//! `spawn`/`par_map`/`wait_idle` and the sync primitives. These are the
//! tests the `--tsan` CI leg compiles under `-Zsanitizer=thread` — the
//! assertions pin exact counts (no lost updates), while TSan checks the
//! orderings the counts alone can't see. Kept bounded so the plain
//! tier-1 run stays fast.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sensorcer_runtime::sync::{Condvar, Mutex};
use sensorcer_runtime::ThreadPool;

/// A spawn storm across several pool sizes: every job lands exactly one
/// increment, `wait_idle` is the barrier that makes them all visible.
#[test]
fn spawn_storm_loses_no_updates() {
    for threads in [1, 2, 4, 8] {
        let pool = ThreadPool::new(threads);
        let hits = Arc::new(AtomicU64::new(0));
        const JOBS: u64 = 2_000;
        for _ in 0..JOBS {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(pool.inflight(), 0);
        assert_eq!(hits.load(Ordering::SeqCst), JOBS, "{threads} threads");
    }
}

/// par_map racing a background spawn storm on the same pool: the map
/// result stays ordered and exact while the storm drains.
#[test]
fn par_map_is_correct_under_concurrent_spawns() {
    let pool = Arc::new(ThreadPool::new(4));
    let noise = Arc::new(AtomicU64::new(0));
    const NOISE_JOBS: u64 = 500;
    for _ in 0..NOISE_JOBS {
        let noise = Arc::clone(&noise);
        pool.spawn(move || {
            noise.fetch_add(1, Ordering::Relaxed);
        });
    }
    let got = pool.par_map((0..1_000u64).collect(), |x| x * 2 + 1);
    let want: Vec<u64> = (0..1_000).map(|x| x * 2 + 1).collect();
    assert_eq!(got, want);
    pool.wait_idle();
    assert_eq!(noise.load(Ordering::SeqCst), NOISE_JOBS);
}

/// The sync wrappers under contention: every job moves one unit through
/// a mutex-guarded ledger and wakes a waiter; nothing is lost and the
/// condvar sees the final state.
#[test]
fn contended_mutex_and_condvar_reach_the_exact_total() {
    let pool = ThreadPool::new(8);
    let ledger = Arc::new(Mutex::new(0u64));
    let done = Arc::new(Condvar::new());
    const JOBS: u64 = 1_000;
    for _ in 0..JOBS {
        let ledger = Arc::clone(&ledger);
        let done = Arc::clone(&done);
        pool.spawn(move || {
            *ledger.lock() += 1;
            done.notify_all();
        });
    }
    let mut guard = ledger.lock();
    while *guard < JOBS {
        // Timed wait so a lost-wakeup bug shows as a slow loop, not a
        // hung test; the count assertion below is the real oracle.
        done.wait_for(&mut guard, Duration::from_millis(50));
    }
    assert_eq!(*guard, JOBS);
    drop(guard);
    pool.wait_idle();
}

/// Jobs spawning jobs: the inflight accounting survives re-entrant
/// submission from worker threads and `wait_idle` still means empty.
#[test]
fn reentrant_spawns_drain_completely() {
    let pool = Arc::new(ThreadPool::new(4));
    let hits = Arc::new(AtomicU64::new(0));
    const PARENTS: u64 = 200;
    const CHILDREN: u64 = 5;
    for _ in 0..PARENTS {
        let pool2 = Arc::clone(&pool);
        let hits = Arc::clone(&hits);
        pool.spawn(move || {
            hits.fetch_add(1, Ordering::Relaxed);
            for _ in 0..CHILDREN {
                let hits = Arc::clone(&hits);
                pool2.spawn(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }
    pool.wait_idle();
    assert_eq!(pool.inflight(), 0);
    assert_eq!(hits.load(Ordering::SeqCst), PARENTS * (1 + CHILDREN));
}
