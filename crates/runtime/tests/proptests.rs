//! Property tests for the work-stealing pool: par_map correctness under
//! arbitrary shapes, thread counts and nesting.

use proptest::prelude::*;

use sensorcer_runtime::ThreadPool;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// par_map equals the sequential map for arbitrary inputs and pool
    /// sizes, preserving order.
    #[test]
    fn par_map_matches_sequential(
        items in prop::collection::vec(any::<i64>(), 0..200),
        threads in 1usize..8,
    ) {
        let pool = ThreadPool::new(threads);
        let expected: Vec<i64> = items.iter().map(|x| x.wrapping_mul(3).wrapping_add(1)).collect();
        let got = pool.par_map(items, |x| x.wrapping_mul(3).wrapping_add(1));
        prop_assert_eq!(got, expected);
    }

    /// Nested par_map (a map whose closure maps again on the same pool)
    /// terminates and is correct for arbitrary small shapes.
    #[test]
    fn nested_par_map_correct(outer in 1usize..12, inner in 1usize..12, threads in 1usize..4) {
        let pool = std::sync::Arc::new(ThreadPool::new(threads));
        let p2 = std::sync::Arc::clone(&pool);
        let got = pool.par_map((0..outer as u64).collect(), move |i| {
            p2.par_map((0..inner as u64).collect(), |j| i * 100 + j)
                .into_iter()
                .sum::<u64>()
        });
        let want: Vec<u64> = (0..outer as u64)
            .map(|i| (0..inner as u64).map(|j| i * 100 + j).sum())
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Borrowed captures: the closure reads caller-stack data safely.
    #[test]
    fn par_map_borrows_are_sound(base in prop::collection::vec(any::<u32>(), 1..64)) {
        let pool = ThreadPool::new(4);
        let idx: Vec<usize> = (0..base.len()).collect();
        let got = pool.par_map(idx, |i| base[i]);
        prop_assert_eq!(got, base);
    }

    /// spawn + wait_idle runs every job exactly once.
    #[test]
    fn spawn_runs_everything(n in 0usize..300, threads in 1usize..6) {
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = ThreadPool::new(threads);
        let counter = std::sync::Arc::new(AtomicU64::new(0));
        for _ in 0..n {
            let c = std::sync::Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        prop_assert_eq!(counter.load(Ordering::SeqCst), n as u64);
    }
}
