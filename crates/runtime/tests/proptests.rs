//! Property tests for the work-stealing pool: par_map correctness under
//! arbitrary shapes, thread counts and nesting. Driven by the
//! deterministic harness in `sensorcer_sim::check`.

use sensorcer_sim::check::run_cases;

use sensorcer_runtime::ThreadPool;

/// par_map equals the sequential map for arbitrary inputs and pool
/// sizes, preserving order.
#[test]
fn par_map_matches_sequential() {
    run_cases("par_map_matches_sequential", 24, |g| {
        let items = g.vec_of(0, 200, |g| g.i64());
        let threads = g.usize_in(1, 8);
        let pool = ThreadPool::new(threads);
        let expected: Vec<i64> = items
            .iter()
            .map(|x| x.wrapping_mul(3).wrapping_add(1))
            .collect();
        let got = pool.par_map(items, |x| x.wrapping_mul(3).wrapping_add(1));
        assert_eq!(got, expected);
    });
}

/// Nested par_map (a map whose closure maps again on the same pool)
/// terminates and is correct for arbitrary small shapes.
#[test]
fn nested_par_map_correct() {
    run_cases("nested_par_map_correct", 16, |g| {
        let outer = g.usize_in(1, 12);
        let inner = g.usize_in(1, 12);
        let threads = g.usize_in(1, 4);
        let pool = std::sync::Arc::new(ThreadPool::new(threads));
        let p2 = std::sync::Arc::clone(&pool);
        let got = pool.par_map((0..outer as u64).collect(), move |i| {
            p2.par_map((0..inner as u64).collect(), |j| i * 100 + j)
                .into_iter()
                .sum::<u64>()
        });
        let want: Vec<u64> = (0..outer as u64)
            .map(|i| (0..inner as u64).map(|j| i * 100 + j).sum())
            .collect();
        assert_eq!(got, want);
    });
}

/// Borrowed captures: the closure reads caller-stack data safely.
#[test]
fn par_map_borrows_are_sound() {
    run_cases("par_map_borrows_are_sound", 24, |g| {
        let base = g.vec_of(1, 64, |g| g.u64() as u32);
        let pool = ThreadPool::new(4);
        let idx: Vec<usize> = (0..base.len()).collect();
        let got = pool.par_map(idx, |i| base[i]);
        assert_eq!(got, base);
    });
}

/// spawn + wait_idle runs every job exactly once.
#[test]
fn spawn_runs_everything() {
    run_cases("spawn_runs_everything", 16, |g| {
        use std::sync::atomic::{AtomicU64, Ordering};
        let n = g.usize_in(0, 300);
        let threads = g.usize_in(1, 6);
        let pool = ThreadPool::new(threads);
        let counter = std::sync::Arc::new(AtomicU64::new(0));
        for _ in 0..n {
            let c = std::sync::Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), n as u64);
    });
}
