//! A work-stealing thread pool.
//!
//! The simulated deployment mode runs everything on virtual time, but the
//! *local* (embedded) deployment mode of `sensorcer-core` executes
//! composite reads on real threads. This pool is its engine: one
//! [`Worker`] queue per thread with an [`Injector`] for external
//! submissions, stealing between threads when a local queue runs dry, and
//! parking idle workers so an idle pool costs nothing.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::deque::{Injector, Steal, Stealer, Worker};
use crate::sync::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send>;

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    shutdown: AtomicBool,
    /// Jobs submitted but not yet completed (for idle tracking in tests).
    inflight: AtomicUsize,
    sleep_lock: Mutex<()>,
    wake: Condvar,
}

impl Shared {
    /// Find the next job: local queue, then injector, then steal.
    fn find_job(&self, local: &Worker<Job>, index: usize) -> Option<Job> {
        if let Some(job) = local.pop() {
            return Some(job);
        }
        loop {
            // Drain a batch from the injector into the local queue.
            match self.injector.steal_batch_and_pop(local) {
                Steal::Success(job) => return Some(job),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        self.steal_any(index)
    }

    /// Grab one job from the injector or any worker's deque. Used by
    /// workers (stealing) and by threads blocked in `par_map` (helping
    /// with queued work instead of idling — this is what makes nested
    /// `par_map` deadlock-free when every worker is busy).
    fn steal_any(&self, skip: usize) -> Option<Job> {
        loop {
            match self.injector.steal() {
                Steal::Success(job) => return Some(job),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        let n = self.stealers.len();
        for k in 0..n {
            let victim = (skip + 1 + k) % n;
            loop {
                match self.stealers[victim].steal() {
                    Steal::Success(job) => return Some(job),
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }
}

/// The pool. Dropping it shuts workers down (pending jobs are completed
/// first because shutdown is only observed when the queues are empty).
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Create a pool with `threads` workers (min 1).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let workers: Vec<Worker<Job>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        let stealers = workers.iter().map(Worker::stealer).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            wake: Condvar::new(),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(index, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sensorcer-worker-{index}"))
                    .spawn(move || worker_loop(shared, local, index))
                    // lint:allow(unwrap): worker spawn failure at startup is unrecoverable
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            threads,
        }
    }

    /// A pool sized to the machine.
    pub fn with_default_parallelism() -> ThreadPool {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ThreadPool::new(n)
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submit a fire-and-forget job.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.inflight.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(&self.shared);
        self.shared.injector.push(Box::new(move || {
            job();
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
        }));
        let _guard = self.shared.sleep_lock.lock();
        self.shared.wake.notify_all();
    }

    /// Map `f` over `items` in parallel, preserving order. The calling
    /// thread participates in the work, so this also functions (serially)
    /// on a saturated or single-threaded pool. Panics in `f` propagate to
    /// the caller after all items finish or are abandoned.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Send + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            // Cheaper than the whole latch machinery.
            let mut items = items;
            // lint:allow(unwrap): len() == 1 checked on the line above
            return vec![f(items.pop().expect("len checked"))];
        }

        struct Operation<T, R, F> {
            items: Vec<Mutex<Option<T>>>,
            results: Vec<Mutex<Option<R>>>,
            next: AtomicUsize,
            remaining: AtomicUsize,
            panicked: Mutex<Option<Box<dyn std::any::Any + Send>>>,
            done_lock: Mutex<bool>,
            done: Condvar,
            f: F,
        }

        impl<T, R, F: Fn(T) -> R> Operation<T, R, F> {
            /// Claim and run items until none remain. Returns true if this
            /// call completed the final item.
            fn work(&self) -> bool {
                let mut finished_last = false;
                loop {
                    let i = self.next.fetch_add(1, Ordering::SeqCst);
                    if i >= self.items.len() {
                        break;
                    }
                    // The counter hands each index to exactly one worker.
                    let item = self.items[i]
                        .lock()
                        .take()
                        .expect("each index claimed once"); // lint:allow(unwrap)
                    match std::panic::catch_unwind(AssertUnwindSafe(|| (self.f)(item))) {
                        Ok(r) => *self.results[i].lock() = Some(r),
                        Err(payload) => {
                            let mut p = self.panicked.lock();
                            if p.is_none() {
                                *p = Some(payload);
                            }
                        }
                    }
                    if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                        finished_last = true;
                    }
                }
                finished_last
            }

            fn signal_done(&self) {
                let mut done = self.done_lock.lock();
                *done = true;
                self.done.notify_all();
            }
        }

        let op = Arc::new(Operation {
            items: items.into_iter().map(|t| Mutex::new(Some(t))).collect(),
            results: (0..n).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(n),
            panicked: Mutex::new(None),
            done_lock: Mutex::new(false),
            done: Condvar::new(),
            f,
        });

        let helpers = (self.threads).min(n.saturating_sub(1));
        for _ in 0..helpers {
            let op = Arc::clone(&op);
            let shared = Arc::clone(&self.shared);
            self.shared.inflight.fetch_add(1, Ordering::SeqCst);
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                if op.work() {
                    op.signal_done();
                }
                shared.inflight.fetch_sub(1, Ordering::SeqCst);
            });
            // SAFETY: the job borrows no stack data — it owns Arc clones —
            // but `T`/`R`/`F` need not be 'static, so the box's trait
            // object isn't 'static either. Erasing the lifetime is sound
            // because `par_map` blocks below until `remaining` hits zero
            // (the `done` condvar), so the operation — and everything the
            // job can reach — outlives every worker's use of it. `T`, `R`
            // and `F` cross threads only under their Send/Sync bounds.
            let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
            self.shared.injector.push(job);
        }
        {
            let _guard = self.shared.sleep_lock.lock();
            self.shared.wake.notify_all();
        }

        // The caller works too; then waits for stragglers — *helping* with
        // queued pool work while it waits. Without the helping, nested
        // par_map calls deadlock once every worker thread is blocked inside
        // an outer operation: the inner operations' helper jobs would sit
        // in the queues with nobody left to run them.
        if op.work() {
            op.signal_done();
        }
        loop {
            if *op.done_lock.lock() {
                break;
            }
            if let Some(job) = self.shared.steal_any(0) {
                job();
                continue;
            }
            let mut done = op.done_lock.lock();
            if *done {
                break;
            }
            op.done
                .wait_for(&mut done, std::time::Duration::from_millis(1));
        }

        // Wait until every helper job has dropped its Arc — including ones
        // still queued that never claimed an item. This upholds the
        // transmute's contract: nothing reachable from the operation (in
        // particular `F`'s borrows of the caller's stack) survives past
        // this return. Keep helping so queued stragglers get executed even
        // when all workers are blocked in outer operations.
        while Arc::strong_count(&op) > 1 {
            match self.shared.steal_any(0) {
                Some(job) => job(),
                None => std::thread::yield_now(),
            }
        }

        if let Some(payload) = op.panicked.lock().take() {
            std::panic::resume_unwind(payload);
        }
        // lint:allow(unwrap): workers joined, Arc refcount is 1
        let op = Arc::into_inner(op).expect("exclusive ownership established above");
        op.results
            .into_iter()
            // The done signal orders all result writes before this read.
            .map(|m| {
                m.into_inner()
                    .expect("all results written before done signal") // lint:allow(unwrap)
            })
            .collect()
    }

    /// Number of jobs submitted but not yet finished.
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::SeqCst)
    }

    /// Busy-wait (with parking) until all spawned jobs finish.
    pub fn wait_idle(&self) {
        while self.inflight() > 0 {
            std::thread::yield_now();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, local: Worker<Job>, index: usize) {
    loop {
        if let Some(job) = shared.find_job(&local, index) {
            job();
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Nothing to do: park until a submission or shutdown wakes us.
        let mut guard = shared.sleep_lock.lock();
        // Re-check under the lock to avoid missed wakeups.
        if shared.shutdown.load(Ordering::SeqCst) || !shared.injector.is_empty() {
            continue;
        }
        shared
            .wake
            .wait_for(&mut guard, std::time::Duration::from_millis(50));
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.sleep_lock.lock();
            self.shared.wake.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .field("inflight", &self.inflight())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn spawn_runs_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn par_map_preserves_order() {
        let pool = ThreadPool::new(4);
        let out = pool.par_map((0..1000).collect(), |i: u64| i * 2);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let pool = ThreadPool::new(2);
        assert_eq!(pool.par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(pool.par_map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_borrows_caller_state() {
        let pool = ThreadPool::new(4);
        let base = [10u64, 20, 30]; // borrowed by the closure
        let out = pool.par_map(vec![0usize, 1, 2], |i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn par_map_actually_uses_multiple_threads() {
        let pool = ThreadPool::new(4);
        let seen: Mutex<std::collections::HashSet<std::thread::ThreadId>> =
            Mutex::new(Default::default());
        pool.par_map((0..64).collect(), |_i: u32| {
            seen.lock().insert(std::thread::current().id());
            // Force enough dwell time that helpers get a slice.
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        assert!(
            seen.lock().len() >= 2,
            "expected >=2 threads, got {}",
            seen.lock().len()
        );
    }

    #[test]
    fn par_map_single_thread_pool_still_completes() {
        let pool = ThreadPool::new(1);
        let out = pool.par_map((0..100).collect(), |i: u32| i + 1);
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn panic_in_par_map_propagates() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(vec![1u32, 2, 3], |i| {
                if i == 2 {
                    panic!("boom");
                }
                i
            });
        }));
        assert!(result.is_err());
        // The pool survives and keeps working afterwards.
        let out = pool.par_map(vec![1u32, 2], |i| i * 10);
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn nested_par_map_does_not_deadlock() {
        let pool = Arc::new(ThreadPool::new(2));
        // The caller participates in work, so even a saturated pool makes
        // progress on nested operations.
        let p2 = Arc::clone(&pool);
        let out = pool.par_map(vec![1u64, 2, 3, 4], move |i| {
            p2.par_map(vec![i, i + 1], |j| j * 2).iter().sum::<u64>()
        });
        assert_eq!(out, vec![2 + 4, 4 + 6, 6 + 8, 8 + 10]);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        drop(pool); // must not hang
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn threads_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let out = pool.par_map(vec![1, 2, 3], |i: i32| i);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
