//! Thin synchronization primitives with a `parking_lot`-style API on top
//! of `std::sync`.
//!
//! `lock()` returns the guard directly (poisoning is converted into the
//! inner guard: a panic that poisons a lock has already been captured and
//! will be re-raised by the pool's panic plumbing, so propagating poison a
//! second time would only obscure the original payload), and
//! [`Condvar::wait_for`] takes the guard by `&mut` like `parking_lot`'s.

use std::sync::PoisonError;
use std::time::Duration;

/// Mutual exclusion with non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]. Wraps the std guard in an `Option`
/// so [`Condvar::wait_for`] can temporarily take ownership.
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // lint:allow(unwrap): guard invariant: inner is present outside wait()
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // lint:allow(unwrap): guard invariant: inner is present outside wait()
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Condition variable whose wait takes the guard by `&mut`.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wait until notified or `timeout` elapses. Returns `true` if the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        // lint:allow(unwrap): guard invariant: inner is present outside wait()
        let inner = guard.inner.take().expect("guard present outside wait");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        result.timed_out()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock usable after a panicking holder");
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
    }

    #[test]
    fn wait_for_sees_notification() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut flag = m.lock();
            *flag = true;
            cv.notify_all();
            drop(flag);
        });
        let (m, cv) = &*pair;
        let mut flag = m.lock();
        while !*flag {
            cv.wait_for(&mut flag, Duration::from_millis(50));
        }
        drop(flag);
        t.join().unwrap();
    }
}
