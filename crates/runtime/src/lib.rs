//! # sensorcer-runtime
//!
//! Real-thread parallel execution for the *local* (embedded,
//! non-simulated) deployment mode of the SenSORCER reproduction. Provides
//! a work-stealing [`ThreadPool`] (per-worker deques + parking) whose
//! [`ThreadPool::par_map`] lets a composite sensor provider fan its child
//! reads out over actual OS threads — the HPC counterpart of the
//! simulator's virtual-time `Flow::Parallel`.
//!
//! ```
//! use sensorcer_runtime::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.par_map((0..100u64).collect(), |i| i * i);
//! assert_eq!(squares[7], 49);
//! ```

// The one audited `unsafe` block in the workspace lives in `pool`
// (lifetime erasure for scoped parallel jobs, see its SAFETY note);
// every other crate is `#![forbid(unsafe_code)]`.
#![deny(unsafe_op_in_unsafe_fn)]
pub mod deque;
pub mod pool;
pub mod sync;

pub use pool::ThreadPool;
