//! Work-distribution queues with the `crossbeam-deque` API shape.
//!
//! [`Injector`] is the global submission queue, each worker thread owns a
//! [`Worker`] queue, and [`Stealer`] handles let other threads take work
//! from it. The implementation is mutex-guarded `VecDeque`s rather than
//! lock-free ring buffers: the pool's jobs are composite sensor reads
//! (microseconds to milliseconds each), so queue transfer cost is noise —
//! what matters is that the API and the stealing discipline match what the
//! pool's scheduling logic expects.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Outcome of a steal attempt.
pub enum Steal<T> {
    /// The queue was observed empty.
    Empty,
    /// One task was taken.
    Success(T),
    /// The attempt lost a race and should be retried.
    Retry,
}

fn locked<T>(m: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A worker thread's own FIFO queue.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    pub fn new_fifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    pub fn push(&self, task: T) {
        locked(&self.queue).push_back(task);
    }

    /// Take the next task in FIFO order.
    pub fn pop(&self) -> Option<T> {
        locked(&self.queue).pop_front()
    }

    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }

    /// A handle other threads use to steal from this queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// A handle for taking tasks from another thread's [`Worker`] queue.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal the task at the back of the victim's queue (the victim pops
    /// from the front, so contention concentrates only when one task
    /// remains).
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_back() {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }
}

/// The global submission queue shared by all pool clients.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, task: T) {
        locked(&self.queue).push_back(task);
    }

    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_front() {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Move a batch of tasks into `dest`'s local queue and return one of
    /// them directly. Takes at most half the backlog (minimum one) so that
    /// concurrent workers draining the injector still share the load.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut global = locked(&self.queue);
        let first = match global.pop_front() {
            Some(task) => task,
            None => return Steal::Empty,
        };
        let extra = global.len() / 2;
        if extra > 0 {
            let mut local = locked(&dest.queue);
            for _ in 0..extra {
                match global.pop_front() {
                    Some(task) => local.push_back(task),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }

    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }

    pub fn len(&self) -> usize {
        locked(&self.queue).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_fifo_and_steals_from_back() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(1));
        assert!(matches!(s.steal(), Steal::Success(3)));
        assert_eq!(w.pop(), Some(2));
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn injector_batch_splits_backlog() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        let got = match inj.steal_batch_and_pop(&w) {
            Steal::Success(t) => t,
            _ => panic!("non-empty injector must yield a task"),
        };
        assert_eq!(got, 0);
        // Half of the remaining 9 tasks moved over, order preserved.
        assert_eq!(w.pop(), Some(1));
        assert!(!inj.is_empty());
        assert_eq!(inj.len(), 5);
    }

    #[test]
    fn injector_empty_reports_empty() {
        let inj: Injector<u8> = Injector::new();
        assert!(matches!(inj.steal(), Steal::Empty));
        assert!(matches!(
            inj.steal_batch_and_pop(&Worker::new_fifo()),
            Steal::Empty
        ));
    }
}
