//! Property tests for the registry: lease-table invariants under random
//! operation sequences, and template-matching laws.

use proptest::prelude::*;

use sensorcer_registry::attributes::{AttrMatch, Entry};
use sensorcer_registry::ids::SvcUuid;
use sensorcer_registry::item::{ServiceItem, ServiceTemplate};
use sensorcer_registry::lease::{LeaseError, LeasePolicy, LeaseTable};
use sensorcer_sim::env::ServiceId;
use sensorcer_sim::time::{SimDuration, SimTime};
use sensorcer_sim::topology::HostId;

/// A randomized lease-table operation.
#[derive(Debug, Clone)]
enum Op {
    Grant { dur_s: u64 },
    RenewNth { idx: usize },
    CancelNth { idx: usize },
    Advance { secs: u64 },
    Reap,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..100).prop_map(|dur_s| Op::Grant { dur_s }),
        (0usize..16).prop_map(|idx| Op::RenewNth { idx }),
        (0usize..16).prop_map(|idx| Op::CancelNth { idx }),
        (1u64..50).prop_map(|secs| Op::Advance { secs }),
        Just(Op::Reap),
    ]
}

proptest! {
    /// Whatever the operation sequence, the table never lies: live leases
    /// are exactly the granted-not-cancelled-not-expired ones, and
    /// `next_expiry` is a true minimum.
    #[test]
    fn lease_table_invariants(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut table: LeaseTable<u32> = LeaseTable::new(LeasePolicy {
            max_duration: SimDuration::from_secs(1_000),
            default_duration: SimDuration::from_secs(10),
        });
        let mut now = SimTime::ZERO;
        let mut granted: Vec<(sensorcer_registry::lease::LeaseId, SimTime)> = Vec::new();
        let mut counter = 0u32;

        for op in ops {
            match op {
                Op::Grant { dur_s } => {
                    let lease = table.grant(now, Some(SimDuration::from_secs(dur_s)), counter);
                    counter += 1;
                    prop_assert!(lease.expires > now);
                    prop_assert!(lease.expires <= now + SimDuration::from_secs(1_000));
                    granted.push((lease.id, lease.expires));
                }
                Op::RenewNth { idx } => {
                    if let Some((id, exp)) = granted.get(idx % granted.len().max(1)).copied() {
                        match table.renew(now, id, None) {
                            Ok(renewed) => {
                                prop_assert!(now < exp || exp <= now, "no constraint violated");
                                prop_assert!(renewed.expires >= now);
                                granted.retain(|(i, _)| *i != id);
                                granted.push((id, renewed.expires));
                            }
                            Err(LeaseError::Expired) => prop_assert!(now >= exp),
                            Err(LeaseError::Unknown) => {
                                prop_assert!(!granted.iter().any(|(i, _)| *i == id)
                                    || table.get(now, id).is_err());
                            }
                        }
                    }
                }
                Op::CancelNth { idx } => {
                    if !granted.is_empty() {
                        let (id, _) = granted[idx % granted.len()];
                        let _ = table.cancel(id);
                        granted.retain(|(i, _)| *i != id);
                    }
                }
                Op::Advance { secs } => now += SimDuration::from_secs(secs),
                Op::Reap => {
                    let reaped = table.reap(now);
                    for (id, _) in &reaped {
                        prop_assert!(
                            granted.iter().any(|(i, exp)| i == id && now >= *exp),
                            "reaped a live or unknown lease"
                        );
                    }
                    granted.retain(|(i, _)| !reaped.iter().any(|(r, _)| r == i));
                }
            }
            // Core invariant: `live()` equals our model of unexpired,
            // uncancelled grants.
            let live: Vec<_> = table.live(now).map(|(id, _)| id).collect();
            let mut model: Vec<_> = granted
                .iter()
                .filter(|(_, exp)| now < *exp)
                .map(|(id, _)| *id)
                .collect();
            model.sort();
            let mut live_sorted = live.clone();
            live_sorted.sort();
            prop_assert_eq!(live_sorted, model);
            if let Some(next) = table.next_expiry() {
                prop_assert!(granted.iter().any(|(_, exp)| *exp == next));
            }
        }
    }

    /// Matching laws: `by_id` matches exactly its item; adding constraints
    /// never widens a template; `any()` matches everything.
    #[test]
    fn template_matching_laws(
        names in prop::collection::vec("[A-Za-z]{1,12}", 1..12),
        pick in 0usize..12,
    ) {
        let items: Vec<ServiceItem> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                ServiceItem::new(
                    SvcUuid((i + 1) as u128),
                    HostId(0),
                    ServiceId(i as u64),
                    vec!["SensorDataAccessor".into()],
                    vec![Entry::Name(n.clone())],
                )
            })
            .collect();

        let target = &items[pick % items.len()];
        let by_id = ServiceTemplate::by_id(target.uuid);
        for item in &items {
            prop_assert_eq!(by_id.matches(item), item.uuid == target.uuid);
            prop_assert!(ServiceTemplate::any().matches(item));
        }

        // Narrowing: template T ∧ extra-attr matches a subset of T.
        let base = ServiceTemplate::by_interface("SensorDataAccessor");
        let narrowed = base.clone().and_attr(AttrMatch::name(names[0].clone()));
        for item in &items {
            if narrowed.matches(item) {
                prop_assert!(base.matches(item), "narrowing must not widen");
            }
        }
    }

    /// Wire round trip for arbitrary service items.
    #[test]
    fn service_item_codec(
        name in "[ -~]{0,32}",
        uuid in any::<u128>(),
        host in any::<u32>(),
        ifaces in prop::collection::vec("[A-Za-z]{1,16}", 0..5),
    ) {
        use sensorcer_sim::wire::{WireDecode, WireEncode};
        let item = ServiceItem::new(
            SvcUuid(uuid),
            HostId(host),
            ServiceId(7),
            ifaces.iter().map(|s| s.as_str().into()).collect(),
            vec![Entry::Name(name), Entry::ServiceType("ELEMENTARY".into())],
        );
        let mut wire = item.to_wire();
        prop_assert_eq!(ServiceItem::decode(&mut wire).unwrap(), item);
    }
}
