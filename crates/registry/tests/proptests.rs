//! Property tests for the registry: lease-table invariants under random
//! operation sequences, and template-matching laws. Driven by the
//! deterministic harness in `sensorcer_sim::check`.

use sensorcer_sim::check::{run_cases, Gen};

use sensorcer_registry::attributes::{AttrMatch, Entry};
use sensorcer_registry::ids::SvcUuid;
use sensorcer_registry::item::{ServiceItem, ServiceTemplate};
use sensorcer_registry::lease::{LeaseError, LeasePolicy, LeaseTable};
use sensorcer_sim::env::ServiceId;
use sensorcer_sim::time::{SimDuration, SimTime};
use sensorcer_sim::topology::HostId;

/// A randomized lease-table operation.
#[derive(Debug, Clone)]
enum Op {
    Grant { dur_s: u64 },
    RenewNth { idx: usize },
    CancelNth { idx: usize },
    Advance { secs: u64 },
    Reap,
}

fn gen_op(g: &mut Gen) -> Op {
    match g.u64_in(0, 5) {
        0 => Op::Grant {
            dur_s: g.u64_in(1, 100),
        },
        1 => Op::RenewNth {
            idx: g.usize_in(0, 16),
        },
        2 => Op::CancelNth {
            idx: g.usize_in(0, 16),
        },
        3 => Op::Advance {
            secs: g.u64_in(1, 50),
        },
        _ => Op::Reap,
    }
}

/// Whatever the operation sequence, the table never lies: live leases
/// are exactly the granted-not-cancelled-not-expired ones, and
/// `next_expiry` is a true minimum.
#[test]
fn lease_table_invariants() {
    run_cases("lease_table_invariants", 96, |g| {
        let ops = g.vec_of(1, 80, gen_op);
        let mut table: LeaseTable<u32> = LeaseTable::new(LeasePolicy {
            max_duration: SimDuration::from_secs(1_000),
            default_duration: SimDuration::from_secs(10),
        });
        let mut now = SimTime::ZERO;
        let mut granted: Vec<(sensorcer_registry::lease::LeaseId, SimTime)> = Vec::new();
        let mut counter = 0u32;

        for op in ops {
            match op {
                Op::Grant { dur_s } => {
                    let lease = table.grant(now, Some(SimDuration::from_secs(dur_s)), counter);
                    counter += 1;
                    assert!(lease.expires > now);
                    assert!(lease.expires <= now + SimDuration::from_secs(1_000));
                    granted.push((lease.id, lease.expires));
                }
                Op::RenewNth { idx } => {
                    if let Some((id, exp)) = granted.get(idx % granted.len().max(1)).copied() {
                        match table.renew(now, id, None) {
                            Ok(renewed) => {
                                assert!(renewed.expires >= now);
                                granted.retain(|(i, _)| *i != id);
                                granted.push((id, renewed.expires));
                            }
                            Err(LeaseError::Expired) => assert!(now >= exp),
                            Err(LeaseError::Unknown) => {
                                assert!(
                                    !granted.iter().any(|(i, _)| *i == id)
                                        || table.get(now, id).is_err()
                                );
                            }
                        }
                    }
                }
                Op::CancelNth { idx } => {
                    if !granted.is_empty() {
                        let (id, _) = granted[idx % granted.len()];
                        let _ = table.cancel(id);
                        granted.retain(|(i, _)| *i != id);
                    }
                }
                Op::Advance { secs } => now += SimDuration::from_secs(secs),
                Op::Reap => {
                    let reaped = table.reap(now);
                    for (id, _) in &reaped {
                        assert!(
                            granted.iter().any(|(i, exp)| i == id && now >= *exp),
                            "reaped a live or unknown lease"
                        );
                    }
                    granted.retain(|(i, _)| !reaped.iter().any(|(r, _)| r == i));
                }
            }
            // Core invariant: `live()` equals our model of unexpired,
            // uncancelled grants.
            let live: Vec<_> = table.live(now).map(|(id, _)| id).collect();
            let mut model: Vec<_> = granted
                .iter()
                .filter(|(_, exp)| now < *exp)
                .map(|(id, _)| *id)
                .collect();
            model.sort();
            let mut live_sorted = live.clone();
            live_sorted.sort();
            assert_eq!(live_sorted, model);
            if let Some(next) = table.next_expiry() {
                assert!(granted.iter().any(|(_, exp)| *exp == next));
            }
        }
    });
}

/// Matching laws: `by_id` matches exactly its item; adding constraints
/// never widens a template; `any()` matches everything.
#[test]
fn template_matching_laws() {
    run_cases("template_matching_laws", 128, |g| {
        let names = g.vec_of(1, 12, |g| g.alpha_string(1, 12));
        let pick = g.usize_in(0, 12);
        let items: Vec<ServiceItem> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                ServiceItem::new(
                    SvcUuid((i + 1) as u128),
                    HostId(0),
                    ServiceId(i as u64),
                    vec!["SensorDataAccessor".into()],
                    vec![Entry::Name(n.clone())],
                )
            })
            .collect();

        let target = &items[pick % items.len()];
        let by_id = ServiceTemplate::by_id(target.uuid);
        for item in &items {
            assert_eq!(by_id.matches(item), item.uuid == target.uuid);
            assert!(ServiceTemplate::any().matches(item));
        }

        // Narrowing: template T ∧ extra-attr matches a subset of T.
        let base = ServiceTemplate::by_interface("SensorDataAccessor");
        let narrowed = base.clone().and_attr(AttrMatch::name(names[0].clone()));
        for item in &items {
            if narrowed.matches(item) {
                assert!(base.matches(item), "narrowing must not widen");
            }
        }
    });
}

/// Index-vs-scan equivalence: whatever interleaving of register,
/// unregister, lease expiry and attribute update the registry has seen,
/// its indexed `lookup` returns exactly the items a brute-force linear
/// scan over a shadow model finds, in the same (uuid) order.
#[test]
fn indexed_lookup_matches_linear_scan() {
    use sensorcer_registry::events::{EventSink, Transition};
    use sensorcer_registry::lus::LookupService;
    use sensorcer_sim::env::Env;
    use sensorcer_sim::topology::HostKind;

    const NAMES: [&str; 4] = ["Neem", "Jade", "Coral", "Diamond"];
    const IFACES: [&str; 3] = ["SensorDataAccessor", "Servicer", "Cybernode"];

    fn gen_item(g: &mut Gen) -> ServiceItem {
        let n_ifaces = g.usize_in(0, 4);
        let mut ifaces: Vec<&str> = Vec::new();
        for _ in 0..n_ifaces {
            let pick = IFACES[g.usize_in(0, IFACES.len())];
            if !ifaces.contains(&pick) {
                ifaces.push(pick);
            }
        }
        let mut attrs = Vec::new();
        if g.chance(0.8) {
            attrs.push(Entry::Name(NAMES[g.usize_in(0, NAMES.len())].to_string()));
        }
        if g.chance(0.3) {
            attrs.push(Entry::ServiceType("ELEMENTARY".to_string()));
        }
        ServiceItem::new(
            SvcUuid::NIL,
            HostId(0),
            ServiceId(0),
            ifaces.into_iter().map(Into::into).collect(),
            attrs,
        )
    }

    fn templates(g: &mut Gen, known: &[SvcUuid]) -> Vec<ServiceTemplate> {
        let mut tpls = vec![
            ServiceTemplate::any(),
            ServiceTemplate::by_interface(IFACES[g.usize_in(0, IFACES.len())]),
            ServiceTemplate::by_name(NAMES[g.usize_in(0, NAMES.len())]),
            ServiceTemplate::by_interface(IFACES[0]).and_interface(IFACES[1]),
            ServiceTemplate::by_interface(IFACES[g.usize_in(0, IFACES.len())])
                .and_attr(AttrMatch::name(NAMES[g.usize_in(0, NAMES.len())])),
            ServiceTemplate::by_name("Nobody"),
            ServiceTemplate::by_interface("UnimplementedInterface"),
        ];
        if !known.is_empty() {
            tpls.push(ServiceTemplate::by_id(known[g.usize_in(0, known.len())]));
        }
        tpls.push(ServiceTemplate::by_id(SvcUuid(0xDEAD_BEEF)));
        tpls
    }

    run_cases("indexed_lookup_matches_linear_scan", 64, |g| {
        let mut env = Env::with_seed(g.u64());
        let lab = env.add_host("lab", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        let mut lus = LookupService::new(
            lab,
            "public",
            LeasePolicy {
                max_duration: SimDuration::from_secs(1_000),
                default_duration: SimDuration::from_secs(10),
            },
        );
        // Sometimes add a live listener so attribute updates exercise the
        // snapshot-and-fire path rather than the in-place swap.
        if g.bool() {
            lus.notify(
                env.now(),
                ServiceTemplate::any(),
                vec![
                    Transition::NoMatchToMatch,
                    Transition::MatchToMatch,
                    Transition::MatchToNoMatch,
                ],
                EventSink {
                    host: client,
                    deliver: Box::new(|_e, _ev| {}),
                },
                None,
            );
        }

        // Shadow model: uuid -> live item, plus outstanding lease expiries.
        let mut model: std::collections::BTreeMap<SvcUuid, ServiceItem> = Default::default();
        let mut leases: Vec<(sensorcer_registry::lease::Lease, SvcUuid)> = Vec::new();

        let steps = g.usize_in(10, 60);
        for _ in 0..steps {
            match g.u64_in(0, 10) {
                // Register a fresh item (sometimes with a short lease).
                0..=3 => {
                    let item = gen_item(g);
                    let dur = if g.bool() {
                        Some(SimDuration::from_secs(g.u64_in(1, 30)))
                    } else {
                        None
                    };
                    let reg = lus.register(&mut env, item.clone(), dur);
                    let mut stored = item;
                    stored.uuid = reg.uuid;
                    model.insert(reg.uuid, stored);
                    leases.push((reg.lease, reg.uuid));
                }
                // Cancel a random outstanding lease.
                4 => {
                    if !leases.is_empty() {
                        let (lease, uuid) = leases.remove(g.usize_in(0, leases.len()));
                        if lus.cancel(&mut env, lease.id).is_ok() {
                            model.remove(&uuid);
                        }
                    }
                }
                // Replace the attributes of a random live registration.
                5..=6 => {
                    if !model.is_empty() {
                        let uuids: Vec<SvcUuid> = model.keys().copied().collect();
                        let uuid = uuids[g.usize_in(0, uuids.len())];
                        let attrs = gen_item(g).attributes;
                        assert!(lus.modify_attributes(&mut env, uuid, attrs.clone()));
                        model.get_mut(&uuid).unwrap().attributes = attrs;
                    }
                }
                // Let time pass and reap expired leases.
                _ => {
                    env.run_for(SimDuration::from_secs(g.u64_in(1, 15)));
                    lus.reap(&mut env);
                    let now = env.now();
                    leases.retain(|(lease, uuid)| {
                        if now >= lease.expires {
                            model.remove(uuid);
                            false
                        } else {
                            true
                        }
                    });
                }
            }

            // After every step, indexed lookup == linear scan of the model.
            let known: Vec<SvcUuid> = model.keys().copied().collect();
            for tpl in templates(g, &known) {
                let indexed: Vec<SvcUuid> = lus
                    .lookup(&tpl, usize::MAX)
                    .iter()
                    .map(|i| i.uuid)
                    .collect();
                let scanned: Vec<SvcUuid> = model
                    .values()
                    .filter(|i| tpl.matches(i))
                    .map(|i| i.uuid)
                    .collect();
                assert_eq!(indexed, scanned, "template {tpl:?} diverged");
                // Truncated lookups agree with the scan prefix.
                let capped: Vec<SvcUuid> = lus.lookup(&tpl, 2).iter().map(|i| i.uuid).collect();
                assert_eq!(capped, scanned.into_iter().take(2).collect::<Vec<_>>());
            }
        }
    });
}

/// Wire round trip for arbitrary service items.
#[test]
fn service_item_codec() {
    run_cases("service_item_codec", 128, |g| {
        use sensorcer_sim::wire::{WireDecode, WireEncode};
        let name = g.ascii_string(32);
        let uuid = g.u128();
        let host = g.u64() as u32;
        let ifaces = g.vec_of(0, 4, |g| g.alpha_string(1, 16));
        let item = ServiceItem::new(
            SvcUuid(uuid),
            HostId(host),
            ServiceId(7),
            ifaces.iter().map(|s| s.as_str().into()).collect(),
            vec![Entry::Name(name), Entry::ServiceType("ELEMENTARY".into())],
        );
        let mut wire = item.to_wire();
        assert_eq!(ServiceItem::decode(&mut wire).unwrap(), item);
    });
}
