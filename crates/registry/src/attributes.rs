//! Attribute entries attached to service registrations.
//!
//! Jini lookups match on "object types (interfaces) and associated
//! complementary attributes" (§IV.B). Fig. 2 of the paper shows the entry
//! kinds a SenSORCER registration carries: `Comment`, `Location`
//! (building/floor/room — "CP TTU", floor 3, room 310), service-type
//! metadata and UI descriptors. [`Entry`] reproduces those; [`AttrMatch`]
//! is the template form with per-field wildcards (Jini's `null` fields).

use sensorcer_sim::wire::{Bytes, BytesMut};
use sensorcer_sim::wire::{WireDecode, WireEncode, WireError};

/// A concrete attribute on a service item.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Entry {
    /// Human-facing service name (Jini's `Name` entry).
    Name(String),
    /// Free-form comment (Fig. 2 shows `Comment.comment = SenSORCER Facade`).
    Comment(String),
    /// Physical location (Fig. 2: building "CP TTU", floor "3", room "310").
    Location {
        building: String,
        floor: String,
        room: String,
    },
    /// SenSORCER service kind shown in the browser ("ELEMENTARY",
    /// "COMPOSITE", "FACADE", ...).
    ServiceType(String),
    /// Arbitrary key/value pair for extensions.
    Custom { key: String, value: String },
}

impl Entry {
    /// Variant tag for wire encoding and grouping.
    fn tag(&self) -> u8 {
        match self {
            Entry::Name(_) => 0,
            Entry::Comment(_) => 1,
            Entry::Location { .. } => 2,
            Entry::ServiceType(_) => 3,
            Entry::Custom { .. } => 4,
        }
    }
}

impl WireEncode for Entry {
    fn encode(&self, buf: &mut BytesMut) {
        buf.extend_from_slice(&[self.tag()]);
        match self {
            Entry::Name(s) | Entry::Comment(s) | Entry::ServiceType(s) => s.encode(buf),
            Entry::Location {
                building,
                floor,
                room,
            } => {
                building.encode(buf);
                floor.encode(buf);
                room.encode(buf);
            }
            Entry::Custom { key, value } => {
                key.encode(buf);
                value.encode(buf);
            }
        }
    }
}

impl WireDecode for Entry {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let tag = u8::decode(buf)?;
        Ok(match tag {
            0 => Entry::Name(String::decode(buf)?),
            1 => Entry::Comment(String::decode(buf)?),
            2 => Entry::Location {
                building: String::decode(buf)?,
                floor: String::decode(buf)?,
                room: String::decode(buf)?,
            },
            3 => Entry::ServiceType(String::decode(buf)?),
            4 => Entry::Custom {
                key: String::decode(buf)?,
                value: String::decode(buf)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    context: "Entry",
                    tag,
                })
            }
        })
    }
}

/// A template over attributes: each field is `Some(expected)` or `None`
/// (wildcard), mirroring Jini's null-field matching.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum AttrMatch {
    /// Matches any entry (vacuous — useful as a placeholder).
    #[default]
    Any,
    Name(Option<String>),
    Comment(Option<String>),
    Location {
        building: Option<String>,
        floor: Option<String>,
        room: Option<String>,
    },
    ServiceType(Option<String>),
    Custom {
        key: Option<String>,
        value: Option<String>,
    },
}

impl AttrMatch {
    /// Convenience: exact-name template.
    pub fn name(n: impl Into<String>) -> AttrMatch {
        AttrMatch::Name(Some(n.into()))
    }

    /// Convenience: exact service-type template.
    pub fn service_type(t: impl Into<String>) -> AttrMatch {
        AttrMatch::ServiceType(Some(t.into()))
    }

    /// Does a concrete entry satisfy this template? Same-variant rule with
    /// `None` as per-field wildcard (Jini semantics).
    pub fn matches(&self, entry: &Entry) -> bool {
        fn field(want: &Option<String>, have: &str) -> bool {
            want.as_deref().is_none_or(|w| w == have)
        }
        match (self, entry) {
            (AttrMatch::Any, _) => true,
            (AttrMatch::Name(w), Entry::Name(h)) => field(w, h),
            (AttrMatch::Comment(w), Entry::Comment(h)) => field(w, h),
            (
                AttrMatch::Location {
                    building,
                    floor,
                    room,
                },
                Entry::Location {
                    building: hb,
                    floor: hf,
                    room: hr,
                },
            ) => field(building, hb) && field(floor, hf) && field(room, hr),
            (AttrMatch::ServiceType(w), Entry::ServiceType(h)) => field(w, h),
            (AttrMatch::Custom { key, value }, Entry::Custom { key: hk, value: hv }) => {
                field(key, hk) && field(value, hv)
            }
            _ => false,
        }
    }
}

/// Extract the `Name` attribute from an entry list, if present.
pub fn name_of(entries: &[Entry]) -> Option<&str> {
    entries.iter().find_map(|e| match e {
        Entry::Name(n) => Some(n.as_str()),
        _ => None,
    })
}

/// Extract the `ServiceType` attribute from an entry list, if present.
pub fn service_type_of(entries: &[Entry]) -> Option<&str> {
    entries.iter().find_map(|e| match e {
        Entry::ServiceType(t) => Some(t.as_str()),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc() -> Entry {
        Entry::Location {
            building: "CP TTU".into(),
            floor: "3".into(),
            room: "310".into(),
        }
    }

    #[test]
    fn exact_matching() {
        assert!(AttrMatch::name("Neem-Sensor").matches(&Entry::Name("Neem-Sensor".into())));
        assert!(!AttrMatch::name("Neem-Sensor").matches(&Entry::Name("Jade-Sensor".into())));
        assert!(!AttrMatch::name("Neem-Sensor").matches(&Entry::Comment("Neem-Sensor".into())));
    }

    #[test]
    fn wildcard_fields() {
        let any_name = AttrMatch::Name(None);
        assert!(any_name.matches(&Entry::Name("anything".into())));
        assert!(!any_name.matches(&loc()));

        let same_building = AttrMatch::Location {
            building: Some("CP TTU".into()),
            floor: None,
            room: None,
        };
        assert!(same_building.matches(&loc()));
        let wrong_room = AttrMatch::Location {
            building: Some("CP TTU".into()),
            floor: None,
            room: Some("999".into()),
        };
        assert!(!wrong_room.matches(&loc()));
    }

    #[test]
    fn any_matches_everything() {
        assert!(AttrMatch::Any.matches(&loc()));
        assert!(AttrMatch::Any.matches(&Entry::Name("x".into())));
    }

    #[test]
    fn custom_matching() {
        let e = Entry::Custom {
            key: "zone".into(),
            value: "north".into(),
        };
        assert!(AttrMatch::Custom {
            key: Some("zone".into()),
            value: None
        }
        .matches(&e));
        assert!(AttrMatch::Custom {
            key: None,
            value: Some("north".into())
        }
        .matches(&e));
        assert!(!AttrMatch::Custom {
            key: Some("region".into()),
            value: None
        }
        .matches(&e));
    }

    #[test]
    fn extraction_helpers() {
        let entries = vec![
            Entry::Comment("c".into()),
            Entry::Name("N".into()),
            Entry::ServiceType("ELEMENTARY".into()),
        ];
        assert_eq!(name_of(&entries), Some("N"));
        assert_eq!(service_type_of(&entries), Some("ELEMENTARY"));
        assert_eq!(name_of(&[]), None);
    }

    #[test]
    fn wire_round_trips() {
        for entry in [
            Entry::Name("Neem-Sensor".into()),
            Entry::Comment("SenSORCER Facade".into()),
            loc(),
            Entry::ServiceType("COMPOSITE".into()),
            Entry::Custom {
                key: "k".into(),
                value: "v".into(),
            },
        ] {
            let mut wire = entry.to_wire();
            assert_eq!(Entry::decode(&mut wire).unwrap(), entry);
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut wire = Bytes::from_static(&[9, 0, 0, 0, 0]);
        assert!(matches!(
            Entry::decode(&mut wire),
            Err(WireError::BadTag { .. })
        ));
    }
}
