//! # sensorcer-registry
//!
//! The Jini substitute (§IV.B of the paper): multicast discovery, a
//! lookup service with template matching and leased registrations, a
//! lease-renewal service, distributed events with an event mailbox, and a
//! two-phase-commit transaction manager.
//!
//! This is the plug-and-play backbone of SenSORCER: "new services entering
//! the network become available immediately from LUSs and the existing
//! services that are disabled are automatically disposed from the sensor
//! network."
//!
//! ```
//! use sensorcer_registry::prelude::*;
//! use sensorcer_sim::prelude::*;
//!
//! let mut env = Env::with_seed(7);
//! let lab = env.add_host("lab", HostKind::Server);
//! let client = env.add_host("desk", HostKind::Workstation);
//!
//! let lus = LookupService::deploy(
//!     &mut env, lab, "LUS", "public",
//!     LeasePolicy::default(), SimDuration::from_millis(500),
//! );
//!
//! // A provider registers under a lease; a requestor discovers and looks up.
//! let item = ServiceItem::new(
//!     SvcUuid::NIL, lab, ServiceId(1),
//!     vec![interfaces::SENSOR_DATA_ACCESSOR.into()],
//!     vec![Entry::Name("Neem-Sensor".into())],
//! );
//! lus.register(&mut env, lab, item, None).unwrap();
//!
//! let found = discover_one(&mut env, client, "public").unwrap();
//! let hits = found.lookup(&mut env, client, &ServiceTemplate::by_name("Neem-Sensor"), 10).unwrap();
//! assert_eq!(hits.len(), 1);
//! ```

#![forbid(unsafe_code)]
// Boxed-closure callback signatures (event sinks, 2PC participants,
// simulated parallel branches) trip this lint; the types are the API.
#![allow(clippy::type_complexity)]

pub mod attributes;
pub mod discovery;
pub mod events;
pub mod hier;
pub mod ids;
pub mod item;
pub mod lease;
pub mod lus;
pub mod renewal;
pub mod txn;

/// One-stop imports.
pub mod prelude {
    pub use crate::attributes::{name_of, service_type_of, AttrMatch, Entry};
    pub use crate::discovery::{discover, discover_one};
    pub use crate::events::{EventMailbox, EventSink, MailboxHandle, ServiceEvent, Transition};
    pub use crate::hier::{CountingBloom, HierHandle, RootRegistry};
    pub use crate::ids::{interfaces, InterfaceId, SvcUuid};
    pub use crate::item::{ServiceItem, ServiceTemplate};
    pub use crate::lease::{Lease, LeaseError, LeaseId, LeasePolicy, LeaseTable};
    pub use crate::lus::{LookupService, LusHandle, ServiceRegistration};
    pub use crate::renewal::{LeaseRenewalService, RenewalHandle};
    pub use crate::txn::{
        Participant, TmHandle, TransactionManager, TxnError, TxnId, TxnState, Vote,
    };
}

pub use prelude::*;
