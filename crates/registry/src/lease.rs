//! Leases — the mechanism that "keeps the sensor network healthy and
//! robust" (§IV.B).
//!
//! Every registration is granted for a bounded duration and must be
//! renewed; a provider that dies simply stops renewing and its
//! registration evaporates. [`LeaseTable`] is the bookkeeping shared by
//! the lookup service, the event registrations and the tuple space.

use std::collections::BTreeMap;

use sensorcer_sim::time::{SimDuration, SimTime};

/// Identifier of one granted lease.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LeaseId(pub u64);

/// A granted lease as returned to the holder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Lease {
    pub id: LeaseId,
    pub expires: SimTime,
}

impl Lease {
    pub fn is_expired(&self, now: SimTime) -> bool {
        now >= self.expires
    }

    /// Remaining validity at `now` (zero if expired).
    pub fn remaining(&self, now: SimTime) -> SimDuration {
        self.expires.since(now)
    }
}

/// Errors from lease operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LeaseError {
    /// The lease is unknown (never granted, cancelled, or already expired
    /// and reaped).
    Unknown,
    /// The lease exists but has passed its expiry (reap pending).
    Expired,
}

impl std::fmt::Display for LeaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeaseError::Unknown => f.write_str("unknown lease"),
            LeaseError::Expired => f.write_str("lease expired"),
        }
    }
}

impl std::error::Error for LeaseError {}

/// Policy limits for granted durations.
#[derive(Clone, Copy, Debug)]
pub struct LeasePolicy {
    /// Longest duration a grant or renewal will be given.
    pub max_duration: SimDuration,
    /// Default when the requestor asks for "any".
    pub default_duration: SimDuration,
}

impl Default for LeasePolicy {
    fn default() -> Self {
        LeasePolicy {
            max_duration: SimDuration::from_secs(300),
            default_duration: SimDuration::from_secs(30),
        }
    }
}

/// Bookkeeping for granted leases of resources of type `T` (typically a
/// key identifying the leased thing).
#[derive(Debug)]
pub struct LeaseTable<T> {
    policy: LeasePolicy,
    next: u64,
    entries: BTreeMap<LeaseId, (SimTime, T)>,
}

impl<T> LeaseTable<T> {
    pub fn new(policy: LeasePolicy) -> LeaseTable<T> {
        LeaseTable {
            policy,
            next: 1,
            entries: BTreeMap::new(),
        }
    }

    /// Grant a lease over `resource`. `requested` is clamped to the policy
    /// maximum; `None` means the policy default.
    pub fn grant(&mut self, now: SimTime, requested: Option<SimDuration>, resource: T) -> Lease {
        let dur = requested
            .unwrap_or(self.policy.default_duration)
            .min(self.policy.max_duration);
        let id = LeaseId(self.next);
        self.next += 1;
        let expires = now + dur;
        self.entries.insert(id, (expires, resource));
        Lease { id, expires }
    }

    /// Renew an existing, unexpired lease.
    pub fn renew(
        &mut self,
        now: SimTime,
        id: LeaseId,
        requested: Option<SimDuration>,
    ) -> Result<Lease, LeaseError> {
        let entry = self.entries.get_mut(&id).ok_or(LeaseError::Unknown)?;
        if now >= entry.0 {
            return Err(LeaseError::Expired);
        }
        let dur = requested
            .unwrap_or(self.policy.default_duration)
            .min(self.policy.max_duration);
        entry.0 = now + dur;
        Ok(Lease {
            id,
            expires: entry.0,
        })
    }

    /// Cancel a lease, returning its resource.
    pub fn cancel(&mut self, id: LeaseId) -> Result<T, LeaseError> {
        self.entries
            .remove(&id)
            .map(|(_, r)| r)
            .ok_or(LeaseError::Unknown)
    }

    /// Remove every lease expired at `now`, returning the reaped resources.
    pub fn reap(&mut self, now: SimTime) -> Vec<(LeaseId, T)> {
        let dead: Vec<LeaseId> = self
            .entries
            .iter()
            .filter(|(_, (exp, _))| now >= *exp)
            .map(|(id, _)| *id)
            .collect();
        dead.into_iter()
            .map(|id| {
                // lint:allow(unwrap): id was collected from entries in the loop above
                let (_, r) = self.entries.remove(&id).expect("id collected above");
                (id, r)
            })
            .collect()
    }

    /// Access the resource behind a live lease.
    pub fn get(&self, now: SimTime, id: LeaseId) -> Result<&T, LeaseError> {
        let (exp, r) = self.entries.get(&id).ok_or(LeaseError::Unknown)?;
        if now >= *exp {
            Err(LeaseError::Expired)
        } else {
            Ok(r)
        }
    }

    /// Mutable access to the resource behind a live lease.
    pub fn get_mut(&mut self, now: SimTime, id: LeaseId) -> Result<&mut T, LeaseError> {
        let (exp, r) = self.entries.get_mut(&id).ok_or(LeaseError::Unknown)?;
        if now >= *exp {
            Err(LeaseError::Expired)
        } else {
            Ok(r)
        }
    }

    /// All live resources at `now`, in grant order.
    pub fn live(&self, now: SimTime) -> impl Iterator<Item = (LeaseId, &T)> {
        self.entries
            .iter()
            .filter(move |(_, (exp, _))| now < *exp)
            .map(|(id, (_, r))| (*id, r))
    }

    /// Count of entries, live or pending reap.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The earliest expiry among current entries (drives reaper timers).
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.entries.values().map(|(exp, _)| *exp).min()
    }

    pub fn policy(&self) -> LeasePolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn table() -> LeaseTable<&'static str> {
        LeaseTable::new(LeasePolicy {
            max_duration: SimDuration::from_secs(100),
            default_duration: SimDuration::from_secs(10),
        })
    }

    #[test]
    fn grant_uses_default_and_clamps_to_max() {
        let mut lt = table();
        let l1 = lt.grant(t(0), None, "a");
        assert_eq!(l1.expires, t(10));
        let l2 = lt.grant(t(0), Some(SimDuration::from_secs(1_000)), "b");
        assert_eq!(l2.expires, t(100));
        assert_ne!(l1.id, l2.id);
    }

    #[test]
    fn renewal_extends_from_now() {
        let mut lt = table();
        let l = lt.grant(t(0), None, "a");
        let l2 = lt.renew(t(5), l.id, None).unwrap();
        assert_eq!(l2.expires, t(15));
        assert_eq!(l2.id, l.id);
    }

    #[test]
    fn renewal_of_expired_lease_fails() {
        let mut lt = table();
        let l = lt.grant(t(0), None, "a");
        assert_eq!(lt.renew(t(10), l.id, None), Err(LeaseError::Expired));
        assert_eq!(
            lt.renew(t(99), LeaseId(999), None),
            Err(LeaseError::Unknown)
        );
    }

    #[test]
    fn cancel_returns_resource() {
        let mut lt = table();
        let l = lt.grant(t(0), None, "payload");
        assert_eq!(lt.cancel(l.id), Ok("payload"));
        assert_eq!(lt.cancel(l.id), Err(LeaseError::Unknown));
    }

    #[test]
    fn reap_removes_only_expired() {
        let mut lt = table();
        let a = lt.grant(t(0), Some(SimDuration::from_secs(5)), "a");
        let _b = lt.grant(t(0), Some(SimDuration::from_secs(50)), "b");
        let reaped = lt.reap(t(10));
        assert_eq!(reaped, vec![(a.id, "a")]);
        assert_eq!(lt.len(), 1);
        assert_eq!(lt.live(t(10)).count(), 1);
    }

    #[test]
    fn get_respects_expiry() {
        let mut lt = table();
        let l = lt.grant(t(0), None, "a");
        assert_eq!(lt.get(t(5), l.id), Ok(&"a"));
        assert_eq!(lt.get(t(10), l.id), Err(LeaseError::Expired));
        *lt.get_mut(t(5), l.id).unwrap() = "changed";
        assert_eq!(lt.get(t(6), l.id), Ok(&"changed"));
    }

    #[test]
    fn next_expiry_is_minimum() {
        let mut lt = table();
        assert_eq!(lt.next_expiry(), None);
        lt.grant(t(0), Some(SimDuration::from_secs(30)), "a");
        lt.grant(t(0), Some(SimDuration::from_secs(5)), "b");
        assert_eq!(lt.next_expiry(), Some(t(5)));
    }

    #[test]
    fn lease_helpers() {
        let l = Lease {
            id: LeaseId(1),
            expires: t(10),
        };
        assert!(!l.is_expired(t(9)));
        assert!(l.is_expired(t(10)));
        assert_eq!(l.remaining(t(4)), SimDuration::from_secs(6));
        assert_eq!(l.remaining(t(40)), SimDuration::ZERO);
    }
}
