//! Service items and lookup templates.

use sensorcer_sim::env::ServiceId;
use sensorcer_sim::topology::HostId;
use sensorcer_sim::wire::{Bytes, BytesMut};
use sensorcer_sim::wire::{WireDecode, WireEncode, WireError};

use crate::attributes::{name_of, AttrMatch, Entry};
use crate::ids::{InterfaceId, SvcUuid};

/// A registered service: identity, where it runs, the sim-level handle to
/// reach it, the remote interfaces it implements, and its attributes.
///
/// The `service` handle plays the role of Jini's downloaded proxy object:
/// whoever holds a `ServiceItem` can invoke the service.
#[derive(Clone, PartialEq, Debug)]
pub struct ServiceItem {
    pub uuid: SvcUuid,
    pub host: HostId,
    pub service: ServiceId,
    pub interfaces: Vec<InterfaceId>,
    pub attributes: Vec<Entry>,
}

impl ServiceItem {
    pub fn new(
        uuid: SvcUuid,
        host: HostId,
        service: ServiceId,
        interfaces: Vec<InterfaceId>,
        attributes: Vec<Entry>,
    ) -> ServiceItem {
        ServiceItem {
            uuid,
            host,
            service,
            interfaces,
            attributes,
        }
    }

    /// The `Name` attribute, if present (how the browser labels services).
    pub fn name(&self) -> Option<&str> {
        name_of(&self.attributes)
    }

    pub fn implements(&self, iface: &str) -> bool {
        self.interfaces.iter().any(|i| i.as_str() == iface)
    }
}

impl WireEncode for ServiceItem {
    fn encode(&self, buf: &mut BytesMut) {
        self.uuid.encode(buf);
        self.host.0.encode(buf);
        self.service.0.encode(buf);
        self.interfaces.encode(buf);
        self.attributes.encode(buf);
    }
}

impl WireDecode for ServiceItem {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(ServiceItem {
            uuid: SvcUuid::decode(buf)?,
            host: HostId(u32::decode(buf)?),
            service: ServiceId(u64::decode(buf)?),
            interfaces: Vec::decode(buf)?,
            attributes: Vec::decode(buf)?,
        })
    }
}

/// A lookup template, matching Jini `ServiceTemplate` semantics:
///
/// * `ids` — if non-empty, the item's uuid must be among them;
/// * `interfaces` — every listed interface must be implemented;
/// * `attributes` — every listed [`AttrMatch`] must be satisfied by at
///   least one of the item's entries.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ServiceTemplate {
    pub ids: Vec<SvcUuid>,
    pub interfaces: Vec<InterfaceId>,
    pub attributes: Vec<AttrMatch>,
}

impl ServiceTemplate {
    /// Match-anything template.
    pub fn any() -> ServiceTemplate {
        ServiceTemplate::default()
    }

    /// Template matching one interface.
    pub fn by_interface(iface: impl Into<InterfaceId>) -> ServiceTemplate {
        ServiceTemplate {
            interfaces: vec![iface.into()],
            ..Default::default()
        }
    }

    /// Template matching a service name (`Name` attribute).
    pub fn by_name(name: impl Into<String>) -> ServiceTemplate {
        ServiceTemplate {
            attributes: vec![AttrMatch::name(name)],
            ..Default::default()
        }
    }

    /// Template matching a specific uuid.
    pub fn by_id(id: SvcUuid) -> ServiceTemplate {
        ServiceTemplate {
            ids: vec![id],
            ..Default::default()
        }
    }

    /// Add an interface requirement.
    pub fn and_interface(mut self, iface: impl Into<InterfaceId>) -> ServiceTemplate {
        self.interfaces.push(iface.into());
        self
    }

    /// Add an attribute requirement.
    pub fn and_attr(mut self, m: AttrMatch) -> ServiceTemplate {
        self.attributes.push(m);
        self
    }

    /// The first exact-name constraint among the attribute matchers, if
    /// any — the constraint a name index can serve.
    pub fn exact_name(&self) -> Option<&str> {
        self.attributes.iter().find_map(|a| match a {
            AttrMatch::Name(Some(n)) => Some(n.as_str()),
            _ => None,
        })
    }

    /// Jini matching semantics.
    pub fn matches(&self, item: &ServiceItem) -> bool {
        if !self.ids.is_empty() && !self.ids.contains(&item.uuid) {
            return false;
        }
        for iface in &self.interfaces {
            if !item.implements(iface.as_str()) {
                return false;
            }
        }
        for attr in &self.attributes {
            if !item.attributes.iter().any(|e| attr.matches(e)) {
                return false;
            }
        }
        true
    }
}

impl WireEncode for ServiceTemplate {
    fn encode(&self, buf: &mut BytesMut) {
        self.ids.encode(buf);
        self.interfaces.encode(buf);
        // Attribute templates are encoded coarsely (debug text) — only
        // their size matters on the wire, matching is always local.
        let rendered: Vec<String> = self.attributes.iter().map(|a| format!("{a:?}")).collect();
        rendered.encode(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::interfaces;

    fn item() -> ServiceItem {
        ServiceItem::new(
            SvcUuid(7),
            HostId(1),
            ServiceId(3),
            vec![
                interfaces::SENSOR_DATA_ACCESSOR.into(),
                interfaces::SERVICER.into(),
            ],
            vec![
                Entry::Name("Neem-Sensor".into()),
                Entry::ServiceType("ELEMENTARY".into()),
                Entry::Location {
                    building: "CP TTU".into(),
                    floor: "3".into(),
                    room: "310".into(),
                },
            ],
        )
    }

    #[test]
    fn any_template_matches() {
        assert!(ServiceTemplate::any().matches(&item()));
    }

    #[test]
    fn interface_matching_requires_all() {
        assert!(ServiceTemplate::by_interface(interfaces::SENSOR_DATA_ACCESSOR).matches(&item()));
        assert!(
            ServiceTemplate::by_interface(interfaces::SENSOR_DATA_ACCESSOR)
                .and_interface(interfaces::SERVICER)
                .matches(&item())
        );
        assert!(!ServiceTemplate::by_interface(interfaces::CYBERNODE).matches(&item()));
        assert!(
            !ServiceTemplate::by_interface(interfaces::SENSOR_DATA_ACCESSOR)
                .and_interface(interfaces::CYBERNODE)
                .matches(&item())
        );
    }

    #[test]
    fn name_and_id_matching() {
        assert!(ServiceTemplate::by_name("Neem-Sensor").matches(&item()));
        assert!(!ServiceTemplate::by_name("Coral-Sensor").matches(&item()));
        assert!(ServiceTemplate::by_id(SvcUuid(7)).matches(&item()));
        assert!(!ServiceTemplate::by_id(SvcUuid(8)).matches(&item()));
    }

    #[test]
    fn attribute_conjunction() {
        let t = ServiceTemplate::any()
            .and_attr(AttrMatch::service_type("ELEMENTARY"))
            .and_attr(AttrMatch::Location {
                building: Some("CP TTU".into()),
                floor: None,
                room: None,
            });
        assert!(t.matches(&item()));
        let t2 = t.and_attr(AttrMatch::service_type("COMPOSITE"));
        assert!(!t2.matches(&item()));
    }

    #[test]
    fn item_helpers() {
        let it = item();
        assert_eq!(it.name(), Some("Neem-Sensor"));
        assert!(it.implements(interfaces::SERVICER));
        assert!(!it.implements("Nope"));
    }

    #[test]
    fn item_wire_round_trip() {
        let it = item();
        let mut wire = it.to_wire();
        let back = ServiceItem::decode(&mut wire).unwrap();
        assert_eq!(back, it);
    }

    #[test]
    fn template_encodes_nonzero_bytes() {
        let t = ServiceTemplate::by_name("Neem-Sensor");
        assert!(t.encoded_len() > 10);
    }
}
