//! Transaction manager with two-phase commit.
//!
//! Jini's transaction manager (visible in the paper's Fig. 2 as
//! "Transaction Manager") coordinates multi-provider operations; SORCER
//! passes a transaction through `service(Exertion, Transaction)` (§IV.D).
//! The reproduction implements the classic 2PC protocol over the
//! simulated network: prepare-vote, then commit or roll back everywhere.

use std::collections::BTreeMap;

use sensorcer_sim::env::{Env, ServiceId};
use sensorcer_sim::time::{SimDuration, SimTime};
use sensorcer_sim::topology::HostId;
use sensorcer_sim::wire::ProtocolStack;

/// Identifier of one transaction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxnId(pub u64);

/// A participant's vote in the prepare phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Vote {
    /// Ready to commit; changes are staged durably.
    Prepared,
    /// Cannot commit; the transaction must abort.
    Abort,
}

/// Lifecycle of a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnState {
    Active,
    Committed,
    Aborted,
}

/// Why a commit attempt failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnError {
    Unknown,
    /// The transaction was already finished.
    NotActive,
    /// A participant voted abort or was unreachable during prepare.
    Aborted,
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::Unknown => f.write_str("unknown transaction"),
            TxnError::NotActive => f.write_str("transaction is not active"),
            TxnError::Aborted => f.write_str("transaction aborted"),
        }
    }
}

impl std::error::Error for TxnError {}

/// A participant joined into a transaction: its host (for network
/// accounting) and its three protocol callbacks.
pub struct Participant {
    pub host: HostId,
    pub prepare: Box<dyn FnMut(&mut Env, TxnId) -> Vote>,
    pub commit: Box<dyn FnMut(&mut Env, TxnId)>,
    pub abort: Box<dyn FnMut(&mut Env, TxnId)>,
}

impl std::fmt::Debug for Participant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Participant")
            .field("host", &self.host)
            .finish_non_exhaustive()
    }
}

struct Txn {
    state: TxnState,
    deadline: SimTime,
    participants: Vec<Participant>,
}

/// 2PC coordinator. Deploy with [`TransactionManager::deploy`].
pub struct TransactionManager {
    pub host: HostId,
    next: u64,
    txns: BTreeMap<TxnId, Txn>,
    committed_total: u64,
    aborted_total: u64,
}

/// Wire size of one 2PC control message (tid + verb + ack).
const CONTROL_MSG_BYTES: usize = 24;

impl TransactionManager {
    pub fn new(host: HostId) -> TransactionManager {
        TransactionManager {
            host,
            next: 1,
            txns: BTreeMap::new(),
            committed_total: 0,
            aborted_total: 0,
        }
    }

    /// Deploy on `host` with a reaper that aborts transactions that pass
    /// their deadline without committing.
    pub fn deploy(env: &mut Env, host: HostId, name: &str, reap_every: SimDuration) -> TmHandle {
        let service = env.deploy(host, name, TransactionManager::new(host));
        env.schedule_every(reap_every, reap_every, move |env| {
            env.with_service(service, |env, tm: &mut TransactionManager| tm.reap(env))
                .is_ok()
        });
        TmHandle { service, host }
    }

    /// Begin a transaction with a commit deadline `timeout` from `now`.
    pub fn create(&mut self, now: SimTime, timeout: SimDuration) -> TxnId {
        let id = TxnId(self.next);
        self.next += 1;
        self.txns.insert(
            id,
            Txn {
                state: TxnState::Active,
                deadline: now + timeout,
                participants: Vec::new(),
            },
        );
        id
    }

    /// Join a participant into an active transaction.
    pub fn join(&mut self, id: TxnId, participant: Participant) -> Result<(), TxnError> {
        let txn = self.txns.get_mut(&id).ok_or(TxnError::Unknown)?;
        if txn.state != TxnState::Active {
            return Err(TxnError::NotActive);
        }
        txn.participants.push(participant);
        Ok(())
    }

    /// Two-phase commit. Phase 1 sends prepare to every participant and
    /// collects votes; any abort vote or unreachable participant rolls the
    /// whole transaction back. Phase 2 sends the decision.
    pub fn commit(&mut self, env: &mut Env, id: TxnId) -> Result<(), TxnError> {
        let txn = self.txns.get_mut(&id).ok_or(TxnError::Unknown)?;
        if txn.state != TxnState::Active {
            return Err(TxnError::NotActive);
        }
        let tm_host = self.host;

        // Phase 1: prepare.
        let mut all_prepared = true;
        for p in txn.participants.iter_mut() {
            let reachable = env
                .send_oneway(tm_host, p.host, ProtocolStack::Tcp, CONTROL_MSG_BYTES)
                .is_ok();
            if !reachable {
                all_prepared = false;
                break;
            }
            let vote = (p.prepare)(env, id);
            // Vote travels back.
            let _ = env.send_oneway(p.host, tm_host, ProtocolStack::Tcp, CONTROL_MSG_BYTES);
            if vote == Vote::Abort {
                all_prepared = false;
                break;
            }
        }

        // Phase 2: decision.
        if all_prepared {
            for p in txn.participants.iter_mut() {
                if env
                    .send_oneway(tm_host, p.host, ProtocolStack::Tcp, CONTROL_MSG_BYTES)
                    .is_ok()
                {
                    (p.commit)(env, id);
                }
            }
            txn.state = TxnState::Committed;
            self.committed_total += 1;
            Ok(())
        } else {
            for p in txn.participants.iter_mut() {
                if env
                    .send_oneway(tm_host, p.host, ProtocolStack::Tcp, CONTROL_MSG_BYTES)
                    .is_ok()
                {
                    (p.abort)(env, id);
                }
            }
            txn.state = TxnState::Aborted;
            self.aborted_total += 1;
            Err(TxnError::Aborted)
        }
    }

    /// Explicitly roll back an active transaction.
    pub fn abort(&mut self, env: &mut Env, id: TxnId) -> Result<(), TxnError> {
        let txn = self.txns.get_mut(&id).ok_or(TxnError::Unknown)?;
        if txn.state != TxnState::Active {
            return Err(TxnError::NotActive);
        }
        let tm_host = self.host;
        for p in txn.participants.iter_mut() {
            if env
                .send_oneway(tm_host, p.host, ProtocolStack::Tcp, CONTROL_MSG_BYTES)
                .is_ok()
            {
                (p.abort)(env, id);
            }
        }
        txn.state = TxnState::Aborted;
        self.aborted_total += 1;
        Ok(())
    }

    /// Abort every active transaction past its deadline.
    pub fn reap(&mut self, env: &mut Env) {
        let now = env.now();
        let overdue: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, t)| t.state == TxnState::Active && now >= t.deadline)
            .map(|(id, _)| *id)
            .collect();
        for id in overdue {
            let _ = self.abort(env, id);
        }
    }

    /// Current state of a transaction.
    pub fn state(&self, id: TxnId) -> Option<TxnState> {
        self.txns.get(&id).map(|t| t.state)
    }

    pub fn committed_total(&self) -> u64 {
        self.committed_total
    }

    pub fn aborted_total(&self) -> u64 {
        self.aborted_total
    }
}

impl std::fmt::Debug for TransactionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransactionManager")
            .field("host", &self.host)
            .field("txns", &self.txns.len())
            .finish()
    }
}

/// Client-side handle for remote transaction operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TmHandle {
    pub service: ServiceId,
    pub host: HostId,
}

impl TmHandle {
    pub fn create(
        &self,
        env: &mut Env,
        from: HostId,
        timeout: SimDuration,
    ) -> Result<TxnId, sensorcer_sim::topology::NetError> {
        env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            16,
            |env, tm: &mut TransactionManager| {
                let now = env.now();
                (tm.create(now, timeout), 16)
            },
        )
    }

    pub fn join(
        &self,
        env: &mut Env,
        from: HostId,
        id: TxnId,
        participant: Participant,
    ) -> Result<Result<(), TxnError>, sensorcer_sim::topology::NetError> {
        env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            64,
            move |_env, tm: &mut TransactionManager| (tm.join(id, participant), 8),
        )
    }

    pub fn commit(
        &self,
        env: &mut Env,
        from: HostId,
        id: TxnId,
    ) -> Result<Result<(), TxnError>, sensorcer_sim::topology::NetError> {
        env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            16,
            move |env, tm: &mut TransactionManager| (tm.commit(env, id), 8),
        )
    }

    pub fn abort(
        &self,
        env: &mut Env,
        from: HostId,
        id: TxnId,
    ) -> Result<Result<(), TxnError>, sensorcer_sim::topology::NetError> {
        env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            16,
            move |env, tm: &mut TransactionManager| (tm.abort(env, id), 8),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorcer_sim::prelude::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A fake resource that stages writes and applies them at commit.
    #[derive(Default, Debug)]
    struct Ledger {
        staged: Option<i64>,
        value: i64,
        vote: Option<Vote>, // None = Prepared
    }

    fn participant(host: HostId, ledger: &Rc<RefCell<Ledger>>) -> Participant {
        let l1 = Rc::clone(ledger);
        let l2 = Rc::clone(ledger);
        let l3 = Rc::clone(ledger);
        Participant {
            host,
            prepare: Box::new(move |_env, _id| l1.borrow().vote.unwrap_or(Vote::Prepared)),
            commit: Box::new(move |_env, _id| {
                let mut l = l2.borrow_mut();
                if let Some(v) = l.staged.take() {
                    l.value = v;
                }
            }),
            abort: Box::new(move |_env, _id| {
                l3.borrow_mut().staged = None;
            }),
        }
    }

    fn setup() -> (Env, HostId, HostId, HostId, TmHandle) {
        let mut env = Env::with_seed(1);
        let tm_host = env.add_host("tm", HostKind::Server);
        let a = env.add_host("a", HostKind::Server);
        let b = env.add_host("b", HostKind::Server);
        let tm = TransactionManager::deploy(
            &mut env,
            tm_host,
            "Transaction Manager",
            SimDuration::from_secs(1),
        );
        (env, tm_host, a, b, tm)
    }

    #[test]
    fn successful_two_phase_commit() {
        let (mut env, _tmh, a, b, tm) = setup();
        let la = Rc::new(RefCell::new(Ledger {
            staged: Some(10),
            ..Default::default()
        }));
        let lb = Rc::new(RefCell::new(Ledger {
            staged: Some(20),
            ..Default::default()
        }));
        let id = tm.create(&mut env, a, SimDuration::from_secs(30)).unwrap();
        tm.join(&mut env, a, id, participant(a, &la))
            .unwrap()
            .unwrap();
        tm.join(&mut env, b, id, participant(b, &lb))
            .unwrap()
            .unwrap();
        tm.commit(&mut env, a, id).unwrap().unwrap();
        assert_eq!(la.borrow().value, 10);
        assert_eq!(lb.borrow().value, 20);
        env.with_service(tm.service, |_e, t: &mut TransactionManager| {
            assert_eq!(t.state(id), Some(TxnState::Committed));
            assert_eq!(t.committed_total(), 1);
        })
        .unwrap();
    }

    #[test]
    fn abort_vote_rolls_everyone_back() {
        let (mut env, _tmh, a, b, tm) = setup();
        let la = Rc::new(RefCell::new(Ledger {
            staged: Some(10),
            ..Default::default()
        }));
        let lb = Rc::new(RefCell::new(Ledger {
            staged: Some(20),
            vote: Some(Vote::Abort),
            ..Default::default()
        }));
        let id = tm.create(&mut env, a, SimDuration::from_secs(30)).unwrap();
        tm.join(&mut env, a, id, participant(a, &la))
            .unwrap()
            .unwrap();
        tm.join(&mut env, b, id, participant(b, &lb))
            .unwrap()
            .unwrap();
        let err = tm.commit(&mut env, a, id).unwrap().unwrap_err();
        assert_eq!(err, TxnError::Aborted);
        assert_eq!(la.borrow().value, 0, "staged write must be rolled back");
        assert_eq!(la.borrow().staged, None);
        assert_eq!(lb.borrow().value, 0);
    }

    #[test]
    fn unreachable_participant_aborts() {
        let (mut env, _tmh, a, b, tm) = setup();
        let la = Rc::new(RefCell::new(Ledger {
            staged: Some(10),
            ..Default::default()
        }));
        let lb = Rc::new(RefCell::new(Ledger {
            staged: Some(20),
            ..Default::default()
        }));
        let id = tm.create(&mut env, a, SimDuration::from_secs(30)).unwrap();
        tm.join(&mut env, a, id, participant(a, &la))
            .unwrap()
            .unwrap();
        tm.join(&mut env, b, id, participant(b, &lb))
            .unwrap()
            .unwrap();
        env.crash_host(b);
        let err = tm.commit(&mut env, a, id).unwrap().unwrap_err();
        assert_eq!(err, TxnError::Aborted);
        assert_eq!(la.borrow().value, 0);
    }

    #[test]
    fn double_commit_rejected() {
        let (mut env, _tmh, a, _b, tm) = setup();
        let la = Rc::new(RefCell::new(Ledger {
            staged: Some(1),
            ..Default::default()
        }));
        let id = tm.create(&mut env, a, SimDuration::from_secs(30)).unwrap();
        tm.join(&mut env, a, id, participant(a, &la))
            .unwrap()
            .unwrap();
        tm.commit(&mut env, a, id).unwrap().unwrap();
        assert_eq!(
            tm.commit(&mut env, a, id).unwrap(),
            Err(TxnError::NotActive)
        );
        assert_eq!(tm.abort(&mut env, a, id).unwrap(), Err(TxnError::NotActive));
        assert_eq!(
            tm.commit(&mut env, a, TxnId(999)).unwrap(),
            Err(TxnError::Unknown)
        );
    }

    #[test]
    fn deadline_reaper_aborts_stale_transactions() {
        let (mut env, _tmh, a, _b, tm) = setup();
        let la = Rc::new(RefCell::new(Ledger {
            staged: Some(1),
            ..Default::default()
        }));
        let id = tm.create(&mut env, a, SimDuration::from_secs(5)).unwrap();
        tm.join(&mut env, a, id, participant(a, &la))
            .unwrap()
            .unwrap();
        env.run_for(SimDuration::from_secs(10));
        env.with_service(tm.service, |_e, t: &mut TransactionManager| {
            assert_eq!(t.state(id), Some(TxnState::Aborted));
            assert_eq!(t.aborted_total(), 1);
        })
        .unwrap();
        assert_eq!(
            la.borrow().staged,
            None,
            "reaped abort reaches participants"
        );
    }

    #[test]
    fn explicit_abort() {
        let (mut env, _tmh, a, _b, tm) = setup();
        let la = Rc::new(RefCell::new(Ledger {
            staged: Some(1),
            ..Default::default()
        }));
        let id = tm.create(&mut env, a, SimDuration::from_secs(30)).unwrap();
        tm.join(&mut env, a, id, participant(a, &la))
            .unwrap()
            .unwrap();
        tm.abort(&mut env, a, id).unwrap().unwrap();
        assert_eq!(la.borrow().staged, None);
    }

    #[test]
    fn join_after_finish_rejected() {
        let (mut env, _tmh, a, _b, tm) = setup();
        let la = Rc::new(RefCell::new(Ledger::default()));
        let id = tm.create(&mut env, a, SimDuration::from_secs(30)).unwrap();
        tm.commit(&mut env, a, id).unwrap().unwrap(); // empty txn commits
        let res = tm.join(&mut env, a, id, participant(a, &la)).unwrap();
        assert_eq!(res, Err(TxnError::NotActive));
    }
}
