//! Lease renewal service (Jini infrastructure visible in the paper's
//! Fig. 2 service listing).
//!
//! Constrained providers hand their leases to this service, which renews
//! them on a timer "periodically by their service provider" (§IV.B) —
//! here, by the renewal service acting for the provider. If the provider's
//! host dies, the renewal stops (the service checks liveness before each
//! renewal), the lease lapses, and the registration evaporates: exactly
//! the self-cleaning behaviour the paper relies on for robustness.

use sensorcer_sim::env::{Env, RepeatHandle, ServiceId};
use sensorcer_sim::time::SimDuration;
use sensorcer_sim::topology::HostId;

use crate::lease::{Lease, LeaseId};
use crate::lus::LusHandle;

/// Statistics of a deployed renewal service.
#[derive(Debug, Default)]
pub struct LeaseRenewalService {
    renewals_ok: u64,
    renewals_failed: u64,
    managed: u64,
}

impl LeaseRenewalService {
    /// Deploy on `host`.
    pub fn deploy(env: &mut Env, host: HostId, name: &str) -> RenewalHandle {
        let service = env.deploy(host, name, LeaseRenewalService::default());
        RenewalHandle { service, host }
    }

    pub fn renewals_ok(&self) -> u64 {
        self.renewals_ok
    }

    pub fn renewals_failed(&self) -> u64 {
        self.renewals_failed
    }

    pub fn managed(&self) -> u64 {
        self.managed
    }
}

/// Handle to a deployed renewal service.
#[derive(Clone, Copy, Debug)]
pub struct RenewalHandle {
    pub service: ServiceId,
    pub host: HostId,
}

impl RenewalHandle {
    /// Keep `lease` (granted by `lus`) alive with renewals of `duration`,
    /// on behalf of the provider running on `owner`. Renewals happen at
    /// half the lease duration. While the owner host is down the renewal
    /// is *skipped* (not abandoned): a brief outage shorter than the lease
    /// leaves the registration intact and renewals resume on restart — the
    /// paper's "when it is up the node is immediately available" — while a
    /// longer outage lets the lease lapse naturally. Management ends when
    /// the lease is gone (expired or cancelled at the LUS) or the returned
    /// handle is cancelled.
    pub fn manage(
        &self,
        env: &mut Env,
        owner: HostId,
        lus: LusHandle,
        lease: Lease,
        duration: SimDuration,
    ) -> RepeatHandle {
        let me = *self;
        let lease_id: LeaseId = lease.id;
        // Renew at a third of the lease so one missed tick (provider briefly
        // down, LUS briefly unreachable) still leaves a covering renewal
        // before expiry.
        let interval = SimDuration::from_nanos((duration.as_nanos() / 3).max(1));
        env.with_service(me.service, |_env, s: &mut LeaseRenewalService| {
            s.managed += 1
        })
        .ok();
        let mut expires = lease.expires;
        env.schedule_every(interval, interval, move |env| {
            if !env.topo.is_alive(owner) {
                let _ = env.with_service(me.service, |_env, s: &mut LeaseRenewalService| {
                    s.renewals_failed += 1;
                });
                // Nothing left to manage once the lease has lapsed.
                return env.now() < expires;
            }
            match lus.renew(env, me.host, lease_id, Some(duration)) {
                Ok(Ok(renewed)) => {
                    expires = renewed.expires;
                    let _ = env.with_service(me.service, |_env, s: &mut LeaseRenewalService| {
                        s.renewals_ok += 1;
                    });
                    true
                }
                // The LUS says the lease is gone: stop managing it.
                Ok(Err(_)) => {
                    let _ = env.with_service(me.service, |_env, s: &mut LeaseRenewalService| {
                        s.renewals_failed += 1;
                    });
                    false
                }
                // The LUS was unreachable this tick: keep trying until the
                // lease would have lapsed anyway.
                Err(_) => {
                    let _ = env.with_service(me.service, |_env, s: &mut LeaseRenewalService| {
                        s.renewals_failed += 1;
                    });
                    env.now() < expires
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Entry;
    use crate::ids::SvcUuid;
    use crate::item::{ServiceItem, ServiceTemplate};
    use crate::lease::LeasePolicy;
    use crate::lus::LookupService;
    use sensorcer_sim::prelude::*;

    fn setup() -> (Env, HostId, HostId, LusHandle, RenewalHandle) {
        let mut env = Env::with_seed(1);
        let lab = env.add_host("lab", HostKind::Server);
        let mote = env.add_host("mote", HostKind::SensorMote);
        let lus = LookupService::deploy(
            &mut env,
            lab,
            "LUS",
            "public",
            LeasePolicy::default(),
            SimDuration::from_millis(500),
        );
        let renewal = LeaseRenewalService::deploy(&mut env, lab, "Lease Renewal Service");
        (env, lab, mote, lus, renewal)
    }

    fn item(host: HostId) -> ServiceItem {
        ServiceItem::new(
            SvcUuid::NIL,
            host,
            ServiceId(5),
            vec![],
            vec![Entry::Name("N".into())],
        )
    }

    #[test]
    fn managed_lease_outlives_its_duration() {
        let (mut env, _lab, mote, lus, renewal) = setup();
        let dur = SimDuration::from_secs(4);
        let reg = lus.register(&mut env, mote, item(mote), Some(dur)).unwrap();
        renewal.manage(&mut env, mote, lus, reg.lease, dur);
        env.run_for(SimDuration::from_secs(60));
        let found = lus
            .lookup(&mut env, mote, &ServiceTemplate::by_name("N"), 10)
            .unwrap();
        assert_eq!(found.len(), 1, "renewals must keep the item registered");
        env.with_service(renewal.service, |_e, s: &mut LeaseRenewalService| {
            assert!(s.renewals_ok() >= 10);
            assert_eq!(s.managed(), 1);
        })
        .unwrap();
    }

    #[test]
    fn dead_owner_lapses_out_of_the_registry() {
        let (mut env, _lab, mote, lus, renewal) = setup();
        let dur = SimDuration::from_secs(4);
        let reg = lus.register(&mut env, mote, item(mote), Some(dur)).unwrap();
        renewal.manage(&mut env, mote, lus, reg.lease, dur);
        env.run_for(SimDuration::from_secs(10));
        env.crash_host(mote);
        env.run_for(SimDuration::from_secs(10));
        let found = lus
            .lookup(&mut env, _lab, &ServiceTemplate::by_name("N"), 10)
            .unwrap();
        assert_eq!(
            found.len(),
            0,
            "dead provider's registration must evaporate"
        );
    }

    #[test]
    fn cancelled_management_lets_lease_lapse() {
        let (mut env, lab, mote, lus, renewal) = setup();
        let dur = SimDuration::from_secs(4);
        let reg = lus.register(&mut env, mote, item(mote), Some(dur)).unwrap();
        let handle = renewal.manage(&mut env, mote, lus, reg.lease, dur);
        env.run_for(SimDuration::from_secs(10));
        handle.cancel();
        env.run_for(SimDuration::from_secs(10));
        assert_eq!(
            lus.lookup(&mut env, lab, &ServiceTemplate::by_name("N"), 10)
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn renewal_stops_after_lus_rejects() {
        let (mut env, lab, mote, lus, renewal) = setup();
        let dur = SimDuration::from_secs(4);
        let reg = lus.register(&mut env, mote, item(mote), Some(dur)).unwrap();
        renewal.manage(&mut env, mote, lus, reg.lease, dur);
        // Cancel the registration out from under the renewal manager.
        lus.cancel(&mut env, lab, reg.lease.id).unwrap().unwrap();
        env.run_for(SimDuration::from_secs(20));
        env.with_service(renewal.service, |_e, s: &mut LeaseRenewalService| {
            assert!(s.renewals_failed() >= 1);
            // After the first failure the repeat stops; failures don't grow
            // without bound.
            assert!(s.renewals_failed() <= 2, "failed {}", s.renewals_failed());
        })
        .unwrap();
    }
}
