//! The lookup service (LUS) — Jini's service registry (§IV.B).
//!
//! Providers register [`ServiceItem`]s under leases; requestors locate
//! services by [`ServiceTemplate`]; listeners get [`ServiceEvent`]s when
//! the set of matching registrations changes. A reaper timer expires
//! un-renewed registrations, which is what makes a SenSORCER network
//! self-healing: "if the service gets disabled then the lease is not
//! renewed and the service is deregistered from the LUS and thus leaves
//! the network".

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use sensorcer_sim::env::{Env, ServiceId};
use sensorcer_sim::time::{SimDuration, SimTime};
use sensorcer_sim::topology::{HostId, NetError};
use sensorcer_sim::trace::{Outcome, SpanId};
use sensorcer_sim::wire::{ProtocolStack, WireEncode};

use crate::events::{EventSink, ServiceEvent, Transition};
use crate::ids::{InterfaceId, SvcUuid};
use crate::item::{ServiceItem, ServiceTemplate};
use crate::lease::{Lease, LeaseError, LeaseId, LeasePolicy, LeaseTable};

/// Metric keys bumped by the registry lifecycle.
pub mod keys {
    /// Registrations expired by the reaper (per LUS host and globally).
    pub const LEASES_REAPED: &str = "registry.leases.reaped";
}

/// Happens-before key for one LUS's registration state: every write to
/// the item map (register / cancel / reap / attribute change) writes this
/// key at the LUS host, every remote lookup reads it at the requestor.
pub fn hb_items_key(host: HostId) -> String {
    format!("lus@{}.items", host.0)
}

/// Result of registering a service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceRegistration {
    pub uuid: SvcUuid,
    pub lease: Lease,
}

/// One event-interest registration.
struct EventReg {
    template: ServiceTemplate,
    transitions: Vec<Transition>,
    sink: EventSink,
    seq: u64,
}

/// The registry state. Deploy with [`LookupService::deploy`]; interact
/// remotely through [`LusHandle`].
///
/// Items are held behind [`Arc`] and mirrored into two secondary indexes
/// (interface → uuid set, name → uuid set), so the hot lookup path
/// narrows to a candidate set instead of scanning every registration and
/// hands out cheap handles instead of deep clones. The indexes iterate in
/// uuid order, which keeps result sets byte-identical to a linear scan of
/// the uuid-keyed item map.
pub struct LookupService {
    host: HostId,
    group: String,
    items: BTreeMap<SvcUuid, Arc<ServiceItem>>,
    /// Interface name → uuids of the items implementing it.
    by_interface: BTreeMap<InterfaceId, BTreeSet<SvcUuid>>,
    /// Exact `Name` attribute → uuids carrying it.
    by_name: BTreeMap<String, BTreeSet<SvcUuid>>,
    /// Maps registration leases to the uuid they keep alive.
    reg_leases: LeaseTable<SvcUuid>,
    event_regs: LeaseTable<EventReg>,
    registrations_total: u64,
    /// Memoized `Arc`'d uuid slice per interface: built lazily from the
    /// posting set, shared by every caller until a registration or
    /// departure touching that interface invalidates it. This is what
    /// lets `lookup_all_by_interface`-style queries return without
    /// cloning the posting `BTreeSet` per call.
    iface_uuid_cache: BTreeMap<InterfaceId, Arc<[SvcUuid]>>,
    /// Observer of posting-set deltas — the hierarchical root registry
    /// installs one so its per-subnet summaries stay current. Called with
    /// (interface, +1/-1) on every index/unindex.
    summary_sink: Option<Box<dyn FnMut(&mut Env, &InterfaceId, i64)>>,
}

impl LookupService {
    pub fn new(host: HostId, group: impl Into<String>, policy: LeasePolicy) -> LookupService {
        LookupService {
            host,
            group: group.into(),
            items: BTreeMap::new(),
            by_interface: BTreeMap::new(),
            by_name: BTreeMap::new(),
            reg_leases: LeaseTable::new(policy),
            event_regs: LeaseTable::new(policy),
            registrations_total: 0,
            iface_uuid_cache: BTreeMap::new(),
            summary_sink: None,
        }
    }

    fn index_item(&mut self, env: &mut Env, item: &ServiceItem) {
        for iface in &item.interfaces {
            let inserted = self
                .by_interface
                .entry(iface.clone())
                .or_default()
                .insert(item.uuid);
            if inserted {
                self.iface_uuid_cache.remove(iface);
                if let Some(mut sink) = self.summary_sink.take() {
                    sink(env, iface, 1);
                    self.summary_sink = Some(sink);
                }
            }
        }
        if let Some(name) = item.name() {
            self.by_name
                .entry(name.to_string())
                .or_default()
                .insert(item.uuid);
        }
    }

    fn unindex_item(&mut self, env: &mut Env, item: &ServiceItem) {
        for iface in &item.interfaces {
            if let Some(set) = self.by_interface.get_mut(iface) {
                let removed = set.remove(&item.uuid);
                if set.is_empty() {
                    self.by_interface.remove(iface);
                }
                if removed {
                    self.iface_uuid_cache.remove(iface);
                    if let Some(mut sink) = self.summary_sink.take() {
                        sink(env, iface, -1);
                        self.summary_sink = Some(sink);
                    }
                }
            }
        }
        if let Some(name) = item.name() {
            if let Some(set) = self.by_name.get_mut(name) {
                set.remove(&item.uuid);
                if set.is_empty() {
                    self.by_name.remove(name);
                }
            }
        }
    }

    /// Install an observer of posting-set deltas (see
    /// [`crate::hier::RootRegistry`]); replaces any previous one.
    pub fn set_summary_sink(&mut self, sink: impl FnMut(&mut Env, &InterfaceId, i64) + 'static) {
        self.summary_sink = Some(Box::new(sink));
    }

    /// The uuids of every item implementing `iface`, in uuid order, as a
    /// shared slice. The slice is memoized: repeated calls between index
    /// changes hand out the same allocation, so the per-query cost is one
    /// map probe and an `Arc` bump instead of a posting-set clone.
    pub fn interface_uuids(&mut self, iface: &InterfaceId) -> Arc<[SvcUuid]> {
        if let Some(hit) = self.iface_uuid_cache.get(iface) {
            return Arc::clone(hit);
        }
        let uuids: Arc<[SvcUuid]> = match self.by_interface.get(iface) {
            Some(set) => set.iter().copied().collect::<Vec<_>>().into(),
            None => Vec::new().into(),
        };
        self.iface_uuid_cache
            .insert(iface.clone(), Arc::clone(&uuids));
        uuids
    }

    /// Deploy a LUS on `host`, join it to the discovery `group`, and start
    /// its lease reaper (fires every `reap_every`).
    pub fn deploy(
        env: &mut Env,
        host: HostId,
        name: &str,
        group: &str,
        policy: LeasePolicy,
        reap_every: SimDuration,
    ) -> LusHandle {
        let lus = LookupService::new(host, group, policy);
        let service = env.deploy(host, name, lus);
        env.topo.join_group(host, group);
        env.schedule_every(reap_every, reap_every, move |env| {
            // Keep reaping as long as the LUS is deployed.
            env.with_service(service, |env, lus: &mut LookupService| lus.reap(env))
                .is_ok()
        });
        // A Jini LUS registers itself in its own registry, so browsers see
        // it in the service listing. Its lease is renewed by the reaper's
        // host being itself — registered without expiry pressure (policy
        // max) and re-registered by the reaper if it ever lapses.
        let self_item = ServiceItem::new(
            SvcUuid::NIL,
            host,
            service,
            vec![crate::ids::interfaces::LOOKUP_SERVICE.into()],
            vec![
                crate::attributes::Entry::Name(name.to_string()),
                crate::attributes::Entry::ServiceType("INFRASTRUCTURE".into()),
            ],
        );
        let _ = env.with_service(service, |env, lus: &mut LookupService| {
            let max = lus.reg_leases.policy().max_duration;
            let reg = lus.register(env, self_item, Some(max));
            // Keep the self-registration alive forever.
            let lease = reg.lease.id;
            env.schedule_every(max / 2, max / 2, move |env| {
                env.with_service(service, |env, lus: &mut LookupService| {
                    lus.renew(env, lease, None).is_ok()
                })
                .unwrap_or(false)
            });
        });
        LusHandle { service, host }
    }

    /// The discovery group this LUS serves.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// The host this LUS runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Register (or re-register) a service item. A nil uuid is assigned a
    /// fresh one — the Jini "assign me an id" flow.
    pub fn register(
        &mut self,
        env: &mut Env,
        mut item: ServiceItem,
        duration: Option<SimDuration>,
    ) -> ServiceRegistration {
        let span = if env.tracing_enabled() {
            let label = item.name().unwrap_or("(unnamed)").to_string();
            env.span_start("lus.register", &label, self.host)
        } else {
            SpanId::INVALID
        };
        let now = env.now();
        if item.uuid.is_nil() {
            item.uuid = SvcUuid::generate(env.rng());
        }
        let uuid = item.uuid;
        let item = Arc::new(item);
        let old = self.items.insert(uuid, Arc::clone(&item));
        if let Some(old) = &old {
            self.unindex_item(env, old);
        }
        self.index_item(env, &item);
        let lease = self.reg_leases.grant(now, duration, uuid);
        self.registrations_total += 1;
        env.lifecycle("lease", lease.id.0, "grant", lease.expires.as_nanos());
        if env.hb_enabled() {
            env.hb_write(self.host, &hb_items_key(self.host));
        }
        self.fire(env, now, uuid, old.as_deref(), Some(&item));
        if span.is_valid() {
            env.span_field(span, "uuid", uuid.to_string());
            env.span_field(span, "replaced", old.is_some());
        }
        env.span_end(span, Outcome::Ok);
        ServiceRegistration { uuid, lease }
    }

    /// Renew a registration lease. Takes the env so the successful
    /// transition lands in the lifecycle stream (checked against the
    /// lease state machine by `sensorcer-verify`).
    pub fn renew(
        &mut self,
        env: &mut Env,
        lease: LeaseId,
        duration: Option<SimDuration>,
    ) -> Result<Lease, LeaseError> {
        let now = env.now();
        let renewed = self.reg_leases.renew(now, lease, duration)?;
        env.lifecycle("lease", lease.0, "renew", renewed.expires.as_nanos());
        Ok(renewed)
    }

    /// Cancel a registration, removing the item immediately.
    pub fn cancel(&mut self, env: &mut Env, lease: LeaseId) -> Result<(), LeaseError> {
        let uuid = self.reg_leases.cancel(lease)?;
        let now = env.now();
        env.lifecycle("lease", lease.0, "cancel", 0);
        if env.hb_enabled() {
            env.hb_write(self.host, &hb_items_key(self.host));
        }
        if let Some(old) = self.items.remove(&uuid) {
            self.unindex_item(env, &old);
            self.fire(env, now, uuid, Some(&old), None);
        }
        Ok(())
    }

    /// Replace the attributes of a live registration (e.g. a provider
    /// updating its `Comment`). Fires `MatchToMatch`/transition events.
    ///
    /// The pre-modification snapshot exists only while at least one live
    /// event registration might observe the transition; without listeners
    /// the attributes are swapped in place.
    pub fn modify_attributes(
        &mut self,
        env: &mut Env,
        uuid: SvcUuid,
        attributes: Vec<crate::attributes::Entry>,
    ) -> bool {
        let now = env.now();
        let Some(existing) = self.items.get(&uuid) else {
            return false;
        };
        let has_listeners = self.event_regs.live(now).next().is_some();
        if has_listeners {
            let old = Arc::clone(existing);
            let mut item = (*old).clone();
            item.attributes = attributes;
            let new = Arc::new(item);
            self.items.insert(uuid, Arc::clone(&new));
            self.reindex_name(uuid, old.name(), new.name());
            self.fire(env, now, uuid, Some(&old), Some(&new));
        } else {
            let old_name = existing.name().map(str::to_string);
            // lint:allow(unwrap): uuid presence checked by the match above
            let item = self.items.get_mut(&uuid).expect("checked above");
            // Clones the item only if a lookup result still shares it.
            Arc::make_mut(item).attributes = attributes;
            let new_name = self.items[&uuid].name().map(str::to_string);
            self.reindex_name(uuid, old_name.as_deref(), new_name.as_deref());
        }
        true
    }

    fn reindex_name(&mut self, uuid: SvcUuid, old: Option<&str>, new: Option<&str>) {
        if old == new {
            return;
        }
        if let Some(name) = old {
            if let Some(set) = self.by_name.get_mut(name) {
                set.remove(&uuid);
                if set.is_empty() {
                    self.by_name.remove(name);
                }
            }
        }
        if let Some(name) = new {
            self.by_name
                .entry(name.to_string())
                .or_default()
                .insert(uuid);
        }
    }

    /// Visit every registered item matching `template` in uuid order, up
    /// to `max`, without cloning anything. The visitor returns `true` to
    /// keep scanning, `false` to stop early.
    ///
    /// The indexes only narrow the candidate set — every candidate still
    /// passes through [`ServiceTemplate::matches`], and candidate sets
    /// iterate in uuid order, so the visited sequence is exactly what a
    /// linear scan of the item map would produce.
    pub fn lookup_visit(
        &self,
        template: &ServiceTemplate,
        max: usize,
        mut visit: impl FnMut(&Arc<ServiceItem>) -> bool,
    ) {
        if max == 0 {
            return;
        }
        let mut seen = 0usize;
        let mut emit = |item: &Arc<ServiceItem>| -> bool {
            if !template.matches(item) {
                return true;
            }
            seen += 1;
            visit(item) && seen < max
        };

        // Explicit ids: direct map hits, in uuid order for scan parity.
        if !template.ids.is_empty() {
            let mut ids = template.ids.clone();
            ids.sort_unstable();
            ids.dedup();
            for id in ids {
                if let Some(item) = self.items.get(&id) {
                    if !emit(item) {
                        return;
                    }
                }
            }
            return;
        }

        // Interface constraints: intersect by scanning the smallest
        // posting set. An interface nobody implements means no matches.
        let mut candidates: Option<&BTreeSet<SvcUuid>> = None;
        for iface in &template.interfaces {
            match self.by_interface.get(iface) {
                None => return,
                Some(set) => {
                    if candidates.is_none_or(|c| set.len() < c.len()) {
                        candidates = Some(set);
                    }
                }
            }
        }
        // Otherwise an exact-name constraint selects via the name index.
        if candidates.is_none() {
            if let Some(name) = template.exact_name() {
                match self.by_name.get(name) {
                    None => return,
                    Some(set) => candidates = Some(set),
                }
            }
        }

        match candidates {
            // A posting set only helps if it actually narrows the scan: a
            // per-uuid map probe costs more than walking one entry, so if
            // the set covers most of the registry (e.g. an interface every
            // service implements) the sequential scan wins.
            Some(set) if set.len() * 2 < self.items.len() => {
                for uuid in set {
                    if !emit(&self.items[uuid]) {
                        return;
                    }
                }
            }
            _ => {
                for item in self.items.values() {
                    if !emit(item) {
                        return;
                    }
                }
            }
        }
    }

    /// All currently registered items matching `template`, up to `max`.
    /// Returns shared handles; clone the inner item only at a wire
    /// boundary.
    pub fn lookup(&self, template: &ServiceTemplate, max: usize) -> Vec<Arc<ServiceItem>> {
        let mut out = Vec::new();
        self.lookup_visit(template, max, |item| {
            out.push(Arc::clone(item));
            true
        });
        out
    }

    /// First match, if any.
    pub fn lookup_one(&self, template: &ServiceTemplate) -> Option<Arc<ServiceItem>> {
        let mut hit = None;
        self.lookup_visit(template, 1, |item| {
            hit = Some(Arc::clone(item));
            false
        });
        hit
    }

    /// Register interest in service transitions.
    pub fn notify(
        &mut self,
        now: SimTime,
        template: ServiceTemplate,
        transitions: Vec<Transition>,
        sink: EventSink,
        duration: Option<SimDuration>,
    ) -> Lease {
        self.event_regs.grant(
            now,
            duration,
            EventReg {
                template,
                transitions,
                sink,
                seq: 0,
            },
        )
    }

    /// Cancel an event registration.
    pub fn cancel_notify(&mut self, lease: LeaseId) -> Result<(), LeaseError> {
        self.event_regs.cancel(lease).map(|_| ())
    }

    /// Expire overdue registrations and event interests, firing departure
    /// events. Called by the reaper timer. Expiries are counted (globally
    /// and against this LUS host) and, with tracing on, grouped under a
    /// `lus.reap` span so a service's silent departure from the network is
    /// attributable to a lapsed lease.
    pub fn reap(&mut self, env: &mut Env) {
        let now = env.now();
        let reaped = self.reg_leases.reap(now);
        let span = if !reaped.is_empty() && env.tracing_enabled() {
            let s = env.span_start("lus.reap", &self.group, self.host);
            env.span_field(s, "expired", reaped.len());
            s
        } else {
            SpanId::INVALID
        };
        if !reaped.is_empty() {
            env.metrics
                .add_host(self.host, keys::LEASES_REAPED, reaped.len() as u64);
            if env.hb_enabled() {
                env.hb_write(self.host, &hb_items_key(self.host));
            }
        }
        for (id, uuid) in reaped {
            env.lifecycle("lease", id.0, "reap", now.as_nanos());
            if let Some(old) = self.items.remove(&uuid) {
                self.unindex_item(env, &old);
                self.fire(env, now, uuid, Some(&old), None);
            }
        }
        env.span_end(span, Outcome::Ok);
        self.event_regs.reap(now);
    }

    /// Current posting-set sizes per interface — the seed snapshot the
    /// hierarchical root registry takes when a subnet LUS attaches.
    pub fn interface_counts(&self) -> Vec<(InterfaceId, u64)> {
        self.by_interface
            .iter()
            .map(|(iface, set)| (iface.clone(), set.len() as u64))
            .collect()
    }

    /// Number of live registered services.
    pub fn item_count(&self) -> usize {
        self.items.len()
    }

    /// Total registrations ever accepted.
    pub fn registrations_total(&self) -> u64 {
        self.registrations_total
    }

    fn fire(
        &mut self,
        env: &mut Env,
        now: SimTime,
        uuid: SvcUuid,
        old: Option<&ServiceItem>,
        new: Option<&ServiceItem>,
    ) {
        let host = self.host;
        // Collect live event registrations; deliver outside the iteration
        // to keep the borrow checker honest about `self`.
        let live_ids: Vec<LeaseId> = self.event_regs.live(now).map(|(id, _)| id).collect();
        for id in live_ids {
            let Ok(reg) = self.event_regs.get_mut(now, id) else {
                continue;
            };
            let was = old.is_some_and(|i| reg.template.matches(i));
            let is = new.is_some_and(|i| reg.template.matches(i));
            let transition = match (was, is) {
                (false, true) => Transition::NoMatchToMatch,
                (true, false) => Transition::MatchToNoMatch,
                (true, true) => Transition::MatchToMatch,
                (false, false) => continue,
            };
            if !reg.transitions.contains(&transition) {
                continue;
            }
            reg.seq += 1;
            let event = ServiceEvent {
                seq: reg.seq,
                at: now,
                uuid,
                transition,
                item: new.cloned().or_else(|| old.cloned()),
            };
            reg.sink.send(env, host, &event);
        }
    }
}

impl std::fmt::Debug for LookupService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LookupService")
            .field("host", &self.host)
            .field("group", &self.group)
            .field("items", &self.items.len())
            .field("event_regs", &self.event_regs.len())
            .finish()
    }
}

/// Client-side handle (the "discovered registrar"): wraps remote calls
/// with honest wire accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LusHandle {
    pub service: ServiceId,
    pub host: HostId,
}

impl LusHandle {
    /// Register a service item from `from`.
    pub fn register(
        &self,
        env: &mut Env,
        from: HostId,
        item: ServiceItem,
        duration: Option<SimDuration>,
    ) -> Result<ServiceRegistration, NetError> {
        let req = item.encoded_len() + 16;
        env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            req,
            |env, lus: &mut LookupService| {
                let reg = lus.register(env, item, duration);
                (reg, 40)
            },
        )
    }

    /// Renew a registration lease from `from`.
    pub fn renew(
        &self,
        env: &mut Env,
        from: HostId,
        lease: LeaseId,
        duration: Option<SimDuration>,
    ) -> Result<Result<Lease, LeaseError>, NetError> {
        env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            24,
            |env, lus: &mut LookupService| (lus.renew(env, lease, duration), 24),
        )
    }

    /// Cancel a registration from `from`.
    pub fn cancel(
        &self,
        env: &mut Env,
        from: HostId,
        lease: LeaseId,
    ) -> Result<Result<(), LeaseError>, NetError> {
        env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            16,
            |env, lus: &mut LookupService| (lus.cancel(env, lease), 8),
        )
    }

    /// Remote lookup. Matched items are cloned exactly once, here at the
    /// simulated wire boundary.
    pub fn lookup(
        &self,
        env: &mut Env,
        from: HostId,
        template: &ServiceTemplate,
        max: usize,
    ) -> Result<Vec<ServiceItem>, NetError> {
        let req = template.encoded_len() + 8;
        let template = template.clone();
        let out = env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            req,
            move |_env, lus: &mut LookupService| {
                let mut found = Vec::new();
                let mut resp = 0usize;
                lus.lookup_visit(&template, max, |item| {
                    resp += item.encoded_len();
                    found.push((**item).clone());
                    true
                });
                (found, resp.max(8))
            },
        );
        if out.is_ok() && env.hb_enabled() {
            // The response edge has merged the LUS clock into `from`, so a
            // clean tree reads as ordered here.
            env.hb_read(from, &hb_items_key(self.host));
        }
        out
    }

    /// Remote bulk uuid lookup by interface: the registry-side cost is a
    /// cache probe and an `Arc` bump (no posting-set clone); the wire is
    /// charged 16 bytes per uuid as if the slice were marshalled.
    pub fn lookup_interface_uuids(
        &self,
        env: &mut Env,
        from: HostId,
        iface: &InterfaceId,
    ) -> Result<Arc<[SvcUuid]>, NetError> {
        let req = iface.encoded_len() + 8;
        let iface = iface.clone();
        let out = env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            req,
            move |_env, lus: &mut LookupService| {
                let uuids = lus.interface_uuids(&iface);
                let resp = (uuids.len() * 16).max(8);
                (uuids, resp)
            },
        );
        if out.is_ok() && env.hb_enabled() {
            env.hb_read(from, &hb_items_key(self.host));
        }
        out
    }

    /// Remote single lookup.
    pub fn lookup_one(
        &self,
        env: &mut Env,
        from: HostId,
        template: &ServiceTemplate,
    ) -> Result<Option<ServiceItem>, NetError> {
        self.lookup_first_excluding(env, from, template, None)
    }

    /// Remote lookup of the first match whose name is not `exclude`. The
    /// registry visits candidates in place and clones only the one item
    /// that is returned.
    pub fn lookup_first_excluding(
        &self,
        env: &mut Env,
        from: HostId,
        template: &ServiceTemplate,
        exclude: Option<&str>,
    ) -> Result<Option<ServiceItem>, NetError> {
        let req = template.encoded_len() + 8;
        let template = template.clone();
        let exclude = exclude.map(str::to_string);
        let out = env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            req,
            move |_env, lus: &mut LookupService| {
                let mut hit: Option<ServiceItem> = None;
                lus.lookup_visit(&template, usize::MAX, |item| {
                    if exclude.as_deref().is_some_and(|x| item.name() == Some(x)) {
                        return true;
                    }
                    hit = Some((**item).clone());
                    false
                });
                let resp = hit.as_ref().map_or(8, |i| i.encoded_len());
                (hit, resp)
            },
        );
        if out.is_ok() && env.hb_enabled() {
            env.hb_read(from, &hb_items_key(self.host));
        }
        out
    }

    /// Register an event listener.
    pub fn notify(
        &self,
        env: &mut Env,
        from: HostId,
        template: ServiceTemplate,
        transitions: Vec<Transition>,
        sink: EventSink,
        duration: Option<SimDuration>,
    ) -> Result<Lease, NetError> {
        let req = template.encoded_len() + 24;
        env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            req,
            move |env, lus: &mut LookupService| {
                let now = env.now();
                (lus.notify(now, template, transitions, sink, duration), 24)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Entry;
    use crate::ids::interfaces;
    use sensorcer_sim::prelude::*;

    fn setup() -> (Env, HostId, HostId, LusHandle) {
        let mut env = Env::with_seed(1);
        let lab = env.add_host("lab", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        let lus = LookupService::deploy(
            &mut env,
            lab,
            "Lookup Service",
            "public",
            LeasePolicy::default(),
            SimDuration::from_millis(500),
        );
        (env, lab, client, lus)
    }

    fn sensor_item(name: &str, host: HostId, svc: u64) -> ServiceItem {
        ServiceItem::new(
            SvcUuid::NIL,
            host,
            ServiceId(svc),
            vec![interfaces::SENSOR_DATA_ACCESSOR.into()],
            vec![
                Entry::Name(name.into()),
                Entry::ServiceType("ELEMENTARY".into()),
            ],
        )
    }

    #[test]
    fn register_assigns_uuid_and_lookup_finds() {
        let (mut env, lab, client, lus) = setup();
        let reg = lus
            .register(&mut env, client, sensor_item("Neem-Sensor", lab, 9), None)
            .unwrap();
        assert!(!reg.uuid.is_nil());
        let found = lus
            .lookup(
                &mut env,
                client,
                &ServiceTemplate::by_name("Neem-Sensor"),
                10,
            )
            .unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].uuid, reg.uuid);
        assert_eq!(found[0].service, ServiceId(9));
    }

    #[test]
    fn lookup_by_interface_and_max() {
        let (mut env, lab, client, lus) = setup();
        for (i, name) in ["Neem", "Jade", "Coral", "Diamond"].iter().enumerate() {
            lus.register(&mut env, client, sensor_item(name, lab, i as u64), None)
                .unwrap();
        }
        let tpl = ServiceTemplate::by_interface(interfaces::SENSOR_DATA_ACCESSOR);
        assert_eq!(lus.lookup(&mut env, client, &tpl, 100).unwrap().len(), 4);
        assert_eq!(lus.lookup(&mut env, client, &tpl, 2).unwrap().len(), 2);
        assert!(lus
            .lookup_one(&mut env, client, &ServiceTemplate::by_name("Jade"))
            .unwrap()
            .is_some());
        assert!(lus
            .lookup_one(&mut env, client, &ServiceTemplate::by_name("Nope"))
            .unwrap()
            .is_none());
    }

    #[test]
    fn unrenewed_lease_expires_and_service_leaves() {
        let (mut env, lab, client, lus) = setup();
        lus.register(
            &mut env,
            client,
            sensor_item("Neem", lab, 1),
            Some(SimDuration::from_secs(5)),
        )
        .unwrap();
        env.run_for(SimDuration::from_secs(4));
        let tpl = ServiceTemplate::by_interface(interfaces::SENSOR_DATA_ACCESSOR);
        assert_eq!(lus.lookup(&mut env, client, &tpl, 10).unwrap().len(), 1);
        env.run_for(SimDuration::from_secs(2));
        assert_eq!(
            lus.lookup(&mut env, client, &tpl, 10).unwrap().len(),
            0,
            "reaper must drop the expired registration"
        );
    }

    #[test]
    fn renewal_keeps_service_alive() {
        let (mut env, lab, client, lus) = setup();
        let reg = lus
            .register(
                &mut env,
                client,
                sensor_item("Neem", lab, 1),
                Some(SimDuration::from_secs(5)),
            )
            .unwrap();
        for _ in 0..5 {
            env.run_for(SimDuration::from_secs(3));
            lus.renew(
                &mut env,
                client,
                reg.lease.id,
                Some(SimDuration::from_secs(5)),
            )
            .unwrap()
            .unwrap();
        }
        assert_eq!(
            lus.lookup(
                &mut env,
                client,
                &ServiceTemplate::by_interface(interfaces::SENSOR_DATA_ACCESSOR),
                10
            )
            .unwrap()
            .len(),
            1
        );
    }

    #[test]
    fn cancel_removes_immediately() {
        let (mut env, lab, client, lus) = setup();
        let reg = lus
            .register(&mut env, client, sensor_item("Neem", lab, 1), None)
            .unwrap();
        lus.cancel(&mut env, client, reg.lease.id).unwrap().unwrap();
        assert_eq!(
            lus.lookup(
                &mut env,
                client,
                &ServiceTemplate::by_interface(interfaces::SENSOR_DATA_ACCESSOR),
                10
            )
            .unwrap()
            .len(),
            0
        );
        // Double cancel is an application-level error, not a crash.
        assert!(lus.cancel(&mut env, client, reg.lease.id).unwrap().is_err());
    }

    #[test]
    fn events_fire_on_join_and_leave() {
        let (mut env, lab, client, lus) = setup();
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let seen2 = std::rc::Rc::clone(&seen);
        let sink = EventSink {
            host: client,
            deliver: Box::new(move |_env, ev| seen2.borrow_mut().push(ev.transition)),
        };
        lus.notify(
            &mut env,
            client,
            ServiceTemplate::by_interface(interfaces::SENSOR_DATA_ACCESSOR),
            vec![Transition::NoMatchToMatch, Transition::MatchToNoMatch],
            sink,
            Some(SimDuration::from_secs(300)),
        )
        .unwrap();

        let reg = lus
            .register(
                &mut env,
                client,
                sensor_item("Neem", lab, 1),
                Some(SimDuration::from_secs(3)),
            )
            .unwrap();
        assert_eq!(*seen.borrow(), vec![Transition::NoMatchToMatch]);

        // Let it expire: a departure event follows from the reaper.
        env.run_for(SimDuration::from_secs(5));
        assert_eq!(
            *seen.borrow(),
            vec![Transition::NoMatchToMatch, Transition::MatchToNoMatch]
        );
        let _ = reg;
    }

    #[test]
    fn attribute_modification_fires_match_to_match() {
        let (mut env, lab, client, lus) = setup();
        let seen = std::rc::Rc::new(std::cell::RefCell::new(0u32));
        let seen2 = std::rc::Rc::clone(&seen);
        lus.notify(
            &mut env,
            client,
            ServiceTemplate::any(),
            vec![Transition::MatchToMatch],
            EventSink {
                host: client,
                deliver: Box::new(move |_e, _ev| *seen2.borrow_mut() += 1),
            },
            None,
        )
        .unwrap();
        let reg = lus
            .register(&mut env, client, sensor_item("Neem", lab, 1), None)
            .unwrap();
        env.with_service(lus.service, |env, l: &mut LookupService| {
            assert!(l.modify_attributes(env, reg.uuid, vec![Entry::Name("Renamed".into())]));
            assert!(!l.modify_attributes(env, SvcUuid(999), vec![]));
        })
        .unwrap();
        assert_eq!(*seen.borrow(), 1);
        let found = lus
            .lookup_one(&mut env, client, &ServiceTemplate::by_name("Renamed"))
            .unwrap();
        assert!(found.is_some());
    }

    #[test]
    fn events_to_dead_listeners_are_dropped_silently() {
        let (mut env, lab, client, lus) = setup();
        lus.notify(
            &mut env,
            client,
            ServiceTemplate::any(),
            vec![Transition::NoMatchToMatch],
            EventSink {
                host: client,
                deliver: Box::new(|_e, _ev| panic!("unreachable listener")),
            },
            None,
        )
        .unwrap();
        env.crash_host(client);
        // Registration from the lab host itself still works; event delivery
        // fails silently.
        env.with_service(lus.service, |env, l: &mut LookupService| {
            l.register(env, sensor_item("Neem", lab, 1), None);
        })
        .unwrap();
    }

    #[test]
    fn interface_uuids_shares_one_allocation_until_invalidated() {
        let (mut env, lab, client, lus) = setup();
        let reg_a = lus
            .register(&mut env, client, sensor_item("A", lab, 1), None)
            .unwrap();
        let iface: InterfaceId = interfaces::SENSOR_DATA_ACCESSOR.into();
        let first = lus
            .lookup_interface_uuids(&mut env, client, &iface)
            .unwrap();
        let again = lus
            .lookup_interface_uuids(&mut env, client, &iface)
            .unwrap();
        assert_eq!(first.len(), 1);
        assert!(
            Arc::ptr_eq(&first, &again),
            "repeat queries share the memoized slice"
        );

        // A registration touching the interface invalidates the cache.
        let reg_b = lus
            .register(&mut env, client, sensor_item("B", lab, 2), None)
            .unwrap();
        let grown = lus
            .lookup_interface_uuids(&mut env, client, &iface)
            .unwrap();
        assert_eq!(grown.len(), 2);
        assert!(!Arc::ptr_eq(&first, &grown));
        let mut expect = vec![reg_a.uuid, reg_b.uuid];
        expect.sort_unstable();
        assert_eq!(grown.as_ref(), expect.as_slice(), "uuid order preserved");

        // Departure (cancel) also invalidates; unknown interfaces are an
        // empty shared slice, not an error.
        lus.cancel(&mut env, client, reg_a.lease.id)
            .unwrap()
            .unwrap();
        let shrunk = lus
            .lookup_interface_uuids(&mut env, client, &iface)
            .unwrap();
        assert_eq!(shrunk.as_ref(), &[reg_b.uuid]);
        let none = lus
            .lookup_interface_uuids(&mut env, client, &InterfaceId::new("NoSuch"))
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn interface_uuids_cache_survives_unrelated_churn_and_expiry() {
        let (mut env, lab, client, lus) = setup();
        lus.register(&mut env, client, sensor_item("A", lab, 1), None)
            .unwrap();
        let iface: InterfaceId = interfaces::SENSOR_DATA_ACCESSOR.into();
        let first = lus
            .lookup_interface_uuids(&mut env, client, &iface)
            .unwrap();
        // Churn on a different interface must not invalidate this slice.
        let other = ServiceItem::new(
            SvcUuid::NIL,
            lab,
            ServiceId(7),
            vec![interfaces::CYBERNODE.into()],
            vec![Entry::Name("node".into())],
        );
        lus.register(&mut env, client, other, None).unwrap();
        let again = lus
            .lookup_interface_uuids(&mut env, client, &iface)
            .unwrap();
        assert!(Arc::ptr_eq(&first, &again));

        // Lease expiry (reaper-driven removal) must invalidate.
        lus.register(
            &mut env,
            client,
            sensor_item("Fleeting", lab, 8),
            Some(SimDuration::from_secs(2)),
        )
        .unwrap();
        env.run_for(SimDuration::from_secs(4));
        let after = lus
            .lookup_interface_uuids(&mut env, client, &iface)
            .unwrap();
        assert_eq!(after.len(), 1, "expired registration dropped");
    }

    #[test]
    fn registry_stats() {
        let (mut env, lab, client, lus) = setup();
        lus.register(&mut env, client, sensor_item("A", lab, 1), None)
            .unwrap();
        lus.register(&mut env, client, sensor_item("B", lab, 2), None)
            .unwrap();
        env.with_service(lus.service, |_e, l: &mut LookupService| {
            // The LUS registers itself, plus the two sensors.
            assert_eq!(l.item_count(), 3);
            assert_eq!(l.registrations_total(), 3);
            assert_eq!(l.group(), "public");
        })
        .unwrap();
    }
}
