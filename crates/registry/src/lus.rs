//! The lookup service (LUS) — Jini's service registry (§IV.B).
//!
//! Providers register [`ServiceItem`]s under leases; requestors locate
//! services by [`ServiceTemplate`]; listeners get [`ServiceEvent`]s when
//! the set of matching registrations changes. A reaper timer expires
//! un-renewed registrations, which is what makes a SenSORCER network
//! self-healing: "if the service gets disabled then the lease is not
//! renewed and the service is deregistered from the LUS and thus leaves
//! the network".

use std::collections::BTreeMap;

use sensorcer_sim::env::{Env, ServiceId};
use sensorcer_sim::time::{SimDuration, SimTime};
use sensorcer_sim::topology::{HostId, NetError};
use sensorcer_sim::wire::{ProtocolStack, WireEncode};

use crate::events::{EventSink, ServiceEvent, Transition};
use crate::ids::SvcUuid;
use crate::item::{ServiceItem, ServiceTemplate};
use crate::lease::{Lease, LeaseError, LeaseId, LeasePolicy, LeaseTable};

/// Result of registering a service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceRegistration {
    pub uuid: SvcUuid,
    pub lease: Lease,
}

/// One event-interest registration.
struct EventReg {
    template: ServiceTemplate,
    transitions: Vec<Transition>,
    sink: EventSink,
    seq: u64,
}

/// The registry state. Deploy with [`LookupService::deploy`]; interact
/// remotely through [`LusHandle`].
pub struct LookupService {
    pub host: HostId,
    group: String,
    items: BTreeMap<SvcUuid, ServiceItem>,
    /// Maps registration leases to the uuid they keep alive.
    reg_leases: LeaseTable<SvcUuid>,
    event_regs: LeaseTable<EventReg>,
    registrations_total: u64,
}

impl LookupService {
    pub fn new(host: HostId, group: impl Into<String>, policy: LeasePolicy) -> LookupService {
        LookupService {
            host,
            group: group.into(),
            items: BTreeMap::new(),
            reg_leases: LeaseTable::new(policy),
            event_regs: LeaseTable::new(policy),
            registrations_total: 0,
        }
    }

    /// Deploy a LUS on `host`, join it to the discovery `group`, and start
    /// its lease reaper (fires every `reap_every`).
    pub fn deploy(
        env: &mut Env,
        host: HostId,
        name: &str,
        group: &str,
        policy: LeasePolicy,
        reap_every: SimDuration,
    ) -> LusHandle {
        let lus = LookupService::new(host, group, policy);
        let service = env.deploy(host, name, lus);
        env.topo.join_group(host, group);
        env.schedule_every(reap_every, reap_every, move |env| {
            // Keep reaping as long as the LUS is deployed.
            env.with_service(service, |env, lus: &mut LookupService| lus.reap(env))
                .is_ok()
        });
        // A Jini LUS registers itself in its own registry, so browsers see
        // it in the service listing. Its lease is renewed by the reaper's
        // host being itself — registered without expiry pressure (policy
        // max) and re-registered by the reaper if it ever lapses.
        let self_item = ServiceItem::new(
            SvcUuid::NIL,
            host,
            service,
            vec![crate::ids::interfaces::LOOKUP_SERVICE.into()],
            vec![
                crate::attributes::Entry::Name(name.to_string()),
                crate::attributes::Entry::ServiceType("INFRASTRUCTURE".into()),
            ],
        );
        let _ = env.with_service(service, |env, lus: &mut LookupService| {
            let max = lus.reg_leases.policy().max_duration;
            let reg = lus.register(env, self_item, Some(max));
            // Keep the self-registration alive forever.
            let lease = reg.lease.id;
            env.schedule_every(max / 2, max / 2, move |env| {
                env.with_service(service, |env, lus: &mut LookupService| {
                    let now = env.now();
                    lus.renew(now, lease, None).is_ok()
                })
                .unwrap_or(false)
            });
        });
        LusHandle { service, host }
    }

    /// The discovery group this LUS serves.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// Register (or re-register) a service item. A nil uuid is assigned a
    /// fresh one — the Jini "assign me an id" flow.
    pub fn register(
        &mut self,
        env: &mut Env,
        mut item: ServiceItem,
        duration: Option<SimDuration>,
    ) -> ServiceRegistration {
        let now = env.now();
        if item.uuid.is_nil() {
            item.uuid = SvcUuid::generate(env.rng());
        }
        let uuid = item.uuid;
        let old = self.items.insert(uuid, item.clone());
        let lease = self.reg_leases.grant(now, duration, uuid);
        self.registrations_total += 1;
        self.fire(env, now, uuid, old.as_ref(), Some(&item));
        ServiceRegistration { uuid, lease }
    }

    /// Renew a registration lease.
    pub fn renew(
        &mut self,
        now: SimTime,
        lease: LeaseId,
        duration: Option<SimDuration>,
    ) -> Result<Lease, LeaseError> {
        self.reg_leases.renew(now, lease, duration)
    }

    /// Cancel a registration, removing the item immediately.
    pub fn cancel(&mut self, env: &mut Env, lease: LeaseId) -> Result<(), LeaseError> {
        let uuid = self.reg_leases.cancel(lease)?;
        let now = env.now();
        if let Some(old) = self.items.remove(&uuid) {
            self.fire(env, now, uuid, Some(&old), None);
        }
        Ok(())
    }

    /// Replace the attributes of a live registration (e.g. a provider
    /// updating its `Comment`). Fires `MatchToMatch`/transition events.
    pub fn modify_attributes(
        &mut self,
        env: &mut Env,
        uuid: SvcUuid,
        attributes: Vec<crate::attributes::Entry>,
    ) -> bool {
        let now = env.now();
        match self.items.get_mut(&uuid) {
            Some(item) => {
                let old = item.clone();
                item.attributes = attributes;
                let new = item.clone();
                self.fire(env, now, uuid, Some(&old), Some(&new));
                true
            }
            None => false,
        }
    }

    /// All currently registered items matching `template`, up to `max`.
    pub fn lookup(&self, template: &ServiceTemplate, max: usize) -> Vec<ServiceItem> {
        self.items
            .values()
            .filter(|i| template.matches(i))
            .take(max)
            .cloned()
            .collect()
    }

    /// First match, if any.
    pub fn lookup_one(&self, template: &ServiceTemplate) -> Option<ServiceItem> {
        self.items.values().find(|i| template.matches(i)).cloned()
    }

    /// Register interest in service transitions.
    pub fn notify(
        &mut self,
        now: SimTime,
        template: ServiceTemplate,
        transitions: Vec<Transition>,
        sink: EventSink,
        duration: Option<SimDuration>,
    ) -> Lease {
        self.event_regs
            .grant(now, duration, EventReg { template, transitions, sink, seq: 0 })
    }

    /// Cancel an event registration.
    pub fn cancel_notify(&mut self, lease: LeaseId) -> Result<(), LeaseError> {
        self.event_regs.cancel(lease).map(|_| ())
    }

    /// Expire overdue registrations and event interests, firing departure
    /// events. Called by the reaper timer.
    pub fn reap(&mut self, env: &mut Env) {
        let now = env.now();
        for (_, uuid) in self.reg_leases.reap(now) {
            if let Some(old) = self.items.remove(&uuid) {
                self.fire(env, now, uuid, Some(&old), None);
            }
        }
        self.event_regs.reap(now);
    }

    /// Number of live registered services.
    pub fn item_count(&self) -> usize {
        self.items.len()
    }

    /// Total registrations ever accepted.
    pub fn registrations_total(&self) -> u64 {
        self.registrations_total
    }

    fn fire(
        &mut self,
        env: &mut Env,
        now: SimTime,
        uuid: SvcUuid,
        old: Option<&ServiceItem>,
        new: Option<&ServiceItem>,
    ) {
        let host = self.host;
        // Collect live event registrations; deliver outside the iteration
        // to keep the borrow checker honest about `self`.
        let live_ids: Vec<LeaseId> = self.event_regs.live(now).map(|(id, _)| id).collect();
        for id in live_ids {
            let Ok(reg) = self.event_regs.get_mut(now, id) else { continue };
            let was = old.is_some_and(|i| reg.template.matches(i));
            let is = new.is_some_and(|i| reg.template.matches(i));
            let transition = match (was, is) {
                (false, true) => Transition::NoMatchToMatch,
                (true, false) => Transition::MatchToNoMatch,
                (true, true) => Transition::MatchToMatch,
                (false, false) => continue,
            };
            if !reg.transitions.contains(&transition) {
                continue;
            }
            reg.seq += 1;
            let event = ServiceEvent {
                seq: reg.seq,
                at: now,
                uuid,
                transition,
                item: new.cloned().or_else(|| old.cloned()),
            };
            reg.sink.send(env, host, &event);
        }
    }
}

impl std::fmt::Debug for LookupService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LookupService")
            .field("host", &self.host)
            .field("group", &self.group)
            .field("items", &self.items.len())
            .field("event_regs", &self.event_regs.len())
            .finish()
    }
}

/// Client-side handle (the "discovered registrar"): wraps remote calls
/// with honest wire accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LusHandle {
    pub service: ServiceId,
    pub host: HostId,
}

impl LusHandle {
    /// Register a service item from `from`.
    pub fn register(
        &self,
        env: &mut Env,
        from: HostId,
        item: ServiceItem,
        duration: Option<SimDuration>,
    ) -> Result<ServiceRegistration, NetError> {
        let req = item.encoded_len() + 16;
        env.call(from, self.service, ProtocolStack::Tcp, req, |env, lus: &mut LookupService| {
            let reg = lus.register(env, item, duration);
            (reg, 40)
        })
    }

    /// Renew a registration lease from `from`.
    pub fn renew(
        &self,
        env: &mut Env,
        from: HostId,
        lease: LeaseId,
        duration: Option<SimDuration>,
    ) -> Result<Result<Lease, LeaseError>, NetError> {
        env.call(from, self.service, ProtocolStack::Tcp, 24, |env, lus: &mut LookupService| {
            let now = env.now();
            (lus.renew(now, lease, duration), 24)
        })
    }

    /// Cancel a registration from `from`.
    pub fn cancel(
        &self,
        env: &mut Env,
        from: HostId,
        lease: LeaseId,
    ) -> Result<Result<(), LeaseError>, NetError> {
        env.call(from, self.service, ProtocolStack::Tcp, 16, |env, lus: &mut LookupService| {
            (lus.cancel(env, lease), 8)
        })
    }

    /// Remote lookup.
    pub fn lookup(
        &self,
        env: &mut Env,
        from: HostId,
        template: &ServiceTemplate,
        max: usize,
    ) -> Result<Vec<ServiceItem>, NetError> {
        let req = template.encoded_len() + 8;
        let template = template.clone();
        env.call(from, self.service, ProtocolStack::Tcp, req, move |_env, lus: &mut LookupService| {
            let found = lus.lookup(&template, max);
            let resp: usize = found.iter().map(|i| i.encoded_len()).sum::<usize>().max(8);
            (found, resp)
        })
    }

    /// Remote single lookup.
    pub fn lookup_one(
        &self,
        env: &mut Env,
        from: HostId,
        template: &ServiceTemplate,
    ) -> Result<Option<ServiceItem>, NetError> {
        Ok(self.lookup(env, from, template, 1)?.into_iter().next())
    }

    /// Register an event listener.
    pub fn notify(
        &self,
        env: &mut Env,
        from: HostId,
        template: ServiceTemplate,
        transitions: Vec<Transition>,
        sink: EventSink,
        duration: Option<SimDuration>,
    ) -> Result<Lease, NetError> {
        let req = template.encoded_len() + 24;
        env.call(from, self.service, ProtocolStack::Tcp, req, move |env, lus: &mut LookupService| {
            let now = env.now();
            (lus.notify(now, template, transitions, sink, duration), 24)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Entry;
    use crate::ids::interfaces;
    use sensorcer_sim::prelude::*;

    fn setup() -> (Env, HostId, HostId, LusHandle) {
        let mut env = Env::with_seed(1);
        let lab = env.add_host("lab", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        let lus = LookupService::deploy(
            &mut env,
            lab,
            "Lookup Service",
            "public",
            LeasePolicy::default(),
            SimDuration::from_millis(500),
        );
        (env, lab, client, lus)
    }

    fn sensor_item(name: &str, host: HostId, svc: u64) -> ServiceItem {
        ServiceItem::new(
            SvcUuid::NIL,
            host,
            ServiceId(svc),
            vec![interfaces::SENSOR_DATA_ACCESSOR.into()],
            vec![Entry::Name(name.into()), Entry::ServiceType("ELEMENTARY".into())],
        )
    }

    #[test]
    fn register_assigns_uuid_and_lookup_finds() {
        let (mut env, lab, client, lus) = setup();
        let reg = lus
            .register(&mut env, client, sensor_item("Neem-Sensor", lab, 9), None)
            .unwrap();
        assert!(!reg.uuid.is_nil());
        let found = lus
            .lookup(&mut env, client, &ServiceTemplate::by_name("Neem-Sensor"), 10)
            .unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].uuid, reg.uuid);
        assert_eq!(found[0].service, ServiceId(9));
    }

    #[test]
    fn lookup_by_interface_and_max() {
        let (mut env, lab, client, lus) = setup();
        for (i, name) in ["Neem", "Jade", "Coral", "Diamond"].iter().enumerate() {
            lus.register(&mut env, client, sensor_item(name, lab, i as u64), None)
                .unwrap();
        }
        let tpl = ServiceTemplate::by_interface(interfaces::SENSOR_DATA_ACCESSOR);
        assert_eq!(lus.lookup(&mut env, client, &tpl, 100).unwrap().len(), 4);
        assert_eq!(lus.lookup(&mut env, client, &tpl, 2).unwrap().len(), 2);
        assert!(lus
            .lookup_one(&mut env, client, &ServiceTemplate::by_name("Jade"))
            .unwrap()
            .is_some());
        assert!(lus
            .lookup_one(&mut env, client, &ServiceTemplate::by_name("Nope"))
            .unwrap()
            .is_none());
    }

    #[test]
    fn unrenewed_lease_expires_and_service_leaves() {
        let (mut env, lab, client, lus) = setup();
        lus.register(
            &mut env,
            client,
            sensor_item("Neem", lab, 1),
            Some(SimDuration::from_secs(5)),
        )
        .unwrap();
        env.run_for(SimDuration::from_secs(4));
        let tpl = ServiceTemplate::by_interface(interfaces::SENSOR_DATA_ACCESSOR);
        assert_eq!(lus.lookup(&mut env, client, &tpl, 10).unwrap().len(), 1);
        env.run_for(SimDuration::from_secs(2));
        assert_eq!(
            lus.lookup(&mut env, client, &tpl, 10).unwrap().len(),
            0,
            "reaper must drop the expired registration"
        );
    }

    #[test]
    fn renewal_keeps_service_alive() {
        let (mut env, lab, client, lus) = setup();
        let reg = lus
            .register(&mut env, client, sensor_item("Neem", lab, 1), Some(SimDuration::from_secs(5)))
            .unwrap();
        for _ in 0..5 {
            env.run_for(SimDuration::from_secs(3));
            lus.renew(&mut env, client, reg.lease.id, Some(SimDuration::from_secs(5)))
                .unwrap()
                .unwrap();
        }
        assert_eq!(
            lus.lookup(&mut env, client, &ServiceTemplate::by_interface(interfaces::SENSOR_DATA_ACCESSOR), 10)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn cancel_removes_immediately() {
        let (mut env, lab, client, lus) = setup();
        let reg = lus.register(&mut env, client, sensor_item("Neem", lab, 1), None).unwrap();
        lus.cancel(&mut env, client, reg.lease.id).unwrap().unwrap();
        assert_eq!(
            lus.lookup(&mut env, client, &ServiceTemplate::by_interface(interfaces::SENSOR_DATA_ACCESSOR), 10)
                .unwrap()
                .len(),
            0
        );
        // Double cancel is an application-level error, not a crash.
        assert!(lus.cancel(&mut env, client, reg.lease.id).unwrap().is_err());
    }

    #[test]
    fn events_fire_on_join_and_leave() {
        let (mut env, lab, client, lus) = setup();
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let seen2 = std::rc::Rc::clone(&seen);
        let sink = EventSink {
            host: client,
            deliver: Box::new(move |_env, ev| seen2.borrow_mut().push(ev.transition)),
        };
        lus.notify(
            &mut env,
            client,
            ServiceTemplate::by_interface(interfaces::SENSOR_DATA_ACCESSOR),
            vec![Transition::NoMatchToMatch, Transition::MatchToNoMatch],
            sink,
            Some(SimDuration::from_secs(300)),
        )
        .unwrap();

        let reg = lus
            .register(&mut env, client, sensor_item("Neem", lab, 1), Some(SimDuration::from_secs(3)))
            .unwrap();
        assert_eq!(*seen.borrow(), vec![Transition::NoMatchToMatch]);

        // Let it expire: a departure event follows from the reaper.
        env.run_for(SimDuration::from_secs(5));
        assert_eq!(
            *seen.borrow(),
            vec![Transition::NoMatchToMatch, Transition::MatchToNoMatch]
        );
        let _ = reg;
    }

    #[test]
    fn attribute_modification_fires_match_to_match() {
        let (mut env, lab, client, lus) = setup();
        let seen = std::rc::Rc::new(std::cell::RefCell::new(0u32));
        let seen2 = std::rc::Rc::clone(&seen);
        lus.notify(
            &mut env,
            client,
            ServiceTemplate::any(),
            vec![Transition::MatchToMatch],
            EventSink { host: client, deliver: Box::new(move |_e, _ev| *seen2.borrow_mut() += 1) },
            None,
        )
        .unwrap();
        let reg = lus.register(&mut env, client, sensor_item("Neem", lab, 1), None).unwrap();
        env.with_service(lus.service, |env, l: &mut LookupService| {
            assert!(l.modify_attributes(env, reg.uuid, vec![Entry::Name("Renamed".into())]));
            assert!(!l.modify_attributes(env, SvcUuid(999), vec![]));
        })
        .unwrap();
        assert_eq!(*seen.borrow(), 1);
        let found = lus.lookup_one(&mut env, client, &ServiceTemplate::by_name("Renamed")).unwrap();
        assert!(found.is_some());
    }

    #[test]
    fn events_to_dead_listeners_are_dropped_silently() {
        let (mut env, lab, client, lus) = setup();
        lus.notify(
            &mut env,
            client,
            ServiceTemplate::any(),
            vec![Transition::NoMatchToMatch],
            EventSink { host: client, deliver: Box::new(|_e, _ev| panic!("unreachable listener")) },
            None,
        )
        .unwrap();
        env.crash_host(client);
        // Registration from the lab host itself still works; event delivery
        // fails silently.
        env.with_service(lus.service, |env, l: &mut LookupService| {
            l.register(env, sensor_item("Neem", lab, 1), None);
        })
        .unwrap();
    }

    #[test]
    fn registry_stats() {
        let (mut env, lab, client, lus) = setup();
        lus.register(&mut env, client, sensor_item("A", lab, 1), None).unwrap();
        lus.register(&mut env, client, sensor_item("B", lab, 2), None).unwrap();
        env.with_service(lus.service, |_e, l: &mut LookupService| {
            // The LUS registers itself, plus the two sensors.
            assert_eq!(l.item_count(), 3);
            assert_eq!(l.registrations_total(), 3);
            assert_eq!(l.group(), "public");
        })
        .unwrap();
    }
}
