//! Distributed events, mirroring Jini's remote event model.
//!
//! A requestor registers interest in template transitions at the lookup
//! service ("distributed events", §IV.D) and receives [`ServiceEvent`]s
//! when matching registrations appear, disappear or change. The
//! [`EventMailbox`] reproduces Jini's event mailbox service visible in the
//! paper's Fig. 2: a store-and-forward box for requestors that are not
//! always reachable.

use sensorcer_sim::env::Env;
use sensorcer_sim::time::SimTime;
use sensorcer_sim::topology::HostId;
use sensorcer_sim::wire::ProtocolStack;

use crate::ids::SvcUuid;
use crate::item::ServiceItem;

/// Metric keys bumped by event delivery.
pub mod keys {
    /// Events dropped because the listener's host was unreachable.
    pub const EVENTS_DROPPED: &str = "registry.events.dropped";
    /// Events delivered to a reachable listener.
    pub const EVENTS_DELIVERED: &str = "registry.events.delivered";
}

/// How a service's relationship to a template changed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Transition {
    /// A non-matching (or absent) service now matches — it joined.
    NoMatchToMatch,
    /// A matching service no longer matches — it left (lease expiry,
    /// cancellation, attribute change).
    MatchToNoMatch,
    /// A matching service changed attributes but still matches.
    MatchToMatch,
}

/// One event delivered to a listener.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceEvent {
    /// Monotonic per-registration sequence number.
    pub seq: u64,
    /// When the transition happened (virtual time).
    pub at: SimTime,
    pub uuid: SvcUuid,
    pub transition: Transition,
    /// The item after the transition (None for departures).
    pub item: Option<ServiceItem>,
}

/// Approximate wire size of one event notification.
pub fn event_wire_size(ev: &ServiceEvent) -> usize {
    use sensorcer_sim::wire::WireEncode;
    8 + 8 + 16 + 1 + ev.item.as_ref().map_or(0, |i| i.encoded_len())
}

/// Happens-before key for one mailbox's queue: writes at delivery into the
/// box, reads at every remote pull.
pub fn hb_mailbox_key(host: HostId) -> String {
    format!("mailbox@{}", host.0)
}

/// Where events for one registration get delivered.
///
/// The `deliver` closure plays the role of the remote listener proxy; the
/// `host` lets the sender account the network hop honestly. The closure
/// must not call back into the service that is firing the event.
pub struct EventSink {
    pub host: HostId,
    pub deliver: Box<dyn FnMut(&mut Env, &ServiceEvent)>,
}

impl EventSink {
    /// Deliver an event across the simulated network. Jini events are
    /// best-effort: an unreachable listener loses the event — but never
    /// silently. The drop is counted (globally and against the listener's
    /// host) and surfaces as an `event.dropped` trace event on whatever
    /// span is open, so a missed notification is diagnosable after the
    /// fact.
    pub fn send(&mut self, env: &mut Env, from: HostId, event: &ServiceEvent) -> bool {
        match env.send_oneway(from, self.host, ProtocolStack::Tcp, event_wire_size(event)) {
            Ok(_) => {
                env.metrics.add(keys::EVENTS_DELIVERED, 1);
                (self.deliver)(env, event);
                true
            }
            Err(e) => {
                env.metrics.add_host(self.host, keys::EVENTS_DROPPED, 1);
                let cur = env.current_span();
                if cur.is_valid() {
                    env.span_event(
                        cur,
                        "event.dropped",
                        vec![
                            ("listener_host", (self.host.0 as u64).into()),
                            ("seq", event.seq.into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                }
                false
            }
        }
    }
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink")
            .field("host", &self.host)
            .finish_non_exhaustive()
    }
}

/// Store-and-forward event box (Jini Event Mailbox service). Deploy it on
/// a host, register its [`MailboxHandle::sink`] as the listener, and pull
/// accumulated events later.
#[derive(Debug, Default)]
pub struct EventMailbox {
    events: Vec<ServiceEvent>,
    delivered_total: u64,
}

impl EventMailbox {
    pub fn new() -> EventMailbox {
        EventMailbox::default()
    }

    /// Deploy a mailbox on `host` and return the service id plus a factory
    /// for sinks feeding it.
    pub fn deploy(env: &mut Env, host: HostId, name: &str) -> MailboxHandle {
        let shared = std::rc::Rc::new(std::cell::RefCell::new(EventMailbox::new()));
        let id = env.deploy_shared(host, name, std::rc::Rc::clone(&shared));
        MailboxHandle {
            service: id,
            host,
            shared,
        }
    }

    fn push(&mut self, ev: ServiceEvent) {
        self.events.push(ev);
        self.delivered_total += 1;
    }

    /// Drain all stored events (oldest first).
    pub fn drain(&mut self) -> Vec<ServiceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of events currently waiting.
    pub fn pending(&self) -> usize {
        self.events.len()
    }

    /// Events ever delivered to the box.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }
}

/// Handle to a deployed mailbox.
#[derive(Clone)]
pub struct MailboxHandle {
    pub service: sensorcer_sim::env::ServiceId,
    pub host: HostId,
    shared: std::rc::Rc<std::cell::RefCell<EventMailbox>>,
}

impl MailboxHandle {
    /// An [`EventSink`] that stores into this mailbox.
    pub fn sink(&self) -> EventSink {
        let shared = std::rc::Rc::clone(&self.shared);
        let host = self.host;
        EventSink {
            host,
            deliver: Box::new(move |env, ev| {
                shared.borrow_mut().push(ev.clone());
                if env.hb_enabled() {
                    env.hb_write(host, &hb_mailbox_key(host));
                }
            }),
        }
    }

    /// Pull the stored events from a remote requestor at `from`, paying
    /// the network cost.
    pub fn pull(
        &self,
        env: &mut Env,
        from: HostId,
    ) -> Result<Vec<ServiceEvent>, sensorcer_sim::topology::NetError> {
        let out = env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            32,
            |_env, mb: &mut EventMailbox| {
                let evs = mb.drain();
                let bytes: usize = evs.iter().map(event_wire_size).sum();
                (evs, bytes.max(8))
            },
        );
        if out.is_ok() && env.hb_enabled() {
            env.hb_read(from, &hb_mailbox_key(self.host));
        }
        out
    }
}

impl std::fmt::Debug for MailboxHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MailboxHandle")
            .field("service", &self.service)
            .field("host", &self.host)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorcer_sim::prelude::*;

    fn event(seq: u64) -> ServiceEvent {
        ServiceEvent {
            seq,
            at: SimTime::ZERO,
            uuid: SvcUuid(seq as u128),
            transition: Transition::NoMatchToMatch,
            item: None,
        }
    }

    #[test]
    fn sink_delivers_over_network() {
        let mut env = Env::with_seed(1);
        let a = env.add_host("a", HostKind::Server);
        let b = env.add_host("b", HostKind::Server);
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let got2 = std::rc::Rc::clone(&got);
        let mut sink = EventSink {
            host: b,
            deliver: Box::new(move |_env, ev| got2.borrow_mut().push(ev.seq)),
        };
        assert!(sink.send(&mut env, a, &event(1)));
        assert_eq!(*got.borrow(), vec![1]);
        assert!(env.metrics.get(metric_keys::BYTES_WIRE) > 0);
    }

    #[test]
    fn unreachable_listener_drops_event() {
        let mut env = Env::with_seed(2);
        let a = env.add_host("a", HostKind::Server);
        let b = env.add_host("b", HostKind::Server);
        env.crash_host(b);
        let mut sink = EventSink {
            host: b,
            deliver: Box::new(|_e, _ev| panic!("must not deliver")),
        };
        assert!(!sink.send(&mut env, a, &event(1)));
    }

    #[test]
    fn dropped_events_are_counted_and_traced() {
        let mut env = Env::with_seed(7);
        let a = env.add_host("a", HostKind::Server);
        let b = env.add_host("b", HostKind::Server);
        env.crash_host(b);
        env.enable_tracing(16);
        let root = env.span_start("notify", "test", a);
        let mut sink = EventSink {
            host: b,
            deliver: Box::new(|_e, _ev| panic!("must not deliver")),
        };
        assert!(!sink.send(&mut env, a, &event(1)));
        env.span_end(root, Outcome::Ok);

        assert_eq!(env.metrics.get(keys::EVENTS_DROPPED), 1);
        assert_eq!(env.metrics.get_host(b, keys::EVENTS_DROPPED), 1);
        assert_eq!(env.metrics.get(keys::EVENTS_DELIVERED), 0);
        let rec = env.disable_tracing().unwrap();
        let span = rec.spans().find(|s| s.name == "notify").unwrap();
        assert!(span.has_event("event.dropped"));

        // A reachable listener counts a delivery, not a drop.
        let mut ok_sink = EventSink {
            host: a,
            deliver: Box::new(|_e, _ev| {}),
        };
        assert!(ok_sink.send(&mut env, a, &event(2)));
        assert_eq!(env.metrics.get(keys::EVENTS_DELIVERED), 1);
        assert_eq!(env.metrics.get(keys::EVENTS_DROPPED), 1);
    }

    #[test]
    fn mailbox_stores_and_drains() {
        let mut env = Env::with_seed(3);
        let srv = env.add_host("srv", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        let mb = EventMailbox::deploy(&mut env, srv, "Event Mailbox");
        let mut sink = mb.sink();
        sink.send(&mut env, srv, &event(1));
        sink.send(&mut env, srv, &event(2));
        let events = mb.pull(&mut env, client).unwrap();
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 2]);
        // Drained: second pull is empty.
        assert!(mb.pull(&mut env, client).unwrap().is_empty());
    }

    #[test]
    fn mailbox_counts_totals() {
        let mut env = Env::with_seed(4);
        let srv = env.add_host("srv", HostKind::Server);
        let mb = EventMailbox::deploy(&mut env, srv, "mb");
        let mut sink = mb.sink();
        for i in 0..5 {
            sink.send(&mut env, srv, &event(i));
        }
        env.with_service(mb.service, |_e, m: &mut EventMailbox| {
            assert_eq!(m.pending(), 5);
            assert_eq!(m.delivered_total(), 5);
        })
        .unwrap();
    }

    #[test]
    fn event_wire_size_counts_item() {
        let bare = event(1);
        let with_item = ServiceEvent {
            item: Some(ServiceItem::new(
                SvcUuid(1),
                HostId(0),
                ServiceId(0),
                vec![],
                vec![],
            )),
            ..event(1)
        };
        assert!(event_wire_size(&with_item) > event_wire_size(&bare));
    }
}
