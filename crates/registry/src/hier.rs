//! Hierarchical lookup: per-subnet LUS shards under a root registry.
//!
//! SenSORCER's federation is a CSP tree — per-subnet composite sensor
//! providers aggregating elementary providers below them. The flat
//! [`LookupService`] mirrors a single Jini LUS; at 10⁵ motes every
//! interface query walks one giant posting set. This module shards the
//! registry the same way the federation itself shards: one LUS per
//! subnet, plus a [`RootRegistry`] mirroring the CSP tree that holds
//! only *summaries* — per-subnet interface counts fronted by a counting
//! Bloom filter — so `lookup_all_by_interface` fans out only to subnets
//! that can actually match.
//!
//! Summary maintenance is push-based: each subnet LUS gets a
//! summary sink (see [`LookupService::set_summary_sink`]) that forwards
//! posting-set deltas to the root over the simulated network. Deltas
//! that fail to deliver (root briefly unreachable) stay buffered and
//! ride along with the next delta from that subnet, so the root may
//! transiently *overcount* (benign: the fan-out query returns an empty
//! slice) but never undercounts once a flush succeeds — no false
//! negatives, which the churn tests below pin.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

use sensorcer_sim::env::{Env, ServiceId};
use sensorcer_sim::topology::{HostId, NetError, SubnetId};
use sensorcer_sim::wire::{ProtocolStack, WireEncode};

use crate::ids::{InterfaceId, SvcUuid};
use crate::lus::{LookupService, LusHandle};

/// Counters in the per-subnet Bloom summary. Small and fixed: the root
/// holds one per subnet, and the filter only needs to screen interface
/// *names*, of which a federation has tens, not millions.
const BLOOM_SLOTS: usize = 256;

/// Seeds for the two FNV-1a hash functions. Deterministic — the summary
/// state is part of the simulation and must replay bit-identically.
const BLOOM_SEEDS: [u64; 2] = [0xcbf2_9ce4_8422_2325, 0x9747_b28c_8f2a_3b11];

fn fnv1a(seed: u64, s: &str) -> u64 {
    let mut h = seed;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A counting Bloom filter over interface names: O(1) membership screen
/// with deletions. May report a name it no longer holds (false positive)
/// but never misses one it does — exactly the asymmetry a routing
/// summary needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountingBloom {
    counters: Vec<u32>,
}

impl Default for CountingBloom {
    fn default() -> Self {
        CountingBloom {
            counters: vec![0; BLOOM_SLOTS],
        }
    }
}

impl CountingBloom {
    fn slots(name: &str) -> [usize; 2] {
        [
            (fnv1a(BLOOM_SEEDS[0], name) % BLOOM_SLOTS as u64) as usize,
            (fnv1a(BLOOM_SEEDS[1], name) % BLOOM_SLOTS as u64) as usize,
        ]
    }

    pub fn add(&mut self, name: &str) {
        for i in Self::slots(name) {
            self.counters[i] = self.counters[i].saturating_add(1);
        }
    }

    pub fn remove(&mut self, name: &str) {
        for i in Self::slots(name) {
            self.counters[i] = self.counters[i].saturating_sub(1);
        }
    }

    pub fn may_contain(&self, name: &str) -> bool {
        Self::slots(name).iter().all(|&i| self.counters[i] > 0)
    }
}

/// What the root knows about one subnet: where its LUS is, and which
/// interfaces it currently serves (exact counts behind a Bloom screen).
struct SubnetEntry {
    lus: LusHandle,
    counts: BTreeMap<InterfaceId, i64>,
    bloom: CountingBloom,
}

/// The root of the hierarchical registry: a service holding only
/// subnet → interface summaries, never items. Deploy with
/// [`RootRegistry::deploy`]; query through [`HierHandle`].
pub struct RootRegistry {
    host: HostId,
    subnets: BTreeMap<SubnetId, SubnetEntry>,
}

impl RootRegistry {
    /// Deploy an empty root on `host`; attach subnets with
    /// [`HierHandle::attach_subnet`].
    pub fn deploy(env: &mut Env, host: HostId, name: &str) -> HierHandle {
        let root = RootRegistry {
            host,
            subnets: BTreeMap::new(),
        };
        let service = env.deploy(host, name, root);
        HierHandle { service, host }
    }

    fn attach(&mut self, subnet: SubnetId, lus: LusHandle, seed: Vec<(InterfaceId, u64)>) {
        let mut entry = SubnetEntry {
            lus,
            counts: BTreeMap::new(),
            bloom: CountingBloom::default(),
        };
        for (iface, n) in seed {
            if n > 0 {
                entry.bloom.add(iface.as_str());
                entry.counts.insert(iface, n as i64);
            }
        }
        self.subnets.insert(subnet, entry);
    }

    fn apply(&mut self, subnet: SubnetId, iface: &InterfaceId, delta: i64) {
        let Some(entry) = self.subnets.get_mut(&subnet) else {
            return;
        };
        let n = entry.counts.entry(iface.clone()).or_insert(0);
        let was_present = *n > 0;
        *n += delta;
        let is_present = *n > 0;
        if *n <= 0 {
            entry.counts.remove(iface);
        }
        match (was_present, is_present) {
            (false, true) => entry.bloom.add(iface.as_str()),
            (true, false) => entry.bloom.remove(iface.as_str()),
            _ => {}
        }
    }

    /// Subnets that can match `iface`: the Bloom summary screens first
    /// (O(1) per subnet), the exact count confirms. Sorted by subnet id
    /// for deterministic fan-out order.
    pub fn matching_subnets(&self, iface: &InterfaceId) -> Vec<(SubnetId, LusHandle)> {
        self.subnets
            .iter()
            .filter(|(_, e)| e.bloom.may_contain(iface.as_str()))
            .filter(|(_, e)| e.counts.get(iface).copied().unwrap_or(0) > 0)
            .map(|(&s, e)| (s, e.lus))
            .collect()
    }

    /// The root's current belief about a subnet's posting count for
    /// `iface` (0 when unknown) — exposed for the churn tests.
    pub fn summary_count(&self, subnet: SubnetId, iface: &InterfaceId) -> i64 {
        self.subnets
            .get(&subnet)
            .and_then(|e| e.counts.get(iface).copied())
            .unwrap_or(0)
    }

    /// Number of attached subnets.
    pub fn subnet_count(&self) -> usize {
        self.subnets.len()
    }
}

impl std::fmt::Debug for RootRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RootRegistry")
            .field("host", &self.host)
            .field("subnets", &self.subnets.len())
            .finish()
    }
}

/// Client-side handle to the hierarchical registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierHandle {
    pub service: ServiceId,
    pub host: HostId,
}

impl HierHandle {
    /// Attach a subnet LUS under the root: seed the root's summary with
    /// the LUS's current posting counts, then install a summary sink on
    /// the LUS that pushes every subsequent delta to the root over the
    /// network (buffered and retried on failure, so a reachable root
    /// never misses a registration).
    pub fn attach_subnet(
        &self,
        env: &mut Env,
        subnet: SubnetId,
        lus: LusHandle,
    ) -> Result<(), NetError> {
        let seed = env.with_service(lus.service, |_env, l: &mut LookupService| {
            l.interface_counts()
        })?;
        let root_service = self.service;
        env.with_service(root_service, |_env, r: &mut RootRegistry| {
            r.attach(subnet, lus, seed)
        })?;

        let pending: Rc<RefCell<Vec<(InterfaceId, i64)>>> = Rc::new(RefCell::new(Vec::new()));
        let from = lus.host;
        env.with_service(lus.service, |_env, l: &mut LookupService| {
            l.set_summary_sink(move |env, iface, delta| {
                pending.borrow_mut().push((iface.clone(), delta));
                let batch: Vec<(InterfaceId, i64)> = pending.borrow().clone();
                let bytes = 8 + batch
                    .iter()
                    .map(|(i, _)| i.encoded_len() + 8)
                    .sum::<usize>();
                let sent = env.call(
                    from,
                    root_service,
                    ProtocolStack::Tcp,
                    bytes,
                    move |_env, r: &mut RootRegistry| {
                        for (iface, delta) in &batch {
                            r.apply(subnet, iface, *delta);
                        }
                        ((), 8)
                    },
                );
                if sent.is_ok() {
                    pending.borrow_mut().clear();
                }
            })
        })?;
        Ok(())
    }

    /// The subnets the root believes can serve `iface` (remote query).
    pub fn matching_subnets(
        &self,
        env: &mut Env,
        from: HostId,
        iface: &InterfaceId,
    ) -> Result<Vec<(SubnetId, LusHandle)>, NetError> {
        let req = iface.encoded_len() + 8;
        let iface = iface.clone();
        env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            req,
            move |_env, r: &mut RootRegistry| {
                let subnets = r.matching_subnets(&iface);
                let resp = (subnets.len() * 12).max(8);
                (subnets, resp)
            },
        )
    }

    /// Federation-wide interface query: ask the root which subnets can
    /// match, then fan out **only to those**, collecting each subnet's
    /// shared uuid slice. Cost scales with the number of *matching*
    /// subnets, not the federation size — the sub-linear curve B9 pins.
    ///
    /// Subnets that fail mid-fan-out (crash, partition) are skipped —
    /// the federation answer is what the reachable subnets can serve.
    pub fn lookup_all_by_interface(
        &self,
        env: &mut Env,
        from: HostId,
        iface: &InterfaceId,
    ) -> Result<Vec<(SubnetId, Arc<[SvcUuid]>)>, NetError> {
        let subnets = self.matching_subnets(env, from, iface)?;
        let mut out = Vec::with_capacity(subnets.len());
        for (subnet, lus) in subnets {
            match lus.lookup_interface_uuids(env, from, iface) {
                Ok(uuids) if !uuids.is_empty() => out.push((subnet, uuids)),
                Ok(_) | Err(_) => {}
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Entry;
    use crate::ids::interfaces;
    use crate::item::{ServiceItem, ServiceTemplate};
    use crate::lease::LeasePolicy;
    use sensorcer_sim::prelude::*;

    fn sensor_item(name: &str, host: HostId, svc: u64, iface: &str) -> ServiceItem {
        ServiceItem::new(
            crate::ids::SvcUuid::NIL,
            host,
            ServiceId(svc),
            vec![iface.into()],
            vec![Entry::Name(name.into())],
        )
    }

    /// Three subnets, each with a LUS, all attached under one root.
    fn federation(env: &mut Env) -> (HostId, HierHandle, Vec<(HostId, LusHandle)>) {
        let root_host = env.add_host("root", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        let root = RootRegistry::deploy(env, root_host, "RootRegistry");
        let mut subnets = Vec::new();
        for i in 0..3u32 {
            let h = env.add_host(format!("gw{i}"), HostKind::Server);
            env.topo.set_subnet(h, SubnetId(i));
            let lus = LookupService::deploy(
                env,
                h,
                &format!("LUS-{i}"),
                &format!("subnet-{i}"),
                LeasePolicy::default(),
                SimDuration::from_millis(500),
            );
            root.attach_subnet(env, SubnetId(i), lus).unwrap();
            subnets.push((h, lus));
        }
        (client, root, subnets)
    }

    /// Ground truth: ask every subnet LUS directly, keep non-empty.
    fn brute_force(
        env: &mut Env,
        from: HostId,
        subnets: &[(HostId, LusHandle)],
        iface: &InterfaceId,
    ) -> Vec<(SubnetId, Vec<SvcUuid>)> {
        let mut out = Vec::new();
        for (i, (_, lus)) in subnets.iter().enumerate() {
            let uuids = lus.lookup_interface_uuids(env, from, iface).unwrap();
            if !uuids.is_empty() {
                out.push((SubnetId(i as u32), uuids.to_vec()));
            }
        }
        out
    }

    fn hier_result(
        env: &mut Env,
        from: HostId,
        root: &HierHandle,
        iface: &InterfaceId,
    ) -> Vec<(SubnetId, Vec<SvcUuid>)> {
        root.lookup_all_by_interface(env, from, iface)
            .unwrap()
            .into_iter()
            .map(|(s, u)| (s, u.to_vec()))
            .collect()
    }

    #[test]
    fn fan_out_reaches_only_matching_subnets() {
        let mut env = Env::with_seed(11);
        let (client, root, subnets) = federation(&mut env);
        // Register a sensor in subnets 0 and 2 only.
        for &i in &[0usize, 2] {
            let (h, lus) = subnets[i];
            lus.register(
                &mut env,
                h,
                sensor_item(
                    &format!("S{i}"),
                    h,
                    10 + i as u64,
                    interfaces::SENSOR_DATA_ACCESSOR,
                ),
                None,
            )
            .unwrap();
        }
        let iface: InterfaceId = interfaces::SENSOR_DATA_ACCESSOR.into();
        let matched = root.matching_subnets(&mut env, client, &iface).unwrap();
        let ids: Vec<SubnetId> = matched.iter().map(|(s, _)| *s).collect();
        assert_eq!(ids, vec![SubnetId(0), SubnetId(2)], "subnet 1 screened out");

        let hier = hier_result(&mut env, client, &root, &iface);
        let brute = brute_force(&mut env, client, &subnets, &iface);
        assert_eq!(hier, brute);
        assert_eq!(hier.len(), 2);
        assert_eq!(hier[0].1.len(), 1);

        // Every subnet LUS self-registers as a LookupService, so that
        // interface matches everywhere.
        let lus_iface: InterfaceId = interfaces::LOOKUP_SERVICE.into();
        assert_eq!(
            root.matching_subnets(&mut env, client, &lus_iface)
                .unwrap()
                .len(),
            3,
            "seed snapshot captured pre-attach registrations"
        );
    }

    #[test]
    fn summaries_track_register_cancel_and_lease_expiry_churn() {
        let mut env = Env::with_seed(12);
        let (client, root, subnets) = federation(&mut env);
        let iface: InterfaceId = interfaces::SENSOR_DATA_ACCESSOR.into();
        let (h0, lus0) = subnets[0];

        // Register: summary appears after the push.
        let reg = lus0
            .register(
                &mut env,
                h0,
                sensor_item("A", h0, 1, interfaces::SENSOR_DATA_ACCESSOR),
                None,
            )
            .unwrap();
        env.with_service(root.service, |_e, r: &mut RootRegistry| {
            assert_eq!(r.summary_count(SubnetId(0), &iface), 1);
        })
        .unwrap();

        // Cancel: the -1 delta lands and the subnet stops matching.
        lus0.cancel(&mut env, h0, reg.lease.id).unwrap().unwrap();
        env.with_service(root.service, |_e, r: &mut RootRegistry| {
            assert_eq!(r.summary_count(SubnetId(0), &iface), 0);
            assert!(r.matching_subnets(&iface).is_empty());
        })
        .unwrap();

        // Lease expiry: the reaper's unindex pushes the -1 too.
        lus0.register(
            &mut env,
            h0,
            sensor_item("B", h0, 2, interfaces::SENSOR_DATA_ACCESSOR),
            Some(SimDuration::from_secs(2)),
        )
        .unwrap();
        env.with_service(root.service, |_e, r: &mut RootRegistry| {
            assert_eq!(r.summary_count(SubnetId(0), &iface), 1);
        })
        .unwrap();
        env.run_for(SimDuration::from_secs(4));
        env.with_service(root.service, |_e, r: &mut RootRegistry| {
            assert_eq!(r.summary_count(SubnetId(0), &iface), 0);
        })
        .unwrap();
        assert!(hier_result(&mut env, client, &root, &iface).is_empty());
    }

    #[test]
    fn differential_brute_force_vs_hierarchical_under_random_churn() {
        let mut env = Env::with_seed(13);
        let (client, root, subnets) = federation(&mut env);
        let ifaces: Vec<InterfaceId> = vec![
            interfaces::SENSOR_DATA_ACCESSOR.into(),
            interfaces::CYBERNODE.into(),
            InterfaceId::new("RareProbe"),
        ];
        let mut rng = SimRng::new(0xD1FF);
        let mut live: Vec<(usize, crate::lease::LeaseId)> = Vec::new();
        for round in 0..40u64 {
            let si = (rng.next_u64() % 3) as usize;
            let (h, lus) = subnets[si];
            if rng.chance(0.6) || live.is_empty() {
                let iface = &ifaces[(rng.next_u64() % ifaces.len() as u64) as usize];
                let lease_secs = 1 + rng.next_u64() % 6;
                let reg = lus
                    .register(
                        &mut env,
                        h,
                        sensor_item(&format!("r{round}"), h, 100 + round, iface.as_str()),
                        Some(SimDuration::from_secs(lease_secs)),
                    )
                    .unwrap();
                live.push((si, reg.lease.id));
            } else {
                let victim = (rng.next_u64() % live.len() as u64) as usize;
                let (vsi, lease) = live.swap_remove(victim);
                let (vh, vlus) = subnets[vsi];
                // May already have expired; both outcomes are fine.
                let _ = vlus.cancel(&mut env, vh, lease).unwrap();
            }
            env.run_for(SimDuration::from_millis(700));

            // After every mutation round: hierarchical ≡ brute force for
            // every interface, and no stale subnet reports a match it
            // cannot serve.
            for iface in &ifaces {
                let hier = hier_result(&mut env, client, &root, iface);
                let brute = brute_force(&mut env, client, &subnets, iface);
                assert_eq!(hier, brute, "round {round}, iface {iface}");
                let matched = root.matching_subnets(&mut env, client, iface).unwrap();
                for (s, lus) in matched {
                    let served = lus.lookup_interface_uuids(&mut env, client, iface).unwrap();
                    assert!(
                        !served.is_empty(),
                        "round {round}: subnet {s} reported a match for {iface} it cannot serve"
                    );
                }
            }
        }
    }

    #[test]
    fn deltas_buffer_while_root_unreachable_and_flush_on_recovery() {
        let mut env = Env::with_seed(14);
        let (client, root, subnets) = federation(&mut env);
        let iface: InterfaceId = interfaces::SENSOR_DATA_ACCESSOR.into();
        let (h0, lus0) = subnets[0];

        env.crash_host(root.host);
        lus0.register(
            &mut env,
            h0,
            sensor_item("A", h0, 1, interfaces::SENSOR_DATA_ACCESSOR),
            None,
        )
        .unwrap();
        env.restart_host(root.host);
        // Root missed the +1; the next delta from the same subnet carries
        // the buffered one along.
        lus0.register(
            &mut env,
            h0,
            sensor_item("B", h0, 2, interfaces::SENSOR_DATA_ACCESSOR),
            None,
        )
        .unwrap();
        env.with_service(root.service, |_e, r: &mut RootRegistry| {
            assert_eq!(r.summary_count(SubnetId(0), &iface), 2);
        })
        .unwrap();
        let hier = hier_result(&mut env, client, &root, &iface);
        let brute = brute_force(&mut env, client, &subnets, &iface);
        assert_eq!(hier, brute);
    }

    #[test]
    fn counting_bloom_membership_with_deletion() {
        let mut b = CountingBloom::default();
        assert!(!b.may_contain("SensorDataAccessor"));
        b.add("SensorDataAccessor");
        b.add("SensorDataAccessor");
        b.add("Cybernode");
        assert!(b.may_contain("SensorDataAccessor"));
        assert!(b.may_contain("Cybernode"));
        b.remove("SensorDataAccessor");
        assert!(b.may_contain("SensorDataAccessor"), "one copy left");
        b.remove("SensorDataAccessor");
        assert!(!b.may_contain("SensorDataAccessor"));
        assert!(b.may_contain("Cybernode"), "unrelated entry untouched");
    }

    #[test]
    fn template_lookup_still_works_per_subnet() {
        // The hierarchy narrows by interface; attribute-level matching
        // stays a per-subnet LUS concern and must be unaffected.
        let mut env = Env::with_seed(15);
        let (client, _root, subnets) = federation(&mut env);
        let (h1, lus1) = subnets[1];
        lus1.register(
            &mut env,
            h1,
            sensor_item("Neem", h1, 5, interfaces::SENSOR_DATA_ACCESSOR),
            None,
        )
        .unwrap();
        let found = lus1
            .lookup(&mut env, client, &ServiceTemplate::by_name("Neem"), 10)
            .unwrap();
        assert_eq!(found.len(), 1);
    }
}
