//! Identifiers used across the registry.

use sensorcer_sim::rng::SimRng;
use sensorcer_sim::wire::{Bytes, BytesMut};
use sensorcer_sim::wire::{WireDecode, WireEncode, WireError};

/// A 128-bit universally unique service identifier, like Jini's
/// `ServiceID` (the paper's browser shows one in Fig. 3:
/// `267c67a0-dd67-4b95-beb0-e6763e117b03`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SvcUuid(pub u128);

impl SvcUuid {
    /// Generate a fresh id from the deterministic RNG.
    pub fn generate(rng: &mut SimRng) -> SvcUuid {
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        SvcUuid((hi << 64) | lo)
    }

    /// The all-zero id, used by Jini for "assign me one" registrations.
    pub const NIL: SvcUuid = SvcUuid(0);

    pub fn is_nil(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for SvcUuid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
            (b >> 96) as u32,
            (b >> 80) as u16,
            (b >> 64) as u16,
            (b >> 48) as u16,
            b & 0xFFFF_FFFF_FFFF
        )
    }
}

impl WireEncode for SvcUuid {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u128(self.0);
    }
    fn encoded_len(&self) -> usize {
        16
    }
}

impl WireDecode for SvcUuid {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 16 {
            return Err(WireError::Truncated {
                needed: 16,
                available: buf.remaining(),
            });
        }
        Ok(SvcUuid(buf.get_u128()))
    }
}

/// The name of a remote interface a service implements — the unit of
/// type-based lookup (Jini looks services up "by object types
/// (interfaces)", §IV.B).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InterfaceId(pub String);

impl InterfaceId {
    pub fn new(name: impl Into<String>) -> InterfaceId {
        InterfaceId(name.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for InterfaceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for InterfaceId {
    fn from(s: &str) -> Self {
        InterfaceId(s.to_string())
    }
}

impl WireEncode for InterfaceId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

impl WireDecode for InterfaceId {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(InterfaceId(String::decode(buf)?))
    }
}

/// Well-known interface names used throughout the reproduction. These are
/// the remote interfaces from the paper's component diagram (Fig. 1).
pub mod interfaces {
    /// The common sensor-value interface implemented by every ESP and CSP.
    pub const SENSOR_DATA_ACCESSOR: &str = "SensorDataAccessor";
    /// The top-level SORCER peer interface (`service(Exertion, Txn)`).
    pub const SERVICER: &str = "Servicer";
    /// Composite-management operations (add/remove child, set expression).
    pub const COMPOSITE_MANAGEMENT: &str = "CompositeManagement";
    /// The façade entry point.
    pub const SENSORCER_FACADE: &str = "SensorcerFacade";
    /// Rio compute node.
    pub const CYBERNODE: &str = "Cybernode";
    /// Rio provision monitor.
    pub const PROVISION_MONITOR: &str = "ProvisionMonitor";
    /// Jini infrastructure.
    pub const LOOKUP_SERVICE: &str = "LookupService";
    pub const TRANSACTION_MANAGER: &str = "TransactionManager";
    pub const EVENT_MAILBOX: &str = "EventMailbox";
    pub const LEASE_RENEWAL: &str = "LeaseRenewalService";
    /// SORCER rendezvous peers.
    pub const JOBBER: &str = "Jobber";
    pub const SPACER: &str = "Spacer";
    pub const EXERTION_SPACE: &str = "ExertionSpace";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uuid_display_matches_rfc_shape() {
        let id = SvcUuid(0x267c67a0_dd67_4b95_beb0_e6763e117b03);
        assert_eq!(id.to_string(), "267c67a0-dd67-4b95-beb0-e6763e117b03");
    }

    #[test]
    fn generated_ids_are_distinct_and_deterministic() {
        let mut rng = SimRng::new(1);
        let a = SvcUuid::generate(&mut rng);
        let b = SvcUuid::generate(&mut rng);
        assert_ne!(a, b);
        let mut rng2 = SimRng::new(1);
        assert_eq!(SvcUuid::generate(&mut rng2), a);
        assert!(!a.is_nil());
        assert!(SvcUuid::NIL.is_nil());
    }

    #[test]
    fn uuid_wire_round_trip() {
        let id = SvcUuid(0xDEAD_BEEF_0123_4567_89AB_CDEF_0000_FFFF);
        let mut b = id.to_wire();
        assert_eq!(b.len(), 16);
        assert_eq!(SvcUuid::decode(&mut b).unwrap(), id);
    }

    #[test]
    fn interface_id_round_trip() {
        let i: InterfaceId = interfaces::SENSOR_DATA_ACCESSOR.into();
        let mut b = i.to_wire();
        assert_eq!(InterfaceId::decode(&mut b).unwrap(), i);
        assert_eq!(i.to_string(), "SensorDataAccessor");
    }
}
