//! Multicast discovery of lookup services (§IV.B).
//!
//! "The LUS itself is discovered through the discovery protocols by
//! issuing multicast or unicast requests, as well as by receiving
//! multicast announcements." A requestor multicasts a discovery request
//! into a group; every reachable LUS host answers with a unicast
//! announcement carrying its registrar handle.

use sensorcer_sim::env::Env;
use sensorcer_sim::topology::HostId;
use sensorcer_sim::wire::ProtocolStack;

use crate::lus::{LookupService, LusHandle};

/// Size of a multicast discovery request packet (Jini's request carries
/// the groups sought and a response port).
const DISCOVERY_REQUEST_BYTES: usize = 72;
/// Size of a unicast announcement (serialized registrar proxy stub).
const ANNOUNCEMENT_BYTES: usize = 480;

/// Discover every reachable LUS serving `group`, from host `from`.
///
/// Costs one multicast plus one unicast announcement per responding LUS,
/// all accounted against the simulated network. Results are in host order
/// (deterministic).
pub fn discover(env: &mut Env, from: HostId, group: &str) -> Vec<LusHandle> {
    let receivers = env.multicast(from, group, ProtocolStack::Udp, DISCOVERY_REQUEST_BYTES);
    let mut found = Vec::new();
    for host in receivers {
        for svc in env.services_on(host) {
            if !env.service_is::<LookupService>(svc) {
                continue;
            }
            // Only LUSes serving the requested group answer.
            let serves = env
                .with_service(svc, |_env, lus: &mut LookupService| lus.group() == group)
                .unwrap_or(false);
            if !serves {
                continue;
            }
            if env
                .send_oneway(host, from, ProtocolStack::Udp, ANNOUNCEMENT_BYTES)
                .is_ok()
            {
                found.push(LusHandle { service: svc, host });
            }
        }
    }
    found
}

/// Discover exactly one LUS (the common case for a small deployment);
/// `None` when the group is empty or unreachable.
pub fn discover_one(env: &mut Env, from: HostId, group: &str) -> Option<LusHandle> {
    discover(env, from, group).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lease::LeasePolicy;
    use sensorcer_sim::prelude::*;

    fn deploy_lus(env: &mut Env, host: HostId, group: &str) -> LusHandle {
        LookupService::deploy(
            env,
            host,
            "LUS",
            group,
            LeasePolicy::default(),
            SimDuration::from_millis(500),
        )
    }

    #[test]
    fn discovers_single_lus() {
        let mut env = Env::with_seed(1);
        let lab = env.add_host("lab", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        env.topo.join_group(client, "public");
        let lus = deploy_lus(&mut env, lab, "public");
        let found = discover(&mut env, client, "public");
        assert_eq!(found, vec![lus]);
        assert_eq!(discover_one(&mut env, client, "public"), Some(lus));
        assert!(env.metrics.get(metric_keys::MULTICASTS) >= 1);
    }

    #[test]
    fn discovers_multiple_lus_in_host_order() {
        let mut env = Env::with_seed(2);
        let h1 = env.add_host("h1", HostKind::Server);
        let h2 = env.add_host("h2", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        let l1 = deploy_lus(&mut env, h1, "public");
        let l2 = deploy_lus(&mut env, h2, "public");
        let found = discover(&mut env, client, "public");
        assert_eq!(found, vec![l1, l2]);
    }

    #[test]
    fn group_isolation() {
        let mut env = Env::with_seed(3);
        let h1 = env.add_host("h1", HostKind::Server);
        let h2 = env.add_host("h2", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        let pub_lus = deploy_lus(&mut env, h1, "public");
        let _edge_lus = deploy_lus(&mut env, h2, "edge");
        assert_eq!(discover(&mut env, client, "public"), vec![pub_lus]);
        assert_eq!(discover(&mut env, client, "nonexistent"), vec![]);
    }

    #[test]
    fn crashed_lus_is_not_discovered() {
        let mut env = Env::with_seed(4);
        let lab = env.add_host("lab", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        deploy_lus(&mut env, lab, "public");
        env.crash_host(lab);
        assert_eq!(discover(&mut env, client, "public"), vec![]);
        env.restart_host(lab);
        assert_eq!(
            discover(&mut env, client, "public").len(),
            1,
            "plug-and-play return"
        );
    }

    #[test]
    fn partitioned_lus_is_not_discovered() {
        let mut env = Env::with_seed(5);
        let lab = env.add_host("lab", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        deploy_lus(&mut env, lab, "public");
        env.topo.partition(client, lab);
        assert_eq!(discover(&mut env, client, "public"), vec![]);
    }

    #[test]
    fn non_lus_services_in_group_are_ignored() {
        let mut env = Env::with_seed(6);
        let lab = env.add_host("lab", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        struct NotALus;
        env.deploy(lab, "impostor", NotALus);
        env.topo.join_group(lab, "public");
        assert_eq!(discover(&mut env, client, "public"), vec![]);
    }

    #[test]
    fn discovery_takes_virtual_time() {
        let mut env = Env::with_seed(7);
        let lab = env.add_host("lab", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        deploy_lus(&mut env, lab, "public");
        let t0 = env.now();
        discover(&mut env, client, "public");
        assert!(env.now() > t0);
    }
}
