//! # sensorcer-core
//!
//! The paper's primary contribution: the SenSORCER framework for managing
//! sensor-federated networks, built on the Jini-substitute registry, the
//! Rio-substitute provisioner, the SORCER-substitute exertion runtime and
//! the Groovy-substitute expression language.
//!
//! The Measure–Compute–Communicate (MC²) pipeline of §V.A maps onto:
//!
//! * **Measure** — [`esp::ElementarySensorProvider`] wraps a
//!   technology-specific sensor probe and exports readings via the common
//!   `SensorDataAccessor` interface.
//! * **Compute** — [`csp::CompositeSensorProvider`] composes ESPs *and*
//!   other CSPs, binds children to dynamically created variables
//!   (`a`, `b`, `c`, …) and evaluates a runtime compute-expression such as
//!   the paper's `(a + b + c)/3`.
//! * **Communicate** — exertion-oriented federated method invocation
//!   carries requests; the [`facade::SensorcerFacade`] is the single entry
//!   point offering network management, service lookup and QoS-driven
//!   provisioning of new composites onto cybernodes.
//!
//! [`deploy::standard_deployment`] stands the whole Fig. 2 world up in one
//! call; [`browser`] reproduces the paper's zero-install sensor browser as
//! text; [`local`] is a real-thread embedded mode for in-process use.
//!
//! ```
//! use sensorcer_core::prelude::*;
//! use sensorcer_sim::prelude::*;
//!
//! let config = DeploymentConfig::fig2();
//! let mut env = Env::with_seed(config.seed);
//! let d = standard_deployment(&mut env, &config);
//!
//! // Read a sensor through the façade, like the browser's "Get Value".
//! let r = d.facade.get_value(&mut env, d.workstation, "Neem-Sensor").unwrap();
//! assert!((10.0..35.0).contains(&r.value));
//! ```

#![forbid(unsafe_code)]
// Boxed-closure callback signatures (event sinks, 2PC participants,
// simulated parallel branches) trip this lint; the types are the API.
#![allow(clippy::type_complexity)]

pub mod accessor;
pub mod admission;
pub mod browser;
pub mod csp;
pub mod deploy;
pub mod esp;
pub mod facade;
pub mod local;
pub mod provisioner;

/// One-stop imports.
pub mod prelude {
    pub use crate::accessor::{client, mgmt, selectors, DegradedInfo, SensorInfo, SensorReading};
    pub use crate::admission::{
        admit, is_rejection, shared_admission, shared_breakers, AdmissionController, BreakerConfig,
        BreakerRegistry, BreakerState, QosClass, SharedAdmission, SharedBreakers, Shed, ShedReason,
        TenantPolicy,
    };
    pub use crate::browser::{
        render_browser, render_info, render_services, render_values, BrowserModel,
    };
    pub use crate::csp::{
        deploy_csp, variable_for, Child, CompositeSensorProvider, CspConfig, CspHandle,
        DegradationPolicy,
    };
    pub use crate::deploy::{standard_deployment, Deployment, DeploymentConfig};
    pub use crate::esp::{deploy_esp, ElementarySensorProvider, EspConfig, EspHandle};
    pub use crate::facade::{ops, FacadeHandle, SensorcerFacade, ServiceRow};
    pub use crate::local::{synthetic_tree, LocalFederation, LocalNode, LocalReadError};
    pub use crate::provisioner::{
        composite_factory, provision_composite, CompositeSpec, COMPOSITE_TYPE_KEY,
    };
}

pub use prelude::*;
