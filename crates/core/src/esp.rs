//! The Elementary Sensor Provider — "the basic building block of this
//! framework" (§V.B).
//!
//! An ESP wraps one technology-specific [`SensorProbe`] (the only
//! sensor-dependent component), keeps a local [`RingStore`] of recent
//! measurements, and exports readings through the `SensorDataAccessor`
//! interface — reachable, like every operation in EOA, only through
//! exertions. On startup it "registers itself with the Jini service
//! registry" under a lease kept alive by the lease-renewal service.

use sensorcer_exertion::prelude::*;
use sensorcer_registry::attributes::Entry;
use sensorcer_registry::ids::{interfaces, SvcUuid};
use sensorcer_registry::item::ServiceItem;
use sensorcer_registry::lus::LusHandle;
use sensorcer_registry::renewal::RenewalHandle;
use sensorcer_registry::txn::TxnId;
use sensorcer_sensors::prelude::*;
use sensorcer_sim::env::{Env, ServiceId};
use sensorcer_sim::time::SimDuration;
use sensorcer_sim::topology::HostId;

use crate::accessor::{selectors, SensorInfo};

/// Per-host gauge keys written by sensor providers; read back by the
/// facade's `network_health` snapshot.
pub mod gauges {
    /// Sim-time (ns) of the last successfully served `getValue`.
    pub const LAST_READ_NS: &str = "sensor.read.last_ns";
    /// Battery level [0, 1] observed at the last served read.
    pub const BATTERY: &str = "sensor.battery.level";
}

/// The provider state.
pub struct ElementarySensorProvider {
    name: String,
    uuid: String,
    /// Host this provider was deployed on; filled by [`deploy_esp`] so
    /// reads can stamp per-host health gauges.
    host: Option<HostId>,
    /// Crate-visible so tests and fault-injection benches can swap the
    /// probe behind a live provider ("replace the sensor in the field").
    pub(crate) probe: Box<dyn SensorProbe>,
    store: RingStore,
    reads_total: u64,
}

impl ElementarySensorProvider {
    pub fn new(name: impl Into<String>, probe: Box<dyn SensorProbe>) -> Self {
        ElementarySensorProvider {
            name: name.into(),
            uuid: String::new(),
            host: None,
            probe,
            store: RingStore::new(256),
            reads_total: 0,
        }
    }

    pub fn store(&self) -> &RingStore {
        &self.store
    }

    pub fn reads_total(&self) -> u64 {
        self.reads_total
    }

    /// Replace the probe behind a live provider — the software side of a
    /// field technician swapping the physical sensor. The local store and
    /// registration are untouched, exactly as §VII promises: "one can
    /// easily change the existing implementation and technologies of the
    /// sensors used".
    pub fn swap_probe(&mut self, probe: Box<dyn SensorProbe>) {
        self.probe = probe;
    }

    /// Take one sample now and record it (used by the sampling timer and
    /// by `getValue`).
    pub fn sample_now(&mut self, env: &mut Env) -> Result<Measurement, ProbeError> {
        let m = self.probe.sample(env.now())?;
        self.store.push(m);
        Ok(m)
    }

    fn handle_get_value(&mut self, env: &mut Env, task: &mut Task) {
        self.reads_total += 1;
        match self.sample_now(env) {
            Ok(m) => {
                write_measurement(&mut task.context, &m);
                // Transmitting the reply costs the mote energy.
                self.probe.charge_tx(task.context.wire_size());
                task.status = ExertionStatus::Done;
            }
            Err(ProbeError::Dropout) | Err(ProbeError::TooFast) => {
                // Serve the freshest stored measurement, flagged suspect —
                // this is exactly why §III.B wants a local store.
                match self.store.latest().copied() {
                    Some(m) => {
                        let stale = Measurement {
                            quality: Quality::Suspect,
                            ..m
                        };
                        write_measurement(&mut task.context, &stale);
                        task.status = ExertionStatus::Done;
                    }
                    None => task.fail("probe dropout and no stored measurement"),
                }
            }
            Err(ProbeError::BatteryDead) => task.fail("sensor battery exhausted"),
        }
        if let (Some(host), true) = (self.host, matches!(task.status, ExertionStatus::Done)) {
            let now_ns = env.now().as_nanos() as f64;
            env.metrics
                .set_host_gauge(host, gauges::LAST_READ_NS, now_ns);
            env.metrics
                .set_host_gauge(host, gauges::BATTERY, self.probe.battery_level());
        }
    }

    fn handle_get_history(&mut self, task: &mut Task) {
        let count = task.context.get_f64("arg/count").unwrap_or(16.0).max(0.0) as usize;
        let recent = self.store.recent(count);
        let values: Vec<sensorcer_expr::Value> = recent
            .iter()
            .map(|m| sensorcer_expr::Value::Float(m.value))
            .collect();
        let times: Vec<sensorcer_expr::Value> = recent
            .iter()
            .map(|m| sensorcer_expr::Value::Int(m.at.as_nanos() as i64))
            .collect();
        task.context
            .put("history/values", sensorcer_expr::Value::List(values));
        task.context
            .put("history/times", sensorcer_expr::Value::List(times));
        task.status = ExertionStatus::Done;
    }

    fn handle_get_info(&mut self, task: &mut Task) {
        let info = SensorInfo {
            name: self.name.clone(),
            service_type: "ELEMENTARY".into(),
            uuid: self.uuid.clone(),
            contained: Vec::new(),
            expression: None,
            unit: self.probe.teds().unit.symbol().to_string(),
            battery: self.probe.battery_level(),
        };
        info.write_to(&mut task.context);
        task.status = ExertionStatus::Done;
    }
}

/// Write a measurement into the standard context paths.
pub fn write_measurement(ctx: &mut Context, m: &Measurement) {
    ctx.put(paths::SENSOR_VALUE, m.value);
    ctx.put(paths::RESULT, m.value);
    ctx.put(paths::SENSOR_UNIT, m.unit.symbol());
    ctx.put(paths::SENSOR_AT, m.at.as_nanos() as f64);
    ctx.put(
        paths::SENSOR_QUALITY,
        if m.is_good() { "good" } else { "suspect" },
    );
}

impl Servicer for ElementarySensorProvider {
    fn provider_name(&self) -> &str {
        &self.name
    }

    fn service(&mut self, env: &mut Env, exertion: &mut Exertion, _txn: Option<TxnId>) {
        let Exertion::Task(task) = exertion else {
            if let Exertion::Job(job) = exertion {
                job.status = ExertionStatus::Failed(format!(
                    "elementary provider '{}' cannot coordinate jobs",
                    self.name
                ));
            }
            return;
        };
        if task.signature.interface != interfaces::SENSOR_DATA_ACCESSOR {
            task.fail(format!(
                "'{}' implements {}, not {}",
                self.name,
                interfaces::SENSOR_DATA_ACCESSOR,
                task.signature.interface
            ));
            return;
        }
        task.trace.push(format!("exerted by {}", self.name));
        match task.signature.selector.as_str() {
            selectors::GET_VALUE => self.handle_get_value(env, task),
            selectors::GET_HISTORY => self.handle_get_history(task),
            selectors::GET_INFO => self.handle_get_info(task),
            other => task.fail(format!("'{}' has no operation '{other}'", self.name)),
        }
    }
}

impl std::fmt::Debug for ElementarySensorProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElementarySensorProvider")
            .field("name", &self.name)
            .field("stored", &self.store.len())
            .field("reads_total", &self.reads_total)
            .finish()
    }
}

/// Everything needed to stand an ESP up on the network.
pub struct EspConfig {
    pub host: HostId,
    pub name: String,
    pub probe: Box<dyn SensorProbe>,
    /// Lookup service to register with.
    pub lus: LusHandle,
    /// Renewal service keeping the registration alive; `None` leaves
    /// renewal to the test (the lease will lapse).
    pub renewal: Option<RenewalHandle>,
    pub lease: SimDuration,
    /// Background sampling period for the local store; `None` samples only
    /// on demand.
    pub sample_every: Option<SimDuration>,
    /// Location attribute for the registration (building, floor, room).
    pub location: Option<(String, String, String)>,
    /// Equivalence group: providers sharing a group are interchangeable —
    /// a composite whose named child is gone may fall back to any of them
    /// (§V.A). Registered as a `Custom { key: "equivalence-group" }` entry.
    pub equivalence_group: Option<String>,
}

impl EspConfig {
    pub fn new(
        host: HostId,
        name: impl Into<String>,
        probe: Box<dyn SensorProbe>,
        lus: LusHandle,
    ) -> EspConfig {
        EspConfig {
            host,
            name: name.into(),
            probe,
            lus,
            renewal: None,
            lease: SimDuration::from_secs(30),
            sample_every: None,
            location: None,
            equivalence_group: None,
        }
    }
}

/// Handle to a deployed ESP.
#[derive(Clone, Copy, Debug)]
pub struct EspHandle {
    pub service: ServiceId,
    pub host: HostId,
}

/// Deploy an ESP: create the provider, register it with the LUS
/// (interfaces `SensorDataAccessor` + `Servicer`, type `ELEMENTARY`),
/// arrange lease renewal, and start background sampling if configured.
pub fn deploy_esp(env: &mut Env, config: EspConfig) -> EspHandle {
    let mut esp = ElementarySensorProvider::new(config.name.clone(), config.probe);
    esp.host = Some(config.host);
    let service = env.deploy(config.host, config.name.clone(), ServicerBox::new(esp));

    let mut attributes = vec![
        Entry::Name(config.name.clone()),
        Entry::ServiceType("ELEMENTARY".into()),
    ];
    if let Some((building, floor, room)) = config.location {
        attributes.push(Entry::Location {
            building,
            floor,
            room,
        });
    }
    if let Some(group) = config.equivalence_group {
        attributes.push(Entry::Custom {
            key: crate::csp::EQUIVALENCE_GROUP_KEY.to_string(),
            value: group,
        });
    }
    let item = ServiceItem::new(
        SvcUuid::NIL,
        config.host,
        service,
        vec![
            interfaces::SENSOR_DATA_ACCESSOR.into(),
            interfaces::SERVICER.into(),
        ],
        attributes,
    );
    let registration = config
        .lus
        .register(env, config.host, item, Some(config.lease));
    if let Ok(reg) = registration {
        let _ = env.with_service(service, |_env, sb: &mut ServicerBox| {
            if let Some(esp) = sb.downcast_mut::<ElementarySensorProvider>() {
                esp.uuid = reg.uuid.to_string();
            }
        });
        if let Some(renewal) = config.renewal {
            renewal.manage(env, config.host, config.lus, reg.lease, config.lease);
        }
    }

    if let Some(every) = config.sample_every {
        env.schedule_every(every, every, move |env| {
            env.with_service(service, |env, sb: &mut ServicerBox| {
                if let Some(esp) = sb.downcast_mut::<ElementarySensorProvider>() {
                    let _ = esp.sample_now(env);
                }
            })
            .is_ok()
        });
    }

    EspHandle {
        service,
        host: config.host,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accessor::{client, SensorReading};
    use sensorcer_registry::lease::LeasePolicy;
    use sensorcer_registry::lus::LookupService;
    use sensorcer_sim::prelude::*;

    struct World {
        env: Env,
        client: HostId,
        mote: HostId,
        lus: LusHandle,
        accessor: ServiceAccessor,
    }

    fn setup() -> World {
        let mut env = Env::with_seed(1);
        let lab = env.add_host("lab", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        let mote = env.add_host("mote", HostKind::SensorMote);
        let lus = LookupService::deploy(
            &mut env,
            lab,
            "LUS",
            "public",
            LeasePolicy::default(),
            SimDuration::from_millis(500),
        );
        let accessor = ServiceAccessor::new(vec![lus]);
        World {
            env,
            client,
            mote,
            lus,
            accessor,
        }
    }

    fn scripted(values: Vec<f64>) -> Box<dyn SensorProbe> {
        Box::new(ScriptedProbe::new(values, Unit::Celsius))
    }

    #[test]
    fn deployed_esp_answers_get_value() {
        let mut w = setup();
        deploy_esp(
            &mut w.env,
            EspConfig::new(w.mote, "Neem-Sensor", scripted(vec![21.25]), w.lus),
        );
        let reading = client::get_value(&mut w.env, w.client, &w.accessor, "Neem-Sensor").unwrap();
        assert_eq!(
            reading,
            SensorReading {
                value: 21.25,
                unit: "°C".into(),
                at_ns: reading.at_ns,
                good: true
            }
        );
    }

    #[test]
    fn get_info_describes_the_sensor() {
        let mut w = setup();
        deploy_esp(
            &mut w.env,
            EspConfig {
                location: Some(("CP TTU".into(), "3".into(), "310".into())),
                ..EspConfig::new(w.mote, "Neem-Sensor", scripted(vec![20.0]), w.lus)
            },
        );
        let info = client::get_info(&mut w.env, w.client, &w.accessor, "Neem-Sensor").unwrap();
        assert_eq!(info.service_type, "ELEMENTARY");
        assert_eq!(info.unit, "°C");
        assert!(info.contained.is_empty());
        assert!(!info.uuid.is_empty(), "uuid filled from registration");
    }

    #[test]
    fn background_sampling_fills_history() {
        let mut w = setup();
        deploy_esp(
            &mut w.env,
            EspConfig {
                sample_every: Some(SimDuration::from_secs(1)),
                ..EspConfig::new(w.mote, "Neem-Sensor", scripted(vec![1.0, 2.0, 3.0]), w.lus)
            },
        );
        w.env.run_for(SimDuration::from_secs(5));
        let hist =
            client::get_history(&mut w.env, w.client, &w.accessor, "Neem-Sensor", 3).unwrap();
        assert_eq!(hist.len(), 3);
        assert_eq!(
            hist,
            vec![3.0, 1.0, 2.0],
            "cycling script, last 3 of 5 samples"
        );
    }

    #[test]
    fn unknown_selector_fails() {
        let mut w = setup();
        deploy_esp(
            &mut w.env,
            EspConfig::new(w.mote, "N", scripted(vec![1.0]), w.lus),
        );
        let task = Task::new(
            "bad",
            Signature::new(interfaces::SENSOR_DATA_ACCESSOR, "selfDestruct").on("N"),
            Context::new(),
        );
        let done = exert(&mut w.env, w.client, task.into(), &w.accessor, None);
        assert!(done.status().is_failed());
    }

    #[test]
    fn dropout_served_from_store_as_suspect() {
        let mut w = setup();
        let probe = SimulatedProbe::new(
            Teds::sunspot_temperature("d"),
            Signal::Constant(20.0),
            SimRng::new(9),
        )
        .with_faults(FaultInjector::new(FaultModel {
            dropout_prob: 0.0,
            ..Default::default()
        }));
        deploy_esp(
            &mut w.env,
            EspConfig::new(w.mote, "D", Box::new(probe), w.lus),
        );
        // First read fills the store.
        let r1 = client::get_value(&mut w.env, w.client, &w.accessor, "D").unwrap();
        assert!(r1.good);
        // Swap in total dropout.
        let svc = w.env.find_service("D").unwrap();
        w.env
            .with_service(svc, |_e, sb: &mut ServicerBox| {
                let esp = sb.downcast_mut::<ElementarySensorProvider>().unwrap();
                esp.probe = Box::new(
                    SimulatedProbe::new(
                        Teds::sunspot_temperature("d"),
                        Signal::Constant(20.0),
                        SimRng::new(9),
                    )
                    .with_faults(FaultInjector::new(FaultModel {
                        dropout_prob: 1.0,
                        ..Default::default()
                    })),
                );
            })
            .unwrap();
        let r2 = client::get_value(&mut w.env, w.client, &w.accessor, "D").unwrap();
        assert!(!r2.good, "stale store reading must be flagged suspect");
        assert_eq!(r2.value, r1.value);
    }

    #[test]
    fn dead_battery_fails_reads() {
        let mut w = setup();
        let probe = SimulatedProbe::new(
            Teds::sunspot_temperature("b"),
            Signal::Constant(20.0),
            SimRng::new(3),
        )
        .with_battery(Battery::new(10.0, 50.0, 1.0)); // dies on first sample
        deploy_esp(
            &mut w.env,
            EspConfig::new(w.mote, "B", Box::new(probe), w.lus),
        );
        let err = client::get_value(&mut w.env, w.client, &w.accessor, "B").unwrap_err();
        assert!(err.contains("battery"), "{err}");
    }

    #[test]
    fn lease_without_renewal_lapses_and_binding_fails() {
        let mut w = setup();
        deploy_esp(
            &mut w.env,
            EspConfig {
                lease: SimDuration::from_secs(5),
                ..EspConfig::new(w.mote, "Ephemeral", scripted(vec![1.0]), w.lus)
            },
        );
        assert!(client::get_value(&mut w.env, w.client, &w.accessor, "Ephemeral").is_ok());
        w.env.run_for(SimDuration::from_secs(10));
        let err = client::get_value(&mut w.env, w.client, &w.accessor, "Ephemeral").unwrap_err();
        assert!(err.contains("no provider"), "{err}");
    }

    #[test]
    fn renewal_keeps_esp_bound() {
        let mut w = setup();
        let renewal_host = w
            .env
            .topo
            .group_members("public")
            .first()
            .copied()
            .unwrap_or(HostId(0));
        let renewal = sensorcer_registry::renewal::LeaseRenewalService::deploy(
            &mut w.env,
            renewal_host,
            "Lease Renewal Service",
        );
        deploy_esp(
            &mut w.env,
            EspConfig {
                lease: SimDuration::from_secs(5),
                renewal: Some(renewal),
                ..EspConfig::new(w.mote, "Durable", scripted(vec![1.0]), w.lus)
            },
        );
        w.env.run_for(SimDuration::from_secs(60));
        assert!(client::get_value(&mut w.env, w.client, &w.accessor, "Durable").is_ok());
    }

    #[test]
    fn esp_rejects_jobs() {
        let mut w = setup();
        let h = deploy_esp(
            &mut w.env,
            EspConfig::new(w.mote, "N", scripted(vec![1.0]), w.lus),
        );
        let job = Job::new("j", ControlStrategy::sequence());
        let done = exert_on(&mut w.env, w.client, h.service, job.into(), None).unwrap();
        assert!(done.status().is_failed());
    }
}
