//! The `SensorDataAccessor` interface contract.
//!
//! "The SORCER infrastructure treats sensor providers as peers that
//! implement a common *SensorDataAccessor* interface" (§V.A). Because
//! operations in EOA are reachable only through exertions, the interface
//! is defined here as a set of operation *selectors* plus the context
//! paths each reads and writes; [`client`] offers typed wrappers that
//! build and submit the corresponding exertions.

use sensorcer_exertion::prelude::*;
use sensorcer_registry::ids::interfaces;
use sensorcer_sim::env::Env;
use sensorcer_sim::topology::HostId;

/// Operation selectors of `SensorDataAccessor`.
pub mod selectors {
    /// Read the current sensor value. Writes `sensor/value`,
    /// `sensor/unit`, `sensor/at`, `sensor/quality` (and `result/value`
    /// as the generic result slot).
    pub const GET_VALUE: &str = "getValue";
    /// Read the most recent `arg/count` stored measurements. Writes
    /// `history/values` (list) and `history/times` (list).
    pub const GET_HISTORY: &str = "getHistory";
    /// Describe the service. Writes `info/*` paths.
    pub const GET_INFO: &str = "getInfo";
}

/// Management selectors of composite providers (`CompositeManagement`).
pub mod mgmt {
    /// Add a child service: `arg/service` = provider name. Writes
    /// `mgmt/variable` — the expression variable assigned to the child.
    pub const ADD_SERVICE: &str = "addService";
    /// Remove a child: `arg/service` = provider name.
    pub const REMOVE_SERVICE: &str = "removeService";
    /// Install a compute expression: `arg/expression` = source text.
    pub const SET_EXPRESSION: &str = "setExpression";
}

/// A parsed `getInfo` response — what the sensor browser's "Sensor
/// Service Information" panel displays (Fig. 2).
#[derive(Clone, Debug, PartialEq)]
pub struct SensorInfo {
    pub name: String,
    /// "ELEMENTARY", "COMPOSITE", "FACADE", ...
    pub service_type: String,
    pub uuid: String,
    /// Children of a composite (empty for elementary services).
    pub contained: Vec<String>,
    /// Compute expression of a composite, if set.
    pub expression: Option<String>,
    pub unit: String,
    /// Battery fraction 0..=1 (1.0 for mains / composites).
    pub battery: f64,
}

impl SensorInfo {
    /// Extract from a `getInfo` result context.
    pub fn from_context(ctx: &Context) -> Option<SensorInfo> {
        Some(SensorInfo {
            name: ctx.get_str("info/name")?.to_string(),
            service_type: ctx.get_str("info/type")?.to_string(),
            uuid: ctx.get_str("info/uuid").unwrap_or_default().to_string(),
            contained: match ctx.get("info/contained") {
                Some(sensorcer_expr::Value::List(xs)) => xs.iter().map(|v| v.to_string()).collect(),
                _ => Vec::new(),
            },
            expression: ctx.get_str("info/expression").map(str::to_string),
            unit: ctx.get_str("info/unit").unwrap_or_default().to_string(),
            battery: ctx.get_f64("info/battery").unwrap_or(1.0),
        })
    }

    /// Write into a context (provider side).
    pub fn write_to(&self, ctx: &mut Context) {
        ctx.put("info/name", self.name.as_str());
        ctx.put("info/type", self.service_type.as_str());
        ctx.put("info/uuid", self.uuid.as_str());
        ctx.put(
            "info/contained",
            sensorcer_expr::Value::List(self.contained.iter().map(|s| s.as_str().into()).collect()),
        );
        if let Some(e) = &self.expression {
            ctx.put("info/expression", e.as_str());
        }
        ctx.put("info/unit", self.unit.as_str());
        ctx.put("info/battery", self.battery);
    }
}

/// A reading as returned by `getValue`.
#[derive(Clone, Debug, PartialEq)]
pub struct SensorReading {
    pub value: f64,
    pub unit: String,
    /// Virtual time of the reading, nanoseconds.
    pub at_ns: u64,
    pub good: bool,
}

impl SensorReading {
    pub fn from_context(ctx: &Context) -> Option<SensorReading> {
        Some(SensorReading {
            value: ctx.get_f64(paths::SENSOR_VALUE)?,
            unit: ctx
                .get_str(paths::SENSOR_UNIT)
                .unwrap_or_default()
                .to_string(),
            at_ns: ctx.get_f64(paths::SENSOR_AT).unwrap_or(0.0) as u64,
            good: ctx.get_str(paths::SENSOR_QUALITY) != Some("suspect"),
        })
    }
}

/// Which composite children degraded in a read — substituted from a
/// last-known-good cache, or missing entirely (skipped by the default
/// aggregate under a quorum policy). Empty on a clean read.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct DegradedInfo {
    /// Children whose reading came from the last-known-good cache.
    pub substituted: Vec<String>,
    /// Children with no reading at all.
    pub missing: Vec<String>,
}

impl DegradedInfo {
    /// Did anything degrade?
    pub fn is_degraded(&self) -> bool {
        !self.substituted.is_empty() || !self.missing.is_empty()
    }

    /// Extract the degraded-children lists from a `getValue` result
    /// context (absent paths mean a clean read).
    pub fn from_context(ctx: &Context) -> DegradedInfo {
        let split = |path: &str| -> Vec<String> {
            ctx.get_str(path)
                .map(|s| s.split(',').map(str::to_string).collect())
                .unwrap_or_default()
        };
        DegradedInfo {
            substituted: split(paths::SENSOR_SUBSTITUTED),
            missing: split(paths::SENSOR_MISSING),
        }
    }

    /// Write the non-empty lists into a result context (provider side).
    pub fn write_to(&self, ctx: &mut Context) {
        if !self.substituted.is_empty() {
            ctx.put(paths::SENSOR_SUBSTITUTED, self.substituted.join(","));
        }
        if !self.missing.is_empty() {
            ctx.put(paths::SENSOR_MISSING, self.missing.join(","));
        }
    }
}

/// Typed requestor-side wrappers: build the exertion, submit it with
/// [`exert`], parse the returned context.
pub mod client {
    use super::*;

    /// Read the value of the named sensor service.
    pub fn get_value(
        env: &mut Env,
        from: HostId,
        accessor: &ServiceAccessor,
        provider: &str,
    ) -> Result<SensorReading, String> {
        get_value_detailed(env, from, accessor, provider).map(|(r, _)| r)
    }

    /// Read the value of the named sensor service, along with which
    /// composite children (if any) were substituted or missing in a
    /// degraded read.
    pub fn get_value_detailed(
        env: &mut Env,
        from: HostId,
        accessor: &ServiceAccessor,
        provider: &str,
    ) -> Result<(SensorReading, DegradedInfo), String> {
        let task = Task::new(
            format!("read {provider}"),
            Signature::new(interfaces::SENSOR_DATA_ACCESSOR, selectors::GET_VALUE).on(provider),
            Context::new(),
        );
        let done = exert(env, from, task.into(), accessor, None);
        match done.status() {
            ExertionStatus::Done => SensorReading::from_context(done.context())
                .map(|r| (r, DegradedInfo::from_context(done.context())))
                .ok_or_else(|| "provider returned no reading".to_string()),
            ExertionStatus::Failed(e) => Err(e.clone()),
            other => Err(format!("unexpected exertion status {other:?}")),
        }
    }

    /// Fetch the info panel of the named sensor service.
    pub fn get_info(
        env: &mut Env,
        from: HostId,
        accessor: &ServiceAccessor,
        provider: &str,
    ) -> Result<SensorInfo, String> {
        let task = Task::new(
            format!("info {provider}"),
            Signature::new(interfaces::SENSOR_DATA_ACCESSOR, selectors::GET_INFO).on(provider),
            Context::new(),
        );
        let done = exert(env, from, task.into(), accessor, None);
        match done.status() {
            ExertionStatus::Done => SensorInfo::from_context(done.context())
                .ok_or_else(|| "provider returned no info".to_string()),
            ExertionStatus::Failed(e) => Err(e.clone()),
            other => Err(format!("unexpected exertion status {other:?}")),
        }
    }

    /// Fetch up to `count` recent measurements.
    pub fn get_history(
        env: &mut Env,
        from: HostId,
        accessor: &ServiceAccessor,
        provider: &str,
        count: usize,
    ) -> Result<Vec<f64>, String> {
        let task = Task::new(
            format!("history {provider}"),
            Signature::new(interfaces::SENSOR_DATA_ACCESSOR, selectors::GET_HISTORY).on(provider),
            Context::new().with("arg/count", count as i64),
        );
        let done = exert(env, from, task.into(), accessor, None);
        match done.status() {
            ExertionStatus::Done => match done.context().get("history/values") {
                Some(sensorcer_expr::Value::List(xs)) => Ok(xs
                    .iter()
                    .filter_map(sensorcer_expr::Value::as_f64)
                    .collect()),
                _ => Ok(Vec::new()),
            },
            ExertionStatus::Failed(e) => Err(e.clone()),
            other => Err(format!("unexpected exertion status {other:?}")),
        }
    }

    /// Management call against a composite provider.
    pub fn manage(
        env: &mut Env,
        from: HostId,
        accessor: &ServiceAccessor,
        provider: &str,
        selector: &str,
        args: Context,
    ) -> Result<Context, String> {
        let task = Task::new(
            format!("{selector} on {provider}"),
            Signature::new(interfaces::COMPOSITE_MANAGEMENT, selector).on(provider),
            args,
        );
        let done = exert(env, from, task.into(), accessor, None);
        match done.status() {
            ExertionStatus::Done => Ok(done.context().clone()),
            ExertionStatus::Failed(e) => Err(e.clone()),
            other => Err(format!("unexpected exertion status {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_round_trips_through_context() {
        let info = SensorInfo {
            name: "Composite-Service".into(),
            service_type: "COMPOSITE".into(),
            uuid: "267c67a0-dd67-4b95-beb0-e6763e117b03".into(),
            contained: vec!["Neem-Sensor".into(), "Jade-Sensor".into()],
            expression: Some("(a + b)/2".into()),
            unit: "°C".into(),
            battery: 1.0,
        };
        let mut ctx = Context::new();
        info.write_to(&mut ctx);
        let back = SensorInfo::from_context(&ctx).unwrap();
        assert_eq!(back, info);
    }

    #[test]
    fn info_without_expression() {
        let info = SensorInfo {
            name: "Neem-Sensor".into(),
            service_type: "ELEMENTARY".into(),
            uuid: String::new(),
            contained: vec![],
            expression: None,
            unit: "°C".into(),
            battery: 0.97,
        };
        let mut ctx = Context::new();
        info.write_to(&mut ctx);
        let back = SensorInfo::from_context(&ctx).unwrap();
        assert_eq!(back.expression, None);
        assert!((back.battery - 0.97).abs() < 1e-12);
    }

    #[test]
    fn reading_from_context() {
        let ctx = Context::new()
            .with(paths::SENSOR_VALUE, 21.5)
            .with(paths::SENSOR_UNIT, "°C")
            .with(paths::SENSOR_AT, 1_000_000.0)
            .with(paths::SENSOR_QUALITY, "good");
        let r = SensorReading::from_context(&ctx).unwrap();
        assert_eq!(r.value, 21.5);
        assert!(r.good);
        assert_eq!(r.at_ns, 1_000_000);

        let suspect = Context::new()
            .with(paths::SENSOR_VALUE, 1.0)
            .with(paths::SENSOR_QUALITY, "suspect");
        assert!(!SensorReading::from_context(&suspect).unwrap().good);

        assert!(SensorReading::from_context(&Context::new()).is_none());
    }

    #[test]
    fn degraded_info_round_trips_and_detects_cleanliness() {
        let clean = DegradedInfo::from_context(&Context::new());
        assert!(!clean.is_degraded());
        assert_eq!(clean, DegradedInfo::default());

        let info = DegradedInfo {
            substituted: vec!["S1".into(), "S4".into()],
            missing: vec!["S2".into()],
        };
        assert!(info.is_degraded());
        let mut ctx = Context::new();
        info.write_to(&mut ctx);
        assert_eq!(ctx.get_str(paths::SENSOR_SUBSTITUTED), Some("S1,S4"));
        let back = DegradedInfo::from_context(&ctx);
        assert_eq!(back, info);

        // Empty lists leave the context untouched.
        let mut ctx = Context::new();
        DegradedInfo::default().write_to(&mut ctx);
        assert!(ctx.is_empty());
    }
}
