//! Overload protection for the façade: per-tenant admission control with
//! token-bucket quotas, QoS-class load shedding, and per-servicer circuit
//! breakers.
//!
//! The paper's façade is "the single entry point of the SenSORCER system"
//! — which makes it the single place a hot tenant can starve everyone
//! else. This module puts a gate in front of it:
//!
//! * **Token buckets over sim-time** — each tenant has a refill rate and a
//!   burst allowance; a request with no token available is *queued* (the
//!   façade waits out the predicted token arrival in virtual time) or
//!   *shed*, never silently delayed past its class budget.
//! * **QoS classes** — [`QosClass::Critical`] / [`QosClass::Standard`] /
//!   [`QosClass::Bulk`] with strictly ordered queue-wait budgets. Priority
//!   is enforced through the budgets: Bulk tolerates almost no queueing,
//!   so under pressure Bulk is shed first, Standard second, and Critical
//!   keeps flowing — strict-priority dispatch expressed as deadline-aware
//!   shedding.
//! * **Typed rejections** — a shed request fails with a parseable
//!   [`REJECTION_PREFIX`] message and an `admission.shed` trace event;
//!   it never surfaces as a timeout.
//! * **Circuit breakers** — a [`BreakerRegistry`] tracks consecutive
//!   transient [`NetError`]s per servicer and trips Closed → Open →
//!   HalfOpen over sim-time so a known-bad host is skipped instead of
//!   retried (the composite fan-out consults it before every dispatch).
//!
//! Everything runs on virtual time: admission waits are `env.run_for`
//! sleeps and breaker cool-downs compare `env.now()`, so seeded runs stay
//! bit-identical.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use sensorcer_exertion::retry::RetryPolicy;
use sensorcer_sim::env::{Env, ServiceId};
use sensorcer_sim::time::{SimDuration, SimTime};
use sensorcer_sim::topology::NetError;

/// Metric keys exported by the admission layer.
pub mod keys {
    /// Requests admitted through the gate (also labeled by QoS class).
    pub const ADMITTED: &str = "admission.requests.admitted";
    /// Requests shed with a typed rejection (also labeled by QoS class).
    pub const SHED: &str = "admission.requests.shed";
    /// Requests that waited for a token before admission.
    pub const QUEUE_DELAYS: &str = "admission.queue.delays";
    /// Distribution of queue waits, in nanoseconds.
    pub const QUEUE_WAIT_NS: &str = "admission.queue.wait_ns";
    /// Dispatches skipped because the target's breaker was open.
    pub const BREAKER_SKIPPED: &str = "breaker.calls.skipped";
    /// Closed/HalfOpen → Open transitions.
    pub const BREAKER_OPENED: &str = "breaker.state.opened";
    /// Open/HalfOpen → Closed transitions.
    pub const BREAKER_CLOSED: &str = "breaker.state.closed";
    /// Open → HalfOpen transitions (cool-down elapsed, probes allowed).
    pub const BREAKER_HALF_OPEN: &str = "breaker.probes.halfopen";
}

// ---------------------------------------------------------------------------
// QoS classes
// ---------------------------------------------------------------------------

/// Service class of a tenant. Ordered by priority: `Critical` outranks
/// `Standard` outranks `Bulk`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QosClass {
    Critical,
    Standard,
    Bulk,
}

impl QosClass {
    /// The longest queue wait a request of this class accepts before it is
    /// shed instead. Strictly decreasing with priority rank inverted —
    /// Bulk tolerates the least queueing, so it is rejected first when the
    /// gate backs up, which is exactly how strict-priority dispatch
    /// degrades under overload.
    pub fn queue_budget(self) -> SimDuration {
        match self {
            QosClass::Critical => SimDuration::from_millis(2_000),
            QosClass::Standard => SimDuration::from_millis(800),
            QosClass::Bulk => SimDuration::from_millis(150),
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            QosClass::Critical => "critical",
            QosClass::Standard => "standard",
            QosClass::Bulk => "bulk",
        }
    }
}

// ---------------------------------------------------------------------------
// Per-tenant quotas
// ---------------------------------------------------------------------------

/// Quota assigned to one tenant.
#[derive(Clone, Copy, Debug)]
pub struct TenantPolicy {
    pub class: QosClass,
    /// Token refill rate, requests per virtual second.
    pub rate_per_sec: f64,
    /// Bucket capacity: how many requests may arrive back-to-back before
    /// queueing starts.
    pub burst: f64,
    /// Concurrent in-flight requests allowed (admitted but not completed).
    pub max_in_flight: u32,
}

impl TenantPolicy {
    pub fn new(class: QosClass, rate_per_sec: f64, burst: f64, max_in_flight: u32) -> TenantPolicy {
        assert!(rate_per_sec > 0.0, "a tenant needs a positive refill rate");
        assert!(burst >= 1.0, "a bucket must hold at least one token");
        TenantPolicy {
            class,
            rate_per_sec,
            burst,
            max_in_flight,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct TenantState {
    /// May go negative: a queued request reserves its token up front, so
    /// the deficit *is* the virtual queue — the next request's predicted
    /// wait grows with every reservation ahead of it.
    tokens: f64,
    last_refill: SimTime,
    in_flight: u32,
}

/// Why a request was shed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ShedReason {
    /// The predicted token wait exceeded the class queue budget.
    RateLimit { wait: SimDuration },
    /// The tenant's in-flight concurrency cap was reached.
    Concurrency,
}

impl ShedReason {
    pub fn kind(self) -> &'static str {
        match self {
            ShedReason::RateLimit { .. } => "rate_limit",
            ShedReason::Concurrency => "concurrency",
        }
    }

    pub fn wait_ns(self) -> u64 {
        match self {
            ShedReason::RateLimit { wait } => wait.as_nanos(),
            ShedReason::Concurrency => 0,
        }
    }
}

/// A typed shed verdict, convertible into the rejection message a client
/// sees.
#[derive(Clone, Debug, PartialEq)]
pub struct Shed {
    pub tenant: String,
    pub class: QosClass,
    pub reason: ShedReason,
}

/// Every shed request fails with a message starting with this prefix, so
/// clients (and the storm harness) can tell load shedding apart from real
/// faults without string-guessing.
pub const REJECTION_PREFIX: &str = "admission rejected:";

/// Whether a task failure message is a typed admission rejection.
pub fn is_rejection(msg: &str) -> bool {
    msg.starts_with(REJECTION_PREFIX)
}

impl Shed {
    pub fn rejection(&self) -> String {
        format!(
            "{REJECTION_PREFIX} tenant={} class={} reason={} wait_ns={}",
            self.tenant,
            self.class.as_str(),
            self.reason.kind(),
            self.reason.wait_ns()
        )
    }
}

enum Decision {
    Admit,
    Queue(SimDuration),
    Shed(ShedReason),
}

/// The façade-front gate: one token bucket + concurrency cap per tenant.
#[derive(Debug)]
pub struct AdmissionController {
    default_policy: TenantPolicy,
    tenants: BTreeMap<String, (TenantPolicy, TenantState)>,
}

impl AdmissionController {
    /// `default_policy` covers tenants that never registered explicitly.
    pub fn new(default_policy: TenantPolicy) -> AdmissionController {
        AdmissionController {
            default_policy,
            tenants: BTreeMap::new(),
        }
    }

    /// Assign (or replace) a tenant's quota. The bucket starts full.
    pub fn register(&mut self, tenant: impl Into<String>, policy: TenantPolicy) {
        let state = TenantState {
            tokens: policy.burst,
            last_refill: SimTime::ZERO,
            in_flight: 0,
        };
        self.tenants.insert(tenant.into(), (policy, state));
    }

    /// Retune a tenant's refill rate in place (the autoscaling feedback
    /// path: capacity added behind the façade raises the rate the gate
    /// lets through). Burst scales proportionally.
    pub fn set_rate(&mut self, tenant: &str, rate_per_sec: f64) {
        if let Some((policy, state)) = self.tenants.get_mut(tenant) {
            assert!(rate_per_sec > 0.0, "a tenant needs a positive refill rate");
            let scale = rate_per_sec / policy.rate_per_sec;
            policy.rate_per_sec = rate_per_sec;
            policy.burst = (policy.burst * scale).max(1.0);
            // Preserve the fill fraction so a capacity change takes effect
            // immediately instead of waiting out the old bucket's deficit.
            state.tokens *= scale;
        }
    }

    pub fn class_of(&self, tenant: &str) -> QosClass {
        self.tenants
            .get(tenant)
            .map(|(p, _)| p.class)
            .unwrap_or(self.default_policy.class)
    }

    pub fn rate_of(&self, tenant: &str) -> f64 {
        self.tenants
            .get(tenant)
            .map(|(p, _)| p.rate_per_sec)
            .unwrap_or(self.default_policy.rate_per_sec)
    }

    pub fn in_flight_of(&self, tenant: &str) -> u32 {
        self.tenants
            .get(tenant)
            .map(|(_, s)| s.in_flight)
            .unwrap_or(0)
    }

    /// A request finished (success or failure): release its concurrency
    /// slot. Must be called exactly once per admitted request.
    pub fn complete(&mut self, tenant: &str) {
        if let Some((_, state)) = self.tenants.get_mut(tenant) {
            state.in_flight = state.in_flight.saturating_sub(1);
        }
    }

    fn decide(&mut self, now: SimTime, tenant: &str) -> (QosClass, Decision) {
        let default_policy = self.default_policy;
        let (policy, state) = self.tenants.entry(tenant.to_string()).or_insert_with(|| {
            (
                default_policy,
                TenantState {
                    tokens: default_policy.burst,
                    last_refill: now,
                    in_flight: 0,
                },
            )
        });

        // Refill from elapsed virtual time, capped at the burst allowance.
        let elapsed = (now - state.last_refill).as_secs_f64();
        state.tokens = (state.tokens + elapsed * policy.rate_per_sec).min(policy.burst);
        state.last_refill = now;

        if state.in_flight >= policy.max_in_flight {
            return (policy.class, Decision::Shed(ShedReason::Concurrency));
        }
        if state.tokens >= 1.0 {
            state.tokens -= 1.0;
            state.in_flight += 1;
            return (policy.class, Decision::Admit);
        }
        // Predicted wait until this request's token exists. The token
        // deficit left by earlier queued requests is included, so the wait
        // grows as the virtual queue deepens.
        let wait = SimDuration::from_secs_f64((1.0 - state.tokens) / policy.rate_per_sec);
        if wait > policy.class.queue_budget() {
            return (policy.class, Decision::Shed(ShedReason::RateLimit { wait }));
        }
        // Reserve the token now (tokens go negative) and queue.
        state.tokens -= 1.0;
        state.in_flight += 1;
        (policy.class, Decision::Queue(wait))
    }
}

/// Shared handle: the deployed façade keeps one clone, the operator (or
/// the storm harness's scaler loop) keeps another to retune rates live.
pub type SharedAdmission = Rc<RefCell<AdmissionController>>;

pub fn shared_admission(ctrl: AdmissionController) -> SharedAdmission {
    Rc::new(RefCell::new(ctrl))
}

/// Run one request through the gate. Queued requests wait out their
/// predicted token arrival in *virtual* time (`env.run_for`), which is
/// safe inside a servicer: handler-side clock advancement never trips the
/// caller's dispatch timeout. The controller borrow is dropped before the
/// wait so timers firing during it can reach the controller again.
pub fn admit(env: &mut Env, ctrl: &SharedAdmission, tenant: &str) -> Result<(), Shed> {
    let (class, decision) = ctrl.borrow_mut().decide(env.now(), tenant);
    match decision {
        Decision::Admit => {}
        Decision::Queue(wait) => {
            env.metrics.add(keys::QUEUE_DELAYS, 1);
            env.metrics
                .record(keys::QUEUE_WAIT_NS, wait.as_nanos() as f64);
            env.run_for(wait);
        }
        Decision::Shed(reason) => {
            env.metrics.add(keys::SHED, 1);
            env.metrics.add_labeled(keys::SHED, class.as_str(), 1);
            let cur = env.current_span();
            if cur.is_valid() {
                env.span_event(
                    cur,
                    "admission.shed",
                    vec![
                        ("tenant", tenant.into()),
                        ("class", class.as_str().into()),
                        ("reason", reason.kind().into()),
                        ("predicted_wait_ns", reason.wait_ns().into()),
                    ],
                );
            }
            return Err(Shed {
                tenant: tenant.to_string(),
                class,
                reason,
            });
        }
    }
    env.metrics.add(keys::ADMITTED, 1);
    env.metrics.add_labeled(keys::ADMITTED, class.as_str(), 1);
    Ok(())
}

// ---------------------------------------------------------------------------
// Circuit breakers
// ---------------------------------------------------------------------------

/// Breaker state machine per servicer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every dispatch allowed.
    Closed,
    /// Tripped: dispatches are skipped until the cool-down elapses.
    Open,
    /// Cool-down elapsed: a bounded number of probes may go through; one
    /// success closes the breaker, one transient failure re-opens it.
    HalfOpen,
}

#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive transient failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// Cool-down before Open → HalfOpen.
    pub open_for: SimDuration,
    /// Probes allowed while HalfOpen.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            open_for: SimDuration::from_secs(30),
            half_open_probes: 1,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Breaker {
    state: BreakerState,
    consecutive: u32,
    opened_at: SimTime,
    probes_left: u32,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            state: BreakerState::Closed,
            consecutive: 0,
            opened_at: SimTime::ZERO,
            probes_left: 0,
        }
    }
}

/// All breakers of one composite/facade layer, keyed by servicer id.
#[derive(Debug)]
pub struct BreakerRegistry {
    config: BreakerConfig,
    breakers: BTreeMap<ServiceId, Breaker>,
}

impl BreakerRegistry {
    pub fn new(config: BreakerConfig) -> BreakerRegistry {
        BreakerRegistry {
            config,
            breakers: BTreeMap::new(),
        }
    }

    pub fn state(&self, svc: ServiceId) -> BreakerState {
        self.breakers
            .get(&svc)
            .map(|b| b.state)
            .unwrap_or(BreakerState::Closed)
    }

    /// Whether a dispatch to `svc` may proceed right now. An open breaker
    /// whose cool-down has elapsed moves to HalfOpen and grants its probe
    /// budget; an open breaker still cooling skips the call (counted, and
    /// surfaced as a `breaker.skip` event on the current span).
    pub fn allow(&mut self, env: &mut Env, svc: ServiceId) -> bool {
        let now = env.now();
        let config = self.config;
        let b = self.breakers.entry(svc).or_insert_with(Breaker::new);
        let allowed = match b.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now - b.opened_at >= config.open_for {
                    b.state = BreakerState::HalfOpen;
                    b.probes_left = config.half_open_probes;
                    env.metrics.add(keys::BREAKER_HALF_OPEN, 1);
                    b.probes_left > 0 && {
                        b.probes_left -= 1;
                        true
                    }
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                b.probes_left > 0 && {
                    b.probes_left -= 1;
                    true
                }
            }
        };
        if !allowed {
            env.metrics.add(keys::BREAKER_SKIPPED, 1);
            let cur = env.current_span();
            if cur.is_valid() {
                env.span_event(cur, "breaker.skip", vec![("service", svc.0.into())]);
            }
        }
        allowed
    }

    /// Record the outcome of a dispatch to `svc`. Transient network errors
    /// (the retryable set, plus a retry deadline exhausted *by* transient
    /// errors) count toward tripping; success — or a non-transient error,
    /// which proves the host answered — resets.
    pub fn record(&mut self, env: &mut Env, svc: ServiceId, err: Option<NetError>) {
        let now = env.now();
        let config = self.config;
        let b = self.breakers.entry(svc).or_insert_with(Breaker::new);
        let transient = matches!(
            err,
            Some(e) if RetryPolicy::retryable(e) || e == NetError::DeadlineExhausted
        );
        if transient {
            b.consecutive += 1;
            let trips = match b.state {
                BreakerState::Closed => b.consecutive >= config.failure_threshold,
                BreakerState::HalfOpen => true,
                BreakerState::Open => false,
            };
            if trips {
                b.state = BreakerState::Open;
                b.opened_at = now;
                b.consecutive = 0;
                env.metrics.add(keys::BREAKER_OPENED, 1);
                let cur = env.current_span();
                if cur.is_valid() {
                    env.span_event(cur, "breaker.open", vec![("service", svc.0.into())]);
                }
            }
        } else {
            if b.state != BreakerState::Closed {
                env.metrics.add(keys::BREAKER_CLOSED, 1);
            }
            b.state = BreakerState::Closed;
            b.consecutive = 0;
        }
    }

    /// Force a breaker open at `now` (operator action / tests).
    pub fn trip(&mut self, svc: ServiceId, now: SimTime) {
        let b = self.breakers.entry(svc).or_insert_with(Breaker::new);
        b.state = BreakerState::Open;
        b.opened_at = now;
        b.consecutive = 0;
    }
}

/// Shared handle threaded through the composite fan-out closures.
pub type SharedBreakers = Rc<RefCell<BreakerRegistry>>;

pub fn shared_breakers(config: BreakerConfig) -> SharedBreakers {
    Rc::new(RefCell::new(BreakerRegistry::new(config)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Env {
        Env::with_seed(11)
    }

    fn controller() -> SharedAdmission {
        let mut ctrl =
            AdmissionController::new(TenantPolicy::new(QosClass::Standard, 10.0, 5.0, 8));
        ctrl.register("vip", TenantPolicy::new(QosClass::Critical, 10.0, 2.0, 8));
        ctrl.register("batch", TenantPolicy::new(QosClass::Bulk, 10.0, 2.0, 8));
        shared_admission(ctrl)
    }

    #[test]
    fn bucket_admits_burst_then_queues_in_sim_time() {
        let mut env = env();
        let ctrl = controller();
        // Burst of 2 admitted instantly.
        let t0 = env.now();
        admit(&mut env, &ctrl, "vip").unwrap();
        admit(&mut env, &ctrl, "vip").unwrap();
        assert_eq!(env.now(), t0, "burst admissions cost no virtual time");
        // Third request queues ~100ms (rate 10/s), in virtual time.
        admit(&mut env, &ctrl, "vip").unwrap();
        assert_eq!((env.now() - t0).as_nanos(), 100_000_000);
        assert_eq!(env.metrics.get(keys::ADMITTED), 3);
        assert_eq!(env.metrics.get(keys::QUEUE_DELAYS), 1);
        assert_eq!(env.metrics.get_labeled(keys::ADMITTED, "critical"), 3);
        // After a quiet second the bucket is full again.
        for _ in 0..3 {
            ctrl.borrow_mut().complete("vip");
        }
        env.run_for(SimDuration::from_secs(1));
        let t1 = env.now();
        admit(&mut env, &ctrl, "vip").unwrap();
        assert_eq!(env.now(), t1);
    }

    #[test]
    fn bulk_sheds_first_under_identical_pressure() {
        // Identical rate and burst for both tenants; the only difference
        // is the class budget. A drained bucket refills one token per
        // second, so the predicted 1s wait busts Bulk's 150ms budget but
        // fits inside Critical's 2s budget: under the same pressure Bulk
        // is rejected eagerly while Critical queues and keeps flowing.
        let mut env = env();
        let mut ctrl =
            AdmissionController::new(TenantPolicy::new(QosClass::Standard, 1.0, 2.0, 64));
        ctrl.register("vip", TenantPolicy::new(QosClass::Critical, 1.0, 2.0, 64));
        ctrl.register("batch", TenantPolicy::new(QosClass::Bulk, 1.0, 2.0, 64));
        let ctrl = shared_admission(ctrl);
        for tenant in ["vip", "batch"] {
            admit(&mut env, &ctrl, tenant).unwrap();
            admit(&mut env, &ctrl, tenant).unwrap();
        }
        let shed = admit(&mut env, &ctrl, "batch").unwrap_err();
        assert_eq!(
            shed.reason,
            ShedReason::RateLimit {
                wait: SimDuration::from_secs(1)
            }
        );
        let t0 = env.now();
        admit(&mut env, &ctrl, "vip").unwrap();
        assert_eq!(
            (env.now() - t0).as_nanos(),
            1_000_000_000,
            "queued, not shed"
        );
        assert_eq!(env.metrics.get_labeled(keys::SHED, "bulk"), 1);
        assert_eq!(env.metrics.get_labeled(keys::SHED, "critical"), 0);
    }

    #[test]
    fn concurrency_cap_sheds_and_completion_releases() {
        let mut env = env();
        let mut ctrl =
            AdmissionController::new(TenantPolicy::new(QosClass::Standard, 1_000.0, 1_000.0, 2));
        ctrl.register(
            "t",
            TenantPolicy::new(QosClass::Standard, 1_000.0, 1_000.0, 2),
        );
        let ctrl = shared_admission(ctrl);
        admit(&mut env, &ctrl, "t").unwrap();
        admit(&mut env, &ctrl, "t").unwrap();
        let shed = admit(&mut env, &ctrl, "t").unwrap_err();
        assert_eq!(shed.reason, ShedReason::Concurrency);
        assert!(is_rejection(&shed.rejection()));
        assert!(shed.rejection().contains("reason=concurrency"));
        ctrl.borrow_mut().complete("t");
        admit(&mut env, &ctrl, "t").unwrap();
        assert_eq!(ctrl.borrow().in_flight_of("t"), 2);
    }

    #[test]
    fn unknown_tenant_falls_back_to_the_default_policy() {
        let mut env = env();
        let ctrl = controller();
        admit(&mut env, &ctrl, "stranger").unwrap();
        assert_eq!(ctrl.borrow().class_of("stranger"), QosClass::Standard);
        assert_eq!(env.metrics.get_labeled(keys::ADMITTED, "standard"), 1);
    }

    #[test]
    fn set_rate_rescales_bucket_and_burst() {
        let ctrl = controller();
        ctrl.borrow_mut().set_rate("batch", 40.0);
        assert_eq!(ctrl.borrow().rate_of("batch"), 40.0);
        // Burst scaled 4x from 2.0.
        let mut env = env();
        for _ in 0..8 {
            admit(&mut env, &ctrl, "batch").unwrap();
            ctrl.borrow_mut().complete("batch");
        }
        assert_eq!(env.metrics.get(keys::QUEUE_DELAYS), 0, "burst holds 8 now");
    }

    #[test]
    fn breaker_trips_cools_probes_and_closes() {
        let mut env = env();
        let svc = ServiceId(7);
        let reg = shared_breakers(BreakerConfig {
            failure_threshold: 3,
            open_for: SimDuration::from_secs(10),
            half_open_probes: 1,
        });
        // Closed: three consecutive transients trip it.
        for _ in 0..2 {
            reg.borrow_mut()
                .record(&mut env, svc, Some(NetError::Timeout));
            assert_eq!(reg.borrow().state(svc), BreakerState::Closed);
        }
        // A retry deadline exhausted *by* transients is transient too.
        reg.borrow_mut()
            .record(&mut env, svc, Some(NetError::DeadlineExhausted));
        assert_eq!(reg.borrow().state(svc), BreakerState::Open);
        assert_eq!(env.metrics.get(keys::BREAKER_OPENED), 1);

        // Cooling: dispatches are skipped.
        assert!(!reg.borrow_mut().allow(&mut env, svc));
        assert_eq!(env.metrics.get(keys::BREAKER_SKIPPED), 1);

        // Cool-down elapsed: one probe allowed, a second is not.
        env.run_for(SimDuration::from_secs(10));
        assert!(reg.borrow_mut().allow(&mut env, svc));
        assert_eq!(reg.borrow().state(svc), BreakerState::HalfOpen);
        assert!(!reg.borrow_mut().allow(&mut env, svc));

        // Probe failure re-opens immediately (no threshold in HalfOpen)…
        reg.borrow_mut()
            .record(&mut env, svc, Some(NetError::HostDown));
        assert_eq!(reg.borrow().state(svc), BreakerState::Open);
        // …and after another cool-down a successful probe closes it.
        env.run_for(SimDuration::from_secs(10));
        assert!(reg.borrow_mut().allow(&mut env, svc));
        reg.borrow_mut().record(&mut env, svc, None);
        assert_eq!(reg.borrow().state(svc), BreakerState::Closed);
        assert_eq!(env.metrics.get(keys::BREAKER_CLOSED), 1);
    }

    #[test]
    fn non_transient_errors_do_not_trip_the_breaker() {
        let mut env = env();
        let svc = ServiceId(9);
        let reg = shared_breakers(BreakerConfig::default());
        for _ in 0..10 {
            // The host answered — it is not the breaker's business.
            reg.borrow_mut()
                .record(&mut env, svc, Some(NetError::NoSuchService));
        }
        assert_eq!(reg.borrow().state(svc), BreakerState::Closed);
        // Mixed traffic never accumulates to the threshold.
        for _ in 0..10 {
            reg.borrow_mut().record(&mut env, svc, Some(NetError::Lost));
            reg.borrow_mut().record(&mut env, svc, None);
        }
        assert_eq!(reg.borrow().state(svc), BreakerState::Closed);
    }

    #[test]
    fn rejection_messages_parse_back() {
        let shed = Shed {
            tenant: "batch".into(),
            class: QosClass::Bulk,
            reason: ShedReason::RateLimit {
                wait: SimDuration::from_millis(400),
            },
        };
        let msg = shed.rejection();
        assert!(is_rejection(&msg));
        assert!(msg.contains("tenant=batch"));
        assert!(msg.contains("class=bulk"));
        assert!(msg.contains("reason=rate_limit"));
        assert!(msg.contains("wait_ns=400000000"));
        assert!(!is_rejection("component read failures: x"));
    }
}
