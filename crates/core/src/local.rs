//! Local (embedded) deployment mode: real threads, no simulation.
//!
//! The simulated mode answers the paper's *distributed-systems* questions;
//! this mode answers the *throughput* question a downstream user has when
//! they embed SenSORCER composites in a single process: how fast can a
//! composite tree be evaluated over live probes? Child reads fan out over
//! the work-stealing [`ThreadPool`] (B8 measures sequential vs. parallel).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sensorcer_expr::{Program, Scope};
use sensorcer_runtime::sync::Mutex;
use sensorcer_runtime::ThreadPool;
use sensorcer_sensors::probe::{ProbeError, SensorProbe};
use sensorcer_sim::time::SimTime;

use crate::csp::variable_for;

/// A node in a local composite tree.
pub enum LocalNode {
    /// A leaf sensor: a live probe behind a lock (probes are stateful).
    Sensor {
        name: String,
        probe: Mutex<Box<dyn SensorProbe + Send>>,
    },
    /// An inner composite: children plus an optional compute expression
    /// over variables `a`, `b`, … (position order, like the CSP).
    Composite {
        name: String,
        children: Vec<Arc<LocalNode>>,
        expression: Option<Program>,
    },
}

/// Errors from a local read.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalReadError {
    Probe { sensor: String, error: String },
    Expression { composite: String, error: String },
    EmptyComposite { composite: String },
}

impl std::fmt::Display for LocalReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalReadError::Probe { sensor, error } => write!(f, "probe '{sensor}': {error}"),
            LocalReadError::Expression { composite, error } => {
                write!(f, "expression in '{composite}': {error}")
            }
            LocalReadError::EmptyComposite { composite } => {
                write!(f, "composite '{composite}' has no children")
            }
        }
    }
}

impl std::error::Error for LocalReadError {}

impl LocalNode {
    /// Leaf constructor.
    pub fn sensor(name: impl Into<String>, probe: Box<dyn SensorProbe + Send>) -> Arc<LocalNode> {
        Arc::new(LocalNode::Sensor {
            name: name.into(),
            probe: Mutex::new(probe),
        })
    }

    /// Composite constructor; `expression` over `a`, `b`, … in child
    /// order, or `None` for the average.
    pub fn composite(
        name: impl Into<String>,
        children: Vec<Arc<LocalNode>>,
        expression: Option<&str>,
    ) -> Result<Arc<LocalNode>, String> {
        let name = name.into();
        let program = match expression {
            Some(src) => {
                let p = Program::compile(src).map_err(|e| e.to_string())?;
                let vars: Vec<String> = (0..children.len()).map(variable_for).collect();
                let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
                let missing = p.missing_inputs(&var_refs);
                if !missing.is_empty() {
                    return Err(format!(
                        "expression in '{name}' references unbound variable(s): {}",
                        missing.join(", ")
                    ));
                }
                Some(p)
            }
            None => None,
        };
        Ok(Arc::new(LocalNode::Composite {
            name,
            children,
            expression: program,
        }))
    }

    pub fn name(&self) -> &str {
        match self {
            LocalNode::Sensor { name, .. } | LocalNode::Composite { name, .. } => name,
        }
    }

    /// Number of leaf sensors below (and including) this node.
    pub fn leaf_count(&self) -> usize {
        match self {
            LocalNode::Sensor { .. } => 1,
            LocalNode::Composite { children, .. } => children.iter().map(|c| c.leaf_count()).sum(),
        }
    }

    /// Sequential read at logical time `at`.
    pub fn read_sequential(&self, at: SimTime) -> Result<f64, LocalReadError> {
        match self {
            LocalNode::Sensor { name, probe } => sample(name, probe, at),
            LocalNode::Composite {
                name,
                children,
                expression,
            } => {
                if children.is_empty() {
                    return Err(LocalReadError::EmptyComposite {
                        composite: name.clone(),
                    });
                }
                let mut values = Vec::with_capacity(children.len());
                for child in children {
                    values.push(child.read_sequential(at)?);
                }
                combine(name, expression.as_ref(), &values)
            }
        }
    }

    /// Parallel read: child subtrees are evaluated as independent pool
    /// tasks at every level.
    pub fn read_parallel(&self, pool: &ThreadPool, at: SimTime) -> Result<f64, LocalReadError> {
        match self {
            LocalNode::Sensor { name, probe } => sample(name, probe, at),
            LocalNode::Composite {
                name,
                children,
                expression,
            } => {
                if children.is_empty() {
                    return Err(LocalReadError::EmptyComposite {
                        composite: name.clone(),
                    });
                }
                let results = pool.par_map(children.iter().collect::<Vec<_>>(), |child| {
                    child.read_parallel(pool, at)
                });
                let mut values = Vec::with_capacity(results.len());
                for r in results {
                    values.push(r?);
                }
                combine(name, expression.as_ref(), &values)
            }
        }
    }
}

fn sample(
    name: &str,
    probe: &Mutex<Box<dyn SensorProbe + Send>>,
    at: SimTime,
) -> Result<f64, LocalReadError> {
    match probe.lock().sample(at) {
        Ok(m) => Ok(m.value),
        Err(e @ ProbeError::Dropout)
        | Err(e @ ProbeError::BatteryDead)
        | Err(e @ ProbeError::TooFast) => Err(LocalReadError::Probe {
            sensor: name.to_string(),
            error: e.to_string(),
        }),
    }
}

fn combine(
    name: &str,
    expression: Option<&Program>,
    values: &[f64],
) -> Result<f64, LocalReadError> {
    match expression {
        Some(p) => {
            let mut scope = Scope::new();
            for (i, v) in values.iter().enumerate() {
                scope.set(variable_for(i), *v);
            }
            match p.eval(&mut scope) {
                Ok(v) => v.as_f64().ok_or_else(|| LocalReadError::Expression {
                    composite: name.to_string(),
                    error: format!("non-numeric result {v}"),
                }),
                Err(e) => Err(LocalReadError::Expression {
                    composite: name.to_string(),
                    error: e.to_string(),
                }),
            }
        }
        None => Ok(values.iter().sum::<f64>() / values.len() as f64),
    }
}

/// A local federation: a composite tree plus a logical clock, ready for
/// repeated reads.
pub struct LocalFederation {
    root: Arc<LocalNode>,
    clock_ns: AtomicU64,
    /// Logical nanoseconds advanced per read (keeps probes' minimum
    /// sampling intervals satisfied).
    pub tick_ns: u64,
}

impl LocalFederation {
    pub fn new(root: Arc<LocalNode>) -> LocalFederation {
        LocalFederation {
            root,
            clock_ns: AtomicU64::new(0),
            tick_ns: 1_000_000_000,
        }
    }

    pub fn root(&self) -> &Arc<LocalNode> {
        &self.root
    }

    fn next_time(&self) -> SimTime {
        SimTime(self.clock_ns.fetch_add(self.tick_ns, Ordering::Relaxed) + self.tick_ns)
    }

    /// One sequential read of the whole tree.
    pub fn read_sequential(&self) -> Result<f64, LocalReadError> {
        self.root.read_sequential(self.next_time())
    }

    /// One parallel read of the whole tree.
    pub fn read_parallel(&self, pool: &ThreadPool) -> Result<f64, LocalReadError> {
        self.root.read_parallel(pool, self.next_time())
    }
}

/// A probe that burns CPU per sample, standing in for real acquisition
/// work (ADC conversion, driver I/O, digital filtering). `work_iters`
/// rounds of arithmetic per sample; the result feeds the value so the
/// optimizer cannot remove it.
pub struct BusyProbe {
    teds: sensorcer_sensors::teds::Teds,
    value: f64,
    work_iters: u32,
}

impl BusyProbe {
    pub fn new(value: f64, work_iters: u32) -> BusyProbe {
        let teds = sensorcer_sensors::teds::Teds {
            manufacturer: "bench".into(),
            model: "busy".into(),
            serial: "0".into(),
            unit: sensorcer_sensors::units::Unit::Celsius,
            range_min: f64::NEG_INFINITY,
            range_max: f64::INFINITY,
            resolution: 0.0,
            min_sample_interval_ns: 0,
            technology: "synthetic".into(),
        };
        BusyProbe {
            teds,
            value,
            work_iters,
        }
    }
}

impl SensorProbe for BusyProbe {
    fn sample(
        &mut self,
        now: SimTime,
    ) -> Result<sensorcer_sensors::units::Measurement, ProbeError> {
        let mut acc = self.value;
        for i in 0..self.work_iters {
            acc = (acc + i as f64 * 1e-12).sin().mul_add(1e-9, self.value);
        }
        let value = std::hint::black_box(acc);
        Ok(sensorcer_sensors::units::Measurement::good(
            value,
            sensorcer_sensors::units::Unit::Celsius,
            now,
        ))
    }

    fn teds(&self) -> &sensorcer_sensors::teds::Teds {
        &self.teds
    }
}

/// Build a balanced synthetic composite tree for benches: `depth` levels
/// of composites with `fanout` children, leaves reading constant probes.
pub fn synthetic_tree(depth: usize, fanout: usize, leaf_value: f64) -> Arc<LocalNode> {
    synthetic_tree_with_work(depth, fanout, leaf_value, 0)
}

/// Like [`synthetic_tree`], with `work_iters` rounds of CPU work per leaf
/// sample (see [`BusyProbe`]).
pub fn synthetic_tree_with_work(
    depth: usize,
    fanout: usize,
    leaf_value: f64,
    work_iters: u32,
) -> Arc<LocalNode> {
    fn build(
        level: usize,
        fanout: usize,
        leaf_value: f64,
        work_iters: u32,
        path: &mut String,
    ) -> Arc<LocalNode> {
        if level == 0 {
            let probe: Box<dyn SensorProbe + Send> = if work_iters == 0 {
                Box::new(sensorcer_sensors::probe::ScriptedProbe::new(
                    vec![leaf_value],
                    sensorcer_sensors::units::Unit::Celsius,
                ))
            } else {
                Box::new(BusyProbe::new(leaf_value, work_iters))
            };
            return LocalNode::sensor(format!("leaf{path}"), probe);
        }
        let children = (0..fanout)
            .map(|i| {
                path.push_str(&format!(".{i}"));
                let c = build(level - 1, fanout, leaf_value, work_iters, path);
                path.truncate(path.len() - format!(".{i}").len());
                c
            })
            .collect();
        // lint:allow(unwrap): composite without an expression never fails validation
        LocalNode::composite(format!("node{path}"), children, None).expect("no expression")
    }
    let mut path = String::new();
    build(depth, fanout, leaf_value, work_iters, &mut path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorcer_sensors::prelude::*;
    use sensorcer_sim::rng::SimRng;

    fn leaf(name: &str, v: f64) -> Arc<LocalNode> {
        LocalNode::sensor(name, Box::new(ScriptedProbe::new(vec![v], Unit::Celsius)))
    }

    #[test]
    fn sequential_matches_expression() {
        let tree = LocalNode::composite(
            "avg3",
            vec![leaf("n", 20.0), leaf("j", 22.0), leaf("d", 27.0)],
            Some("(a + b + c)/3"),
        )
        .unwrap();
        let fed = LocalFederation::new(tree);
        assert_eq!(fed.read_sequential().unwrap(), 23.0);
    }

    #[test]
    fn parallel_equals_sequential() {
        let pool = ThreadPool::new(4);
        let tree = synthetic_tree(3, 3, 21.0);
        assert_eq!(tree.leaf_count(), 27);
        let fed = LocalFederation::new(tree);
        let seq = fed.read_sequential().unwrap();
        let par = fed.read_parallel(&pool).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq, 21.0, "average of constant leaves");
    }

    #[test]
    fn nested_expressions_compose() {
        let inner = LocalNode::composite(
            "subnet",
            vec![leaf("n", 20.0), leaf("j", 22.0), leaf("d", 27.0)],
            Some("(a + b + c)/3"),
        )
        .unwrap();
        let outer =
            LocalNode::composite("net", vec![inner, leaf("c", 25.0)], Some("(a + b)/2")).unwrap();
        let fed = LocalFederation::new(outer);
        assert_eq!(
            fed.read_sequential().unwrap(),
            24.0,
            "the paper's Fig. 3 numbers"
        );
    }

    #[test]
    fn unbound_expression_rejected_at_build() {
        let err = match LocalNode::composite("x", vec![leaf("a", 1.0)], Some("(a + b)/2")) {
            Err(e) => e,
            Ok(_) => panic!("unbound expression must be rejected"),
        };
        assert!(err.contains('b'));
    }

    #[test]
    fn empty_composite_fails_read() {
        let node = LocalNode::composite("empty", vec![], None).unwrap();
        let fed = LocalFederation::new(node);
        assert!(matches!(
            fed.read_sequential(),
            Err(LocalReadError::EmptyComposite { .. })
        ));
    }

    #[test]
    fn probe_errors_carry_sensor_name() {
        let probe = SimulatedProbe::new(
            Teds::sunspot_temperature("x"),
            Signal::Constant(20.0),
            SimRng::new(1),
        )
        .with_battery(Battery::new(1.0, 100.0, 0.0));
        let tree =
            LocalNode::composite("c", vec![LocalNode::sensor("dying", Box::new(probe))], None)
                .unwrap();
        let fed = LocalFederation::new(tree);
        match fed.read_sequential().unwrap_err() {
            LocalReadError::Probe { sensor, .. } => assert_eq!(sensor, "dying"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn clock_advances_past_min_sample_interval() {
        let probe = SimulatedProbe::new(
            Teds::sunspot_temperature("x"),
            Signal::Constant(20.0),
            SimRng::new(1),
        );
        let tree = LocalNode::sensor("s", Box::new(probe));
        let fed = LocalFederation::new(tree);
        for _ in 0..100 {
            assert!(
                fed.read_sequential().is_ok(),
                "ticks must outpace the 10ms minimum"
            );
        }
    }

    #[test]
    fn wide_tree_parallel_read() {
        let pool = ThreadPool::new(4);
        let children: Vec<Arc<LocalNode>> =
            (0..64).map(|i| leaf(&format!("s{i}"), i as f64)).collect();
        let tree = LocalNode::composite("wide", children, None).unwrap();
        let fed = LocalFederation::new(tree);
        assert_eq!(fed.read_parallel(&pool).unwrap(), 31.5);
    }
}
