//! The SenSORCER Façade — "the single entry point of the SenSORCER
//! system" (§V.B).
//!
//! The façade provides uniform access for the sensor browser: it carries a
//! `ServiceAccessor` (LUS lookups), a **Sensor Network Manager** (create
//! subnets/networks by composing services, add/remove nodes, install
//! expressions) and a **Sensor Service Provisioner** (deploy new composite
//! services onto cybernodes via the provision monitor). Like every peer it
//! is a `Servicer`: the browser's buttons in Fig. 2 ("Get Sensor List",
//! "Get Value", "Compose Service", "Add Expression", "Create Service")
//! map one-to-one onto its selectors.

use sensorcer_exertion::prelude::*;
use sensorcer_expr::Value;
use sensorcer_obs::{AlertTransition, ReadOutcome, SloEngine, SloSpec};
use sensorcer_provision::monitor::MonitorHandle;
use sensorcer_registry::attributes::{name_of, service_type_of, Entry};
use sensorcer_registry::ids::{interfaces, SvcUuid};
use sensorcer_registry::item::{ServiceItem, ServiceTemplate};
use sensorcer_registry::lus::LusHandle;
use sensorcer_registry::txn::TxnId;
use sensorcer_sim::env::{Env, ServiceId};
use sensorcer_sim::topology::HostId;

use crate::accessor::{client, mgmt, SensorInfo, SensorReading};
use crate::admission::{self, SharedAdmission};
use crate::provisioner::{provision_composite, CompositeSpec};

/// Façade operation selectors (the browser's buttons).
pub mod ops {
    pub const LIST_SERVICES: &str = "listServices";
    pub const GET_VALUE: &str = "getValue";
    pub const GET_INFO: &str = "getInfo";
    pub const GET_HISTORY: &str = "getHistory";
    pub const COMPOSE_SERVICE: &str = "composeService";
    pub const ADD_EXPRESSION: &str = "addExpression";
    pub const CREATE_SERVICE: &str = "createService";
    pub const REMOVE_SERVICE: &str = "removeService";
    pub const NETWORK_HEALTH: &str = "networkHealth";
    pub const SLO_REPORT: &str = "sloReport";
}

/// One row of the browser's service list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceRow {
    pub name: String,
    pub service_type: String,
    pub host: HostId,
}

/// One host's row in the federation health snapshot — what the paper's
/// sensor browser would render next to each node: is the mote up, what is
/// registered there, how stale its last reading is, and how much degraded
/// traffic it has caused.
#[derive(Clone, Debug, PartialEq)]
pub struct HostHealth {
    pub host: HostId,
    pub name: String,
    pub kind: String,
    /// Whether the simulated host is up right now.
    pub alive: bool,
    /// Service names currently registered (lease still live) on this host.
    pub services: Vec<String>,
    /// Age of the last successfully served read, if any reads were served.
    pub last_read_age_ns: Option<u64>,
    /// Battery level observed at the last served read (ESP hosts only).
    pub battery: Option<f64>,
    /// Retry traffic attributed to providers on this host.
    pub retry_attempts: u64,
    pub retry_exhausted: u64,
    /// Times this host's providers were substituted from a last-known-good
    /// cache during a degraded composite read.
    pub substituted: u64,
}

/// The façade provider.
pub struct SensorcerFacade {
    name: String,
    host: HostId,
    accessor: ServiceAccessor,
    monitor: Option<MonitorHandle>,
    requests_total: u64,
    /// Health engine, present once objectives have been installed. Every
    /// `getValue` that flows through the façade feeds it.
    slos: Option<SloEngine>,
    /// Overload gate, present once admission control has been installed.
    /// Every request is admitted, queued (in virtual time) or shed with a
    /// typed rejection before any selector runs.
    admission: Option<SharedAdmission>,
}

impl SensorcerFacade {
    pub fn new(
        name: impl Into<String>,
        host: HostId,
        accessor: ServiceAccessor,
        monitor: Option<MonitorHandle>,
    ) -> Self {
        SensorcerFacade {
            name: name.into(),
            host,
            accessor,
            monitor,
            requests_total: 0,
            slos: None,
            admission: None,
        }
    }

    /// Install SLO objectives; subsequent `getValue` traffic is recorded
    /// against them and `sloReport` serves the verdicts.
    pub fn install_slos(&mut self, specs: Vec<SloSpec>) {
        self.slos = Some(SloEngine::new(specs));
    }

    /// Install the overload gate. The caller keeps a clone of the shared
    /// controller to retune tenant rates while the façade is live (the
    /// autoscaling feedback path).
    pub fn install_admission(&mut self, ctrl: SharedAdmission) {
        self.admission = Some(ctrl);
    }

    /// Burn-rate snapshot from the installed health engine, as
    /// `(service, burn_fast, burn_slow)` tuples — the tap the SLO-driven
    /// autoscaler reads each control-loop pass. Empty without SLOs.
    pub fn burn_rates(&self, now: sensorcer_sim::time::SimTime) -> Vec<(String, f64, f64)> {
        self.slos
            .as_ref()
            .map(|s| s.burn_rates(now))
            .unwrap_or_default()
    }

    /// Structured alert history from the installed health engine, fired
    /// and resolved alike, with exemplar trace ids attached — the tap the
    /// Perfetto alert-timeline track reads. Empty without SLOs.
    pub fn slo_alerts(&self) -> Vec<sensorcer_obs::Alert> {
        self.slos
            .as_ref()
            .map(|s| s.alerts().to_vec())
            .unwrap_or_default()
    }

    /// Deploy a façade and register it with every LUS the accessor knows.
    pub fn deploy(
        env: &mut Env,
        host: HostId,
        name: &str,
        accessor: ServiceAccessor,
        monitor: Option<MonitorHandle>,
    ) -> FacadeHandle {
        let facade = SensorcerFacade::new(name, host, accessor, monitor);
        Self::deploy_built(env, facade)
    }

    /// Deploy a façade with SLO objectives pre-installed.
    pub fn deploy_with_slos(
        env: &mut Env,
        host: HostId,
        name: &str,
        accessor: ServiceAccessor,
        monitor: Option<MonitorHandle>,
        specs: Vec<SloSpec>,
    ) -> FacadeHandle {
        let mut facade = SensorcerFacade::new(name, host, accessor, monitor);
        facade.install_slos(specs);
        Self::deploy_built(env, facade)
    }

    fn deploy_built(env: &mut Env, facade: SensorcerFacade) -> FacadeHandle {
        let host = facade.host;
        let name = facade.name.clone();
        let name = name.as_str();
        let lus_list: Vec<LusHandle> = facade.accessor.lus_handles().to_vec();
        let service = env.deploy(host, name, ServicerBox::new(facade));
        for lus in lus_list {
            let item = ServiceItem::new(
                SvcUuid::NIL,
                host,
                service,
                vec![
                    interfaces::SENSORCER_FACADE.into(),
                    interfaces::SERVICER.into(),
                ],
                vec![
                    Entry::Name(name.to_string()),
                    Entry::ServiceType("FACADE".into()),
                    Entry::Comment("SenSORCER Facade".into()),
                ],
            );
            let _ = lus.register(env, host, item, None);
        }
        FacadeHandle { service, host }
    }

    pub fn requests_total(&self) -> u64 {
        self.requests_total
    }

    /// The network manager's service listing: everything registered, as
    /// the browser's left panel shows it.
    pub fn list_services(&self, env: &mut Env) -> Vec<ServiceRow> {
        let mut rows = Vec::new();
        for lus in self.accessor.lus_handles() {
            if let Ok(items) = lus.lookup(env, self.host, &ServiceTemplate::any(), usize::MAX) {
                for item in items {
                    let name = name_of(&item.attributes).unwrap_or("(unnamed)").to_string();
                    if rows.iter().any(|r: &ServiceRow| r.name == name) {
                        continue;
                    }
                    rows.push(ServiceRow {
                        name,
                        service_type: service_type_of(&item.attributes)
                            .unwrap_or("UNKNOWN")
                            .to_string(),
                        host: item.host,
                    });
                }
            }
        }
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// Per-host health snapshot across the whole federation: liveness,
    /// registered services, last-read age, battery, and how much retry /
    /// substitution traffic each host has caused. One row per host, in
    /// host-id order.
    pub fn network_health(&self, env: &mut Env) -> Vec<HostHealth> {
        // Registration state first (needs &mut Env for the LUS calls).
        let mut services_by_host: std::collections::BTreeMap<HostId, Vec<String>> =
            std::collections::BTreeMap::new();
        for lus in self.accessor.lus_handles() {
            if let Ok(items) = lus.lookup(env, self.host, &ServiceTemplate::any(), usize::MAX) {
                for item in items {
                    let name = name_of(&item.attributes).unwrap_or("(unnamed)").to_string();
                    let names = services_by_host.entry(item.host).or_default();
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
        }
        let now_ns = env.now().as_nanos();
        let mut rows = Vec::with_capacity(env.topo.host_count());
        for h in env.topo.hosts() {
            let services = services_by_host.get(&h.id).cloned().unwrap_or_default();
            let substituted = services
                .iter()
                .map(|s| {
                    env.metrics
                        .get_labeled(crate::csp::keys::SUBSTITUTED_CHILDREN, s)
                })
                .sum();
            rows.push(HostHealth {
                host: h.id,
                name: h.name.clone(),
                kind: format!("{:?}", h.kind),
                alive: h.alive,
                services,
                last_read_age_ns: env
                    .metrics
                    .host_gauge(h.id, crate::esp::gauges::LAST_READ_NS)
                    .map(|t| now_ns.saturating_sub(t as u64)),
                battery: env.metrics.host_gauge(h.id, crate::esp::gauges::BATTERY),
                retry_attempts: env
                    .metrics
                    .get_host(h.id, sensorcer_exertion::retry::keys::RETRY_ATTEMPTS),
                retry_exhausted: env
                    .metrics
                    .get_host(h.id, sensorcer_exertion::retry::keys::RETRY_EXHAUSTED),
                substituted,
            });
        }
        rows
    }

    fn handle(&mut self, env: &mut Env, task: &mut Task) {
        self.requests_total += 1;
        let Some(ctrl) = self.admission.clone() else {
            self.dispatch(env, task);
            return;
        };
        let tenant = task
            .context
            .get_str("arg/tenant")
            .unwrap_or("default")
            .to_string();
        match admission::admit(env, &ctrl, &tenant) {
            Ok(()) => {
                self.dispatch(env, task);
                ctrl.borrow_mut().complete(&tenant);
            }
            Err(shed) => {
                // A shed read still burns the target service's error
                // budget: overload is an availability failure the health
                // engine (and through it the autoscaler) must see.
                if task.signature.selector == ops::GET_VALUE {
                    if let Some(name) = task.context.get_str("arg/service").map(str::to_string) {
                        if let Some(slos) = self.slos.as_mut() {
                            let now = env.now();
                            slos.record_read(now, &name, ReadOutcome::Error, 0);
                            let transitions = slos.evaluate(now);
                            mirror_transitions(env, &transitions);
                        }
                    }
                }
                task.fail(shed.rejection());
            }
        }
    }

    fn dispatch(&mut self, env: &mut Env, task: &mut Task) {
        let selector = task.signature.selector.clone();
        let outcome: Result<(), String> = match selector.as_str() {
            ops::LIST_SERVICES => {
                let rows = self.list_services(env);
                let list: Vec<Value> = rows
                    .iter()
                    .map(|r| {
                        let mut m = std::collections::BTreeMap::new();
                        m.insert("name".to_string(), Value::Str(r.name.clone()));
                        m.insert("type".to_string(), Value::Str(r.service_type.clone()));
                        Value::Map(m)
                    })
                    .collect();
                task.context.put("services/list", Value::List(list));
                Ok(())
            }
            ops::NETWORK_HEALTH => {
                let rows = self.network_health(env);
                let list: Vec<Value> = rows
                    .iter()
                    .map(|r| {
                        let mut m = std::collections::BTreeMap::new();
                        m.insert("host".to_string(), Value::Int(r.host.0 as i64));
                        m.insert("name".to_string(), Value::Str(r.name.clone()));
                        m.insert("kind".to_string(), Value::Str(r.kind.clone()));
                        m.insert("alive".to_string(), Value::Bool(r.alive));
                        m.insert(
                            "services".to_string(),
                            Value::List(r.services.iter().cloned().map(Value::Str).collect()),
                        );
                        if let Some(age) = r.last_read_age_ns {
                            m.insert("last_read_age_ns".to_string(), Value::Int(age as i64));
                        }
                        if let Some(b) = r.battery {
                            m.insert("battery".to_string(), Value::Float(b));
                        }
                        m.insert(
                            "retry_attempts".to_string(),
                            Value::Int(r.retry_attempts as i64),
                        );
                        m.insert(
                            "retry_exhausted".to_string(),
                            Value::Int(r.retry_exhausted as i64),
                        );
                        m.insert("substituted".to_string(), Value::Int(r.substituted as i64));
                        Value::Map(m)
                    })
                    .collect();
                task.context.put("health/hosts", Value::List(list));
                Ok(())
            }
            ops::GET_VALUE => match task.context.get_str("arg/service").map(str::to_string) {
                Some(name) => {
                    let t0 = env.now();
                    let res = client::get_value_detailed(env, self.host, &self.accessor, &name);
                    if let Some(slos) = self.slos.as_mut() {
                        let now = env.now();
                        let latency_ns = (now - t0).as_nanos();
                        match &res {
                            Ok((reading, degraded)) => {
                                let outcome = if degraded.is_degraded() {
                                    ReadOutcome::Degraded
                                } else {
                                    ReadOutcome::Ok
                                };
                                slos.record_read(now, &name, outcome, latency_ns);
                                // The reading's timestamp doubles as a
                                // freshness check: how old is the data the
                                // federation just served?
                                slos.record_freshness(
                                    now,
                                    &name,
                                    now.as_nanos().saturating_sub(reading.at_ns),
                                );
                            }
                            Err(_) => slos.record_read(now, &name, ReadOutcome::Error, latency_ns),
                        }
                        let transitions = slos.evaluate(now);
                        mirror_transitions(env, &transitions);
                    }
                    res.map(|(reading, degraded)| {
                        task.context.put(paths::SENSOR_VALUE, reading.value);
                        task.context.put(paths::RESULT, reading.value);
                        task.context.put(paths::SENSOR_UNIT, reading.unit.as_str());
                        task.context.put(paths::SENSOR_AT, reading.at_ns as f64);
                        task.context.put(
                            paths::SENSOR_QUALITY,
                            if reading.good { "good" } else { "suspect" },
                        );
                        // Degraded-read detail rides along so browser
                        // clients can see *which* children substituted.
                        degraded.write_to(&mut task.context);
                    })
                }
                None => Err("getValue needs arg/service".into()),
            },
            ops::SLO_REPORT => match self.slos.as_mut() {
                Some(slos) => {
                    let now = env.now();
                    let transitions = slos.evaluate(now);
                    mirror_transitions(env, &transitions);
                    let report = slos.report(now);
                    task.context
                        .put("slo/healthy", Value::Bool(report.healthy()));
                    task.context
                        .put("slo/alerts", Value::Int(report.alerts.len() as i64));
                    task.context.put("slo/report", report.to_json());
                    Ok(())
                }
                None => Err("no SLOs installed on this facade".into()),
            },
            ops::GET_INFO => match task.context.get_str("arg/service").map(str::to_string) {
                Some(name) => client::get_info(env, self.host, &self.accessor, &name)
                    .map(|info| info.write_to(&mut task.context)),
                None => Err("getInfo needs arg/service".into()),
            },
            ops::GET_HISTORY => match task.context.get_str("arg/service").map(str::to_string) {
                Some(name) => {
                    let count = task.context.get_f64("arg/count").unwrap_or(16.0) as usize;
                    client::get_history(env, self.host, &self.accessor, &name, count).map(
                        |values| {
                            task.context.put(
                                "history/values",
                                Value::List(values.into_iter().map(Value::Float).collect()),
                            );
                        },
                    )
                }
                None => Err("getHistory needs arg/service".into()),
            },
            ops::COMPOSE_SERVICE => {
                let composite = task.context.get_str("arg/composite").map(str::to_string);
                let children: Vec<String> = match task.context.get("arg/children") {
                    Some(Value::List(xs)) => xs.iter().map(|v| v.to_string()).collect(),
                    _ => Vec::new(),
                };
                match composite {
                    Some(composite) if !children.is_empty() => {
                        let mut vars = Vec::new();
                        let mut result = Ok(());
                        for child in &children {
                            match client::manage(
                                env,
                                self.host,
                                &self.accessor,
                                &composite,
                                mgmt::ADD_SERVICE,
                                Context::new().with("arg/service", child.as_str()),
                            ) {
                                Ok(ctx) => vars.push(Value::Str(
                                    ctx.get_str("mgmt/variable").unwrap_or("?").to_string(),
                                )),
                                Err(e) => {
                                    result = Err(e);
                                    break;
                                }
                            }
                        }
                        task.context.put("mgmt/variables", Value::List(vars));
                        result
                    }
                    Some(_) => Err("composeService needs a non-empty arg/children list".into()),
                    None => Err("composeService needs arg/composite".into()),
                }
            }
            ops::ADD_EXPRESSION => {
                let service = task.context.get_str("arg/service").map(str::to_string);
                let expr = task.context.get_str("arg/expression").map(str::to_string);
                match (service, expr) {
                    (Some(service), Some(expr)) => client::manage(
                        env,
                        self.host,
                        &self.accessor,
                        &service,
                        mgmt::SET_EXPRESSION,
                        Context::new().with("arg/expression", expr.as_str()),
                    )
                    .map(|_| ()),
                    _ => Err("addExpression needs arg/service and arg/expression".into()),
                }
            }
            ops::REMOVE_SERVICE => {
                let composite = task.context.get_str("arg/composite").map(str::to_string);
                let service = task.context.get_str("arg/service").map(str::to_string);
                match (composite, service) {
                    (Some(composite), Some(service)) => client::manage(
                        env,
                        self.host,
                        &self.accessor,
                        &composite,
                        mgmt::REMOVE_SERVICE,
                        Context::new().with("arg/service", service.as_str()),
                    )
                    .map(|_| ()),
                    _ => Err("removeService needs arg/composite and arg/service".into()),
                }
            }
            ops::CREATE_SERVICE => {
                let name = task.context.get_str("arg/name").map(str::to_string);
                match (name, self.monitor) {
                    (Some(name), Some(monitor)) => {
                        let mut spec = CompositeSpec::named(name);
                        if let Some(Value::List(xs)) = task.context.get("arg/children") {
                            spec.children = xs.iter().map(|v| v.to_string()).collect();
                        }
                        if let Some(e) = task.context.get_str("arg/expression") {
                            spec.expression = Some(e.to_string());
                        }
                        match provision_composite(env, self.host, monitor, &spec) {
                            Ok(host) => {
                                task.context.put("mgmt/provisioned-on", host.0 as i64);
                                Ok(())
                            }
                            Err(e) => Err(e.to_string()),
                        }
                    }
                    (None, _) => Err("createService needs arg/name".into()),
                    (_, None) => Err("no provision monitor attached to this facade".into()),
                }
            }
            other => Err(format!("facade has no operation '{other}'")),
        };
        match outcome {
            Ok(()) => task.status = ExertionStatus::Done,
            Err(e) => task.fail(e),
        }
    }
}

/// Surface SLO state changes as flight-recorder events on the innermost
/// open span (a no-op when tracing is off).
fn mirror_transitions(env: &mut Env, transitions: &[AlertTransition]) {
    if transitions.is_empty() {
        return;
    }
    let cur = env.current_span();
    if !cur.is_valid() {
        return;
    }
    for tr in transitions {
        env.span_event(
            cur,
            if tr.fired {
                "slo.fired"
            } else {
                "slo.resolved"
            },
            vec![
                ("slo", tr.slo.as_str().into()),
                ("service", tr.service.as_str().into()),
                ("burn_fast", tr.burn_fast.into()),
                ("burn_slow", tr.burn_slow.into()),
            ],
        );
    }
}

impl Servicer for SensorcerFacade {
    fn provider_name(&self) -> &str {
        &self.name
    }

    fn service(&mut self, env: &mut Env, exertion: &mut Exertion, _txn: Option<TxnId>) {
        let Exertion::Task(task) = exertion else {
            if let Exertion::Job(job) = exertion {
                job.status = ExertionStatus::Failed("the facade executes tasks, not jobs".into());
            }
            return;
        };
        if task.signature.interface != interfaces::SENSORCER_FACADE {
            task.fail(format!(
                "facade implements {}, not {}",
                interfaces::SENSORCER_FACADE,
                task.signature.interface
            ));
            return;
        }
        task.trace.push(format!("exerted by {}", self.name));
        self.handle(env, task);
    }
}

impl std::fmt::Debug for SensorcerFacade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SensorcerFacade")
            .field("name", &self.name)
            .field("requests_total", &self.requests_total)
            .finish()
    }
}

/// Handle to a deployed façade.
#[derive(Clone, Copy, Debug)]
pub struct FacadeHandle {
    pub service: ServiceId,
    pub host: HostId,
}

impl FacadeHandle {
    fn run(
        &self,
        env: &mut Env,
        from: HostId,
        selector: &str,
        args: Context,
    ) -> Result<Context, String> {
        let task = Task::new(
            format!("facade {selector}"),
            Signature::new(interfaces::SENSORCER_FACADE, selector),
            args,
        );
        // Admission is applied by the façade servicer on arrival:
        // lint:allow(admission): this exertion targets the gate itself
        match exert_on(env, from, self.service, task.into(), None) {
            Ok(done) => match done.status() {
                ExertionStatus::Done => Ok(done.context().clone()),
                ExertionStatus::Failed(e) => Err(e.clone()),
                other => Err(format!("unexpected status {other:?}")),
            },
            Err(e) => Err(format!("facade unreachable: {e}")),
        }
    }

    /// "Get Sensor List".
    pub fn list_services(
        &self,
        env: &mut Env,
        from: HostId,
    ) -> Result<Vec<(String, String)>, String> {
        let ctx = self.run(env, from, ops::LIST_SERVICES, Context::new())?;
        match ctx.get("services/list") {
            Some(Value::List(xs)) => Ok(xs
                .iter()
                .filter_map(|v| match v {
                    Value::Map(m) => Some((
                        m.get("name").map(ToString::to_string).unwrap_or_default(),
                        m.get("type").map(ToString::to_string).unwrap_or_default(),
                    )),
                    _ => None,
                })
                .collect()),
            _ => Ok(Vec::new()),
        }
    }

    /// Federation health snapshot, one row per host (the browser-side view
    /// of [`SensorcerFacade::network_health`]).
    pub fn network_health(&self, env: &mut Env, from: HostId) -> Result<Vec<HostHealth>, String> {
        let ctx = self.run(env, from, ops::NETWORK_HEALTH, Context::new())?;
        let Some(Value::List(xs)) = ctx.get("health/hosts") else {
            return Ok(Vec::new());
        };
        Ok(xs
            .iter()
            .filter_map(|v| {
                let Value::Map(m) = v else { return None };
                let int = |key: &str| match m.get(key) {
                    Some(Value::Int(i)) => Some(*i),
                    _ => None,
                };
                let s = |key: &str| match m.get(key) {
                    Some(Value::Str(s)) => s.clone(),
                    _ => String::new(),
                };
                Some(HostHealth {
                    host: HostId(int("host")? as u32),
                    name: s("name"),
                    kind: s("kind"),
                    alive: matches!(m.get("alive"), Some(Value::Bool(true))),
                    services: match m.get("services") {
                        Some(Value::List(svcs)) => svcs
                            .iter()
                            .filter_map(|v| match v {
                                Value::Str(s) => Some(s.clone()),
                                _ => None,
                            })
                            .collect(),
                        _ => Vec::new(),
                    },
                    last_read_age_ns: int("last_read_age_ns").map(|i| i as u64),
                    battery: match m.get("battery") {
                        Some(Value::Float(b)) => Some(*b),
                        _ => None,
                    },
                    retry_attempts: int("retry_attempts").unwrap_or(0) as u64,
                    retry_exhausted: int("retry_exhausted").unwrap_or(0) as u64,
                    substituted: int("substituted").unwrap_or(0) as u64,
                })
            })
            .collect())
    }

    /// SLO verdict sheet from the façade's health engine: `(healthy,
    /// alert count, report JSON)`. Errs when no SLOs are installed.
    pub fn slo_report(&self, env: &mut Env, from: HostId) -> Result<(bool, u64, String), String> {
        let ctx = self.run(env, from, ops::SLO_REPORT, Context::new())?;
        let healthy = matches!(ctx.get("slo/healthy"), Some(Value::Bool(true)));
        let alerts = match ctx.get("slo/alerts") {
            Some(Value::Int(n)) => *n as u64,
            _ => 0,
        };
        let json = ctx.get_str("slo/report").unwrap_or("{}").to_string();
        Ok((healthy, alerts, json))
    }

    /// "Get Value".
    pub fn get_value(
        &self,
        env: &mut Env,
        from: HostId,
        service: &str,
    ) -> Result<SensorReading, String> {
        self.get_value_detailed(env, from, service).map(|(r, _)| r)
    }

    /// "Get Value" on behalf of a named tenant: the request carries the
    /// tenant identity through the façade's admission gate, so quota,
    /// class budget and shed accounting apply to that tenant.
    pub fn get_value_as(
        &self,
        env: &mut Env,
        from: HostId,
        tenant: &str,
        service: &str,
    ) -> Result<SensorReading, String> {
        let ctx = self.run(
            env,
            from,
            ops::GET_VALUE,
            Context::new()
                .with("arg/service", service)
                .with("arg/tenant", tenant),
        )?;
        SensorReading::from_context(&ctx).ok_or_else(|| "no reading returned".to_string())
    }

    /// "Get Value", plus which composite children (if any) degraded.
    pub fn get_value_detailed(
        &self,
        env: &mut Env,
        from: HostId,
        service: &str,
    ) -> Result<(SensorReading, crate::accessor::DegradedInfo), String> {
        let ctx = self.run(
            env,
            from,
            ops::GET_VALUE,
            Context::new().with("arg/service", service),
        )?;
        SensorReading::from_context(&ctx)
            .map(|r| (r, crate::accessor::DegradedInfo::from_context(&ctx)))
            .ok_or_else(|| "no reading returned".to_string())
    }

    /// Recent stored measurements of a sensor service.
    pub fn get_history(
        &self,
        env: &mut Env,
        from: HostId,
        service: &str,
        count: usize,
    ) -> Result<Vec<f64>, String> {
        let ctx = self.run(
            env,
            from,
            ops::GET_HISTORY,
            Context::new()
                .with("arg/service", service)
                .with("arg/count", count as i64),
        )?;
        match ctx.get("history/values") {
            Some(Value::List(xs)) => Ok(xs.iter().filter_map(Value::as_f64).collect()),
            _ => Ok(Vec::new()),
        }
    }

    /// Sensor Service Information panel.
    pub fn get_info(
        &self,
        env: &mut Env,
        from: HostId,
        service: &str,
    ) -> Result<SensorInfo, String> {
        let ctx = self.run(
            env,
            from,
            ops::GET_INFO,
            Context::new().with("arg/service", service),
        )?;
        SensorInfo::from_context(&ctx).ok_or_else(|| "no info returned".to_string())
    }

    /// "Compose Service": add children into a composite. Returns the
    /// variables assigned.
    pub fn compose_service(
        &self,
        env: &mut Env,
        from: HostId,
        composite: &str,
        children: &[&str],
    ) -> Result<Vec<String>, String> {
        let list = Value::List(children.iter().map(|c| Value::Str(c.to_string())).collect());
        let ctx = self.run(
            env,
            from,
            ops::COMPOSE_SERVICE,
            Context::new()
                .with("arg/composite", composite)
                .with("arg/children", list),
        )?;
        match ctx.get("mgmt/variables") {
            Some(Value::List(xs)) => Ok(xs.iter().map(ToString::to_string).collect()),
            _ => Ok(Vec::new()),
        }
    }

    /// "Add Expression".
    pub fn add_expression(
        &self,
        env: &mut Env,
        from: HostId,
        service: &str,
        expression: &str,
    ) -> Result<(), String> {
        self.run(
            env,
            from,
            ops::ADD_EXPRESSION,
            Context::new()
                .with("arg/service", service)
                .with("arg/expression", expression),
        )
        .map(|_| ())
    }

    /// "Create Service": provision a fresh composite onto a cybernode.
    pub fn create_service(
        &self,
        env: &mut Env,
        from: HostId,
        name: &str,
        children: &[&str],
        expression: Option<&str>,
    ) -> Result<(), String> {
        let mut args = Context::new().with("arg/name", name);
        if !children.is_empty() {
            args.put(
                "arg/children",
                Value::List(children.iter().map(|c| Value::Str(c.to_string())).collect()),
            );
        }
        if let Some(e) = expression {
            args.put("arg/expression", e);
        }
        self.run(env, from, ops::CREATE_SERVICE, args).map(|_| ())
    }

    /// Remove a child from a composite.
    pub fn remove_service(
        &self,
        env: &mut Env,
        from: HostId,
        composite: &str,
        service: &str,
    ) -> Result<(), String> {
        self.run(
            env,
            from,
            ops::REMOVE_SERVICE,
            Context::new()
                .with("arg/composite", composite)
                .with("arg/service", service),
        )
        .map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csp::{deploy_csp, CspConfig};
    use crate::esp::{deploy_esp, EspConfig};
    use sensorcer_registry::lease::LeasePolicy;
    use sensorcer_registry::lus::LookupService;
    use sensorcer_sensors::prelude::*;
    use sensorcer_sim::prelude::*;

    struct World {
        env: Env,
        client: HostId,
        lus: LusHandle,
        facade: FacadeHandle,
    }

    fn setup() -> World {
        let mut env = Env::with_seed(1);
        let lab = env.add_host("lab", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        let lus = LookupService::deploy(
            &mut env,
            lab,
            "LUS",
            "public",
            LeasePolicy::default(),
            SimDuration::from_millis(500),
        );
        let accessor = ServiceAccessor::new(vec![lus]);
        let facade = SensorcerFacade::deploy(&mut env, lab, "SenSORCER Facade", accessor, None);
        World {
            env,
            client,
            lus,
            facade,
        }
    }

    fn add_esp(w: &mut World, name: &str, value: f64) {
        let mote = w.env.add_host(format!("{name}-mote"), HostKind::SensorMote);
        deploy_esp(
            &mut w.env,
            EspConfig::new(
                mote,
                name,
                Box::new(ScriptedProbe::new(vec![value], Unit::Celsius)),
                w.lus,
            ),
        );
    }

    #[test]
    fn list_services_shows_registered_world() {
        let mut w = setup();
        add_esp(&mut w, "Neem-Sensor", 20.0);
        add_esp(&mut w, "Jade-Sensor", 21.0);
        let rows = w.facade.list_services(&mut w.env, w.client).unwrap();
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"Neem-Sensor"));
        assert!(names.contains(&"Jade-Sensor"));
        assert!(names.contains(&"SenSORCER Facade"));
        let types: Vec<&str> = rows.iter().map(|(_, t)| t.as_str()).collect();
        assert!(types.contains(&"ELEMENTARY"));
        assert!(types.contains(&"FACADE"));
    }

    #[test]
    fn get_value_through_facade() {
        let mut w = setup();
        add_esp(&mut w, "Neem-Sensor", 21.5);
        let r = w
            .facade
            .get_value(&mut w.env, w.client, "Neem-Sensor")
            .unwrap();
        assert_eq!(r.value, 21.5);
        assert!(w.facade.get_value(&mut w.env, w.client, "Ghost").is_err());
    }

    #[test]
    fn compose_and_expression_workflow() {
        let mut w = setup();
        add_esp(&mut w, "Neem-Sensor", 20.0);
        add_esp(&mut w, "Jade-Sensor", 22.0);
        add_esp(&mut w, "Diamond-Sensor", 27.0);
        deploy_csp(
            &mut w.env,
            CspConfig::new(w.facade.host, "Composite-Service", w.lus),
        )
        .unwrap();

        let vars = w
            .facade
            .compose_service(
                &mut w.env,
                w.client,
                "Composite-Service",
                &["Neem-Sensor", "Jade-Sensor", "Diamond-Sensor"],
            )
            .unwrap();
        assert_eq!(vars, vec!["a", "b", "c"]);
        w.facade
            .add_expression(&mut w.env, w.client, "Composite-Service", "(a + b + c)/3")
            .unwrap();
        let r = w
            .facade
            .get_value(&mut w.env, w.client, "Composite-Service")
            .unwrap();
        assert_eq!(r.value, 23.0);

        let info = w
            .facade
            .get_info(&mut w.env, w.client, "Composite-Service")
            .unwrap();
        assert_eq!(info.expression.as_deref(), Some("(a + b + c)/3"));
        assert_eq!(info.contained.len(), 3);

        // Remove one child; expression referencing it drops.
        w.facade
            .remove_service(&mut w.env, w.client, "Composite-Service", "Jade-Sensor")
            .unwrap();
        let info = w
            .facade
            .get_info(&mut w.env, w.client, "Composite-Service")
            .unwrap();
        assert_eq!(info.contained.len(), 2);
        assert_eq!(info.expression, None);
    }

    #[test]
    fn history_through_the_facade() {
        let mut w = setup();
        add_esp(&mut w, "H", 21.0);
        // Three direct reads fill the ESP's local store.
        for _ in 0..3 {
            w.facade.get_value(&mut w.env, w.client, "H").unwrap();
        }
        let hist = w.facade.get_history(&mut w.env, w.client, "H", 10).unwrap();
        assert_eq!(hist.len(), 3);
        assert!(hist.iter().all(|v| *v == 21.0));
        assert!(w
            .facade
            .get_history(&mut w.env, w.client, "Ghost", 5)
            .is_err());
    }

    #[test]
    fn network_health_reports_liveness_staleness_and_degradation() {
        let mut w = setup();
        add_esp(&mut w, "Neem-Sensor", 20.0);
        add_esp(&mut w, "Jade-Sensor", 22.0);
        w.facade
            .get_value(&mut w.env, w.client, "Neem-Sensor")
            .unwrap();
        w.env.run_for(SimDuration::from_secs(2));

        let rows = w.facade.network_health(&mut w.env, w.client).unwrap();
        assert_eq!(rows.len(), w.env.topo.host_count(), "one row per host");
        let by_name = |rows: &[HostHealth], n: &str| -> HostHealth {
            rows.iter().find(|r| r.name == n).unwrap().clone()
        };

        let neem = by_name(&rows, "Neem-Sensor-mote");
        assert!(neem.alive);
        assert_eq!(neem.kind, "SensorMote");
        assert_eq!(neem.services, vec!["Neem-Sensor".to_string()]);
        let age = neem
            .last_read_age_ns
            .expect("read was served from this mote");
        assert!(
            age >= SimDuration::from_secs(2).as_nanos(),
            "age counts from the read"
        );
        assert!(neem.battery.unwrap_or(0.0) > 0.0);

        let jade = by_name(&rows, "Jade-Sensor-mote");
        assert_eq!(jade.last_read_age_ns, None, "never read");

        // Kill a mote: the next snapshot reflects it (liveness is live
        // topology state; the lapsed registration follows the lease).
        let dead = neem.host;
        w.env.crash_host(dead);
        let rows = w.facade.network_health(&mut w.env, w.client).unwrap();
        assert!(!by_name(&rows, "Neem-Sensor-mote").alive);
    }

    #[test]
    fn slo_report_through_the_facade() {
        use sensorcer_obs::SloKind;
        let mut env = Env::with_seed(3);
        let lab = env.add_host("lab", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        let lus = LookupService::deploy(
            &mut env,
            lab,
            "LUS",
            "public",
            LeasePolicy::default(),
            SimDuration::from_millis(500),
        );
        let accessor = ServiceAccessor::new(vec![lus]);
        let facade = SensorcerFacade::deploy_with_slos(
            &mut env,
            lab,
            "Facade",
            accessor,
            None,
            vec![
                SloSpec::new("t-avail", "T", SloKind::Availability { min_ratio: 0.9 }),
                SloSpec::new(
                    "t-fresh",
                    "T",
                    SloKind::Freshness {
                        max_age_ns: SimDuration::from_secs(60).as_nanos(),
                        min_ratio: 0.99,
                    },
                ),
            ],
        );
        let mut w = World {
            env,
            client,
            lus,
            facade,
        };
        add_esp(&mut w, "T", 20.0);

        // Clean traffic: both objectives met, zero alerts.
        for _ in 0..5 {
            w.facade.get_value(&mut w.env, w.client, "T").unwrap();
        }
        let (healthy, alerts, json) = w.facade.slo_report(&mut w.env, w.client).unwrap();
        assert!(healthy, "{json}");
        assert_eq!(alerts, 0);
        assert!(json.contains("\"t-avail\""));
        assert!(json.contains("\"t-fresh\""));
        assert!(json.contains("\"total\": 5"));

        // Failed reads are recorded as errors against availability.
        w.env.crash_host(w.env.topo.hosts().last().unwrap().id);
        for _ in 0..5 {
            let _ = w.facade.get_value(&mut w.env, w.client, "T");
        }
        let (healthy, _, json) = w.facade.slo_report(&mut w.env, w.client).unwrap();
        assert!(!healthy, "50% errors blow a 10% budget: {json}");
        assert!(json.contains("\"met\": false"));
    }

    #[test]
    fn slo_report_without_slos_fails_cleanly() {
        let mut w = setup();
        let err = w.facade.slo_report(&mut w.env, w.client).unwrap_err();
        assert!(err.contains("no SLOs"), "{err}");
    }

    #[test]
    fn create_service_without_monitor_fails() {
        let mut w = setup();
        let err = w
            .facade
            .create_service(&mut w.env, w.client, "X", &[], None)
            .unwrap_err();
        assert!(err.contains("monitor"), "{err}");
    }

    #[test]
    fn facade_rejects_unknown_op_and_bad_args() {
        let mut w = setup();
        let err = w
            .facade
            .run(&mut w.env, w.client, "selfDestruct", Context::new())
            .unwrap_err();
        assert!(err.contains("no operation"));
        let err = w
            .facade
            .run(&mut w.env, w.client, ops::GET_VALUE, Context::new())
            .unwrap_err();
        assert!(err.contains("arg/service"));
        let err = w
            .facade
            .run(
                &mut w.env,
                w.client,
                ops::COMPOSE_SERVICE,
                Context::new().with("arg/composite", "X"),
            )
            .unwrap_err();
        assert!(err.contains("children"));
    }

    #[test]
    fn facade_unreachable_reports_cleanly() {
        let mut w = setup();
        w.env.crash_host(w.facade.host);
        let err = w.facade.list_services(&mut w.env, w.client).unwrap_err();
        assert!(err.contains("unreachable"), "{err}");
    }
}
