//! The Sensor Service Provisioner: Rio integration for sensor services.
//!
//! "A Sensor Service Provisioner provides for provisioning of sensor
//! services based on quality of service specified by requestors according
//! to the Rio framework" (§V.B). The piece of machinery that makes §VI
//! step 3 work is the **composite-sensor factory** registered with the
//! provision monitor: when the monitor places a `composite-sensor`
//! element on a cybernode, the factory builds a
//! [`crate::csp::CompositeSensorProvider`] from the element's config (children,
//! expression), deploys it on the node and registers it with the LUS.

use std::rc::Rc;

use sensorcer_provision::factory::{FnFactory, ServiceFactory};
use sensorcer_provision::monitor::{MonitorHandle, ProvisionError};
use sensorcer_provision::opstring::{OperationalString, ServiceElement};
use sensorcer_provision::qos::QosRequirements;
use sensorcer_registry::lus::LusHandle;
use sensorcer_registry::renewal::RenewalHandle;
use sensorcer_sim::env::Env;
use sensorcer_sim::time::SimDuration;
use sensorcer_sim::topology::HostId;

use crate::csp::{deploy_csp, CspConfig};

/// The factory `type_key` for provisioned composite sensor services.
pub const COMPOSITE_TYPE_KEY: &str = "composite-sensor";

/// Config keys understood by the composite factory.
pub mod config_keys {
    /// Comma-separated child provider names composed at startup.
    pub const CHILDREN: &str = "children";
    /// Compute expression installed at startup.
    pub const EXPRESSION: &str = "expression";
    /// Registration lease seconds (default 30).
    pub const LEASE_SECS: &str = "lease-secs";
}

/// Build the composite-sensor factory. `renewal`, when given, keeps the
/// provisioned service's registration alive.
pub fn composite_factory(lus: LusHandle, renewal: Option<RenewalHandle>) -> Rc<dyn ServiceFactory> {
    Rc::new(FnFactory(
        move |env: &mut Env, host: HostId, element: &ServiceElement, instance: &str| {
            let mut cfg = CspConfig::new(host, instance, lus);
            cfg.renewal = renewal;
            if let Some(children) = element.config.get(config_keys::CHILDREN) {
                cfg.children = children
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            cfg.expression = element.config.get(config_keys::EXPRESSION).cloned();
            if let Some(secs) = element.config.get(config_keys::LEASE_SECS) {
                let secs: u64 = secs
                    .parse()
                    .map_err(|_| format!("bad lease-secs: {secs}"))?;
                cfg.lease = SimDuration::from_secs(secs);
            }
            deploy_csp(env, cfg).map(|h| h.service)
        },
    ))
}

/// Request parameters for provisioning one composite sensor service.
#[derive(Clone, Debug, Default)]
pub struct CompositeSpec {
    pub name: String,
    pub children: Vec<String>,
    pub expression: Option<String>,
    pub qos: QosRequirements,
}

impl CompositeSpec {
    pub fn named(name: impl Into<String>) -> CompositeSpec {
        CompositeSpec {
            name: name.into(),
            qos: QosRequirements::modest(),
            ..Default::default()
        }
    }

    pub fn with_children<I: IntoIterator<Item = S>, S: Into<String>>(mut self, c: I) -> Self {
        self.children = c.into_iter().map(Into::into).collect();
        self
    }

    pub fn with_expression(mut self, e: impl Into<String>) -> Self {
        self.expression = Some(e.into());
        self
    }

    /// The operational string realizing this spec.
    pub fn to_opstring(&self) -> OperationalString {
        let mut element = ServiceElement::singleton(self.name.clone(), COMPOSITE_TYPE_KEY)
            .with_qos(self.qos.clone());
        if !self.children.is_empty() {
            element = element.with_config(config_keys::CHILDREN, self.children.join(","));
        }
        if let Some(e) = &self.expression {
            element = element.with_config(config_keys::EXPRESSION, e.clone());
        }
        OperationalString::new(format!("sensor-{}", self.name)).with_element(element)
    }
}

/// Provision a composite sensor service onto the best matching cybernode —
/// the user-facing act of §VI step 3 ("Provisioned a new composite service
/// on to the network").
pub fn provision_composite(
    env: &mut Env,
    from: HostId,
    monitor: MonitorHandle,
    spec: &CompositeSpec,
) -> Result<HostId, ProvisionError> {
    let placed = monitor
        .deploy_opstring(env, from, spec.to_opstring())
        .map_err(|_| ProvisionError::NoCandidate(spec.name.clone()))??;
    Ok(placed[0].host)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accessor::client;
    use crate::esp::{deploy_esp, EspConfig};
    use sensorcer_exertion::ServiceAccessor;
    use sensorcer_provision::cybernode::Cybernode;
    use sensorcer_provision::factory::FactoryRegistry;
    use sensorcer_provision::monitor::ProvisionMonitor;
    use sensorcer_provision::policy::AllocationPolicy;
    use sensorcer_provision::qos::QosCapabilities;
    use sensorcer_registry::lease::LeasePolicy;
    use sensorcer_registry::lus::LookupService;
    use sensorcer_sensors::prelude::*;
    use sensorcer_sim::prelude::*;

    struct World {
        env: Env,
        client: HostId,
        lus: LusHandle,
        monitor: MonitorHandle,
        accessor: ServiceAccessor,
        node_hosts: Vec<HostId>,
        renewal: sensorcer_registry::renewal::RenewalHandle,
    }

    fn setup(nodes: usize) -> World {
        let mut env = Env::with_seed(1);
        let lab = env.add_host("lab", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        let lus = LookupService::deploy(
            &mut env,
            lab,
            "LUS",
            "public",
            LeasePolicy::default(),
            SimDuration::from_millis(500),
        );
        let renewal =
            sensorcer_registry::renewal::LeaseRenewalService::deploy(&mut env, lab, "Renewal");
        let mut factories = FactoryRegistry::new();
        factories.register(COMPOSITE_TYPE_KEY, composite_factory(lus, Some(renewal)));
        let monitor = ProvisionMonitor::deploy(
            &mut env,
            lab,
            "Monitor",
            AllocationPolicy::LeastUtilized,
            factories,
            Some(lus),
            SimDuration::from_secs(1),
        );
        let mut node_hosts = Vec::new();
        for i in 0..nodes {
            let h = env.add_host(format!("cyb{i}"), HostKind::Server);
            let node = Cybernode::deploy(
                &mut env,
                h,
                &format!("Cybernode-{i}"),
                QosCapabilities::lab_server(),
                Some(lus),
            );
            env.with_service(monitor.service, |_e, m: &mut ProvisionMonitor| {
                m.register_cybernode(node)
            })
            .unwrap();
            node_hosts.push(h);
        }
        let accessor = ServiceAccessor::new(vec![lus]);
        World {
            env,
            client,
            lus,
            monitor,
            accessor,
            node_hosts,
            renewal,
        }
    }

    fn add_esp(w: &mut World, name: &str, value: f64) {
        let mote = w.env.add_host(format!("{name}-mote"), HostKind::SensorMote);
        deploy_esp(
            &mut w.env,
            EspConfig {
                renewal: Some(w.renewal),
                ..EspConfig::new(
                    mote,
                    name,
                    Box::new(ScriptedProbe::new(vec![value], Unit::Celsius)),
                    w.lus,
                )
            },
        );
    }

    #[test]
    fn provisioned_composite_is_usable_like_fig3() {
        let mut w = setup(2);
        add_esp(&mut w, "Composite-A", 23.0); // stands in for the subnet
        add_esp(&mut w, "Coral-Sensor", 25.0);
        let spec = CompositeSpec::named("New-Composite")
            .with_children(["Composite-A", "Coral-Sensor"])
            .with_expression("(a + b)/2");
        let placed_on = provision_composite(&mut w.env, w.client, w.monitor, &spec).unwrap();
        assert!(
            w.node_hosts.contains(&placed_on),
            "must land on a cybernode"
        );
        let r = client::get_value(&mut w.env, w.client, &w.accessor, "New-Composite").unwrap();
        assert_eq!(r.value, 24.0);
        // Its registration is renewed: still resolvable much later.
        w.env.run_for(SimDuration::from_secs(120));
        assert!(client::get_value(&mut w.env, w.client, &w.accessor, "New-Composite").is_ok());
    }

    #[test]
    fn provisioned_composite_fails_over_on_node_crash() {
        let mut w = setup(2);
        add_esp(&mut w, "A", 10.0);
        let spec = CompositeSpec::named("HA-Composite").with_children(["A"]);
        let first = provision_composite(&mut w.env, w.client, w.monitor, &spec).unwrap();
        w.env.crash_host(first);
        w.env.run_for(SimDuration::from_secs(5));
        // The monitor re-provisioned on the surviving node; the stale LUS
        // registration for the dead instance lapses, the new one answers.
        let r = client::get_value(&mut w.env, w.client, &w.accessor, "HA-Composite");
        assert!(r.is_ok(), "{r:?}");
        let instances = w
            .env
            .with_service(w.monitor.service, |_e, m: &mut ProvisionMonitor| {
                m.instances("sensor-HA-Composite")
            })
            .unwrap();
        assert_eq!(instances.len(), 1);
        assert_ne!(instances[0].node.host, first);
    }

    #[test]
    fn spec_builds_valid_opstring() {
        let spec = CompositeSpec::named("X")
            .with_children(["A", "B"])
            .with_expression("(a+b)/2");
        let os = spec.to_opstring();
        assert!(os.validate().is_ok());
        assert_eq!(os.elements[0].config[config_keys::CHILDREN], "A,B");
        assert_eq!(os.elements[0].config[config_keys::EXPRESSION], "(a+b)/2");
        assert_eq!(os.elements[0].type_key, COMPOSITE_TYPE_KEY);
    }

    #[test]
    fn factory_rejects_invalid_expression() {
        let mut w = setup(1);
        add_esp(&mut w, "A", 1.0);
        let spec = CompositeSpec::named("Bad")
            .with_children(["A"])
            .with_expression("(a + b)/2"); // b unbound
        let err = provision_composite(&mut w.env, w.client, w.monitor, &spec).unwrap_err();
        assert!(matches!(err, ProvisionError::NoCandidate(_)));
    }

    #[test]
    fn bad_lease_secs_config_fails_factory() {
        let mut w = setup(1);
        let mut os = CompositeSpec::named("X").to_opstring();
        os.elements[0] = os.elements[0]
            .clone()
            .with_config(config_keys::LEASE_SECS, "not-a-number");
        let res = w.monitor.deploy_opstring(&mut w.env, w.client, os).unwrap();
        assert!(res.is_err());
    }
}
