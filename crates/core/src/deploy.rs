//! One-call standard deployment of the full SenSORCER stack.
//!
//! Reproduces the environment of the paper's Fig. 2: Jini infrastructure
//! (lookup service, transaction manager, lease renewal, event mailbox),
//! Rio provisioning (monitor + cybernodes), four elementary temperature
//! sensors (Neem/Jade/Coral/Diamond), a jobber for federated jobs, and
//! the SenSORCER façade. Examples, integration tests and every benchmark
//! build on this.

use sensorcer_exertion::fmi::{Jobber, ServiceAccessor};
use sensorcer_provision::cybernode::{Cybernode, CybernodeHandle};
use sensorcer_provision::factory::FactoryRegistry;
use sensorcer_provision::monitor::{MonitorHandle, ProvisionMonitor};
use sensorcer_provision::policy::AllocationPolicy;
use sensorcer_provision::qos::QosCapabilities;
use sensorcer_registry::events::{EventMailbox, MailboxHandle};
use sensorcer_registry::lease::LeasePolicy;
use sensorcer_registry::lus::{LookupService, LusHandle};
use sensorcer_registry::renewal::{LeaseRenewalService, RenewalHandle};
use sensorcer_registry::txn::{TmHandle, TransactionManager};
use sensorcer_sensors::spot;
use sensorcer_sim::env::Env;
use sensorcer_sim::time::SimDuration;
use sensorcer_sim::topology::{HostId, HostKind};

use crate::esp::{deploy_esp, EspConfig, EspHandle};
use crate::facade::{FacadeHandle, SensorcerFacade};
use crate::provisioner::{composite_factory, COMPOSITE_TYPE_KEY};

/// Deployment parameters.
#[derive(Clone, Debug)]
pub struct DeploymentConfig {
    pub seed: u64,
    /// Discovery group.
    pub group: String,
    /// Names of the elementary temperature sensors to stand up, one mote
    /// host each.
    pub sensor_names: Vec<String>,
    /// Number of cybernodes.
    pub cybernodes: usize,
    /// Registration lease for sensor services.
    pub lease: SimDuration,
    /// Background sampling period for ESP local stores (None = on demand).
    pub sample_every: Option<SimDuration>,
    pub policy: AllocationPolicy,
    /// Provision-monitor heartbeat.
    pub heartbeat: SimDuration,
}

impl DeploymentConfig {
    /// The paper's Fig. 2 world: four SunSPOT temperature sensors, two
    /// cybernodes.
    pub fn fig2() -> DeploymentConfig {
        DeploymentConfig {
            seed: 0x5E2509,
            group: "public".into(),
            sensor_names: [
                "Neem-Sensor",
                "Jade-Sensor",
                "Coral-Sensor",
                "Diamond-Sensor",
            ]
            .map(String::from)
            .to_vec(),
            cybernodes: 2,
            lease: SimDuration::from_secs(30),
            sample_every: Some(SimDuration::from_secs(5)),
            policy: AllocationPolicy::LeastUtilized,
            heartbeat: SimDuration::from_secs(1),
        }
    }

    /// A scalable variant with `n` generated sensors (Sensor-000…).
    pub fn with_n_sensors(n: usize) -> DeploymentConfig {
        DeploymentConfig {
            sensor_names: (0..n).map(|i| format!("Sensor-{i:03}")).collect(),
            sample_every: None,
            ..DeploymentConfig::fig2()
        }
    }
}

/// Handles to everything the standard deployment stood up.
pub struct Deployment {
    /// The lab server hosting the Jini/Rio infrastructure.
    pub lab: HostId,
    /// The workstation the browser/requestors run on.
    pub workstation: HostId,
    pub lus: LusHandle,
    pub tm: TmHandle,
    pub renewal: RenewalHandle,
    pub mailbox: MailboxHandle,
    pub monitor: MonitorHandle,
    pub cybernodes: Vec<CybernodeHandle>,
    pub cybernode_hosts: Vec<HostId>,
    pub esps: Vec<EspHandle>,
    pub mote_hosts: Vec<HostId>,
    pub facade: FacadeHandle,
    pub accessor: ServiceAccessor,
    pub group: String,
}

/// Build the standard deployment into `env`.
pub fn standard_deployment(env: &mut Env, config: &DeploymentConfig) -> Deployment {
    // --- Hosts ---------------------------------------------------------
    let lab = env.add_host("persimmon.cs.ttu.edu", HostKind::Server);
    let workstation = env.add_host("browser-workstation", HostKind::Workstation);
    env.topo.join_group(workstation, &config.group);

    // --- Jini infrastructure --------------------------------------------
    let lus = LookupService::deploy(
        env,
        lab,
        "Lookup Service",
        &config.group,
        // Infrastructure services register with the default duration and
        // nothing renews for them, so the default is effectively "for the
        // life of the deployment"; sensor services pass explicit short
        // leases and live by renewal.
        LeasePolicy {
            max_duration: SimDuration::from_secs(1_000_000),
            default_duration: SimDuration::from_secs(1_000_000),
        },
        SimDuration::from_millis(500),
    );
    let tm = TransactionManager::deploy(env, lab, "Transaction Manager", SimDuration::from_secs(1));
    let renewal = LeaseRenewalService::deploy(env, lab, "Lease Renewal Service");
    let mailbox = EventMailbox::deploy(env, lab, "Event Mailbox");
    // Register the infrastructure pieces so the browser lists them, as the
    // paper's Fig. 2 shows (Transaction Manager, Lease Renewal Service,
    // Event Mailbox all appear in the Inca X service tree).
    for (name, iface, service) in [
        (
            "Transaction Manager",
            sensorcer_registry::ids::interfaces::TRANSACTION_MANAGER,
            tm.service,
        ),
        (
            "Lease Renewal Service",
            sensorcer_registry::ids::interfaces::LEASE_RENEWAL,
            renewal.service,
        ),
        (
            "Event Mailbox",
            sensorcer_registry::ids::interfaces::EVENT_MAILBOX,
            mailbox.service,
        ),
    ] {
        let item = sensorcer_registry::item::ServiceItem::new(
            sensorcer_registry::ids::SvcUuid::NIL,
            lab,
            service,
            vec![iface.into()],
            vec![
                sensorcer_registry::attributes::Entry::Name(name.into()),
                sensorcer_registry::attributes::Entry::ServiceType("INFRASTRUCTURE".into()),
            ],
        );
        let _ = lus.register(env, lab, item, None);
    }

    // --- Rio provisioning ------------------------------------------------
    let mut factories = FactoryRegistry::new();
    factories.register(COMPOSITE_TYPE_KEY, composite_factory(lus, Some(renewal)));
    let monitor = ProvisionMonitor::deploy(
        env,
        lab,
        "Monitor",
        config.policy,
        factories,
        Some(lus),
        config.heartbeat,
    );
    let mut cybernodes = Vec::new();
    let mut cybernode_hosts = Vec::new();
    for i in 0..config.cybernodes {
        let host = env.add_host(format!("cybernode-{i}"), HostKind::Server);
        let node = Cybernode::deploy(
            env,
            host,
            &format!("Cybernode-{i}"),
            QosCapabilities::lab_server(),
            Some(lus),
        );
        env.with_service(monitor.service, |_e, m: &mut ProvisionMonitor| {
            m.register_cybernode(node)
        })
        // lint:allow(unwrap): the monitor is deployed a few lines up
        .expect("monitor deployed above");
        cybernodes.push(node);
        cybernode_hosts.push(host);
    }

    // --- Elementary sensor services --------------------------------------
    let mut esps = Vec::new();
    let mut mote_hosts = Vec::new();
    for (i, name) in config.sensor_names.iter().enumerate() {
        let mote = env.add_host(format!("{name}-mote"), HostKind::SensorMote);
        let probe = spot::sunspot_temperature(&format!("SPOT-{i:04}"), env.fork_rng());
        let esp = deploy_esp(
            env,
            EspConfig {
                renewal: Some(renewal),
                lease: config.lease,
                sample_every: config.sample_every,
                location: Some(("CP TTU".into(), "3".into(), "310".into())),
                ..EspConfig::new(mote, name.clone(), Box::new(probe), lus)
            },
        );
        esps.push(esp);
        mote_hosts.push(mote);
    }

    // --- Rendezvous + façade ----------------------------------------------
    let accessor = ServiceAccessor::new(vec![lus]);
    Jobber::deploy(env, lab, "Jobber", accessor.clone());
    let facade = SensorcerFacade::deploy(
        env,
        lab,
        "SenSORCER Facade",
        accessor.clone(),
        Some(monitor),
    );

    Deployment {
        lab,
        workstation,
        lus,
        tm,
        renewal,
        mailbox,
        monitor,
        cybernodes,
        cybernode_hosts,
        esps,
        mote_hosts,
        facade,
        accessor,
        group: config.group.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorcer_sim::prelude::{Env, SimDuration};

    #[test]
    fn fig2_world_comes_up_complete() {
        let config = DeploymentConfig::fig2();
        let mut env = Env::with_seed(config.seed);
        let d = standard_deployment(&mut env, &config);

        let rows = d.facade.list_services(&mut env, d.workstation).unwrap();
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        for expected in [
            "Lookup Service",
            "Monitor",
            "Cybernode-0",
            "Cybernode-1",
            "Neem-Sensor",
            "Jade-Sensor",
            "Coral-Sensor",
            "Diamond-Sensor",
            "SenSORCER Facade",
            "Jobber",
        ] {
            assert!(
                names.contains(&expected),
                "missing {expected}; have {names:?}"
            );
        }
        // The LUS itself registers? No — it *is* the registry; the browser
        // sees it because the facade lists it explicitly via its handle.
        assert_eq!(d.esps.len(), 4);
        assert_eq!(d.cybernodes.len(), 2);
    }

    #[test]
    fn sensors_answer_after_deployment() {
        let config = DeploymentConfig::fig2();
        let mut env = Env::with_seed(config.seed);
        let d = standard_deployment(&mut env, &config);
        for name in &config.sensor_names {
            let r = d.facade.get_value(&mut env, d.workstation, name).unwrap();
            assert!((10.0..35.0).contains(&r.value), "{name}: {}", r.value);
        }
    }

    #[test]
    fn deployment_survives_an_hour_of_leases() {
        let config = DeploymentConfig::fig2();
        let mut env = Env::with_seed(config.seed);
        let d = standard_deployment(&mut env, &config);
        env.run_for(SimDuration::from_secs(3600));
        let r = d.facade.get_value(&mut env, d.workstation, "Neem-Sensor");
        assert!(r.is_ok(), "renewals must keep sensors registered: {r:?}");
    }

    #[test]
    fn scalable_config_generates_sensors() {
        let config = DeploymentConfig::with_n_sensors(10);
        let mut env = Env::with_seed(config.seed);
        let d = standard_deployment(&mut env, &config);
        assert_eq!(d.esps.len(), 10);
        let r = d
            .facade
            .get_value(&mut env, d.workstation, "Sensor-007")
            .unwrap();
        assert!(r.value.is_finite());
    }
}
