//! The Composite Sensor Provider.
//!
//! A CSP "composes both ESPs and CSPs, processes service requests,
//! collects the sensor data from its component sensor services, and makes
//! its values defined in terms of component values available via the
//! `SensorDataAccessor` interface" (§V.B). Children are bound to
//! dynamically created expression variables (`a`, `b`, `c`, … — exactly
//! as Fig. 3 shows) and a user-supplied compute expression combines them;
//! with no expression the CSP reports the component average.
//!
//! Because a CSP is itself a `SensorDataAccessor`, CSPs nest — "the CSP's
//! ability to contain other CSPs makes logical sensor networking
//! possible" — and reading the root of a composite tree federates reads
//! across the whole logical network, in parallel.

use std::sync::Arc;

use sensorcer_exertion::prelude::*;
use sensorcer_expr::{Program, SlotFrame, Value};
use sensorcer_registry::attributes::Entry;
use sensorcer_registry::ids::{interfaces, SvcUuid};
use sensorcer_registry::item::ServiceItem;
use sensorcer_registry::lus::LusHandle;
use sensorcer_registry::renewal::RenewalHandle;
use sensorcer_registry::txn::TxnId;
use sensorcer_sensors::calib::Calibration;
use sensorcer_sim::env::{Env, ServiceId};
use sensorcer_sim::time::{SimDuration, SimTime};
use sensorcer_sim::topology::HostId;
use sensorcer_sim::trace::{Outcome, SpanId};

use crate::accessor::{mgmt, selectors, SensorInfo};

/// Metric keys bumped by composite reads.
pub mod keys {
    /// Equivalence-group failovers attempted after a primary failure.
    pub const FAILOVER_ATTEMPTS: &str = "csp.failover.attempts";
    /// Failovers that produced a usable reading.
    pub const FAILOVER_SUCCESS: &str = "csp.failover.success";
    /// Reads that completed only by degrading (substituted/missing children).
    pub const DEGRADED_READS: &str = "csp.reads.degraded";
    /// Children substituted from the last-known-good cache.
    pub const SUBSTITUTED_CHILDREN: &str = "csp.children.substituted";
    /// Children skipped entirely — failed with no cached value to lend.
    pub const MISSING_CHILDREN: &str = "csp.children.missing";
}

/// What a composite does when a child read still fails after retry and
/// equivalence-group failover.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DegradationPolicy {
    /// All-or-nothing: any failed child fails the whole read (the
    /// historical behaviour, and the default).
    #[default]
    Strict,
    /// The read succeeds while at least `n` children deliver fresh
    /// readings; the rest are substituted from last-known-good values
    /// where available (or skipped by the default aggregate). The result
    /// is flagged `suspect` — never silently clean.
    Quorum(usize),
    /// Every failed child is substituted by its last delivered value, as
    /// long as that value is no older than `max_age`; the result is
    /// flagged `suspect`. A child with no recent-enough value fails the
    /// read.
    LastKnownGood { max_age: SimDuration },
}

/// One cached child reading for degraded-mode substitution.
#[derive(Clone, Debug)]
struct LastGood {
    value: f64,
    unit: String,
    at: SimTime,
}

/// One composed child service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Child {
    /// Expression variable bound to this child (`a`, `b`, ...).
    pub var: String,
    /// The child's provider `Name` attribute.
    pub service_name: String,
    /// Optional equivalence group: when the named provider is not
    /// available, "the request can be passed on to the equivalent
    /// available service provider" (§V.A) — any provider registered with
    /// this `equivalence-group` attribute.
    pub group: Option<String>,
}

/// Variable name for child position `i`: `a`..`z`, then `v26`, `v27`, …
pub fn variable_for(i: usize) -> String {
    if i < 26 {
        ((b'a' + i as u8) as char).to_string()
    } else {
        format!("v{i}")
    }
}

/// Breadcrumb context path used to detect composition cycles at read time.
const VISITED_PATH: &str = "composite/visited";

/// Immutable per-child read plan, precomputed when the composition
/// changes (`addService`/`removeService`) so the per-read fan-out does
/// not re-derive names, signatures or task labels for every child on
/// every read. Shared into the read closures via `Arc`.
#[derive(Debug)]
struct ReadPlan {
    /// Expression variable this child's value binds to.
    var: Arc<str>,
    /// The child's provider `Name` attribute.
    service_name: Arc<str>,
    /// Equivalence group for failover, if any.
    group: Option<Arc<str>>,
    /// Prebuilt `SensorDataAccessor#getValue@<name>` signature.
    signature: Signature,
    /// Prebuilt task label (`read <name>`).
    task_name: String,
}

/// Registration attribute key marking interchangeable providers (§V.A's
/// "equivalent available service provider").
pub const EQUIVALENCE_GROUP_KEY: &str = "equivalence-group";

/// The provider state.
pub struct CompositeSensorProvider {
    name: String,
    uuid: String,
    host: HostId,
    accessor: ServiceAccessor,
    children: Vec<Child>,
    /// Per-child read plans, rebuilt whenever `children` changes.
    plans: Vec<Arc<ReadPlan>>,
    expression: Option<Program>,
    /// Reusable slot frame for expression evaluation (no per-read scope).
    frame: SlotFrame,
    /// Output calibration applied to the computed composite value.
    pub calibration: Calibration,
    /// Binding-cache switch (on by default). Exists for the A1 ablation
    /// bench: with it off, every child read pays a LUS lookup, the
    /// original Jini-without-proxy-reuse behaviour.
    pub binding_cache_enabled: bool,
    /// What to do when a child read fails after retry + failover.
    pub degradation: DegradationPolicy,
    /// Retry budget applied to each child dispatch (primary bindings;
    /// the group-fallback hop stays single-shot to bound read latency).
    pub retry: RetryPolicy,
    /// Per-servicer circuit breakers, consulted before every child
    /// dispatch (primary, re-bind and failover hops alike): an open
    /// breaker skips the target instead of burning the retry budget
    /// against a host that keeps timing out.
    pub breakers: Option<crate::admission::SharedBreakers>,
    /// Last clean reading per child, for degraded-mode substitution.
    /// Only mutated after the parallel fan-out returns.
    last_good: std::collections::BTreeMap<String, LastGood>,
    reads_total: u64,
    /// Cached child bindings (the Jini model: a downloaded proxy is reused
    /// until it fails). Invalidated per child on network failure, so a
    /// re-provisioned child is re-bound on the next read.
    bindings: std::cell::RefCell<std::collections::BTreeMap<String, sensorcer_sim::env::ServiceId>>,
}

impl CompositeSensorProvider {
    pub fn new(name: impl Into<String>, host: HostId, accessor: ServiceAccessor) -> Self {
        CompositeSensorProvider {
            name: name.into(),
            uuid: String::new(),
            host,
            accessor,
            children: Vec::new(),
            plans: Vec::new(),
            expression: None,
            frame: SlotFrame::new(),
            calibration: Calibration::Identity,
            binding_cache_enabled: true,
            degradation: DegradationPolicy::Strict,
            retry: RetryPolicy::none(),
            breakers: None,
            last_good: std::collections::BTreeMap::new(),
            reads_total: 0,
            bindings: std::cell::RefCell::new(std::collections::BTreeMap::new()),
        }
    }

    pub fn children(&self) -> &[Child] {
        &self.children
    }

    pub fn expression_source(&self) -> Option<&str> {
        self.expression.as_ref().map(Program::source)
    }

    pub fn reads_total(&self) -> u64 {
        self.reads_total
    }

    /// Add a child service by provider name; returns the variable bound to
    /// it. "The variables that are used in the expression are created
    /// dynamically, as the services are added into the composite provider"
    /// (§VI).
    pub fn add_service(&mut self, service_name: &str) -> Result<String, String> {
        self.add_service_grouped(service_name, None)
    }

    /// Like [`CompositeSensorProvider::add_service`], with an equivalence
    /// group to fall back to when the named provider is unavailable.
    pub fn add_service_grouped(
        &mut self,
        service_name: &str,
        group: Option<String>,
    ) -> Result<String, String> {
        if service_name == self.name {
            return Err(format!("composite '{}' cannot contain itself", self.name));
        }
        if self.children.iter().any(|c| c.service_name == service_name) {
            return Err(format!("'{service_name}' is already composed"));
        }
        let var = variable_for(self.children.len());
        self.children.push(Child {
            var: var.clone(),
            service_name: service_name.to_string(),
            group,
        });
        self.rebuild_plans();
        Ok(var)
    }

    /// Recompute the per-child read plans from `children`. Called on every
    /// composition change so reads find everything precomputed.
    fn rebuild_plans(&mut self) {
        self.plans = self
            .children
            .iter()
            .map(|child| {
                Arc::new(ReadPlan {
                    var: child.var.as_str().into(),
                    service_name: child.service_name.as_str().into(),
                    group: child.group.as_deref().map(Arc::from),
                    signature: Signature::new(
                        interfaces::SENSOR_DATA_ACCESSOR,
                        selectors::GET_VALUE,
                    )
                    .on(&child.service_name),
                    task_name: format!("read {}", child.service_name),
                })
            })
            .collect();
    }

    /// Remove a child. Remaining children are re-lettered by position so
    /// variables always run `a`, `b`, `c`, … without gaps; an installed
    /// expression is re-validated and dropped if it no longer binds.
    pub fn remove_service(&mut self, service_name: &str) -> Result<(), String> {
        let pos = self
            .children
            .iter()
            .position(|c| c.service_name == service_name)
            .ok_or_else(|| format!("'{service_name}' is not composed here"))?;
        self.children.remove(pos);
        self.bindings.borrow_mut().remove(service_name);
        for (i, child) in self.children.iter_mut().enumerate() {
            child.var = variable_for(i);
        }
        self.rebuild_plans();
        if let Some(expr) = &self.expression {
            let vars: Vec<&str> = self.children.iter().map(|c| c.var.as_str()).collect();
            if !expr.missing_inputs(&vars).is_empty() {
                self.expression = None;
            }
        }
        Ok(())
    }

    /// Install the compute expression, checking every input variable is
    /// bound to a composed child.
    pub fn set_expression(&mut self, source: &str) -> Result<(), String> {
        let program = Program::compile(source).map_err(|e| e.to_string())?;
        let vars: Vec<&str> = self.children.iter().map(|c| c.var.as_str()).collect();
        let missing = program.missing_inputs(&vars);
        if !missing.is_empty() {
            return Err(format!(
                "expression references unbound variable(s): {} (bound: {})",
                missing.join(", "),
                vars.join(", ")
            ));
        }
        self.expression = Some(program);
        Ok(())
    }

    /// Collect all child values (in parallel across the federation) and
    /// compute the composite value.
    /// Traced wrapper: a `csp.read` span covers the whole fan-out, with
    /// the degradation verdict attached after the inner read settles.
    fn handle_get_value(&mut self, env: &mut Env, task: &mut Task) {
        let span = if env.tracing_enabled() {
            let label = self.name.clone();
            let s = env.span_start("csp.read", &label, self.host);
            env.span_field(s, "children", self.plans.len());
            s
        } else {
            SpanId::INVALID
        };
        self.get_value_inner(env, task);
        if span.is_valid() {
            match task.status.clone() {
                ExertionStatus::Failed(e) => {
                    env.span_field(span, "error", e);
                    env.span_end(span, Outcome::Error);
                }
                _ => {
                    let substituted = task
                        .context
                        .get_str(paths::SENSOR_SUBSTITUTED)
                        .map(str::to_string);
                    let missing = task
                        .context
                        .get_str(paths::SENSOR_MISSING)
                        .map(str::to_string);
                    let degraded = substituted.is_some() || missing.is_some();
                    if let Some(s) = substituted {
                        env.span_field(span, "substituted", s);
                    }
                    if let Some(m) = missing {
                        env.span_field(span, "missing", m);
                    }
                    env.span_end(
                        span,
                        if degraded {
                            Outcome::Degraded
                        } else {
                            Outcome::Ok
                        },
                    );
                }
            }
        }
    }

    fn get_value_inner(&mut self, env: &mut Env, task: &mut Task) {
        self.reads_total += 1;
        if self.children.is_empty() {
            task.fail(format!(
                "composite '{}' has no composed services",
                self.name
            ));
            return;
        }

        // Cycle guard: refuse to read if this provider already appears in
        // the visited breadcrumb of the incoming request.
        let mut visited: Vec<Value> = match task.context.get(VISITED_PATH) {
            Some(Value::List(xs)) => xs.clone(),
            _ => Vec::new(),
        };
        if visited
            .iter()
            .any(|v| matches!(v, Value::Str(s) if s == &self.name))
        {
            task.fail(format!("composition cycle detected at '{}'", self.name));
            return;
        }
        visited.push(Value::Str(self.name.clone()));
        // One breadcrumb list, shared by reference across every child
        // closure — a deep copy is made only where a task context needs an
        // owned value.
        let visited = Arc::new(Value::List(visited));

        // Fan the child reads out in parallel — this is a small federation
        // exerted for this request. Each branch captures its precomputed
        // `Arc<ReadPlan>`; nothing per-child is cloned or formatted here.
        // Bindings are cached (the Jini proxy model): only an unknown or
        // failed child costs a LUS lookup.
        let accessor = &self.accessor;
        let bindings = &self.bindings;
        let cache_enabled = self.binding_cache_enabled;
        let host = self.host;
        let retry = self.retry;
        let breakers = self.breakers.clone();
        let branches: Vec<Box<dyn FnOnce(&mut Env) -> (Arc<str>, Result<(f64, String, bool), String>) + '_>> =
            self.plans
                .iter()
                .map(|plan| {
                    let plan = Arc::clone(plan);
                    let visited = Arc::clone(&visited);
                    let breakers = breakers.clone();
                    Box::new(move |env: &mut Env| {
                        // One `csp.child` span per fan-out branch; the
                        // dispatch spans and retry events nest under it.
                        let span = env.span_start("csp.child", &plan.service_name, host);
                        let child_start = env.now();
                        let name: &str = &plan.service_name;
                        let run = |env: &mut Env| -> Result<(f64, String, bool), String> {
                        let make_task = || {
                            Task::new(
                                plan.task_name.clone(),
                                plan.signature.clone(),
                                Context::new().with(VISITED_PATH, (*visited).clone()),
                            )
                        };
                        let parse = |done: &Exertion, who: &str| match done.status() {
                            ExertionStatus::Done => {
                                match done.context().get_f64(paths::SENSOR_VALUE) {
                                    Some(v) => Ok((
                                        v,
                                        done.context()
                                            .get_str(paths::SENSOR_UNIT)
                                            .unwrap_or_default()
                                            .to_string(),
                                        done.context().get_str(paths::SENSOR_QUALITY)
                                            != Some("suspect"),
                                    )),
                                    None => Err(format!("'{who}' returned no value")),
                                }
                            }
                            ExertionStatus::Failed(e) => Err(format!("'{who}': {e}")),
                            other => Err(format!("'{who}': unexpected status {other:?}")),
                        };

                        // Resolve the named provider: cached proxy first;
                        // a stale proxy is dropped and the name re-bound
                        // within this same read.
                        let mut failure: Option<String> = None;
                        let cached = if cache_enabled {
                            bindings.borrow().get(name).copied()
                        } else {
                            None
                        };
                        if let Some(svc) = cached {
                            if breakers
                                .as_ref()
                                .is_some_and(|b| !b.borrow_mut().allow(env, svc))
                            {
                                // Breaker open: a fresh bind would reach the
                                // same tripped provider, so skip straight to
                                // the group fallback without retrying.
                                failure = Some(format!("'{name}': breaker open"));
                            } else {
                                let res =
                                    exert_on_retry(env, host, svc, make_task().into(), None, &retry);
                                if let Some(b) = breakers.as_ref() {
                                    b.borrow_mut().record(env, svc, res.as_ref().err().copied());
                                }
                                match res {
                                    Ok(done) => match parse(&done, name) {
                                        Ok(v) => return Ok(v),
                                        // Answered but failed (dead transducer,
                                        // expression error in a nested CSP, ...)
                                        // — a fresh bind would reach the same
                                        // provider, so skip straight to the
                                        // group fallback.
                                        Err(e) => failure = Some(e),
                                    },
                                    Err(_) => {
                                        // Stale proxy: drop and re-bind below.
                                        bindings.borrow_mut().remove(name);
                                    }
                                }
                            }
                        }
                        if failure.is_none() {
                            let bound = accessor.bind(
                                env,
                                host,
                                interfaces::SENSOR_DATA_ACCESSOR,
                                Some(name),
                            );
                            match bound {
                                Some(item)
                                    if breakers.as_ref().is_some_and(|b| {
                                        !b.borrow_mut().allow(env, item.service)
                                    }) =>
                                {
                                    failure = Some(format!("'{name}': breaker open"));
                                }
                                Some(item) => {
                                    if cache_enabled {
                                        bindings
                                            .borrow_mut()
                                            .insert(name.to_string(), item.service);
                                    }
                                    let res = exert_on_retry(
                                        env,
                                        host,
                                        item.service,
                                        make_task().into(),
                                        None,
                                        &retry,
                                    );
                                    if let Some(b) = breakers.as_ref() {
                                        b.borrow_mut().record(
                                            env,
                                            item.service,
                                            res.as_ref().err().copied(),
                                        );
                                    }
                                    match res {
                                        Ok(done) => match parse(&done, name) {
                                            Ok(v) => return Ok(v),
                                            Err(e) => failure = Some(e),
                                        },
                                        Err(e) => {
                                            bindings.borrow_mut().remove(name);
                                            failure = Some(format!(
                                                "'{name}': provider unreachable: {e}"
                                            ));
                                        }
                                    }
                                }
                                None => {
                                    failure = Some(format!("'{name}': no provider found"))
                                }
                            }
                        }

                        // §V.A: "If for any reason, a particular sensor
                        // service is not available, the request can be
                        // passed on to the equivalent available service
                        // provider" — whether the named provider is gone
                        // *or* answered with a failure.
                        if let Some(group) = plan.group.as_deref() {
                            env.metrics.add(keys::FAILOVER_ATTEMPTS, 1);
                            if span.is_valid() {
                                // elapsed_ns: how much of this child's budget
                                // the primary burned before we gave up on it.
                                env.span_event(
                                    span,
                                    "failover.attempt",
                                    vec![
                                        ("group", group.into()),
                                        (
                                            "elapsed_ns",
                                            (env.now() - child_start).as_nanos().into(),
                                        ),
                                    ],
                                );
                            }
                            let primary = failure
                                .take()
                                .unwrap_or_else(|| format!("'{name}': read failed"));
                            let equivalent = accessor.bind_by_attr_excluding(
                                env,
                                host,
                                interfaces::SENSOR_DATA_ACCESSOR,
                                sensorcer_registry::attributes::AttrMatch::Custom {
                                    key: Some(EQUIVALENCE_GROUP_KEY.into()),
                                    value: Some(group.into()),
                                },
                                Some(name),
                            );
                            match equivalent {
                                Some(item)
                                    if breakers.as_ref().is_some_and(|b| {
                                        !b.borrow_mut().allow(env, item.service)
                                    }) =>
                                {
                                    failure = Some(format!(
                                        "{primary}; equivalent breaker open"
                                    ));
                                }
                                Some(item) => {
                                    let eq =
                                        item.name().unwrap_or("equivalent").to_string();
                                    // The failover hop stays single-shot: the
                                    // retry budget was already spent on the
                                    // primary.
                                    let res = exert_on(
                                        env,
                                        host,
                                        item.service,
                                        make_task().into(),
                                        None,
                                    );
                                    if let Some(b) = breakers.as_ref() {
                                        b.borrow_mut().record(
                                            env,
                                            item.service,
                                            res.as_ref().err().copied(),
                                        );
                                    }
                                    match res {
                                        Ok(done) => match parse(&done, &eq) {
                                            Ok(v) => {
                                                env.metrics
                                                    .add(keys::FAILOVER_SUCCESS, 1);
                                                if span.is_valid() {
                                                    env.span_event(
                                                        span,
                                                        "failover.success",
                                                        vec![
                                                            (
                                                                "equivalent",
                                                                eq.as_str().into(),
                                                            ),
                                                            (
                                                                "elapsed_ns",
                                                                (env.now() - child_start)
                                                                    .as_nanos()
                                                                    .into(),
                                                            ),
                                                        ],
                                                    );
                                                }
                                                // Deliberately not cached: the
                                                // primary is retried next read.
                                                return Ok(v);
                                            }
                                            Err(e) => {
                                                failure = Some(format!(
                                                    "{primary}; equivalent {e}"
                                                ));
                                            }
                                        },
                                        Err(e) => {
                                            failure = Some(format!(
                                                "{primary}; equivalent '{eq}' unreachable: {e}"
                                            ));
                                        }
                                    }
                                }
                                None => {
                                    failure = Some(format!(
                                        "{primary}; no equivalent provider in group '{group}' available"
                                    ));
                                }
                            }
                        }
                        Err(failure.unwrap_or_else(|| format!("'{name}': read failed")))
                        };
                        let outcome = run(env);
                        match &outcome {
                            Ok((_, _, good)) => {
                                if span.is_valid() && !*good {
                                    env.span_field(span, "quality", "suspect");
                                }
                                env.span_end(span, Outcome::Ok);
                            }
                            Err(e) => {
                                if span.is_valid() {
                                    env.span_field(span, "error", e.as_str());
                                }
                                env.span_end(span, Outcome::Error);
                            }
                        }
                        (plan.var.clone(), outcome)
                    })
                        as Box<
                            dyn FnOnce(&mut Env) -> (Arc<str>, Result<(f64, String, bool), String>)
                                + '_,
                        >
                })
                .collect();
        let collected = env.parallel(branches);
        // The hub pays CPU per child for demarshalling and bookkeeping —
        // child reads overlap on the network, but aggregation work on this
        // provider is serial. This is what makes very wide flat composites
        // lose to hierarchies (B2).
        env.consume(sensorcer_sim::time::SimDuration::from_micros(120) * collected.len() as u64);

        let mut unit = String::new();
        let mut all_good = true;
        let mut errors: Vec<(usize, Arc<str>, String)> = Vec::new();
        let mut readings: Vec<(Arc<str>, f64)> = Vec::with_capacity(collected.len());
        let now = env.now();
        for (idx, (var, outcome)) in collected.into_iter().enumerate() {
            match outcome {
                Ok((v, u, good)) => {
                    if good {
                        // Fresh clean reading — remember it for future
                        // degraded reads of this child.
                        self.last_good.insert(
                            self.plans[idx].service_name.to_string(),
                            LastGood {
                                value: v,
                                unit: u.clone(),
                                at: now,
                            },
                        );
                    }
                    readings.push((var, v));
                    all_good &= good;
                    if unit.is_empty() {
                        unit = u;
                    }
                }
                Err(e) => errors.push((idx, var, e)),
            }
        }

        // Children that still failed after retry and failover: what happens
        // next is the composite's degradation policy. Substitutions are
        // surfaced in the result context — a degraded read is never
        // silently clean.
        let mut substituted: Vec<String> = Vec::new();
        let mut missing: Vec<String> = Vec::new();
        if !errors.is_empty() {
            match self.degradation {
                DegradationPolicy::Strict => {
                    let msgs: Vec<&str> = errors.iter().map(|(_, _, e)| e.as_str()).collect();
                    task.fail(format!("component read failures: {}", msgs.join("; ")));
                    return;
                }
                DegradationPolicy::Quorum(n) => {
                    if readings.len() < n {
                        let msgs: Vec<&str> = errors.iter().map(|(_, _, e)| e.as_str()).collect();
                        task.fail(format!(
                            "quorum not met: {} of {} children answered (need {}); {}",
                            readings.len(),
                            self.plans.len(),
                            n,
                            msgs.join("; ")
                        ));
                        return;
                    }
                    for (idx, var, _) in &errors {
                        let child = self.plans[*idx].service_name.to_string();
                        match self.last_good.get(&child) {
                            Some(lg) => {
                                readings.push((var.clone(), lg.value));
                                if unit.is_empty() {
                                    unit = lg.unit.clone();
                                }
                                let age = now - lg.at;
                                let cur = env.current_span();
                                if cur.is_valid() {
                                    env.span_event(
                                        cur,
                                        "degradation.substitute",
                                        vec![
                                            ("child", child.as_str().into()),
                                            ("age_ns", age.as_nanos().into()),
                                        ],
                                    );
                                }
                                env.metrics
                                    .add_labeled(keys::SUBSTITUTED_CHILDREN, &child, 1);
                                substituted.push(child);
                            }
                            None => {
                                let cur = env.current_span();
                                if cur.is_valid() {
                                    env.span_event(
                                        cur,
                                        "degradation.missing",
                                        vec![("child", child.as_str().into())],
                                    );
                                }
                                env.metrics.add_labeled(keys::MISSING_CHILDREN, &child, 1);
                                missing.push(child);
                            }
                        }
                    }
                }
                DegradationPolicy::LastKnownGood { max_age } => {
                    for (idx, var, e) in &errors {
                        let child = self.plans[*idx].service_name.to_string();
                        match self.last_good.get(&child) {
                            Some(lg) if now - lg.at <= max_age => {
                                readings.push((var.clone(), lg.value));
                                if unit.is_empty() {
                                    unit = lg.unit.clone();
                                }
                                let age = now - lg.at;
                                let cur = env.current_span();
                                if cur.is_valid() {
                                    env.span_event(
                                        cur,
                                        "degradation.substitute",
                                        vec![
                                            ("child", child.as_str().into()),
                                            ("age_ns", age.as_nanos().into()),
                                        ],
                                    );
                                }
                                env.metrics
                                    .add_labeled(keys::SUBSTITUTED_CHILDREN, &child, 1);
                                substituted.push(child);
                            }
                            _ => {
                                task.fail(format!(
                                    "failed child has no recent last-known-good value: {e}"
                                ));
                                return;
                            }
                        }
                    }
                }
            }
            if !missing.is_empty() && self.expression.is_some() {
                task.fail(format!(
                    "degraded read cannot bind expression variables for missing children: {}",
                    missing.join(", ")
                ));
                return;
            }
            all_good = false;
            env.metrics.add(keys::DEGRADED_READS, 1);
            env.metrics
                .add(keys::SUBSTITUTED_CHILDREN, substituted.len() as u64);
        }

        // The expression evaluation gets its own span: a read that fails
        // *here* failed on the hub, after every child already answered.
        let eval_span = match (&self.expression, env.tracing_enabled()) {
            (Some(program), true) => {
                let s = env.span_start("csp.eval", program.source(), self.host);
                env.span_field(s, "inputs", readings.len());
                s
            }
            _ => SpanId::INVALID,
        };
        let computed = match &self.expression {
            Some(program) => {
                let pairs: Vec<(&str, Value)> = readings
                    .iter()
                    .map(|(var, v)| (&**var, Value::Float(*v)))
                    .collect();
                match program.bind_in(&pairs, &mut self.frame) {
                    Ok(v) => match v.as_f64() {
                        Some(x) => x,
                        None => {
                            let msg = format!("expression produced non-numeric value: {v}");
                            if eval_span.is_valid() {
                                env.span_field(eval_span, "error", msg.as_str());
                            }
                            env.span_end(eval_span, Outcome::Error);
                            task.fail(msg);
                            return;
                        }
                    },
                    Err(e) => {
                        let msg = format!("expression error: {e}");
                        if eval_span.is_valid() {
                            env.span_field(eval_span, "error", msg.as_str());
                        }
                        env.span_end(eval_span, Outcome::Error);
                        task.fail(msg);
                        return;
                    }
                }
            }
            // Default aggregation when no expression is installed.
            None => readings.iter().map(|(_, v)| v).sum::<f64>() / readings.len() as f64,
        };
        env.span_end(eval_span, Outcome::Ok);
        let value = self.calibration.apply(computed);

        task.context.put(paths::SENSOR_VALUE, value);
        task.context.put(paths::RESULT, value);
        task.context.put(paths::SENSOR_UNIT, unit.as_str());
        task.context
            .put(paths::SENSOR_AT, env.now().as_nanos() as f64);
        task.context.put(
            paths::SENSOR_QUALITY,
            if all_good { "good" } else { "suspect" },
        );
        if !substituted.is_empty() {
            task.context
                .put(paths::SENSOR_SUBSTITUTED, substituted.join(","));
        }
        if !missing.is_empty() {
            task.context.put(paths::SENSOR_MISSING, missing.join(","));
        }
        task.status = ExertionStatus::Done;
    }

    fn handle_get_info(&mut self, task: &mut Task) {
        let info = SensorInfo {
            name: self.name.clone(),
            service_type: "COMPOSITE".into(),
            uuid: self.uuid.clone(),
            contained: self
                .children
                .iter()
                .map(|c| c.service_name.clone())
                .collect(),
            expression: self.expression_source().map(str::to_string),
            unit: String::new(),
            battery: 1.0,
        };
        info.write_to(&mut task.context);
        task.status = ExertionStatus::Done;
    }

    fn handle_management(&mut self, task: &mut Task) {
        let outcome = match task.signature.selector.as_str() {
            mgmt::ADD_SERVICE => match task.context.get_str("arg/service") {
                Some(name) => {
                    let group = task.context.get_str("arg/group").map(str::to_string);
                    self.add_service_grouped(name, group).map(|var| {
                        task.context.put("mgmt/variable", var);
                    })
                }
                None => Err("addService needs arg/service".into()),
            },
            mgmt::REMOVE_SERVICE => match task.context.get_str("arg/service") {
                Some(name) => self.remove_service(name),
                None => Err("removeService needs arg/service".into()),
            },
            mgmt::SET_EXPRESSION => match task.context.get_str("arg/expression") {
                Some(src) => self.set_expression(src),
                None => Err("setExpression needs arg/expression".into()),
            },
            other => Err(format!(
                "'{}' has no management operation '{other}'",
                self.name
            )),
        };
        match outcome {
            Ok(()) => task.status = ExertionStatus::Done,
            Err(e) => task.fail(e),
        }
    }
}

impl Servicer for CompositeSensorProvider {
    fn provider_name(&self) -> &str {
        &self.name
    }

    fn service(&mut self, env: &mut Env, exertion: &mut Exertion, _txn: Option<TxnId>) {
        let Exertion::Task(task) = exertion else {
            if let Exertion::Job(job) = exertion {
                job.status = ExertionStatus::Failed(format!(
                    "composite provider '{}' executes tasks; jobs go to rendezvous peers",
                    self.name
                ));
            }
            return;
        };
        task.trace.push(format!("exerted by {}", self.name));
        match task.signature.interface.as_str() {
            i if i == interfaces::SENSOR_DATA_ACCESSOR => match task.signature.selector.as_str() {
                selectors::GET_VALUE => self.handle_get_value(env, task),
                selectors::GET_INFO => self.handle_get_info(task),
                selectors::GET_HISTORY => task.fail(format!(
                    "composite '{}' computes values on demand; ask its components for history",
                    self.name
                )),
                other => task.fail(format!("'{}' has no operation '{other}'", self.name)),
            },
            i if i == interfaces::COMPOSITE_MANAGEMENT => self.handle_management(task),
            other => task.fail(format!("'{}' does not implement {other}", self.name)),
        }
    }
}

impl std::fmt::Debug for CompositeSensorProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositeSensorProvider")
            .field("name", &self.name)
            .field("children", &self.children)
            .field("expression", &self.expression_source())
            .finish()
    }
}

/// Configuration for standing a CSP up.
pub struct CspConfig {
    pub host: HostId,
    pub name: String,
    pub lus: LusHandle,
    pub renewal: Option<RenewalHandle>,
    pub lease: SimDuration,
    /// Children to compose at startup (provider names).
    pub children: Vec<String>,
    /// Compute expression to install at startup.
    pub expression: Option<String>,
    /// What a failed child does to the composite read (default: Strict).
    pub degradation: DegradationPolicy,
    /// Retry budget for child dispatches (default: none — fail fast).
    pub retry: RetryPolicy,
    /// Shared circuit-breaker registry (default: none — never skip).
    pub breakers: Option<crate::admission::SharedBreakers>,
}

impl CspConfig {
    pub fn new(host: HostId, name: impl Into<String>, lus: LusHandle) -> CspConfig {
        CspConfig {
            host,
            name: name.into(),
            lus,
            renewal: None,
            lease: SimDuration::from_secs(30),
            children: Vec::new(),
            expression: None,
            degradation: DegradationPolicy::Strict,
            retry: RetryPolicy::none(),
            breakers: None,
        }
    }
}

/// Handle to a deployed CSP.
#[derive(Clone, Copy, Debug)]
pub struct CspHandle {
    pub service: ServiceId,
    pub host: HostId,
}

/// Deploy a CSP and register it (interfaces `SensorDataAccessor`,
/// `CompositeManagement`, `Servicer`; type `COMPOSITE`).
pub fn deploy_csp(env: &mut Env, config: CspConfig) -> Result<CspHandle, String> {
    let accessor = ServiceAccessor::new(vec![config.lus]);
    let mut csp = CompositeSensorProvider::new(config.name.clone(), config.host, accessor);
    csp.degradation = config.degradation;
    csp.retry = config.retry;
    csp.breakers = config.breakers;
    for child in &config.children {
        csp.add_service(child)?;
    }
    if let Some(expr) = &config.expression {
        csp.set_expression(expr)?;
    }
    let service = env.deploy(config.host, config.name.clone(), ServicerBox::new(csp));
    let item = ServiceItem::new(
        SvcUuid::NIL,
        config.host,
        service,
        vec![
            interfaces::SENSOR_DATA_ACCESSOR.into(),
            interfaces::COMPOSITE_MANAGEMENT.into(),
            interfaces::SERVICER.into(),
        ],
        vec![
            Entry::Name(config.name.clone()),
            Entry::ServiceType("COMPOSITE".into()),
        ],
    );
    let registration = config
        .lus
        .register(env, config.host, item, Some(config.lease));
    if let Ok(reg) = registration {
        let _ = env.with_service(service, |_env, sb: &mut ServicerBox| {
            if let Some(csp) = sb.downcast_mut::<CompositeSensorProvider>() {
                csp.uuid = reg.uuid.to_string();
            }
        });
        if let Some(renewal) = config.renewal {
            renewal.manage(env, config.host, config.lus, reg.lease, config.lease);
        }
    }
    Ok(CspHandle {
        service,
        host: config.host,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accessor::client;
    use crate::esp::{deploy_esp, EspConfig};
    use sensorcer_registry::lease::LeasePolicy;
    use sensorcer_registry::lus::LookupService;
    use sensorcer_sensors::prelude::*;
    use sensorcer_sim::prelude::*;

    struct World {
        env: Env,
        client: HostId,
        server: HostId,
        lus: LusHandle,
        accessor: ServiceAccessor,
    }

    fn setup() -> World {
        setup_seeded(1)
    }

    fn setup_seeded(seed: u64) -> World {
        let mut env = Env::with_seed(seed);
        let server = env.add_host("server", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        let lus = LookupService::deploy(
            &mut env,
            server,
            "LUS",
            "public",
            LeasePolicy::default(),
            SimDuration::from_millis(500),
        );
        let accessor = ServiceAccessor::new(vec![lus]);
        World {
            env,
            client,
            server,
            lus,
            accessor,
        }
    }

    fn add_esp(w: &mut World, name: &str, value: f64) -> HostId {
        let mote = w.env.add_host(format!("{name}-mote"), HostKind::SensorMote);
        deploy_esp(
            &mut w.env,
            EspConfig::new(
                mote,
                name,
                Box::new(ScriptedProbe::new(vec![value], Unit::Celsius)),
                w.lus,
            ),
        );
        mote
    }

    #[test]
    fn paper_average_over_three_sensors() {
        // §VI steps 1-2: subnet of three ESPs with "(a + b + c)/3".
        let mut w = setup();
        add_esp(&mut w, "Neem-Sensor", 20.0);
        add_esp(&mut w, "Jade-Sensor", 22.0);
        add_esp(&mut w, "Diamond-Sensor", 27.0);
        let mut cfg = CspConfig::new(w.server, "Composite-Service", w.lus);
        cfg.children = vec![
            "Neem-Sensor".into(),
            "Jade-Sensor".into(),
            "Diamond-Sensor".into(),
        ];
        cfg.expression = Some("(a + b + c)/3".into());
        deploy_csp(&mut w.env, cfg).unwrap();

        let r = client::get_value(&mut w.env, w.client, &w.accessor, "Composite-Service").unwrap();
        assert_eq!(r.value, 23.0);
        assert_eq!(r.unit, "°C");
        assert!(r.good);
    }

    #[test]
    fn nested_composites_like_fig3() {
        // §VI steps 3-6: a network = { subnet, Coral } with "(a + b)/2".
        let mut w = setup();
        add_esp(&mut w, "Neem-Sensor", 20.0);
        add_esp(&mut w, "Jade-Sensor", 22.0);
        add_esp(&mut w, "Diamond-Sensor", 27.0);
        add_esp(&mut w, "Coral-Sensor", 25.0);
        let mut sub = CspConfig::new(w.server, "Composite-Service", w.lus);
        sub.children = vec![
            "Neem-Sensor".into(),
            "Jade-Sensor".into(),
            "Diamond-Sensor".into(),
        ];
        sub.expression = Some("(a + b + c)/3".into());
        deploy_csp(&mut w.env, sub).unwrap();

        let mut net = CspConfig::new(w.server, "New-Composite", w.lus);
        net.children = vec!["Composite-Service".into(), "Coral-Sensor".into()];
        net.expression = Some("(a + b)/2".into());
        deploy_csp(&mut w.env, net).unwrap();

        let r = client::get_value(&mut w.env, w.client, &w.accessor, "New-Composite").unwrap();
        assert_eq!(r.value, (23.0 + 25.0) / 2.0);
    }

    #[test]
    fn default_aggregation_is_average() {
        let mut w = setup();
        add_esp(&mut w, "A", 10.0);
        add_esp(&mut w, "B", 20.0);
        let mut cfg = CspConfig::new(w.server, "C", w.lus);
        cfg.children = vec!["A".into(), "B".into()];
        deploy_csp(&mut w.env, cfg).unwrap();
        let r = client::get_value(&mut w.env, w.client, &w.accessor, "C").unwrap();
        assert_eq!(r.value, 15.0);
    }

    #[test]
    fn variables_assigned_in_add_order() {
        assert_eq!(variable_for(0), "a");
        assert_eq!(variable_for(2), "c");
        assert_eq!(variable_for(25), "z");
        assert_eq!(variable_for(26), "v26");

        let mut w = setup();
        let mut csp = CompositeSensorProvider::new("C", w.server, w.accessor.clone());
        assert_eq!(csp.add_service("X").unwrap(), "a");
        assert_eq!(csp.add_service("Y").unwrap(), "b");
        assert!(csp.add_service("Y").is_err(), "duplicates rejected");
        assert!(csp.add_service("C").is_err(), "self-composition rejected");
        let _ = &mut w;
    }

    #[test]
    fn removal_reletters_and_drops_stale_expression() {
        let w = setup();
        let mut csp = CompositeSensorProvider::new("C", w.server, w.accessor.clone());
        csp.add_service("X").unwrap();
        csp.add_service("Y").unwrap();
        csp.add_service("Z").unwrap();
        csp.set_expression("(a + b + c)/3").unwrap();
        csp.remove_service("Y").unwrap();
        assert_eq!(
            csp.children(),
            &[
                Child {
                    var: "a".into(),
                    service_name: "X".into(),
                    group: None
                },
                Child {
                    var: "b".into(),
                    service_name: "Z".into(),
                    group: None
                }
            ]
        );
        assert_eq!(
            csp.expression_source(),
            None,
            "expression using 'c' must drop"
        );
        csp.set_expression("a - b").unwrap();
        assert!(csp.remove_service("Nope").is_err());
    }

    #[test]
    fn expression_validation_against_bound_variables() {
        let w = setup();
        let mut csp = CompositeSensorProvider::new("C", w.server, w.accessor.clone());
        csp.add_service("X").unwrap();
        let err = csp.set_expression("(a + b)/2").unwrap_err();
        assert!(err.contains('b'), "{err}");
        assert!(csp.set_expression("a * 2").is_ok());
        assert!(csp.set_expression("a +").is_err(), "syntax errors surface");
    }

    #[test]
    fn failed_child_fails_composite_read() {
        let mut w = setup();
        add_esp(&mut w, "A", 10.0);
        let mut cfg = CspConfig::new(w.server, "C", w.lus);
        cfg.children = vec!["A".into(), "Ghost".into()];
        deploy_csp(&mut w.env, cfg).unwrap();
        let err = client::get_value(&mut w.env, w.client, &w.accessor, "C").unwrap_err();
        assert!(err.contains("Ghost"), "{err}");
    }

    #[test]
    fn empty_composite_fails_read() {
        let mut w = setup();
        deploy_csp(&mut w.env, CspConfig::new(w.server, "Empty", w.lus)).unwrap();
        let err = client::get_value(&mut w.env, w.client, &w.accessor, "Empty").unwrap_err();
        assert!(err.contains("no composed services"));
    }

    #[test]
    fn composition_cycles_detected_at_read_time() {
        let mut w = setup();
        // A contains B, B contains A — constructed by direct management to
        // bypass the self-composition guard.
        let mut a = CspConfig::new(w.server, "A", w.lus);
        a.children = vec!["B".into()];
        deploy_csp(&mut w.env, a).unwrap();
        let mut b = CspConfig::new(w.server, "B", w.lus);
        b.children = vec!["A".into()];
        deploy_csp(&mut w.env, b).unwrap();
        let err = client::get_value(&mut w.env, w.client, &w.accessor, "A").unwrap_err();
        // Either guard may fire: the visited breadcrumb ("cycle") or the
        // call-layer re-entrancy detector ("busy").
        assert!(err.contains("cycle") || err.contains("busy"), "{err}");
    }

    #[test]
    fn management_via_exertions() {
        let mut w = setup();
        add_esp(&mut w, "X", 4.0);
        add_esp(&mut w, "Y", 8.0);
        deploy_csp(&mut w.env, CspConfig::new(w.server, "C", w.lus)).unwrap();

        let ctx = client::manage(
            &mut w.env,
            w.client,
            &w.accessor,
            "C",
            mgmt::ADD_SERVICE,
            Context::new().with("arg/service", "X"),
        )
        .unwrap();
        assert_eq!(ctx.get_str("mgmt/variable"), Some("a"));
        client::manage(
            &mut w.env,
            w.client,
            &w.accessor,
            "C",
            mgmt::ADD_SERVICE,
            Context::new().with("arg/service", "Y"),
        )
        .unwrap();
        client::manage(
            &mut w.env,
            w.client,
            &w.accessor,
            "C",
            mgmt::SET_EXPRESSION,
            Context::new().with("arg/expression", "max(a, b)"),
        )
        .unwrap();
        let r = client::get_value(&mut w.env, w.client, &w.accessor, "C").unwrap();
        assert_eq!(r.value, 8.0);

        let info = client::get_info(&mut w.env, w.client, &w.accessor, "C").unwrap();
        assert_eq!(info.service_type, "COMPOSITE");
        assert_eq!(info.contained, vec!["X".to_string(), "Y".to_string()]);
        assert_eq!(info.expression.as_deref(), Some("max(a, b)"));

        // Bad management calls fail, not crash.
        assert!(client::manage(
            &mut w.env,
            w.client,
            &w.accessor,
            "C",
            mgmt::SET_EXPRESSION,
            Context::new()
        )
        .is_err());
    }

    #[test]
    fn suspect_child_marks_composite_suspect() {
        let mut w = setup();
        // One healthy ESP plus one whose reading will be suspect (dropout
        // served from store).
        add_esp(&mut w, "Good", 10.0);
        let mote = w.env.add_host("sus-mote", HostKind::SensorMote);
        let probe = SimulatedProbe::new(
            Teds::sunspot_temperature("s"),
            Signal::Constant(20.0),
            SimRng::new(5),
        );
        deploy_esp(
            &mut w.env,
            EspConfig::new(mote, "Sus", Box::new(probe), w.lus),
        );
        // Prime the store, then swap to full dropout.
        client::get_value(&mut w.env, w.client, &w.accessor, "Sus").unwrap();
        let svc = w.env.find_service("Sus").unwrap();
        w.env
            .with_service(svc, |_e, sb: &mut ServicerBox| {
                let esp = sb
                    .downcast_mut::<crate::esp::ElementarySensorProvider>()
                    .unwrap();
                esp.probe = Box::new(
                    SimulatedProbe::new(
                        Teds::sunspot_temperature("s"),
                        Signal::Constant(20.0),
                        SimRng::new(5),
                    )
                    .with_faults(FaultInjector::new(FaultModel {
                        dropout_prob: 1.0,
                        ..Default::default()
                    })),
                );
            })
            .unwrap();

        let mut cfg = CspConfig::new(w.server, "C", w.lus);
        cfg.children = vec!["Good".into(), "Sus".into()];
        deploy_csp(&mut w.env, cfg).unwrap();
        let r = client::get_value(&mut w.env, w.client, &w.accessor, "C").unwrap();
        assert!(!r.good, "one suspect component taints the composite");
        assert_eq!(r.value, 15.0);
    }

    #[test]
    fn output_calibration_applies() {
        let mut w = setup();
        add_esp(&mut w, "A", 10.0);
        let handle = deploy_csp(
            &mut w.env,
            CspConfig {
                children: vec!["A".into()],
                ..CspConfig::new(w.server, "C", w.lus)
            },
        )
        .unwrap();
        w.env
            .with_service(handle.service, |_e, sb: &mut ServicerBox| {
                sb.downcast_mut::<CompositeSensorProvider>()
                    .unwrap()
                    .calibration = Calibration::Linear {
                    gain: 1.8,
                    offset: 32.0,
                }; // °C → °F
            })
            .unwrap();
        let r = client::get_value(&mut w.env, w.client, &w.accessor, "C").unwrap();
        assert_eq!(r.value, 50.0);
    }

    #[test]
    fn equivalent_provider_takes_over_when_named_child_dies() {
        // §V.A: "If for any reason, a particular sensor service is not
        // available, the request can be passed on to the equivalent
        // available service provider."
        let mut w = setup();
        // Two interchangeable greenhouse sensors, short leases.
        let mut motes = Vec::new();
        for (name, value) in [("GH-Primary", 20.0), ("GH-Backup", 24.0)] {
            let mote = w.env.add_host(format!("{name}-mote"), HostKind::SensorMote);
            deploy_esp(
                &mut w.env,
                EspConfig {
                    lease: SimDuration::from_secs(5),
                    equivalence_group: Some("greenhouse".into()),
                    ..EspConfig::new(
                        mote,
                        name,
                        Box::new(ScriptedProbe::new(vec![value], Unit::Celsius)),
                        w.lus,
                    )
                },
            );
            motes.push(mote);
        }
        // Keep the backup alive with its own renewal.
        let renewal = sensorcer_registry::renewal::LeaseRenewalService::deploy(
            &mut w.env, w.server, "Renewal",
        );
        // Re-register the backup with renewal so only the primary lapses.
        let backup_svc = w.env.find_service("GH-Backup").unwrap();
        let item = ServiceItem::new(
            SvcUuid::NIL,
            motes[1],
            backup_svc,
            vec![interfaces::SENSOR_DATA_ACCESSOR.into()],
            vec![
                Entry::Name("GH-Backup".into()),
                Entry::Custom {
                    key: EQUIVALENCE_GROUP_KEY.into(),
                    value: "greenhouse".into(),
                },
            ],
        );
        let reg = w
            .lus
            .register(&mut w.env, motes[1], item, Some(SimDuration::from_secs(5)))
            .unwrap();
        renewal.manage(
            &mut w.env,
            motes[1],
            w.lus,
            reg.lease,
            SimDuration::from_secs(5),
        );

        // Composite pinned to the primary, with the group as fallback.
        let handle = deploy_csp(&mut w.env, CspConfig::new(w.server, "GH", w.lus)).unwrap();
        w.env
            .with_service(handle.service, |_e, sb: &mut ServicerBox| {
                let csp = sb.downcast_mut::<CompositeSensorProvider>().unwrap();
                csp.add_service_grouped("GH-Primary", Some("greenhouse".into()))
                    .unwrap();
            })
            .unwrap();

        // Healthy: reads the primary.
        let r = client::get_value(&mut w.env, w.client, &w.accessor, "GH").unwrap();
        assert_eq!(r.value, 20.0);

        // Kill the primary and let its registration lapse.
        w.env.crash_host(motes[0]);
        w.env.run_for(SimDuration::from_secs(10));

        // The request is passed on to the equivalent available provider.
        let r = client::get_value(&mut w.env, w.client, &w.accessor, "GH").unwrap();
        assert_eq!(r.value, 24.0, "backup must take over");
    }

    #[test]
    fn failed_reading_from_live_provider_also_fails_over() {
        // The named provider is reachable but its transducer is dead (it
        // answers with a failure); the equivalent provider must take over.
        let mut w = setup();
        let m1 = w.env.add_host("p-mote", HostKind::SensorMote);
        let dead = SimulatedProbe::new(
            Teds::sunspot_temperature("dead"),
            Signal::Constant(0.0),
            SimRng::new(1),
        )
        .with_battery(Battery::new(1.0, 100.0, 0.0));
        deploy_esp(
            &mut w.env,
            EspConfig {
                equivalence_group: Some("pair".into()),
                ..EspConfig::new(m1, "Pair-Primary", Box::new(dead), w.lus)
            },
        );
        let m2 = w.env.add_host("b-mote", HostKind::SensorMote);
        deploy_esp(
            &mut w.env,
            EspConfig {
                equivalence_group: Some("pair".into()),
                ..EspConfig::new(
                    m2,
                    "Pair-Backup",
                    Box::new(ScriptedProbe::new(vec![42.0], Unit::Celsius)),
                    w.lus,
                )
            },
        );
        let handle = deploy_csp(&mut w.env, CspConfig::new(w.server, "P", w.lus)).unwrap();
        w.env
            .with_service(handle.service, |_e, sb: &mut ServicerBox| {
                sb.downcast_mut::<CompositeSensorProvider>()
                    .unwrap()
                    .add_service_grouped("Pair-Primary", Some("pair".into()))
                    .unwrap();
            })
            .unwrap();
        let r = client::get_value(&mut w.env, w.client, &w.accessor, "P").unwrap();
        assert_eq!(
            r.value, 42.0,
            "backup answers even though the primary is reachable"
        );
    }

    #[test]
    fn without_a_group_the_dead_child_fails_the_read() {
        let mut w = setup();
        let mote = w.env.add_host("solo-mote", HostKind::SensorMote);
        deploy_esp(
            &mut w.env,
            EspConfig {
                lease: SimDuration::from_secs(5),
                ..EspConfig::new(
                    mote,
                    "Solo",
                    Box::new(ScriptedProbe::new(vec![20.0], Unit::Celsius)),
                    w.lus,
                )
            },
        );
        let mut cfg = CspConfig::new(w.server, "C", w.lus);
        cfg.children = vec!["Solo".into()];
        deploy_csp(&mut w.env, cfg).unwrap();
        assert!(client::get_value(&mut w.env, w.client, &w.accessor, "C").is_ok());
        w.env.crash_host(mote);
        w.env.run_for(SimDuration::from_secs(10));
        assert!(client::get_value(&mut w.env, w.client, &w.accessor, "C").is_err());
    }

    #[test]
    fn deploy_rejects_bad_startup_expression() {
        let mut w = setup();
        let mut cfg = CspConfig::new(w.server, "C", w.lus);
        cfg.children = vec!["A".into()];
        cfg.expression = Some("(a + b)/2".into());
        assert!(deploy_csp(&mut w.env, cfg).is_err());
    }

    #[test]
    fn failover_failure_reports_both_errors_and_counts_attempts() {
        // Both the primary and its only equivalent answer with failures:
        // the composite error must name both, and the failover metrics
        // must show an attempt without a success.
        let mut w = setup();
        for name in ["Dead-A", "Dead-B"] {
            let mote = w.env.add_host(format!("{name}-mote"), HostKind::SensorMote);
            let probe = SimulatedProbe::new(
                Teds::sunspot_temperature(name),
                Signal::Constant(0.0),
                SimRng::new(1),
            )
            .with_battery(Battery::new(1.0, 100.0, 0.0));
            deploy_esp(
                &mut w.env,
                EspConfig {
                    equivalence_group: Some("dead-pair".into()),
                    ..EspConfig::new(mote, name, Box::new(probe), w.lus)
                },
            );
        }
        let handle = deploy_csp(&mut w.env, CspConfig::new(w.server, "DP", w.lus)).unwrap();
        w.env
            .with_service(handle.service, |_e, sb: &mut ServicerBox| {
                sb.downcast_mut::<CompositeSensorProvider>()
                    .unwrap()
                    .add_service_grouped("Dead-A", Some("dead-pair".into()))
                    .unwrap();
            })
            .unwrap();

        let err = client::get_value(&mut w.env, w.client, &w.accessor, "DP").unwrap_err();
        assert!(
            err.contains("'Dead-A'"),
            "primary error must be named: {err}"
        );
        assert!(
            err.contains("equivalent") && err.contains("'Dead-B'"),
            "equivalent's own error must be included: {err}"
        );
        assert_eq!(w.env.metrics.get(keys::FAILOVER_ATTEMPTS), 1);
        assert_eq!(w.env.metrics.get(keys::FAILOVER_SUCCESS), 0);

        // And a successful failover counts a success: a second pair whose
        // backup is alive.
        let m3 = w.env.add_host("live-mote", HostKind::SensorMote);
        deploy_esp(
            &mut w.env,
            EspConfig {
                equivalence_group: Some("live-pair".into()),
                ..EspConfig::new(
                    m3,
                    "Live-Backup",
                    Box::new(ScriptedProbe::new(vec![7.0], Unit::Celsius)),
                    w.lus,
                )
            },
        );
        let m4 = w.env.add_host("dead-c-mote", HostKind::SensorMote);
        let probe = SimulatedProbe::new(
            Teds::sunspot_temperature("dead-c"),
            Signal::Constant(0.0),
            SimRng::new(1),
        )
        .with_battery(Battery::new(1.0, 100.0, 0.0));
        deploy_esp(
            &mut w.env,
            EspConfig {
                equivalence_group: Some("live-pair".into()),
                ..EspConfig::new(m4, "Dead-C", Box::new(probe), w.lus)
            },
        );
        let handle = deploy_csp(&mut w.env, CspConfig::new(w.server, "LP", w.lus)).unwrap();
        w.env
            .with_service(handle.service, |_e, sb: &mut ServicerBox| {
                sb.downcast_mut::<CompositeSensorProvider>()
                    .unwrap()
                    .add_service_grouped("Dead-C", Some("live-pair".into()))
                    .unwrap();
            })
            .unwrap();
        let r = client::get_value(&mut w.env, w.client, &w.accessor, "LP").unwrap();
        assert_eq!(r.value, 7.0);
        assert_eq!(w.env.metrics.get(keys::FAILOVER_SUCCESS), 1);
    }

    #[test]
    fn no_equivalent_available_is_said_so() {
        let mut w = setup();
        let mote = w.env.add_host("only-mote", HostKind::SensorMote);
        deploy_esp(
            &mut w.env,
            EspConfig {
                lease: SimDuration::from_secs(5),
                equivalence_group: Some("lonely".into()),
                ..EspConfig::new(
                    mote,
                    "Only",
                    Box::new(ScriptedProbe::new(vec![1.0], Unit::Celsius)),
                    w.lus,
                )
            },
        );
        let handle = deploy_csp(&mut w.env, CspConfig::new(w.server, "L", w.lus)).unwrap();
        w.env
            .with_service(handle.service, |_e, sb: &mut ServicerBox| {
                sb.downcast_mut::<CompositeSensorProvider>()
                    .unwrap()
                    .add_service_grouped("Only", Some("lonely".into()))
                    .unwrap();
            })
            .unwrap();
        w.env.crash_host(mote);
        w.env.run_for(SimDuration::from_secs(10));
        let err = client::get_value(&mut w.env, w.client, &w.accessor, "L").unwrap_err();
        assert!(
            err.contains("no equivalent provider in group 'lonely'"),
            "absence of an equivalent must be explicit: {err}"
        );
    }

    #[test]
    fn quorum_read_survives_an_unreachable_child_and_flags_it() {
        let mut w = setup();
        add_esp(&mut w, "S0", 10.0);
        add_esp(&mut w, "S1", 20.0);
        let s2_mote = add_esp(&mut w, "S2", 30.0);
        let mut cfg = CspConfig::new(w.server, "Q", w.lus);
        cfg.children = vec!["S0".into(), "S1".into(), "S2".into()];
        cfg.degradation = DegradationPolicy::Quorum(2);
        deploy_csp(&mut w.env, cfg).unwrap();

        // Prime: clean read populates the last-known-good cache.
        let (r, d) = client::get_value_detailed(&mut w.env, w.client, &w.accessor, "Q").unwrap();
        assert_eq!(r.value, 20.0);
        assert!(r.good && !d.is_degraded());

        // Cut S2 off; quorum 2-of-3 still holds and S2's last value
        // substitutes, so the average is unchanged — but flagged.
        w.env.topo.partition(w.server, s2_mote);
        w.env.run_for(SimDuration::from_secs(5));
        let (r, d) = client::get_value_detailed(&mut w.env, w.client, &w.accessor, "Q").unwrap();
        assert_eq!(r.value, 20.0, "last-known-good 30.0 substitutes for S2");
        assert!(!r.good, "degraded read must be flagged suspect");
        assert_eq!(d.substituted, vec!["S2".to_string()]);
        assert!(d.missing.is_empty());
        assert!(w.env.metrics.get(keys::DEGRADED_READS) >= 1);
        assert!(w.env.metrics.get(keys::SUBSTITUTED_CHILDREN) >= 1);

        // Heal: the composite reconverges to clean on the next read.
        w.env.topo.heal(w.server, s2_mote);
        w.env.run_for(SimDuration::from_secs(5));
        let (r, d) = client::get_value_detailed(&mut w.env, w.client, &w.accessor, "Q").unwrap();
        assert!(
            r.good && !d.is_degraded(),
            "post-heal reads reconverge to clean"
        );
        assert_eq!(r.value, 20.0);
    }

    #[test]
    fn quorum_not_met_fails_with_counts() {
        let mut w = setup();
        add_esp(&mut w, "S0", 10.0);
        let mote = add_esp(&mut w, "S1", 20.0);
        let mut cfg = CspConfig::new(w.server, "Q", w.lus);
        cfg.children = vec!["S0".into(), "S1".into()];
        cfg.degradation = DegradationPolicy::Quorum(2);
        deploy_csp(&mut w.env, cfg).unwrap();
        client::get_value(&mut w.env, w.client, &w.accessor, "Q").unwrap();

        w.env.crash_host(mote);
        w.env.run_for(SimDuration::from_secs(5));
        let err = client::get_value(&mut w.env, w.client, &w.accessor, "Q").unwrap_err();
        assert!(err.contains("quorum not met: 1 of 2"), "{err}");
        assert!(err.contains("'S1'"), "failing child still named: {err}");
    }

    #[test]
    fn quorum_without_cached_value_reports_child_missing() {
        // A child that dies before ever delivering has no last-known-good
        // value: the read still succeeds (quorum held) but the child is
        // reported missing and skipped by the default average.
        let mut w = setup();
        add_esp(&mut w, "S0", 10.0);
        add_esp(&mut w, "S1", 20.0);
        let mote = add_esp(&mut w, "S2", 99.0);
        let mut cfg = CspConfig::new(w.server, "Q", w.lus);
        cfg.children = vec!["S0".into(), "S1".into(), "S2".into()];
        cfg.degradation = DegradationPolicy::Quorum(2);
        deploy_csp(&mut w.env, cfg).unwrap();

        // S2 dies before the composite ever reads it.
        w.env.crash_host(mote);
        w.env.run_for(SimDuration::from_secs(5));
        let (r, d) = client::get_value_detailed(&mut w.env, w.client, &w.accessor, "Q").unwrap();
        assert_eq!(r.value, 15.0, "average skips the missing child");
        assert!(!r.good);
        assert!(d.substituted.is_empty());
        assert_eq!(d.missing, vec!["S2".to_string()]);
    }

    #[test]
    fn last_known_good_substitutes_within_max_age_only() {
        let mut w = setup();
        add_esp(&mut w, "S0", 10.0);
        let mote = add_esp(&mut w, "S1", 30.0);
        let mut cfg = CspConfig::new(w.server, "K", w.lus);
        cfg.children = vec!["S0".into(), "S1".into()];
        // Long lease: the test waits out the LKG max_age, and the
        // composite itself must stay registered that long.
        cfg.lease = SimDuration::from_secs(300);
        cfg.degradation = DegradationPolicy::LastKnownGood {
            max_age: SimDuration::from_secs(120),
        };
        deploy_csp(&mut w.env, cfg).unwrap();
        client::get_value(&mut w.env, w.client, &w.accessor, "K").unwrap();

        w.env.crash_host(mote);
        w.env.run_for(SimDuration::from_secs(5));
        // Within max_age: substituted, flagged.
        let (r, d) = client::get_value_detailed(&mut w.env, w.client, &w.accessor, "K").unwrap();
        assert_eq!(r.value, 20.0);
        assert!(!r.good);
        assert_eq!(d.substituted, vec!["S1".to_string()]);

        // Stale: the cached value ages out and the read fails.
        w.env.run_for(SimDuration::from_secs(200));
        let err = client::get_value(&mut w.env, w.client, &w.accessor, "K").unwrap_err();
        assert!(err.contains("last-known-good"), "{err}");
    }

    #[test]
    fn breaker_open_child_degrades_quorum_not_fails() {
        // A tripped circuit on one child must read exactly like an
        // unreachable child: quorum holds, the last-known-good value
        // substitutes, the read is flagged — never a hard failure, and
        // never a retry burn against the breaker-open service.
        for seed in [5u64, 6, 7] {
            let mut w = setup_seeded(seed);
            add_esp(&mut w, "S0", 10.0);
            add_esp(&mut w, "S1", 20.0);
            let s2_mote = w.env.add_host("S2-mote", HostKind::SensorMote);
            let s2 = deploy_esp(
                &mut w.env,
                EspConfig::new(
                    s2_mote,
                    "S2",
                    Box::new(ScriptedProbe::new(vec![30.0], Unit::Celsius)),
                    w.lus,
                ),
            );
            let breakers = crate::admission::shared_breakers(Default::default());
            let mut cfg = CspConfig::new(w.server, "Q", w.lus);
            cfg.children = vec!["S0".into(), "S1".into(), "S2".into()];
            cfg.degradation = DegradationPolicy::Quorum(2);
            cfg.retry = RetryPolicy::transient();
            cfg.breakers = Some(breakers.clone());
            deploy_csp(&mut w.env, cfg).unwrap();

            // Prime: clean read fills the caches and binds the children.
            let (r, d) =
                client::get_value_detailed(&mut w.env, w.client, &w.accessor, "Q").unwrap();
            assert!(r.good && !d.is_degraded(), "seed {seed}");

            let now = w.env.now();
            breakers.borrow_mut().trip(s2.service, now);
            let retries_before = w
                .env
                .metrics
                .get(sensorcer_exertion::retry::keys::RETRY_ATTEMPTS);
            let (r, d) =
                client::get_value_detailed(&mut w.env, w.client, &w.accessor, "Q").unwrap();
            assert_eq!(r.value, 20.0, "seed {seed}: cached 30.0 substitutes");
            assert!(!r.good, "seed {seed}: substitution must be flagged");
            assert_eq!(d.substituted, vec!["S2".to_string()], "seed {seed}");
            assert!(d.missing.is_empty(), "seed {seed}");
            assert!(
                w.env.metrics.get(crate::admission::keys::BREAKER_SKIPPED) >= 1,
                "seed {seed}: the open breaker must skip the dispatch"
            );
            assert_eq!(
                w.env
                    .metrics
                    .get(sensorcer_exertion::retry::keys::RETRY_ATTEMPTS),
                retries_before,
                "seed {seed}: a skipped child must not burn the retry budget"
            );
        }
    }

    #[test]
    fn breaker_open_child_substitutes_under_last_known_good() {
        for seed in [5u64, 6, 7] {
            let mut w = setup_seeded(seed);
            add_esp(&mut w, "S0", 10.0);
            let s1_mote = w.env.add_host("S1-mote", HostKind::SensorMote);
            let s1 = deploy_esp(
                &mut w.env,
                EspConfig::new(
                    s1_mote,
                    "S1",
                    Box::new(ScriptedProbe::new(vec![30.0], Unit::Celsius)),
                    w.lus,
                ),
            );
            let breakers = crate::admission::shared_breakers(Default::default());
            let mut cfg = CspConfig::new(w.server, "K", w.lus);
            cfg.children = vec!["S0".into(), "S1".into()];
            cfg.degradation = DegradationPolicy::LastKnownGood {
                max_age: SimDuration::from_secs(120),
            };
            cfg.breakers = Some(breakers.clone());
            deploy_csp(&mut w.env, cfg).unwrap();
            client::get_value(&mut w.env, w.client, &w.accessor, "K").unwrap();

            let now = w.env.now();
            breakers.borrow_mut().trip(s1.service, now);
            let (r, d) =
                client::get_value_detailed(&mut w.env, w.client, &w.accessor, "K").unwrap();
            assert_eq!(r.value, 20.0, "seed {seed}: cached 30.0 substitutes");
            assert!(!r.good, "seed {seed}");
            assert_eq!(d.substituted, vec!["S1".to_string()], "seed {seed}");
        }
    }

    #[test]
    fn strict_stays_all_or_nothing_even_with_retry() {
        // Strict + retry budget: the read still fails when a child is
        // gone for good — retries only cover transient faults.
        let mut w = setup();
        add_esp(&mut w, "S0", 10.0);
        let mote = add_esp(&mut w, "S1", 20.0);
        let mut cfg = CspConfig::new(w.server, "ST", w.lus);
        cfg.children = vec!["S0".into(), "S1".into()];
        cfg.retry = RetryPolicy::transient();
        deploy_csp(&mut w.env, cfg).unwrap();
        client::get_value(&mut w.env, w.client, &w.accessor, "ST").unwrap();

        w.env.crash_host(mote);
        w.env.run_for(SimDuration::from_secs(5));
        let err = client::get_value(&mut w.env, w.client, &w.accessor, "ST").unwrap_err();
        assert!(err.contains("component read failures"), "{err}");
    }

    #[test]
    fn retry_budget_rides_out_a_transient_partition() {
        // The child's mote is partitioned from the composite when the
        // read starts, but a heal is already scheduled inside the retry
        // budget: with retries the read comes back clean — not degraded,
        // not failed.
        let mut w = setup();
        add_esp(&mut w, "S0", 10.0);
        let mote = add_esp(&mut w, "S1", 20.0);
        let mut cfg = CspConfig::new(w.server, "R", w.lus);
        cfg.children = vec!["S0".into(), "S1".into()];
        cfg.retry = RetryPolicy {
            attempts: 4,
            backoff: SimDuration::from_secs(2),
            deadline: SimDuration::from_secs(30),
        };
        deploy_csp(&mut w.env, cfg).unwrap();
        client::get_value(&mut w.env, w.client, &w.accessor, "R").unwrap();

        let server = w.server;
        w.env.topo.partition(server, mote);
        let at = w.env.now() + SimDuration::from_secs(5);
        w.env
            .schedule_at(at, move |env| env.topo.heal(server, mote));
        let (r, d) = client::get_value_detailed(&mut w.env, w.client, &w.accessor, "R").unwrap();
        assert_eq!(r.value, 15.0);
        assert!(
            r.good && !d.is_degraded(),
            "retried read is clean, not degraded"
        );
    }
}
