//! The Sensor Browser — a text-mode reproduction of the zero-install
//! service UI of Figs. 2–3.
//!
//! "The design of the browser follows the MVC pattern: its model contains
//! the data of the sensor network configuration, views display the data in
//! appropriate format" (§V.B). [`BrowserModel`] is the model (refreshed
//! through the façade); the `render_*` functions are the views. The
//! original is an Inca X Swing UI; text rendering preserves exactly the
//! information content the figures show, which is what the F2/F3
//! reproductions assert on.

use sensorcer_sim::env::Env;
use sensorcer_sim::topology::HostId;

use crate::accessor::{SensorInfo, SensorReading};
use crate::facade::FacadeHandle;

/// The browser's model: one refreshable snapshot of the network.
#[derive(Debug, Default, Clone)]
pub struct BrowserModel {
    /// (name, service type) rows of the service list.
    pub services: Vec<(String, String)>,
    /// Last fetched info panel.
    pub info: Option<SensorInfo>,
    /// Sensor values panel: (service name, reading or error).
    pub values: Vec<(String, Result<SensorReading, String>)>,
}

impl BrowserModel {
    pub fn new() -> BrowserModel {
        BrowserModel::default()
    }

    /// Controller: refresh the service list through the façade.
    pub fn refresh_services(
        &mut self,
        env: &mut Env,
        from: HostId,
        facade: FacadeHandle,
    ) -> Result<(), String> {
        self.services = facade.list_services(env, from)?;
        Ok(())
    }

    /// Controller: fetch the info panel for one service.
    pub fn select_service(
        &mut self,
        env: &mut Env,
        from: HostId,
        facade: FacadeHandle,
        name: &str,
    ) -> Result<(), String> {
        self.info = Some(facade.get_info(env, from, name)?);
        Ok(())
    }

    /// Controller: read every sensor-valued service into the values panel
    /// (the "Sensor Value" section of Fig. 3 lists all sensors).
    pub fn refresh_values(&mut self, env: &mut Env, from: HostId, facade: FacadeHandle) {
        self.values.clear();
        let sensors: Vec<String> = self
            .services
            .iter()
            .filter(|(_, t)| t == "ELEMENTARY" || t == "COMPOSITE")
            .map(|(n, _)| n.clone())
            .collect();
        for name in sensors {
            let r = facade.get_value(env, from, &name);
            self.values.push((name, r));
        }
    }

    /// Subscribe the model to registry transitions: joins, departures and
    /// attribute changes land in `mailbox`, and [`BrowserModel::pull_events`]
    /// folds them into the service list incrementally — the browser stays
    /// live without re-polling ("new services entering the network become
    /// available immediately", §IV.B).
    pub fn subscribe(
        env: &mut Env,
        from: HostId,
        lus: sensorcer_registry::lus::LusHandle,
        mailbox: &sensorcer_registry::events::MailboxHandle,
    ) -> Result<sensorcer_registry::lease::Lease, sensorcer_sim::topology::NetError> {
        use sensorcer_registry::events::Transition;
        lus.notify(
            env,
            from,
            sensorcer_registry::item::ServiceTemplate::any(),
            vec![
                Transition::NoMatchToMatch,
                Transition::MatchToNoMatch,
                Transition::MatchToMatch,
            ],
            mailbox.sink(),
            None,
        )
    }

    /// Drain the mailbox and fold the events into the service list.
    /// Returns how many events were applied.
    pub fn pull_events(
        &mut self,
        env: &mut Env,
        from: HostId,
        mailbox: &sensorcer_registry::events::MailboxHandle,
    ) -> Result<usize, sensorcer_sim::topology::NetError> {
        use sensorcer_registry::attributes::{name_of, service_type_of};
        use sensorcer_registry::events::Transition;
        let events = mailbox.pull(env, from)?;
        let applied = events.len();
        for ev in events {
            match ev.transition {
                Transition::NoMatchToMatch | Transition::MatchToMatch => {
                    let Some(item) = &ev.item else { continue };
                    let name = name_of(&item.attributes).unwrap_or("(unnamed)").to_string();
                    let service_type = service_type_of(&item.attributes)
                        .unwrap_or("UNKNOWN")
                        .to_string();
                    match self.services.iter_mut().find(|(n, _)| *n == name) {
                        Some(row) => row.1 = service_type,
                        None => {
                            self.services.push((name, service_type));
                            self.services.sort();
                        }
                    }
                }
                Transition::MatchToNoMatch => {
                    if let Some(item) = &ev.item {
                        if let Some(name) = name_of(&item.attributes) {
                            self.services.retain(|(n, _)| n != name);
                        }
                    }
                }
            }
        }
        Ok(applied)
    }

    /// Names of services of a given type.
    pub fn of_type(&self, service_type: &str) -> Vec<&str> {
        self.services
            .iter()
            .filter(|(_, t)| t == service_type)
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// View: the left-hand service tree of Fig. 2.
pub fn render_services(model: &BrowserModel) -> String {
    let mut out = String::from("Services\n");
    for (name, service_type) in &model.services {
        out.push_str(&format!("  [{service_type:<14}] {name}\n"));
    }
    out
}

/// View: the "Sensor Service Information" panel of Figs. 2–3.
pub fn render_info(info: &SensorInfo) -> String {
    let mut out = String::new();
    out.push_str("Sensor Service Information\n");
    out.push_str(&format!("  Sensor Name:: {}\n", info.name));
    out.push_str(&format!("  Service Type:: {}\n", info.service_type));
    out.push_str(&format!("  Service ID:: {}\n", info.uuid));
    if !info.contained.is_empty() {
        out.push_str(&format!(
            "  Contained Services: {}\n",
            info.contained.join(", ")
        ));
    }
    if let Some(expr) = &info.expression {
        out.push_str(&format!("  Compute Expression: {expr}\n"));
    }
    out
}

/// View: the "Sensor Value" panel of Fig. 3.
pub fn render_values(model: &BrowserModel) -> String {
    let mut out = String::from("Sensor Value\n");
    for (name, reading) in &model.values {
        match reading {
            Ok(r) => out.push_str(&format!(
                "  {name:<20} {value:.2}{unit}{flag}\n",
                name = name,
                value = r.value,
                unit = r.unit,
                flag = if r.good { "" } else { " (suspect)" }
            )),
            Err(e) => out.push_str(&format!("  {name:<20} <error: {e}>\n")),
        }
    }
    out
}

/// View: the whole browser window (service list + info + values).
pub fn render_browser(model: &BrowserModel) -> String {
    let mut out = String::new();
    out.push_str(&render_services(model));
    out.push('\n');
    if let Some(info) = &model.info {
        out.push_str(&render_info(info));
        out.push('\n');
    }
    out.push_str(&render_values(model));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::{standard_deployment, DeploymentConfig};
    use sensorcer_sim::prelude::Env;

    #[test]
    fn browser_reproduces_fig2_panels() {
        let config = DeploymentConfig::fig2();
        let mut env = Env::with_seed(config.seed);
        let d = standard_deployment(&mut env, &config);

        let mut model = BrowserModel::new();
        model
            .refresh_services(&mut env, d.workstation, d.facade)
            .unwrap();
        model
            .select_service(&mut env, d.workstation, d.facade, "Neem-Sensor")
            .unwrap();
        model.refresh_values(&mut env, d.workstation, d.facade);

        let screen = render_browser(&model);
        for needle in [
            "Services",
            "Neem-Sensor",
            "Jade-Sensor",
            "Coral-Sensor",
            "Diamond-Sensor",
            "SenSORCER Facade",
            "Cybernode-0",
            "Sensor Service Information",
            "Service Type:: ELEMENTARY",
            "Sensor Value",
        ] {
            assert!(screen.contains(needle), "missing {needle:?} in:\n{screen}");
        }
    }

    #[test]
    fn values_panel_reads_every_sensor() {
        let config = DeploymentConfig::fig2();
        let mut env = Env::with_seed(config.seed);
        let d = standard_deployment(&mut env, &config);
        let mut model = BrowserModel::new();
        model
            .refresh_services(&mut env, d.workstation, d.facade)
            .unwrap();
        model.refresh_values(&mut env, d.workstation, d.facade);
        assert_eq!(model.values.len(), 4);
        assert!(model.values.iter().all(|(_, r)| r.is_ok()));
        assert_eq!(model.of_type("ELEMENTARY").len(), 4);
        assert_eq!(model.of_type("FACADE"), vec!["SenSORCER Facade"]);
    }

    #[test]
    fn info_panel_matches_fig3_fields() {
        let info = SensorInfo {
            name: "Composite-Service".into(),
            service_type: "COMPOSITE".into(),
            uuid: "267c67a0-dd67-4b95-beb0-e6763e117b03".into(),
            contained: vec![
                "Neem-Sensor".into(),
                "Jade-Sensor".into(),
                "Diamond-Sensor".into(),
            ],
            expression: Some("(a + b + c)/3".into()),
            unit: "°C".into(),
            battery: 1.0,
        };
        let panel = render_info(&info);
        assert!(panel.contains("Sensor Name:: Composite-Service"));
        assert!(panel.contains("Service Type:: COMPOSITE"));
        assert!(panel.contains("Service ID:: 267c67a0-dd67-4b95-beb0-e6763e117b03"));
        assert!(panel.contains("Contained Services: Neem-Sensor, Jade-Sensor, Diamond-Sensor"));
        assert!(panel.contains("Compute Expression: (a + b + c)/3"));
    }

    #[test]
    fn live_subscription_tracks_joins_and_departures() {
        let config = DeploymentConfig::fig2();
        let mut env = Env::with_seed(config.seed);
        let d = standard_deployment(&mut env, &config);

        let mut model = BrowserModel::new();
        model
            .refresh_services(&mut env, d.workstation, d.facade)
            .unwrap();
        BrowserModel::subscribe(&mut env, d.workstation, d.lus, &d.mailbox).unwrap();

        // A new sensor joins the network: the model learns about it from
        // events alone — no refresh.
        let mote = env.add_host("late-mote", sensorcer_sim::topology::HostKind::SensorMote);
        crate::esp::deploy_esp(
            &mut env,
            crate::esp::EspConfig {
                lease: sensorcer_sim::time::SimDuration::from_secs(5),
                ..crate::esp::EspConfig::new(
                    mote,
                    "Latecomer",
                    Box::new(sensorcer_sensors::probe::ScriptedProbe::new(
                        vec![21.0],
                        sensorcer_sensors::units::Unit::Celsius,
                    )),
                    d.lus,
                )
            },
        );
        let applied = model
            .pull_events(&mut env, d.workstation, &d.mailbox)
            .unwrap();
        assert!(applied >= 1);
        assert!(model.services.iter().any(|(n, _)| n == "Latecomer"));

        // Its short lease lapses: the departure event removes the row.
        env.run_for(sensorcer_sim::time::SimDuration::from_secs(10));
        model
            .pull_events(&mut env, d.workstation, &d.mailbox)
            .unwrap();
        assert!(!model.services.iter().any(|(n, _)| n == "Latecomer"));

        // The event-driven model agrees with a full refresh.
        let mut fresh = BrowserModel::new();
        fresh
            .refresh_services(&mut env, d.workstation, d.facade)
            .unwrap();
        assert_eq!(model.services, fresh.services);
    }

    #[test]
    fn error_readings_render_without_panicking() {
        let mut model = BrowserModel::new();
        model
            .values
            .push(("Ghost".into(), Err("no provider".into())));
        let panel = render_values(&model);
        assert!(panel.contains("Ghost"));
        assert!(panel.contains("no provider"));
    }
}
