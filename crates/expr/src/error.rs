//! Error type shared by the lexer, parser and evaluator.

use std::fmt;

/// Where in the source text a problem occurred (byte offset plus 1-based
/// line/column, computed at error-construction time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    pub offset: usize,
    pub line: u32,
    pub col: u32,
}

impl Pos {
    /// Compute line/column for a byte offset in `src`.
    pub fn at(src: &str, offset: usize) -> Pos {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in src.char_indices() {
            if i >= offset {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Pos { offset, line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Everything that can go wrong while compiling or running an expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprError {
    /// Lexer met a character it cannot start a token with.
    UnexpectedChar { ch: char, pos: Pos },
    /// A string literal ran to end-of-input without its closing quote.
    UnterminatedString { pos: Pos },
    /// A numeric literal did not parse.
    BadNumber { text: String, pos: Pos },
    /// Parser met a token it did not expect.
    UnexpectedToken {
        found: String,
        expected: &'static str,
        pos: Pos,
    },
    /// Input ended while a construct was still open.
    UnexpectedEof { expected: &'static str },
    /// A variable was referenced but never bound.
    UndefinedVariable { name: String },
    /// A function was called that is neither a builtin nor user-provided.
    UndefinedFunction { name: String },
    /// An operator was applied to operand types it does not support.
    TypeMismatch { op: String, detail: String },
    /// Division or modulo by zero.
    DivisionByZero,
    /// A builtin was called with the wrong number or kind of arguments.
    BadArity {
        name: String,
        expected: String,
        got: usize,
    },
    /// Index out of bounds or bad key.
    BadIndex { detail: String },
    /// Evaluation exceeded the configured step budget (runaway expression).
    BudgetExhausted { steps: u64 },
    /// Assignment target was not a plain variable name.
    BadAssignTarget,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnexpectedChar { ch, pos } => {
                write!(f, "unexpected character {ch:?} at {pos}")
            }
            ExprError::UnterminatedString { pos } => {
                write!(f, "unterminated string starting at {pos}")
            }
            ExprError::BadNumber { text, pos } => {
                write!(f, "malformed number {text:?} at {pos}")
            }
            ExprError::UnexpectedToken {
                found,
                expected,
                pos,
            } => {
                write!(f, "expected {expected}, found {found} at {pos}")
            }
            ExprError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            ExprError::UndefinedVariable { name } => write!(f, "undefined variable '{name}'"),
            ExprError::UndefinedFunction { name } => write!(f, "undefined function '{name}'"),
            ExprError::TypeMismatch { op, detail } => {
                write!(f, "type mismatch in {op}: {detail}")
            }
            ExprError::DivisionByZero => write!(f, "division by zero"),
            ExprError::BadArity {
                name,
                expected,
                got,
            } => {
                write!(f, "{name}() expects {expected} argument(s), got {got}")
            }
            ExprError::BadIndex { detail } => write!(f, "bad index: {detail}"),
            ExprError::BudgetExhausted { steps } => {
                write!(f, "evaluation exceeded {steps} steps")
            }
            ExprError::BadAssignTarget => write!(f, "left side of '=' must be a variable name"),
        }
    }
}

impl std::error::Error for ExprError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_computes_lines_and_columns() {
        let src = "ab\ncd\nef";
        assert_eq!(
            Pos::at(src, 0),
            Pos {
                offset: 0,
                line: 1,
                col: 1
            }
        );
        assert_eq!(
            Pos::at(src, 1),
            Pos {
                offset: 1,
                line: 1,
                col: 2
            }
        );
        assert_eq!(
            Pos::at(src, 3),
            Pos {
                offset: 3,
                line: 2,
                col: 1
            }
        );
        assert_eq!(
            Pos::at(src, 7),
            Pos {
                offset: 7,
                line: 3,
                col: 2
            }
        );
    }

    #[test]
    fn errors_render_human_readable() {
        let e = ExprError::UndefinedVariable { name: "a".into() };
        assert_eq!(e.to_string(), "undefined variable 'a'");
        let e = ExprError::BadArity {
            name: "avg".into(),
            expected: "1+".into(),
            got: 0,
        };
        assert!(e.to_string().contains("avg()"));
    }
}
