//! Tree-walking evaluator.

use std::collections::BTreeMap;

use crate::ast::{BinOp, Expr, Script, Stmt, UnOp};
use crate::builtins::call_builtin;
use crate::error::ExprError;
use crate::value::Value;

/// Signature of a user-registered function (beyond the builtins).
pub type UserFn = Box<dyn Fn(&[Value]) -> Result<Value, ExprError> + Send + Sync>;

/// Variable bindings plus user functions for one evaluation.
///
/// A composite sensor provider creates one of these per read, binding each
/// child service variable (`a`, `b`, …) to its freshly collected value.
#[derive(Default)]
pub struct Scope {
    vars: BTreeMap<String, Value>,
    fns: BTreeMap<String, UserFn>,
}

impl Scope {
    pub fn new() -> Self {
        Scope::default()
    }

    /// Bind a variable (replacing any previous binding).
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        self.vars.insert(name.into(), value.into());
        self
    }

    pub fn get(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    /// Register a host function callable from expressions.
    pub fn register_fn(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&[Value]) -> Result<Value, ExprError> + Send + Sync + 'static,
    ) -> &mut Self {
        self.fns.insert(name.into(), Box::new(f));
        self
    }

    /// Names of bound variables, sorted.
    pub fn var_names(&self) -> Vec<&str> {
        self.vars.keys().map(String::as_str).collect()
    }

    /// Whether any user functions are registered (they force the
    /// tree-walking path — see [`crate::program::Program::eval`]).
    pub fn has_fns(&self) -> bool {
        !self.fns.is_empty()
    }
}

impl std::fmt::Debug for Scope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("vars", &self.vars)
            .field("fns", &self.fns.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Evaluation budget: a hard cap on interpreter steps so a pathological
/// expression (deep recursion via `**`, enormous string repetition chains)
/// cannot hang a provider that accepted it from a remote requestor.
pub const DEFAULT_STEP_BUDGET: u64 = 1_000_000;

/// Evaluate a whole script: statements run in order, assignments extend the
/// scope, the value of the final statement is returned.
pub fn eval_script(script: &Script, scope: &mut Scope) -> Result<Value, ExprError> {
    eval_script_with_budget(script, scope, DEFAULT_STEP_BUDGET)
}

/// Like [`eval_script`] with an explicit step budget.
pub fn eval_script_with_budget(
    script: &Script,
    scope: &mut Scope,
    budget: u64,
) -> Result<Value, ExprError> {
    let mut ev = Evaluator {
        scope,
        steps_left: budget,
        budget,
    };
    let mut last = Value::Null;
    for stmt in &script.stmts {
        last = match stmt {
            Stmt::Assign(name, e) => {
                let v = ev.eval(e)?;
                ev.scope.vars.insert(name.clone(), v.clone());
                v
            }
            Stmt::Expr(e) => ev.eval(e)?,
        };
    }
    Ok(last)
}

/// Evaluate a single expression against a scope.
pub fn eval_expr(expr: &Expr, scope: &mut Scope) -> Result<Value, ExprError> {
    let mut ev = Evaluator {
        scope,
        steps_left: DEFAULT_STEP_BUDGET,
        budget: DEFAULT_STEP_BUDGET,
    };
    ev.eval(expr)
}

struct Evaluator<'s> {
    scope: &'s mut Scope,
    steps_left: u64,
    budget: u64,
}

impl<'s> Evaluator<'s> {
    fn tick(&mut self) -> Result<(), ExprError> {
        if self.steps_left == 0 {
            return Err(ExprError::BudgetExhausted { steps: self.budget });
        }
        self.steps_left -= 1;
        Ok(())
    }

    fn eval(&mut self, expr: &Expr) -> Result<Value, ExprError> {
        self.tick()?;
        match expr {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Var(name) => self
                .scope
                .vars
                .get(name)
                .cloned()
                .ok_or_else(|| ExprError::UndefinedVariable { name: name.clone() }),
            Expr::ListLit(items) => {
                let mut out = Vec::with_capacity(items.len());
                for e in items {
                    out.push(self.eval(e)?);
                }
                Ok(Value::List(out))
            }
            Expr::MapLit(pairs) => {
                let mut out = BTreeMap::new();
                for (k, e) in pairs {
                    out.insert(k.clone(), self.eval(e)?);
                }
                Ok(Value::Map(out))
            }
            Expr::Unary(op, e) => {
                let v = self.eval(e)?;
                match op {
                    UnOp::Neg => v.neg(),
                    UnOp::Not => Ok(Value::Bool(!v.truthy())),
                }
            }
            Expr::Binary(op, a, b) => self.eval_binary(*op, a, b),
            Expr::Ternary(c, t, e) => {
                if self.eval(c)?.truthy() {
                    self.eval(t)
                } else {
                    self.eval(e)
                }
            }
            Expr::Elvis(a, b) => {
                let va = self.eval(a)?;
                if va.truthy() {
                    Ok(va)
                } else {
                    self.eval(b)
                }
            }
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for e in args {
                    vals.push(self.eval(e)?);
                }
                // User functions shadow builtins so a CSP can override e.g.
                // `avg` with a calibrated variant.
                if let Some(f) = self.scope.fns.get(name.as_str()) {
                    return f(&vals);
                }
                match call_builtin(name, &vals) {
                    Some(r) => r,
                    None => Err(ExprError::UndefinedFunction { name: name.clone() }),
                }
            }
            Expr::Index(base, idx) => {
                let b = self.eval(base)?;
                let i = self.eval(idx)?;
                b.index(&i)
            }
        }
    }

    fn eval_binary(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Result<Value, ExprError> {
        // Short-circuit logic first.
        match op {
            BinOp::And => {
                let va = self.eval(a)?;
                if !va.truthy() {
                    return Ok(Value::Bool(false));
                }
                let vb = self.eval(b)?;
                return Ok(Value::Bool(vb.truthy()));
            }
            BinOp::Or => {
                let va = self.eval(a)?;
                if va.truthy() {
                    return Ok(Value::Bool(true));
                }
                let vb = self.eval(b)?;
                return Ok(Value::Bool(vb.truthy()));
            }
            _ => {}
        }
        let va = self.eval(a)?;
        let vb = self.eval(b)?;
        match op {
            BinOp::Add => va.add(&vb),
            BinOp::Sub => va.sub(&vb),
            BinOp::Mul => va.mul(&vb),
            BinOp::Div => va.div(&vb),
            BinOp::Rem => va.rem(&vb),
            BinOp::Pow => va.pow(&vb),
            BinOp::Eq => Ok(Value::Bool(va.loose_eq(&vb))),
            BinOp::Ne => Ok(Value::Bool(!va.loose_eq(&vb))),
            BinOp::Lt => Ok(Value::Bool(va.compare(&vb)? == std::cmp::Ordering::Less)),
            BinOp::Le => Ok(Value::Bool(va.compare(&vb)? != std::cmp::Ordering::Greater)),
            BinOp::Gt => Ok(Value::Bool(va.compare(&vb)? == std::cmp::Ordering::Greater)),
            BinOp::Ge => Ok(Value::Bool(va.compare(&vb)? != std::cmp::Ordering::Less)),
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn eval(src: &str) -> Value {
        eval_script(&parse(src).unwrap(), &mut Scope::new()).unwrap()
    }

    fn eval_with(src: &str, scope: &mut Scope) -> Value {
        eval_script(&parse(src).unwrap(), scope).unwrap()
    }

    fn eval_err(src: &str) -> ExprError {
        eval_script(&parse(src).unwrap(), &mut Scope::new()).unwrap_err()
    }

    #[test]
    fn paper_average() {
        // §VI step 2: three temperatures averaged.
        let mut scope = Scope::new();
        scope.set("a", 20.0).set("b", 22.0).set("c", 27.0);
        assert_eq!(eval_with("(a + b + c)/3", &mut scope), Value::Float(23.0));
    }

    #[test]
    fn paper_nested_average() {
        // §VI step 5: average of a composite and an elementary value.
        let mut scope = Scope::new();
        scope.set("a", 23.0).set("b", 25.0);
        assert_eq!(eval_with("(a + b)/2", &mut scope), Value::Float(24.0));
    }

    #[test]
    fn arithmetic_precedence() {
        assert_eq!(eval("1 + 2 * 3"), Value::Int(7));
        assert_eq!(eval("(1 + 2) * 3"), Value::Int(9));
        assert_eq!(eval("2 ** 3 ** 2"), Value::Int(512));
        assert_eq!(eval("10 % 3"), Value::Int(1));
        assert_eq!(
            eval("-2 ** 2"),
            Value::Int(4),
            "unary binds tighter: (-2)**2"
        );
    }

    #[test]
    fn comparison_and_logic() {
        assert_eq!(eval("1 < 2 && 2 < 3"), Value::Bool(true));
        assert_eq!(eval("1 > 2 || 3 > 2"), Value::Bool(true));
        assert_eq!(eval("!0"), Value::Bool(true));
        assert_eq!(eval("1 == 1.0"), Value::Bool(true));
        assert_eq!(eval("'a' != 'b'"), Value::Bool(true));
    }

    #[test]
    fn short_circuit_avoids_errors() {
        // The right side would be a division by zero; && must not reach it.
        assert_eq!(eval("false && 1/0"), Value::Bool(false));
        assert_eq!(eval("true || 1/0"), Value::Bool(true));
        assert!(matches!(eval_err("true && 1/0"), ExprError::DivisionByZero));
    }

    #[test]
    fn ternary_and_elvis() {
        assert_eq!(eval("5 > 3 ? 'yes' : 'no'"), Value::from("yes"));
        assert_eq!(eval("0 ?: 42"), Value::Int(42));
        assert_eq!(eval("7 ?: 42"), Value::Int(7));
        assert_eq!(eval("null ?: 'fallback'"), Value::from("fallback"));
    }

    #[test]
    fn statements_and_locals() {
        assert_eq!(eval("t = 4; t * t"), Value::Int(16));
        assert_eq!(eval("def x = 1; def y = 2; x + y"), Value::Int(3));
        // Re-assignment.
        assert_eq!(eval("x = 1; x = x + 1; x"), Value::Int(2));
    }

    #[test]
    fn collections() {
        assert_eq!(eval("[1, 2, 3][1]"), Value::Int(2));
        assert_eq!(eval("[x: 5]['x']"), Value::Int(5));
        assert_eq!(eval("avg([1, 2, 3])"), Value::Float(2.0));
        assert_eq!(eval("len([1, 2] + [3])"), Value::Int(3));
        assert_eq!(eval("[t: 20.5]['missing']"), Value::Null);
    }

    #[test]
    fn builtin_calls() {
        assert_eq!(eval("max(1, 2.5, 2)"), Value::Float(2.5));
        assert_eq!(eval("round(sqrt(2) * 100) / 100"), Value::Float(1.41));
        assert_eq!(eval("clamp(150, 0, 100)"), Value::Float(100.0));
    }

    #[test]
    fn user_functions_shadow_builtins() {
        let mut scope = Scope::new();
        scope.register_fn("avg", |_args| Ok(Value::Int(-1)));
        assert_eq!(eval_with("avg(1, 2)", &mut scope), Value::Int(-1));
    }

    #[test]
    fn user_function_errors_propagate() {
        let mut scope = Scope::new();
        scope.register_fn("boom", |_| Err(ExprError::DivisionByZero));
        let err = eval_script(&parse("boom()").unwrap(), &mut scope).unwrap_err();
        assert!(matches!(err, ExprError::DivisionByZero));
    }

    #[test]
    fn undefined_names_error() {
        assert!(matches!(
            eval_err("nope"),
            ExprError::UndefinedVariable { .. }
        ));
        assert!(matches!(
            eval_err("nope()"),
            ExprError::UndefinedFunction { .. }
        ));
    }

    #[test]
    fn step_budget_stops_runaways() {
        let script = parse("1 + 1").unwrap();
        let err = eval_script_with_budget(&script, &mut Scope::new(), 2).unwrap_err();
        assert!(matches!(err, ExprError::BudgetExhausted { steps: 2 }));
        // Same script passes with a sane budget.
        assert!(eval_script_with_budget(&script, &mut Scope::new(), 100).is_ok());
    }

    #[test]
    fn string_work() {
        assert_eq!(eval("'T=' + 21.5"), Value::from("T=21.5"));
        assert_eq!(eval("'ab' * 3"), Value::from("ababab"));
        assert_eq!(eval("'hello'[1]"), Value::from("e"));
        assert_eq!(eval("str(1 + 2) + '!'"), Value::from("3!"));
    }

    #[test]
    fn scope_introspection() {
        let mut s = Scope::new();
        s.set("b", 1).set("a", 2);
        assert_eq!(s.var_names(), vec!["a", "b"]);
        assert_eq!(s.get("a"), Some(&Value::Int(2)));
        assert_eq!(s.get("zz"), None);
    }

    #[test]
    fn assignments_visible_to_later_reads_of_scope() {
        let mut s = Scope::new();
        eval_with("result = 6 * 7", &mut s);
        assert_eq!(s.get("result"), Some(&Value::Int(42)));
    }
}
