//! # sensorcer-expr
//!
//! A small dynamically typed expression language — the reproduction's
//! substitute for the Groovy runtime the paper embeds in composite sensor
//! providers ("the dynamically typed language Groovy provides the runtime
//! computing mechanism involving variables of sensor services", §I).
//!
//! A composite sensor provider binds each child service to a variable
//! (`a`, `b`, `c`, …) and evaluates a user-supplied expression such as the
//! paper's `(a + b + c)/3` on every read:
//!
//! ```
//! use sensorcer_expr::{Program, Value};
//!
//! let avg = Program::compile("(a + b + c)/3").unwrap();
//! assert_eq!(avg.inputs(), vec!["a", "b", "c"]);
//! let v = avg.eval_with([("a", 20.0), ("b", 22.0), ("c", 27.0)]).unwrap();
//! assert_eq!(v, Value::Float(23.0));
//! ```
//!
//! The language supports Groovy-like semantics where the paper relies on
//! them: dynamic typing with numeric promotion, exact `/` division, string
//! and list `+`, `?:` (elvis), ternaries, Groovy collection literals
//! (`[1,2]`, `[k: v]`, `[:]`), short-circuit logic, a statement form
//! (`t = a + b; t/2`) and a library of aggregation builtins
//! ([`builtins::BUILTIN_NAMES`]). Evaluation is budgeted so a hostile
//! expression cannot hang a provider.

#![forbid(unsafe_code)]
pub mod ast;
pub mod builtins;
pub mod compiled;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod program;
pub mod value;

pub use ast::{BinOp, Expr, Script, Stmt, UnOp};
pub use compiled::{CompiledScript, SlotFrame};
pub use error::{ExprError, Pos};
pub use interp::{eval_expr, eval_script, eval_script_with_budget, Scope};
pub use parser::{parse, parse_expr};
pub use program::{eval_str, Program};
pub use value::Value;
