//! Builtin function library available to every compute-expression.
//!
//! The paper's demo only needs arithmetic, but real sensor aggregation
//! expressions want reductions (`avg`, `min`, `max`, …), numeric helpers
//! and a little collection/string support, so CSP authors don't need a
//! host-language escape hatch.

use crate::error::ExprError;
use crate::value::Value;

/// Call a builtin by name. Returns `None` when no builtin with that name
/// exists (the interpreter then consults user-registered functions).
pub fn call_builtin(name: &str, args: &[Value]) -> Option<Result<Value, ExprError>> {
    let r = match name {
        "avg" | "mean" => reduce_numeric(name, args, |xs| {
            if xs.is_empty() {
                Err(empty_args(name))
            } else {
                Ok(Value::Float(xs.iter().sum::<f64>() / xs.len() as f64))
            }
        }),
        "sum" => reduce_numeric(name, args, |xs| Ok(Value::Float(xs.iter().sum::<f64>()))),
        "min" => reduce_numeric(name, args, |xs| {
            xs.iter()
                .copied()
                .reduce(f64::min)
                .map(Value::Float)
                .ok_or_else(|| empty_args(name))
        }),
        "max" => reduce_numeric(name, args, |xs| {
            xs.iter()
                .copied()
                .reduce(f64::max)
                .map(Value::Float)
                .ok_or_else(|| empty_args(name))
        }),
        "median" => reduce_numeric(name, args, |xs| {
            if xs.is_empty() {
                return Err(empty_args(name));
            }
            let mut v = xs.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let n = v.len();
            Ok(Value::Float(if n % 2 == 1 {
                v[n / 2]
            } else {
                (v[n / 2 - 1] + v[n / 2]) / 2.0
            }))
        }),
        "stddev" => reduce_numeric(name, args, |xs| {
            if xs.len() < 2 {
                return Err(ExprError::BadArity {
                    name: name.into(),
                    expected: "at least 2 numbers".into(),
                    got: xs.len(),
                });
            }
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
            Ok(Value::Float(var.sqrt()))
        }),
        "abs" => unary_numeric(name, args, |x| x.abs()),
        "sqrt" => unary_numeric(name, args, |x| x.sqrt()),
        "floor" => unary_numeric_int(name, args, |x| x.floor()),
        "ceil" => unary_numeric_int(name, args, |x| x.ceil()),
        "round" => unary_numeric_int(name, args, |x| x.round()),
        "exp" => unary_numeric(name, args, |x| x.exp()),
        "log" => unary_numeric(name, args, |x| x.ln()),
        "log10" => unary_numeric(name, args, |x| x.log10()),
        "sin" => unary_numeric(name, args, |x| x.sin()),
        "cos" => unary_numeric(name, args, |x| x.cos()),
        "tan" => unary_numeric(name, args, |x| x.tan()),
        "pow" => {
            if args.len() != 2 {
                Err(arity(name, "2", args.len()))
            } else {
                args[0].pow(&args[1])
            }
        }
        "clamp" => {
            if args.len() != 3 {
                Err(arity(name, "3", args.len()))
            } else {
                match (args[0].as_f64(), args[1].as_f64(), args[2].as_f64()) {
                    (Some(x), Some(lo), Some(hi)) if lo <= hi => Ok(Value::Float(x.clamp(lo, hi))),
                    (Some(_), Some(lo), Some(hi)) => Err(ExprError::TypeMismatch {
                        op: "clamp".into(),
                        detail: format!("lo ({lo}) must not exceed hi ({hi})"),
                    }),
                    _ => Err(ExprError::TypeMismatch {
                        op: "clamp".into(),
                        detail: "all three arguments must be numbers".into(),
                    }),
                }
            }
        }
        "len" | "size" => {
            if args.len() != 1 {
                Err(arity(name, "1", args.len()))
            } else {
                match &args[0] {
                    Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                    Value::List(xs) => Ok(Value::Int(xs.len() as i64)),
                    Value::Map(m) => Ok(Value::Int(m.len() as i64)),
                    v => Err(ExprError::TypeMismatch {
                        op: name.into(),
                        detail: format!("cannot take length of {}", v.type_name()),
                    }),
                }
            }
        }
        "first" | "last" => {
            if args.len() != 1 {
                Err(arity(name, "1", args.len()))
            } else {
                match &args[0] {
                    Value::List(xs) if !xs.is_empty() => Ok(if name == "first" {
                        xs[0].clone()
                    } else {
                        xs[xs.len() - 1].clone()
                    }),
                    Value::List(_) => Err(ExprError::BadIndex {
                        detail: "empty list".into(),
                    }),
                    v => Err(ExprError::TypeMismatch {
                        op: name.into(),
                        detail: format!("expected a list, got {}", v.type_name()),
                    }),
                }
            }
        }
        "str" => {
            if args.len() != 1 {
                Err(arity(name, "1", args.len()))
            } else {
                Ok(Value::Str(args[0].to_string()))
            }
        }
        "int" => {
            if args.len() != 1 {
                Err(arity(name, "1", args.len()))
            } else {
                match &args[0] {
                    Value::Int(i) => Ok(Value::Int(*i)),
                    Value::Float(f) => Ok(Value::Int(*f as i64)),
                    Value::Bool(b) => Ok(Value::Int(*b as i64)),
                    Value::Str(s) => s.trim().parse::<i64>().map(Value::Int).map_err(|_| {
                        ExprError::TypeMismatch {
                            op: "int".into(),
                            detail: format!("cannot parse {s:?} as integer"),
                        }
                    }),
                    v => Err(ExprError::TypeMismatch {
                        op: "int".into(),
                        detail: format!("cannot convert {}", v.type_name()),
                    }),
                }
            }
        }
        "float" => {
            if args.len() != 1 {
                Err(arity(name, "1", args.len()))
            } else {
                match &args[0] {
                    Value::Int(i) => Ok(Value::Float(*i as f64)),
                    Value::Float(f) => Ok(Value::Float(*f)),
                    Value::Str(s) => s.trim().parse::<f64>().map(Value::Float).map_err(|_| {
                        ExprError::TypeMismatch {
                            op: "float".into(),
                            detail: format!("cannot parse {s:?} as float"),
                        }
                    }),
                    v => Err(ExprError::TypeMismatch {
                        op: "float".into(),
                        detail: format!("cannot convert {}", v.type_name()),
                    }),
                }
            }
        }
        _ => return None,
    };
    Some(r)
}

/// Names of all builtins (kept in sync with `call_builtin`; checked by a
/// test that calls every one).
pub const BUILTIN_NAMES: &[&str] = &[
    "avg", "mean", "sum", "min", "max", "median", "stddev", "abs", "sqrt", "floor", "ceil",
    "round", "exp", "log", "log10", "sin", "cos", "tan", "pow", "clamp", "len", "size", "first",
    "last", "str", "int", "float",
];

fn arity(name: &str, expected: &str, got: usize) -> ExprError {
    ExprError::BadArity {
        name: name.into(),
        expected: expected.into(),
        got,
    }
}

fn empty_args(name: &str) -> ExprError {
    arity(name, "at least 1 number", 0)
}

/// Reductions accept either a single list of numbers or numeric varargs.
fn reduce_numeric(
    name: &str,
    args: &[Value],
    f: impl FnOnce(&[f64]) -> Result<Value, ExprError>,
) -> Result<Value, ExprError> {
    let collect = |vals: &[Value]| -> Result<Vec<f64>, ExprError> {
        vals.iter()
            .map(|v| {
                v.as_f64().ok_or_else(|| ExprError::TypeMismatch {
                    op: name.to_string(),
                    detail: format!("expected numbers, got {}", v.type_name()),
                })
            })
            .collect()
    };
    let xs = match args {
        [Value::List(items)] => collect(items)?,
        _ => collect(args)?,
    };
    f(&xs)
}

fn unary_numeric(
    name: &str,
    args: &[Value],
    f: impl FnOnce(f64) -> f64,
) -> Result<Value, ExprError> {
    match args {
        [v] => v
            .as_f64()
            .map(|x| Value::Float(f(x)))
            .ok_or_else(|| ExprError::TypeMismatch {
                op: name.to_string(),
                detail: format!("expected a number, got {}", v.type_name()),
            }),
        _ => Err(arity(name, "1", args.len())),
    }
}

/// Like `unary_numeric` but yields an integer (floor/ceil/round).
fn unary_numeric_int(
    name: &str,
    args: &[Value],
    f: impl FnOnce(f64) -> f64,
) -> Result<Value, ExprError> {
    match args {
        [Value::Int(i)] => Ok(Value::Int(*i)),
        [v] => v
            .as_f64()
            .map(|x| Value::Int(f(x) as i64))
            .ok_or_else(|| ExprError::TypeMismatch {
                op: name.to_string(),
                detail: format!("expected a number, got {}", v.type_name()),
            }),
        _ => Err(arity(name, "1", args.len())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(name: &str, args: &[Value]) -> Result<Value, ExprError> {
        call_builtin(name, args).expect("builtin exists")
    }

    fn nums(xs: &[f64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Float(x)).collect()
    }

    #[test]
    fn reductions_accept_varargs_and_lists() {
        assert_eq!(
            call("avg", &nums(&[1.0, 2.0, 3.0])).unwrap(),
            Value::Float(2.0)
        );
        let list = Value::List(nums(&[1.0, 2.0, 3.0]));
        assert_eq!(call("avg", &[list]).unwrap(), Value::Float(2.0));
        assert_eq!(call("sum", &nums(&[1.5, 2.5])).unwrap(), Value::Float(4.0));
        assert_eq!(
            call("min", &nums(&[3.0, 1.0, 2.0])).unwrap(),
            Value::Float(1.0)
        );
        assert_eq!(
            call("max", &nums(&[3.0, 1.0, 2.0])).unwrap(),
            Value::Float(3.0)
        );
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(
            call("median", &nums(&[3.0, 1.0, 2.0])).unwrap(),
            Value::Float(2.0)
        );
        assert_eq!(
            call("median", &nums(&[4.0, 1.0, 2.0, 3.0])).unwrap(),
            Value::Float(2.5)
        );
    }

    #[test]
    fn stddev_sample() {
        let v = call("stddev", &nums(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])).unwrap();
        let Value::Float(sd) = v else { panic!() };
        assert!((sd - 2.138).abs() < 0.01, "{sd}");
        assert!(call("stddev", &nums(&[1.0])).is_err());
    }

    #[test]
    fn rounding_family() {
        assert_eq!(call("floor", &[Value::Float(2.9)]).unwrap(), Value::Int(2));
        assert_eq!(call("ceil", &[Value::Float(2.1)]).unwrap(), Value::Int(3));
        assert_eq!(call("round", &[Value::Float(2.5)]).unwrap(), Value::Int(3));
        // Integers pass through unchanged.
        assert_eq!(call("round", &[Value::Int(7)]).unwrap(), Value::Int(7));
    }

    #[test]
    fn clamp_validates_bounds() {
        assert_eq!(
            call("clamp", &nums(&[5.0, 0.0, 3.0])).unwrap(),
            Value::Float(3.0)
        );
        assert!(call("clamp", &nums(&[5.0, 3.0, 0.0])).is_err());
        assert!(call("clamp", &nums(&[5.0])).is_err());
    }

    #[test]
    fn len_of_everything() {
        assert_eq!(call("len", &[Value::from("héllo")]).unwrap(), Value::Int(5));
        assert_eq!(
            call("len", &[Value::from(vec![1i64, 2])]).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            call("size", &[Value::Map(Default::default())]).unwrap(),
            Value::Int(0)
        );
        assert!(call("len", &[Value::Int(3)]).is_err());
    }

    #[test]
    fn conversions() {
        assert_eq!(call("int", &[Value::Float(3.9)]).unwrap(), Value::Int(3));
        assert_eq!(call("int", &[Value::from(" 42 ")]).unwrap(), Value::Int(42));
        assert!(call("int", &[Value::from("x")]).is_err());
        assert_eq!(call("float", &[Value::Int(2)]).unwrap(), Value::Float(2.0));
        assert_eq!(
            call("str", &[Value::Float(2.5)]).unwrap(),
            Value::from("2.5")
        );
    }

    #[test]
    fn first_and_last() {
        let l = Value::from(vec![1i64, 2, 3]);
        assert_eq!(
            call("first", std::slice::from_ref(&l)).unwrap(),
            Value::Int(1)
        );
        assert_eq!(call("last", &[l]).unwrap(), Value::Int(3));
        assert!(call("first", &[Value::List(vec![])]).is_err());
    }

    #[test]
    fn unknown_builtin_is_none() {
        assert!(call_builtin("frobnicate", &[]).is_none());
    }

    #[test]
    fn every_listed_builtin_is_callable() {
        // Each name must dispatch (possibly to an arity error, never None).
        for name in BUILTIN_NAMES {
            assert!(
                call_builtin(name, &nums(&[1.0, 2.0])).is_some(),
                "{name} not wired up"
            );
        }
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(call("avg", &[Value::from("x")]).is_err());
        assert!(call("sqrt", &[Value::from("x")]).is_err());
        assert!(call("avg", &[]).is_err());
    }
}
