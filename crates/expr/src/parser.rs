//! Recursive-descent / Pratt parser producing [`Script`]s.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! script   := stmt (';' stmt)* ';'?
//! stmt     := ['def'] IDENT '=' expr | expr
//! expr     := ternary
//! ternary  := elvis ('?' expr ':' expr)?
//! elvis    := or ('?:' or)*
//! or       := and ('||' and)*
//! and      := equality ('&&' equality)*
//! equality := compare (('==' | '!=') compare)*
//! compare  := additive (('<'|'<='|'>'|'>=') additive)*
//! additive := term (('+'|'-') term)*
//! term     := power (('*'|'/'|'%') power)*
//! power    := unary ('**' power)?           // right associative
//! unary    := ('-'|'!') unary | postfix
//! postfix  := primary ('[' expr ']')*
//! primary  := literal | IDENT | IDENT '(' args ')' | '(' expr ')'
//!           | '[' list-or-map ']'
//! ```

use crate::ast::{BinOp, Expr, Script, Stmt, UnOp};
use crate::error::{ExprError, Pos};
use crate::lexer::{lex, SpannedTok, Tok};
use crate::value::Value;

/// Parse a source string into a [`Script`].
pub fn parse(src: &str) -> Result<Script, ExprError> {
    let toks = lex(src)?;
    let mut p = Parser { src, toks, pos: 0 };
    let script = p.script()?;
    if let Some(t) = p.peek() {
        return Err(p.unexpected(t.clone(), "end of input"));
    }
    Ok(script)
}

/// Parse a source string that must be a single expression (no statements).
pub fn parse_expr(src: &str) -> Result<Expr, ExprError> {
    let script = parse(src)?;
    match <[Stmt; 1]>::try_from(script.stmts) {
        Ok([Stmt::Expr(e)]) => Ok(e),
        _ => Err(ExprError::UnexpectedToken {
            found: "statement list".into(),
            expected: "a single expression",
            pos: Pos::default(),
        }),
    }
}

struct Parser<'s> {
    src: &'s str,
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl<'s> Parser<'s> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> Pos {
        match self.toks.get(self.pos) {
            Some(t) => Pos::at(self.src, t.offset),
            None => Pos::at(self.src, self.src.len()),
        }
    }

    fn unexpected(&self, found: Tok, expected: &'static str) -> ExprError {
        ExprError::UnexpectedToken {
            found: found.to_string(),
            expected,
            pos: self.here(),
        }
    }

    fn eof(&self, expected: &'static str) -> ExprError {
        ExprError::UnexpectedEof { expected }
    }

    fn expect(&mut self, want: Tok, expected: &'static str) -> Result<(), ExprError> {
        match self.peek() {
            Some(t) if *t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.unexpected(t.clone(), expected)),
            None => Err(self.eof(expected)),
        }
    }

    fn script(&mut self) -> Result<Script, ExprError> {
        let mut stmts = Vec::new();
        loop {
            // Allow (and skip) empty statements / trailing semicolons.
            while self.peek() == Some(&Tok::Semi) {
                self.pos += 1;
            }
            if self.peek().is_none() {
                break;
            }
            stmts.push(self.stmt()?);
            match self.peek() {
                Some(Tok::Semi) => continue,
                Some(_) | None => break,
            }
        }
        if stmts.is_empty() {
            return Err(self.eof("an expression"));
        }
        Ok(Script { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, ExprError> {
        // `def x = e`
        if self.peek() == Some(&Tok::Def) {
            self.pos += 1;
            let name = match self.next() {
                Some(Tok::Ident(n)) => n,
                Some(t) => return Err(self.unexpected(t, "a variable name after 'def'")),
                None => return Err(self.eof("a variable name after 'def'")),
            };
            self.expect(Tok::Assign, "'=' after variable name")?;
            let e = self.expr()?;
            return Ok(Stmt::Assign(name, e));
        }
        // `x = e` (lookahead: IDENT '=' not '==')
        if let (Some(Tok::Ident(_)), Some(Tok::Assign)) = (self.peek(), self.peek2()) {
            let name = match self.next() {
                Some(Tok::Ident(n)) => n,
                _ => unreachable!("checked by lookahead"),
            };
            self.pos += 1; // consume '='
            let e = self.expr()?;
            return Ok(Stmt::Assign(name, e));
        }
        Ok(Stmt::Expr(self.expr()?))
    }

    fn expr(&mut self) -> Result<Expr, ExprError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ExprError> {
        let cond = self.elvis()?;
        if self.peek() == Some(&Tok::Question) {
            self.pos += 1;
            let then = self.expr()?;
            self.expect(Tok::Colon, "':' in ternary")?;
            let els = self.expr()?;
            return Ok(Expr::Ternary(Box::new(cond), Box::new(then), Box::new(els)));
        }
        Ok(cond)
    }

    fn elvis(&mut self) -> Result<Expr, ExprError> {
        let mut left = self.or()?;
        while self.peek() == Some(&Tok::Elvis) {
            self.pos += 1;
            let right = self.or()?;
            left = Expr::Elvis(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn or(&mut self) -> Result<Expr, ExprError> {
        let mut left = self.and()?;
        while self.peek() == Some(&Tok::OrOr) {
            self.pos += 1;
            let right = self.and()?;
            left = Expr::Binary(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and(&mut self) -> Result<Expr, ExprError> {
        let mut left = self.equality()?;
        while self.peek() == Some(&Tok::AndAnd) {
            self.pos += 1;
            let right = self.equality()?;
            left = Expr::Binary(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn equality(&mut self) -> Result<Expr, ExprError> {
        let mut left = self.compare()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Eq) => BinOp::Eq,
                Some(Tok::Ne) => BinOp::Ne,
                _ => break,
            };
            self.pos += 1;
            let right = self.compare()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn compare(&mut self) -> Result<Expr, ExprError> {
        let mut left = self.additive()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Lt) => BinOp::Lt,
                Some(Tok::Le) => BinOp::Le,
                Some(Tok::Gt) => BinOp::Gt,
                Some(Tok::Ge) => BinOp::Ge,
                _ => break,
            };
            self.pos += 1;
            let right = self.additive()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, ExprError> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.term()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<Expr, ExprError> {
        let mut left = self.power()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let right = self.power()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn power(&mut self) -> Result<Expr, ExprError> {
        let base = self.unary()?;
        if self.peek() == Some(&Tok::StarStar) {
            self.pos += 1;
            // Right-associative: 2**3**2 == 2**(3**2).
            let exp = self.power()?;
            return Ok(Expr::Binary(BinOp::Pow, Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn unary(&mut self) -> Result<Expr, ExprError> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.pos += 1;
                let e = self.unary()?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(e)))
            }
            Some(Tok::Bang) => {
                self.pos += 1;
                let e = self.unary()?;
                Ok(Expr::Unary(UnOp::Not, Box::new(e)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ExprError> {
        let mut base = self.primary()?;
        while self.peek() == Some(&Tok::LBracket) {
            self.pos += 1;
            let idx = self.expr()?;
            self.expect(Tok::RBracket, "']' after index")?;
            base = Expr::Index(Box::new(base), Box::new(idx));
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Expr, ExprError> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(Expr::Lit(Value::Int(i))),
            Some(Tok::Float(f)) => Ok(Expr::Lit(Value::Float(f))),
            Some(Tok::Str(s)) => Ok(Expr::Lit(Value::Str(s))),
            Some(Tok::True) => Ok(Expr::Lit(Value::Bool(true))),
            Some(Tok::False) => Ok(Expr::Lit(Value::Bool(false))),
            Some(Tok::Null) => Ok(Expr::Lit(Value::Null)),
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == Some(&Tok::Comma) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen, "')' after arguments")?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(e)
            }
            Some(Tok::LBracket) => self.list_or_map(),
            Some(t) => Err(self.unexpected(t, "an expression")),
            None => Err(self.eof("an expression")),
        }
    }

    /// After consuming '[': Groovy collection literal. `[:]` is the empty
    /// map; `[k: v, ...]` a map; otherwise a list.
    fn list_or_map(&mut self) -> Result<Expr, ExprError> {
        // Empty map `[:]`.
        if self.peek() == Some(&Tok::Colon) && self.peek2() == Some(&Tok::RBracket) {
            self.pos += 2;
            return Ok(Expr::MapLit(Vec::new()));
        }
        // Empty list `[]`.
        if self.peek() == Some(&Tok::RBracket) {
            self.pos += 1;
            return Ok(Expr::ListLit(Vec::new()));
        }
        // Map if it starts with IDENT ':' or STRING ':'.
        let is_map = matches!(
            (self.peek(), self.peek2()),
            (Some(Tok::Ident(_)), Some(Tok::Colon)) | (Some(Tok::Str(_)), Some(Tok::Colon))
        );
        if is_map {
            let mut pairs = Vec::new();
            loop {
                let key = match self.next() {
                    Some(Tok::Ident(k)) | Some(Tok::Str(k)) => k,
                    Some(t) => return Err(self.unexpected(t, "a map key")),
                    None => return Err(self.eof("a map key")),
                };
                self.expect(Tok::Colon, "':' after map key")?;
                let v = self.expr()?;
                pairs.push((key, v));
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            self.expect(Tok::RBracket, "']' closing map literal")?;
            Ok(Expr::MapLit(pairs))
        } else {
            let mut items = Vec::new();
            loop {
                items.push(self.expr()?);
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            self.expect(Tok::RBracket, "']' closing list literal")?;
            Ok(Expr::ListLit(items))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        parse_expr(src).unwrap()
    }

    #[test]
    fn paper_expressions_parse() {
        // §VI step 2 and step 5 verbatim.
        let e = expr("(a + b + c)/3");
        assert_eq!(e.free_vars(), vec!["a", "b", "c"]);
        let e = expr("(a + b)/2");
        assert_eq!(e.free_vars(), vec!["a", "b"]);
    }

    #[test]
    fn precedence_mul_over_add() {
        assert_eq!(
            expr("1 + 2 * 3"),
            Expr::Binary(
                BinOp::Add,
                Box::new(Expr::Lit(Value::Int(1))),
                Box::new(Expr::Binary(
                    BinOp::Mul,
                    Box::new(Expr::Lit(Value::Int(2))),
                    Box::new(Expr::Lit(Value::Int(3)))
                ))
            )
        );
    }

    #[test]
    fn power_is_right_associative_and_binds_tighter_than_mul() {
        let e = expr("2 ** 3 ** 2");
        // 2 ** (3 ** 2)
        match e {
            Expr::Binary(BinOp::Pow, _, rhs) => {
                assert!(matches!(*rhs, Expr::Binary(BinOp::Pow, _, _)));
            }
            other => panic!("{other:?}"),
        }
        let e = expr("2 * 3 ** 2");
        assert!(matches!(e, Expr::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn unary_binds_tighter_than_binary() {
        let e = expr("-a + b");
        assert!(matches!(e, Expr::Binary(BinOp::Add, _, _)));
        let e = expr("!a && b");
        assert!(matches!(e, Expr::Binary(BinOp::And, _, _)));
    }

    #[test]
    fn ternary_and_elvis() {
        let e = expr("a > 0 ? a : -a");
        assert!(matches!(e, Expr::Ternary(_, _, _)));
        let e = expr("a ?: 0");
        assert!(matches!(e, Expr::Elvis(_, _)));
        // Nested ternary in the else branch.
        let e = expr("a ? 1 : b ? 2 : 3");
        assert!(matches!(e, Expr::Ternary(_, _, _)));
    }

    #[test]
    fn calls_and_indexing() {
        let e = expr("avg(a, b)[0]");
        assert!(matches!(e, Expr::Index(_, _)));
        let e = expr("max(1, 2, 3)");
        assert!(matches!(e, Expr::Call(ref n, ref args) if n == "max" && args.len() == 3));
        let e = expr("now()");
        assert!(matches!(e, Expr::Call(ref n, ref args) if n == "now" && args.is_empty()));
    }

    #[test]
    fn collection_literals() {
        assert_eq!(expr("[]"), Expr::ListLit(vec![]));
        assert_eq!(expr("[:]"), Expr::MapLit(vec![]));
        let e = expr("[1, 2, 3]");
        assert!(matches!(e, Expr::ListLit(ref xs) if xs.len() == 3));
        let e = expr("[x: 1, y: 2]");
        assert!(matches!(e, Expr::MapLit(ref ps) if ps.len() == 2 && ps[0].0 == "x"));
        let e = expr("['with space': 1]");
        assert!(matches!(e, Expr::MapLit(ref ps) if ps[0].0 == "with space"));
    }

    #[test]
    fn scripts_with_statements() {
        let s = parse("t = a + b; t / 2").unwrap();
        assert_eq!(s.stmts.len(), 2);
        assert!(matches!(s.stmts[0], Stmt::Assign(ref n, _) if n == "t"));
        assert_eq!(s.free_vars(), vec!["a", "b"]);

        let s = parse("def x = 1; x + 1;").unwrap();
        assert_eq!(s.stmts.len(), 2);
    }

    #[test]
    fn equality_vs_assignment() {
        let s = parse("a == b").unwrap();
        assert!(matches!(
            s.stmts[0],
            Stmt::Expr(Expr::Binary(BinOp::Eq, _, _))
        ));
        let s = parse("a = b").unwrap();
        assert!(matches!(s.stmts[0], Stmt::Assign(_, _)));
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("(a +").is_err());
        assert!(parse("a +").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("f(1,").is_err());
        assert!(parse("a ? b").is_err());
        assert!(parse("def = 3").is_err());
        assert!(parse("1 2").is_err(), "two expressions without separator");
        assert!(
            parse_expr("a = 1").is_err(),
            "parse_expr rejects statements"
        );
    }

    #[test]
    fn comparison_is_non_associative_enough() {
        // `a < b < c` parses as `(a < b) < c` — accepted by the grammar,
        // rejected at evaluation (bool vs number). Just assert the shape.
        let e = expr("a < b < c");
        assert!(matches!(e, Expr::Binary(BinOp::Lt, _, _)));
    }
}
