//! Compiled, reusable compute-expressions.
//!
//! A composite sensor provider stores its expression once and evaluates it
//! on every read with fresh variable bindings. [`Program`] caches the
//! parsed AST so the per-read cost is evaluation only (B6 measures the
//! difference).

use crate::ast::Script;
use crate::compiled::{CompiledScript, SlotFrame};
use crate::error::ExprError;
use crate::interp::{eval_script_with_budget, Scope, DEFAULT_STEP_BUDGET};
use crate::parser::parse;
use crate::value::Value;

/// A parsed expression/script ready for repeated evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    source: String,
    script: Script,
    compiled: CompiledScript,
}

impl Program {
    /// Parse `source` into a reusable program.
    pub fn compile(source: &str) -> Result<Program, ExprError> {
        let script = parse(source)?;
        let compiled = CompiledScript::lower(&script);
        Ok(Program {
            source: source.to_string(),
            script,
            compiled,
        })
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed form.
    pub fn script(&self) -> &Script {
        &self.script
    }

    /// The slot-compiled form (what [`Program::bind`] evaluates).
    pub fn compiled(&self) -> &CompiledScript {
        &self.compiled
    }

    /// Input variables the program needs (free variables not assigned by
    /// an earlier statement), in first-use order.
    pub fn inputs(&self) -> Vec<String> {
        self.script.free_vars()
    }

    /// Evaluate against a scope, on the tree-walking interpreter.
    ///
    /// This is the general path: it honors user functions (which may
    /// shadow builtins) and leaves assignments visible in the scope. A
    /// caller that rebinds plain values on every read should prefer
    /// [`Program::bind`] / [`Program::bind_in`], which skip the scope
    /// entirely and run the slot-compiled form.
    pub fn eval(&self, scope: &mut Scope) -> Result<Value, ExprError> {
        eval_script_with_budget(&self.script, scope, DEFAULT_STEP_BUDGET)
    }

    /// Evaluate with named values only (builds a scope internally).
    pub fn eval_with<I, K, V>(&self, bindings: I) -> Result<Value, ExprError>
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<Value>,
    {
        let mut frame = SlotFrame::new();
        let slots = frame.reset(self.compiled.n_slots());
        for (k, v) in bindings {
            let k: String = k.into();
            if let Some(i) = self.compiled.slot_of(&k) {
                slots[i] = Some(v.into());
            }
        }
        self.compiled.eval_slots(slots, DEFAULT_STEP_BUDGET)
    }

    /// Evaluate with the given input bindings on the compiled fast path.
    ///
    /// This is the composite sensor provider's per-read entry point: the
    /// program is compiled once, and every read binds fresh child values
    /// into a flat slot frame — no `BTreeMap` scope, no per-variable
    /// allocation. Names that the program never mentions are ignored;
    /// inputs left unbound error only if evaluation actually reads them.
    pub fn bind(&self, bindings: &[(&str, Value)]) -> Result<Value, ExprError> {
        self.bind_in(bindings, &mut SlotFrame::new())
    }

    /// Like [`Program::bind`], reusing a caller-held [`SlotFrame`] so
    /// repeated reads allocate nothing.
    pub fn bind_in(
        &self,
        bindings: &[(&str, Value)],
        frame: &mut SlotFrame,
    ) -> Result<Value, ExprError> {
        self.bind_pairs(bindings, frame)
    }

    fn bind_pairs(
        &self,
        bindings: &[(&str, Value)],
        frame: &mut SlotFrame,
    ) -> Result<Value, ExprError> {
        let slots = frame.reset(self.compiled.n_slots());
        let names = self.compiled.slot_names();
        for (i, (name, v)) in bindings.iter().enumerate() {
            // Callers that bind inputs in declaration order (the CSP does)
            // hit the aligned slot directly; anything else falls back to a
            // name scan.
            let slot = if i < names.len() && names[i] == *name {
                Some(i)
            } else {
                self.compiled.slot_of(name)
            };
            if let Some(s) = slot {
                slots[s] = Some(v.clone());
            }
        }
        self.compiled.eval_slots(slots, DEFAULT_STEP_BUDGET)
    }

    /// Check that every input variable is covered by `available` names;
    /// returns the missing ones. The CSP uses this to reject an expression
    /// that references variables beyond its bound children.
    pub fn missing_inputs(&self, available: &[&str]) -> Vec<String> {
        self.inputs()
            .into_iter()
            .filter(|need| !available.contains(&need.as_str()))
            .collect()
    }
}

/// One-shot convenience: parse and evaluate in a single call.
pub fn eval_str(source: &str) -> Result<Value, ExprError> {
    Program::compile(source)?.eval(&mut Scope::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_once_eval_many() {
        let p = Program::compile("(a + b + c)/3").unwrap();
        assert_eq!(p.inputs(), vec!["a", "b", "c"]);
        let v1 = p.eval_with([("a", 1.0), ("b", 2.0), ("c", 3.0)]).unwrap();
        assert_eq!(v1, Value::Float(2.0));
        let v2 = p
            .eval_with([("a", 10.0), ("b", 20.0), ("c", 30.0)])
            .unwrap();
        assert_eq!(v2, Value::Float(20.0));
    }

    #[test]
    fn missing_inputs_detected() {
        let p = Program::compile("(a + b)/2").unwrap();
        assert!(p.missing_inputs(&["a", "b"]).is_empty());
        assert_eq!(p.missing_inputs(&["a"]), vec!["b".to_string()]);
        assert_eq!(
            p.missing_inputs(&[]),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn locals_are_not_inputs() {
        let p = Program::compile("t = a + b; t / n").unwrap();
        assert_eq!(p.inputs(), vec!["a", "b", "n"]);
    }

    #[test]
    fn eval_str_one_shot() {
        assert_eq!(eval_str("6 * 7").unwrap(), Value::Int(42));
        assert!(eval_str("6 *").is_err());
        assert!(eval_str("x + 1").is_err(), "unbound variable");
    }

    #[test]
    fn source_round_trip() {
        let src = "max(a, b) - min(a, b)";
        let p = Program::compile(src).unwrap();
        assert_eq!(p.source(), src);
        let v = p.eval_with([("a", 3i64), ("b", 9i64)]).unwrap();
        assert_eq!(v, Value::Float(6.0));
    }

    #[test]
    fn compile_errors_surface() {
        assert!(Program::compile("(").is_err());
        assert!(Program::compile("").is_err());
    }
}
