//! Slot-compiled programs: the fast evaluation path.
//!
//! The tree-walking interpreter in [`crate::interp`] resolves every
//! variable by name through a `BTreeMap` scope — fine for one-shot
//! evaluation, wasteful for a composite sensor provider that evaluates
//! the same expression on every federated read. This module lowers a
//! parsed [`Script`] once into a form where
//!
//! * every variable reference is an integer **slot** into a flat buffer
//!   (inputs first, in first-use order, then locals),
//! * pure literal subtrees are **constant-folded** at compile time
//!   (`2 ** 10` or `avg([1, 2, 3])` cost nothing per read), and
//! * evaluation runs against a reusable `Vec<Option<Value>>` frame with
//!   no per-variable allocation.
//!
//! Semantics match the interpreter exactly for scopes without
//! user-registered functions (the only difference a caller can observe is
//! that folded subtrees no longer consume step budget). Subtrees whose
//! constant evaluation would *error* (`1/0`) are deliberately left
//! unfolded so errors still surface — or stay unreached behind a
//! short-circuit — at run time, exactly as interpreted.

use std::collections::BTreeMap;

use crate::ast::{BinOp, Expr, Script, Stmt, UnOp};
use crate::builtins::call_builtin;
use crate::error::ExprError;
use crate::value::Value;

/// A lowered expression: identical shape to [`Expr`] except variables are
/// slot indices and foldable subtrees have collapsed into `Lit`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CExpr {
    Lit(Value),
    Slot(u32),
    ListLit(Vec<CExpr>),
    MapLit(Vec<(String, CExpr)>),
    Unary(UnOp, Box<CExpr>),
    Binary(BinOp, Box<CExpr>, Box<CExpr>),
    Ternary(Box<CExpr>, Box<CExpr>, Box<CExpr>),
    Elvis(Box<CExpr>, Box<CExpr>),
    Call(String, Vec<CExpr>),
    Index(Box<CExpr>, Box<CExpr>),
}

/// A lowered statement.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CStmt {
    /// `slot = expr`
    Store(u32, CExpr),
    Eval(CExpr),
}

/// A script lowered to slot form, ready for repeated evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledScript {
    stmts: Vec<CStmt>,
    /// Slot index → variable name (for error messages and binding).
    slot_names: Vec<String>,
    /// Slots `0..n_inputs` are the script's inputs, in first-use order;
    /// the rest are locals introduced by assignment.
    n_inputs: usize,
    /// Slots ever written by a `Store`, in first-store order (the
    /// assignments [`Program::eval`] mirrors back into its scope).
    stored_slots: Vec<u32>,
}

impl CompiledScript {
    /// Lower a parsed script: resolve names to slots, fold constants.
    pub fn lower(script: &Script) -> CompiledScript {
        let mut slots: BTreeMap<String, u32> = BTreeMap::new();
        let mut slot_names: Vec<String> = Vec::new();
        for name in script.free_vars() {
            slots.insert(name.clone(), slot_names.len() as u32);
            slot_names.push(name);
        }
        let n_inputs = slot_names.len();

        // Pre-intern assignment targets so forward structure is stable,
        // then lower statement by statement.
        let mut stored_slots = Vec::new();
        let mut stmts = Vec::with_capacity(script.stmts.len());
        for stmt in &script.stmts {
            match stmt {
                Stmt::Assign(name, e) => {
                    let ce = lower_expr(e, &mut slots, &mut slot_names);
                    let slot = intern(&mut slots, &mut slot_names, name);
                    if !stored_slots.contains(&slot) {
                        stored_slots.push(slot);
                    }
                    stmts.push(CStmt::Store(slot, ce));
                }
                Stmt::Expr(e) => {
                    stmts.push(CStmt::Eval(lower_expr(e, &mut slots, &mut slot_names)));
                }
            }
        }
        CompiledScript {
            stmts,
            slot_names,
            n_inputs,
            stored_slots,
        }
    }

    /// Total slot count (inputs + locals).
    pub fn n_slots(&self) -> usize {
        self.slot_names.len()
    }

    /// Input slot count; input names occupy `slot_names()[..n_inputs()]`.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Slot index → variable name.
    pub fn slot_names(&self) -> &[String] {
        &self.slot_names
    }

    /// Slot for `name`, if the script mentions it anywhere.
    pub fn slot_of(&self, name: &str) -> Option<usize> {
        self.slot_names.iter().position(|n| n == name)
    }

    /// Slots ever assigned by the script, in first-store order.
    pub fn stored_slots(&self) -> &[u32] {
        &self.stored_slots
    }

    /// Evaluate against a slot frame. `frame` must hold exactly
    /// [`CompiledScript::n_slots`] entries; unbound inputs are `None` and
    /// error only if actually read (matching the interpreter).
    pub fn eval_slots(&self, frame: &mut [Option<Value>], budget: u64) -> Result<Value, ExprError> {
        debug_assert_eq!(frame.len(), self.n_slots());
        let mut ev = SlotEval {
            frame,
            names: &self.slot_names,
            steps_left: budget,
            budget,
        };
        let mut last = Value::Null;
        for stmt in &self.stmts {
            last = match stmt {
                CStmt::Store(slot, e) => {
                    let v = ev.eval(e)?;
                    ev.frame[*slot as usize] = Some(v.clone());
                    v
                }
                CStmt::Eval(e) => ev.eval(e)?,
            };
        }
        Ok(last)
    }
}

/// Reusable evaluation frame: one flat buffer a caller keeps across reads
/// so repeated [`Program::bind_in`] calls allocate nothing.
#[derive(Debug, Default, Clone)]
pub struct SlotFrame {
    slots: Vec<Option<Value>>,
}

impl SlotFrame {
    pub fn new() -> SlotFrame {
        SlotFrame::default()
    }

    /// Clear and resize for a script, returning the slot buffer. When the
    /// frame already has the right size (the reuse case) this is a plain
    /// in-place refill with no allocator traffic.
    pub(crate) fn reset(&mut self, n_slots: usize) -> &mut [Option<Value>] {
        if self.slots.len() == n_slots {
            self.slots.fill(None);
        } else {
            self.slots.clear();
            self.slots.resize(n_slots, None);
        }
        &mut self.slots
    }
}

fn intern(slots: &mut BTreeMap<String, u32>, names: &mut Vec<String>, name: &str) -> u32 {
    if let Some(&i) = slots.get(name) {
        return i;
    }
    let i = names.len() as u32;
    slots.insert(name.to_string(), i);
    names.push(name.to_string());
    i
}

fn lower_expr(e: &Expr, slots: &mut BTreeMap<String, u32>, names: &mut Vec<String>) -> CExpr {
    match e {
        Expr::Lit(v) => CExpr::Lit(v.clone()),
        Expr::Var(name) => CExpr::Slot(intern(slots, names, name)),
        Expr::ListLit(items) => {
            let lowered: Vec<CExpr> = items.iter().map(|e| lower_expr(e, slots, names)).collect();
            if let Some(vals) = all_lits(&lowered) {
                CExpr::Lit(Value::List(vals))
            } else {
                CExpr::ListLit(lowered)
            }
        }
        Expr::MapLit(pairs) => {
            let lowered: Vec<(String, CExpr)> = pairs
                .iter()
                .map(|(k, e)| (k.clone(), lower_expr(e, slots, names)))
                .collect();
            if lowered.iter().all(|(_, e)| matches!(e, CExpr::Lit(_))) {
                let map = lowered
                    .into_iter()
                    .map(|(k, e)| match e {
                        CExpr::Lit(v) => (k, v),
                        _ => unreachable!(),
                    })
                    .collect();
                CExpr::Lit(Value::Map(map))
            } else {
                CExpr::MapLit(lowered)
            }
        }
        Expr::Unary(op, a) => {
            let a = lower_expr(a, slots, names);
            if let CExpr::Lit(v) = &a {
                let folded = match op {
                    UnOp::Neg => v.neg().ok(),
                    UnOp::Not => Some(Value::Bool(!v.truthy())),
                };
                if let Some(v) = folded {
                    return CExpr::Lit(v);
                }
            }
            CExpr::Unary(*op, Box::new(a))
        }
        Expr::Binary(op, a, b) => {
            let a = lower_expr(a, slots, names);
            let b = lower_expr(b, slots, names);
            fold_binary(*op, a, b)
        }
        Expr::Ternary(c, t, f) => {
            let c = lower_expr(c, slots, names);
            // Still lower both branches so their variables get slots (a
            // later statement may reference them via assignment order).
            let t = lower_expr(t, slots, names);
            let f = lower_expr(f, slots, names);
            if let CExpr::Lit(v) = &c {
                return if v.truthy() { t } else { f };
            }
            CExpr::Ternary(Box::new(c), Box::new(t), Box::new(f))
        }
        Expr::Elvis(a, b) => {
            let a = lower_expr(a, slots, names);
            let b = lower_expr(b, slots, names);
            if let CExpr::Lit(v) = &a {
                return if v.truthy() { a } else { b };
            }
            CExpr::Elvis(Box::new(a), Box::new(b))
        }
        Expr::Call(name, args) => {
            let lowered: Vec<CExpr> = args.iter().map(|e| lower_expr(e, slots, names)).collect();
            // Builtins are pure; a literal-argument call can fold — but
            // only on success, so bad calls still error at run time.
            if let Some(vals) = all_lits(&lowered) {
                if let Some(Ok(v)) = call_builtin(name, &vals) {
                    return CExpr::Lit(v);
                }
            }
            CExpr::Call(name.clone(), lowered)
        }
        Expr::Index(base, idx) => {
            let base = lower_expr(base, slots, names);
            let idx = lower_expr(idx, slots, names);
            if let (CExpr::Lit(b), CExpr::Lit(i)) = (&base, &idx) {
                if let Ok(v) = b.index(i) {
                    return CExpr::Lit(v);
                }
            }
            CExpr::Index(Box::new(base), Box::new(idx))
        }
    }
}

fn all_lits(exprs: &[CExpr]) -> Option<Vec<Value>> {
    if exprs.iter().all(|e| matches!(e, CExpr::Lit(_))) {
        Some(
            exprs
                .iter()
                .map(|e| match e {
                    CExpr::Lit(v) => v.clone(),
                    _ => unreachable!(),
                })
                .collect(),
        )
    } else {
        None
    }
}

fn fold_binary(op: BinOp, a: CExpr, b: CExpr) -> CExpr {
    use BinOp::*;
    // Short-circuit folding: a literal left side decides alone.
    if let CExpr::Lit(va) = &a {
        match op {
            And if !va.truthy() => return CExpr::Lit(Value::Bool(false)),
            Or if va.truthy() => return CExpr::Lit(Value::Bool(true)),
            _ => {}
        }
    }
    if let (CExpr::Lit(va), CExpr::Lit(vb)) = (&a, &b) {
        let folded = match op {
            Add => va.add(vb).ok(),
            Sub => va.sub(vb).ok(),
            Mul => va.mul(vb).ok(),
            Div => va.div(vb).ok(),
            Rem => va.rem(vb).ok(),
            Pow => va.pow(vb).ok(),
            Eq => Some(Value::Bool(va.loose_eq(vb))),
            Ne => Some(Value::Bool(!va.loose_eq(vb))),
            Lt => va
                .compare(vb)
                .ok()
                .map(|o| Value::Bool(o == std::cmp::Ordering::Less)),
            Le => va
                .compare(vb)
                .ok()
                .map(|o| Value::Bool(o != std::cmp::Ordering::Greater)),
            Gt => va
                .compare(vb)
                .ok()
                .map(|o| Value::Bool(o == std::cmp::Ordering::Greater)),
            Ge => va
                .compare(vb)
                .ok()
                .map(|o| Value::Bool(o != std::cmp::Ordering::Less)),
            And => Some(Value::Bool(vb.truthy())),
            Or => Some(Value::Bool(vb.truthy())),
        };
        if let Some(v) = folded {
            return CExpr::Lit(v);
        }
    }
    CExpr::Binary(op, Box::new(a), Box::new(b))
}

struct SlotEval<'f> {
    frame: &'f mut [Option<Value>],
    names: &'f [String],
    steps_left: u64,
    budget: u64,
}

impl SlotEval<'_> {
    fn tick(&mut self) -> Result<(), ExprError> {
        if self.steps_left == 0 {
            return Err(ExprError::BudgetExhausted { steps: self.budget });
        }
        self.steps_left -= 1;
        Ok(())
    }

    fn eval(&mut self, expr: &CExpr) -> Result<Value, ExprError> {
        self.tick()?;
        match expr {
            CExpr::Lit(v) => Ok(v.clone()),
            CExpr::Slot(i) => {
                self.frame[*i as usize]
                    .clone()
                    .ok_or_else(|| ExprError::UndefinedVariable {
                        name: self.names[*i as usize].clone(),
                    })
            }
            CExpr::ListLit(items) => {
                let mut out = Vec::with_capacity(items.len());
                for e in items {
                    out.push(self.eval(e)?);
                }
                Ok(Value::List(out))
            }
            CExpr::MapLit(pairs) => {
                let mut out = BTreeMap::new();
                for (k, e) in pairs {
                    out.insert(k.clone(), self.eval(e)?);
                }
                Ok(Value::Map(out))
            }
            CExpr::Unary(op, e) => {
                let v = self.eval(e)?;
                match op {
                    UnOp::Neg => v.neg(),
                    UnOp::Not => Ok(Value::Bool(!v.truthy())),
                }
            }
            CExpr::Binary(op, a, b) => self.eval_binary(*op, a, b),
            CExpr::Ternary(c, t, e) => {
                if self.eval(c)?.truthy() {
                    self.eval(t)
                } else {
                    self.eval(e)
                }
            }
            CExpr::Elvis(a, b) => {
                let va = self.eval(a)?;
                if va.truthy() {
                    Ok(va)
                } else {
                    self.eval(b)
                }
            }
            CExpr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for e in args {
                    vals.push(self.eval(e)?);
                }
                match call_builtin(name, &vals) {
                    Some(r) => r,
                    None => Err(ExprError::UndefinedFunction { name: name.clone() }),
                }
            }
            CExpr::Index(base, idx) => {
                let b = self.eval(base)?;
                let i = self.eval(idx)?;
                b.index(&i)
            }
        }
    }

    fn eval_binary(&mut self, op: BinOp, a: &CExpr, b: &CExpr) -> Result<Value, ExprError> {
        match op {
            BinOp::And => {
                let va = self.eval(a)?;
                if !va.truthy() {
                    return Ok(Value::Bool(false));
                }
                let vb = self.eval(b)?;
                return Ok(Value::Bool(vb.truthy()));
            }
            BinOp::Or => {
                let va = self.eval(a)?;
                if va.truthy() {
                    return Ok(Value::Bool(true));
                }
                let vb = self.eval(b)?;
                return Ok(Value::Bool(vb.truthy()));
            }
            _ => {}
        }
        let va = self.eval(a)?;
        let vb = self.eval(b)?;
        match op {
            BinOp::Add => va.add(&vb),
            BinOp::Sub => va.sub(&vb),
            BinOp::Mul => va.mul(&vb),
            BinOp::Div => va.div(&vb),
            BinOp::Rem => va.rem(&vb),
            BinOp::Pow => va.pow(&vb),
            BinOp::Eq => Ok(Value::Bool(va.loose_eq(&vb))),
            BinOp::Ne => Ok(Value::Bool(!va.loose_eq(&vb))),
            BinOp::Lt => Ok(Value::Bool(va.compare(&vb)? == std::cmp::Ordering::Less)),
            BinOp::Le => Ok(Value::Bool(va.compare(&vb)? != std::cmp::Ordering::Greater)),
            BinOp::Gt => Ok(Value::Bool(va.compare(&vb)? == std::cmp::Ordering::Greater)),
            BinOp::Ge => Ok(Value::Bool(va.compare(&vb)? != std::cmp::Ordering::Less)),
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower(src: &str) -> CompiledScript {
        CompiledScript::lower(&parse(src).unwrap())
    }

    fn eval_bound(src: &str, bindings: &[(&str, Value)]) -> Result<Value, ExprError> {
        let c = lower(src);
        let mut frame = SlotFrame::new();
        let slots = frame.reset(c.n_slots());
        for (name, v) in bindings {
            if let Some(i) = c.slot_of(name) {
                slots[i] = Some(v.clone());
            }
        }
        c.eval_slots(slots, crate::interp::DEFAULT_STEP_BUDGET)
    }

    #[test]
    fn inputs_get_low_slots_in_first_use_order() {
        let c = lower("t = b + a; t / n");
        assert_eq!(c.slot_names(), &["b", "a", "n", "t"]);
        assert_eq!(c.n_inputs(), 3);
        assert_eq!(c.n_slots(), 4);
        assert_eq!(c.slot_of("t"), Some(3));
        assert_eq!(c.slot_of("zz"), None);
    }

    #[test]
    fn constant_subtrees_fold() {
        // Whole program is constant: one Lit statement.
        let c = lower("2 ** 10 + avg([1, 2, 3])");
        assert_eq!(c.stmts, vec![CStmt::Eval(CExpr::Lit(Value::Float(1026.0)))]);
        // Partial fold: (3 * 4) collapses inside a variable expression.
        let c = lower("x + 3 * 4");
        assert_eq!(
            c.stmts,
            vec![CStmt::Eval(CExpr::Binary(
                BinOp::Add,
                Box::new(CExpr::Slot(0)),
                Box::new(CExpr::Lit(Value::Int(12))),
            ))]
        );
    }

    #[test]
    fn erroring_subtrees_do_not_fold() {
        // 1/0 must stay a runtime error, not a compile panic or silent fold.
        let c = lower("false && 1/0");
        assert_eq!(c.stmts, vec![CStmt::Eval(CExpr::Lit(Value::Bool(false)))]);
        assert!(matches!(
            eval_bound("true && 1/0", &[]),
            Err(ExprError::DivisionByZero)
        ));
        assert!(matches!(
            eval_bound("1/0", &[]),
            Err(ExprError::DivisionByZero)
        ));
    }

    #[test]
    fn ternary_with_constant_condition_selects_branch() {
        let c = lower("1 < 2 ? x : 1/0");
        assert_eq!(c.stmts, vec![CStmt::Eval(CExpr::Slot(0))]);
        assert_eq!(eval_bound("0 ?: 42", &[]).unwrap(), Value::Int(42));
        assert_eq!(eval_bound("7 ?: x", &[]).unwrap(), Value::Int(7));
    }

    #[test]
    fn slot_evaluation_matches_paper_average() {
        let v = eval_bound(
            "(a + b + c)/3",
            &[
                ("a", Value::Float(20.0)),
                ("b", Value::Float(22.0)),
                ("c", Value::Float(27.0)),
            ],
        )
        .unwrap();
        assert_eq!(v, Value::Float(23.0));
    }

    #[test]
    fn unbound_slot_errors_with_name() {
        match eval_bound("q + 1", &[]) {
            Err(ExprError::UndefinedVariable { name }) => assert_eq!(name, "q"),
            other => panic!("expected UndefinedVariable, got {other:?}"),
        }
    }

    #[test]
    fn locals_live_in_high_slots() {
        let v = eval_bound("t = a + a; t * t", &[("a", Value::Int(3))]).unwrap();
        assert_eq!(v, Value::Int(36));
    }

    #[test]
    fn budget_still_enforced() {
        let c = lower("x + x + x");
        let mut frame = SlotFrame::new();
        let slots = frame.reset(c.n_slots());
        slots[0] = Some(Value::Int(1));
        assert!(matches!(
            c.eval_slots(slots, 2),
            Err(ExprError::BudgetExhausted { steps: 2 })
        ));
    }
}
