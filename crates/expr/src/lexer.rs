//! Tokenizer for the expression language.

use crate::error::{ExprError, Pos};

/// Lexical token kinds. Operators carry no payload; literals carry their
/// parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    True,
    False,
    Null,
    Def,

    Plus,
    Minus,
    Star,
    StarStar,
    Slash,
    Percent,
    Bang,
    Assign,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Question,
    Elvis,
    Colon,
    Comma,
    Semi,
    LParen,
    RParen,
    LBracket,
    RBracket,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::True => f.write_str("true"),
            Tok::False => f.write_str("false"),
            Tok::Null => f.write_str("null"),
            Tok::Def => f.write_str("def"),
            Tok::Plus => f.write_str("+"),
            Tok::Minus => f.write_str("-"),
            Tok::Star => f.write_str("*"),
            Tok::StarStar => f.write_str("**"),
            Tok::Slash => f.write_str("/"),
            Tok::Percent => f.write_str("%"),
            Tok::Bang => f.write_str("!"),
            Tok::Assign => f.write_str("="),
            Tok::Eq => f.write_str("=="),
            Tok::Ne => f.write_str("!="),
            Tok::Lt => f.write_str("<"),
            Tok::Le => f.write_str("<="),
            Tok::Gt => f.write_str(">"),
            Tok::Ge => f.write_str(">="),
            Tok::AndAnd => f.write_str("&&"),
            Tok::OrOr => f.write_str("||"),
            Tok::Question => f.write_str("?"),
            Tok::Elvis => f.write_str("?:"),
            Tok::Colon => f.write_str(":"),
            Tok::Comma => f.write_str(","),
            Tok::Semi => f.write_str(";"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::LBracket => f.write_str("["),
            Tok::RBracket => f.write_str("]"),
        }
    }
}

/// A token plus its starting byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub offset: usize,
}

/// Tokenize a whole source string. Line comments start with `//` and run
/// to end of line; newlines are whitespace (statements are separated by
/// `;`, matching what a compute-expression field can hold).
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, ExprError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;

    while i < bytes.len() {
        let c = bytes[i] as char;

        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }

        let start = i;
        let push =
            |out: &mut Vec<SpannedTok>, tok: Tok| out.push(SpannedTok { tok, offset: start });

        match c {
            '0'..='9' => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && j + 1 < bytes.len()
                    && bytes[j + 1].is_ascii_digit()
                {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k].is_ascii_digit() {
                        is_float = true;
                        j = k;
                        while j < bytes.len() && bytes[j].is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text = &src[i..j];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| ExprError::BadNumber {
                        text: text.to_string(),
                        pos: Pos::at(src, i),
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| ExprError::BadNumber {
                        text: text.to_string(),
                        pos: Pos::at(src, i),
                    })?)
                };
                push(&mut out, tok);
                i = j;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &src[i..j];
                let tok = match word {
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "null" => Tok::Null,
                    "def" => Tok::Def,
                    _ => Tok::Ident(word.to_string()),
                };
                push(&mut out, tok);
                i = j;
            }
            '\'' | '"' => {
                let quote = bytes[i];
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(ExprError::UnterminatedString {
                            pos: Pos::at(src, i),
                        });
                    }
                    if bytes[j] == quote {
                        j += 1;
                        break;
                    }
                    if bytes[j] == b'\\' && j + 1 < bytes.len() {
                        // The escaped character may be multi-byte: decode a
                        // whole char, not a byte.
                        // lint:allow(unwrap): escape branch checked j + 1 is in bounds
                        let esc = src[j + 1..].chars().next().expect("in-bounds char");
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            '\\' => '\\',
                            '\'' => '\'',
                            '"' => '"',
                            other => other,
                        });
                        j += 1 + esc.len_utf8();
                        continue;
                    }
                    // Multi-byte chars: copy the full char.
                    let ch_start = j;
                    // lint:allow(unwrap): ch_start is an in-bounds char boundary
                    let ch = src[ch_start..].chars().next().expect("in-bounds char");
                    s.push(ch);
                    j += ch.len_utf8();
                }
                push(&mut out, Tok::Str(s));
                i = j;
            }
            '+' => {
                push(&mut out, Tok::Plus);
                i += 1;
            }
            '-' => {
                push(&mut out, Tok::Minus);
                i += 1;
            }
            '*' => {
                if bytes.get(i + 1) == Some(&b'*') {
                    push(&mut out, Tok::StarStar);
                    i += 2;
                } else {
                    push(&mut out, Tok::Star);
                    i += 1;
                }
            }
            '/' => {
                push(&mut out, Tok::Slash);
                i += 1;
            }
            '%' => {
                push(&mut out, Tok::Percent);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(&mut out, Tok::Ne);
                    i += 2;
                } else {
                    push(&mut out, Tok::Bang);
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(&mut out, Tok::Eq);
                    i += 2;
                } else {
                    push(&mut out, Tok::Assign);
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(&mut out, Tok::Le);
                    i += 2;
                } else {
                    push(&mut out, Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(&mut out, Tok::Ge);
                    i += 2;
                } else {
                    push(&mut out, Tok::Gt);
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    push(&mut out, Tok::AndAnd);
                    i += 2;
                } else {
                    return Err(ExprError::UnexpectedChar {
                        ch: '&',
                        pos: Pos::at(src, i),
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    push(&mut out, Tok::OrOr);
                    i += 2;
                } else {
                    return Err(ExprError::UnexpectedChar {
                        ch: '|',
                        pos: Pos::at(src, i),
                    });
                }
            }
            '?' => {
                if bytes.get(i + 1) == Some(&b':') {
                    push(&mut out, Tok::Elvis);
                    i += 2;
                } else {
                    push(&mut out, Tok::Question);
                    i += 1;
                }
            }
            ':' => {
                push(&mut out, Tok::Colon);
                i += 1;
            }
            ',' => {
                push(&mut out, Tok::Comma);
                i += 1;
            }
            ';' => {
                push(&mut out, Tok::Semi);
                i += 1;
            }
            '(' => {
                push(&mut out, Tok::LParen);
                i += 1;
            }
            ')' => {
                push(&mut out, Tok::RParen);
                i += 1;
            }
            '[' => {
                push(&mut out, Tok::LBracket);
                i += 1;
            }
            ']' => {
                push(&mut out, Tok::RBracket);
                i += 1;
            }
            other => {
                return Err(ExprError::UnexpectedChar {
                    ch: other,
                    pos: Pos::at(src, i),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn paper_average_expression() {
        // The exact expression from the paper, §VI step 2.
        assert_eq!(
            toks("(a + b + c)/3"),
            vec![
                Tok::LParen,
                Tok::Ident("a".into()),
                Tok::Plus,
                Tok::Ident("b".into()),
                Tok::Plus,
                Tok::Ident("c".into()),
                Tok::RParen,
                Tok::Slash,
                Tok::Int(3),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42)]);
        assert_eq!(toks("3.25"), vec![Tok::Float(3.25)]);
        assert_eq!(toks("1e3"), vec![Tok::Float(1000.0)]);
        assert_eq!(toks("2.5e-1"), vec![Tok::Float(0.25)]);
        // '1.' is Int then... we require a digit after the dot, so `1.` would
        // be Int(1) followed by an unexpected char error — keep dots strict.
        assert!(lex("1.").is_err());
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(toks(r#"'hi'"#), vec![Tok::Str("hi".into())]);
        assert_eq!(toks(r#""a\nb""#), vec![Tok::Str("a\nb".into())]);
        assert_eq!(toks(r#"'q\'s'"#), vec![Tok::Str("q's".into())]);
        assert_eq!(toks("'héllo'"), vec![Tok::Str("héllo".into())]);
        assert!(matches!(
            lex("'open"),
            Err(ExprError::UnterminatedString { .. })
        ));
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            toks("true falsey null def defx"),
            vec![
                Tok::True,
                Tok::Ident("falsey".into()),
                Tok::Null,
                Tok::Def,
                Tok::Ident("defx".into()),
            ]
        );
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            toks("** == != <= >= && || ?:"),
            vec![
                Tok::StarStar,
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Elvis,
            ]
        );
        assert_eq!(toks("? :"), vec![Tok::Question, Tok::Colon]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 // ignored\n+ 2"),
            vec![Tok::Int(1), Tok::Plus, Tok::Int(2)]
        );
    }

    #[test]
    fn bad_chars_error_with_position() {
        match lex("a @ b") {
            Err(ExprError::UnexpectedChar { ch: '@', pos }) => {
                assert_eq!(pos.line, 1);
                assert_eq!(pos.col, 3);
            }
            other => panic!("expected UnexpectedChar, got {other:?}"),
        }
        assert!(lex("a & b").is_err(), "single & is not an operator");
    }

    #[test]
    fn offsets_are_recorded() {
        let ts = lex("ab + cd").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 3);
        assert_eq!(ts[2].offset, 5);
    }
}
