//! Dynamically typed runtime values with Groovy-like coercion rules.
//!
//! The paper associates compute-expressions such as `(a + b + c)/3` with a
//! composite sensor provider, where each variable is bound at runtime to a
//! child service's reading. Readings are numbers, but service metadata can
//! be strings, lists or maps, so [`Value`] is a small dynamic type with the
//! promotion rules Groovy users expect: `Int` arithmetic stays integral
//! until a `Float` joins in, `/` always divides exactly (Groovy's decimal
//! division), `+` concatenates strings and lists, comparison works across
//! the numeric tower.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::ExprError;

/// A dynamically typed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    List(Vec<Value>),
    /// Map with string keys (deterministic iteration order).
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Groovy truthiness: null/false/0/0.0/`""`/`[]`/`[:]` are falsy.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::List(xs) => !xs.is_empty(),
            Value::Map(m) => !m.is_empty(),
        }
    }

    /// Human-oriented type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Map(_) => "map",
        }
    }

    /// Numeric view, if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view, if this value is an integer (floats do not coerce).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    fn type_err(op: &str, a: &Value, b: &Value) -> ExprError {
        ExprError::TypeMismatch {
            op: op.to_string(),
            detail: format!("{} and {}", a.type_name(), b.type_name()),
        }
    }

    /// Float view for arithmetic arms whose guard already matched
    /// `is_number()` on both operands. Propagates a type error rather
    /// than panicking if that pairing is ever broken.
    fn num(&self, op: &str, other: &Value) -> Result<f64, ExprError> {
        self.as_f64().ok_or_else(|| Self::type_err(op, self, other))
    }

    /// Addition: numeric promotion, string concatenation (either side),
    /// list concatenation.
    pub fn add(&self, other: &Value) -> Result<Value, ExprError> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
            (a, b) if a.is_number() && b.is_number() => {
                Ok(Value::Float(a.num("+", b)? + b.num("+", a)?))
            }
            (Value::Str(a), b) => Ok(Value::Str(format!("{a}{b}"))),
            (a, Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
            (Value::List(a), Value::List(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().cloned());
                Ok(Value::List(out))
            }
            (a, b) => Err(Self::type_err("+", a, b)),
        }
    }

    pub fn sub(&self, other: &Value) -> Result<Value, ExprError> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(*b))),
            (a, b) if a.is_number() && b.is_number() => {
                Ok(Value::Float(a.num("-", b)? - b.num("-", a)?))
            }
            (a, b) => Err(Self::type_err("-", a, b)),
        }
    }

    /// Multiplication: numeric promotion; `string * int` repeats (Groovy).
    pub fn mul(&self, other: &Value) -> Result<Value, ExprError> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(*b))),
            (a, b) if a.is_number() && b.is_number() => {
                Ok(Value::Float(a.num("*", b)? * b.num("*", a)?))
            }
            (Value::Str(s), Value::Int(n)) | (Value::Int(n), Value::Str(s)) => {
                if *n < 0 {
                    Err(ExprError::TypeMismatch {
                        op: "*".into(),
                        detail: "cannot repeat a string a negative number of times".into(),
                    })
                } else {
                    Ok(Value::Str(s.repeat(*n as usize)))
                }
            }
            (a, b) => Err(Self::type_err("*", a, b)),
        }
    }

    /// Division. Like Groovy's `/` on numbers, the result is exact: two
    /// integers produce an integer only when the division is exact,
    /// otherwise a float. (The paper's `(a + b + c)/3` over temperatures
    /// must not truncate.)
    pub fn div(&self, other: &Value) -> Result<Value, ExprError> {
        match (self, other) {
            (a, b) if a.is_number() && b.is_number() => {
                let bf = b.num("/", a)?;
                if bf == 0.0 {
                    return Err(ExprError::DivisionByZero);
                }
                if let (Value::Int(x), Value::Int(y)) = (a, b) {
                    if x % y == 0 {
                        return Ok(Value::Int(x / y));
                    }
                }
                Ok(Value::Float(a.num("/", b)? / bf))
            }
            (a, b) => Err(Self::type_err("/", a, b)),
        }
    }

    /// Remainder (integers only stay integral).
    pub fn rem(&self, other: &Value) -> Result<Value, ExprError> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Err(ExprError::DivisionByZero)
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            (a, b) if a.is_number() && b.is_number() => {
                let bf = b.num("%", a)?;
                if bf == 0.0 {
                    Err(ExprError::DivisionByZero)
                } else {
                    Ok(Value::Float(a.num("%", b)? % bf))
                }
            }
            (a, b) => Err(Self::type_err("%", a, b)),
        }
    }

    /// Exponentiation (`**`). Integer base and non-negative integer
    /// exponent stay integral when representable.
    pub fn pow(&self, other: &Value) -> Result<Value, ExprError> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) if *b >= 0 && *b <= u32::MAX as i64 => {
                match a.checked_pow(*b as u32) {
                    Some(v) => Ok(Value::Int(v)),
                    None => Ok(Value::Float((*a as f64).powf(*b as f64))),
                }
            }
            (a, b) if a.is_number() && b.is_number() => {
                Ok(Value::Float(a.num("**", b)?.powf(b.num("**", a)?)))
            }
            (a, b) => Err(Self::type_err("**", a, b)),
        }
    }

    /// Arithmetic negation.
    pub fn neg(&self) -> Result<Value, ExprError> {
        match self {
            Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
            Value::Float(f) => Ok(Value::Float(-f)),
            v => Err(ExprError::TypeMismatch {
                op: "unary -".into(),
                detail: v.type_name().to_string(),
            }),
        }
    }

    /// Equality with numeric promotion (`1 == 1.0` is true, as in Groovy).
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (a, b) if a.is_number() && b.is_number() => a.as_f64() == b.as_f64(),
            (a, b) => a == b,
        }
    }

    /// Ordering for comparison operators. Numbers compare across the tower,
    /// strings lexicographically; everything else is an error.
    pub fn compare(&self, other: &Value) -> Result<std::cmp::Ordering, ExprError> {
        use std::cmp::Ordering;
        match (self, other) {
            (a, b) if a.is_number() && b.is_number() => a
                .num("comparison", b)?
                .partial_cmp(&b.num("comparison", a)?)
                .ok_or_else(|| ExprError::TypeMismatch {
                    op: "comparison".into(),
                    detail: "NaN is unordered".into(),
                }),
            (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
            (a, b) => Err(Self::type_err("comparison", a, b)),
        }
        .map(|o| match o {
            Ordering::Less => Ordering::Less,
            o => o,
        })
    }

    /// Indexing: `list[int]` (negative counts from the end, Groovy-style),
    /// `map[string]` (missing keys yield null), `string[int]` yields a
    /// one-character string.
    pub fn index(&self, idx: &Value) -> Result<Value, ExprError> {
        match (self, idx) {
            (Value::List(xs), Value::Int(i)) => {
                let n = xs.len() as i64;
                let j = if *i < 0 { n + i } else { *i };
                if j < 0 || j >= n {
                    Err(ExprError::BadIndex {
                        detail: format!("index {i} out of bounds for list of length {n}"),
                    })
                } else {
                    Ok(xs[j as usize].clone())
                }
            }
            (Value::Map(m), Value::Str(k)) => Ok(m.get(k).cloned().unwrap_or(Value::Null)),
            (Value::Str(s), Value::Int(i)) => {
                let chars: Vec<char> = s.chars().collect();
                let n = chars.len() as i64;
                let j = if *i < 0 { n + i } else { *i };
                if j < 0 || j >= n {
                    Err(ExprError::BadIndex {
                        detail: format!("index {i} out of bounds for string of length {n}"),
                    })
                } else {
                    Ok(Value::Str(chars[j as usize].to_string()))
                }
            }
            (v, i) => Err(ExprError::BadIndex {
                detail: format!("cannot index {} with {}", v.type_name(), i.type_name()),
            }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => f.write_str(s),
            Value::List(xs) => {
                f.write_str("[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("]")
            }
            Value::Map(m) => {
                if m.is_empty() {
                    return f.write_str("[:]");
                }
                f.write_str("[")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                f.write_str("]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(xs: Vec<T>) -> Self {
        Value::List(xs.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_groovy() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Float(0.0).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(!Value::List(vec![]).truthy());
        assert!(Value::Int(-3).truthy());
        assert!(Value::Str("x".into()).truthy());
    }

    #[test]
    fn int_arithmetic_stays_integral() {
        let v = Value::Int(7).add(&Value::Int(5)).unwrap();
        assert_eq!(v, Value::Int(12));
        assert_eq!(Value::Int(3).mul(&Value::Int(4)).unwrap(), Value::Int(12));
    }

    #[test]
    fn float_contaminates() {
        assert_eq!(
            Value::Int(1).add(&Value::Float(0.5)).unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(
            Value::Float(2.0).mul(&Value::Int(3)).unwrap(),
            Value::Float(6.0)
        );
    }

    #[test]
    fn division_is_exact_like_groovy() {
        // The paper's average: (20 + 21 + 23) / 3 must not truncate... but
        // when exact it stays integral.
        assert_eq!(Value::Int(64).div(&Value::Int(4)).unwrap(), Value::Int(16));
        assert_eq!(
            Value::Int(7).div(&Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
        assert!(matches!(
            Value::Int(1).div(&Value::Int(0)),
            Err(ExprError::DivisionByZero)
        ));
    }

    #[test]
    fn string_concat_and_repeat() {
        assert_eq!(
            Value::from("ab").add(&Value::Int(3)).unwrap(),
            Value::from("ab3")
        );
        assert_eq!(
            Value::Int(3).add(&Value::from("ab")).unwrap(),
            Value::from("3ab")
        );
        assert_eq!(
            Value::from("ab").mul(&Value::Int(2)).unwrap(),
            Value::from("abab")
        );
        assert!(Value::from("ab").mul(&Value::Int(-1)).is_err());
    }

    #[test]
    fn list_concat() {
        let a: Value = vec![1i64, 2].into();
        let b: Value = vec![3i64].into();
        assert_eq!(a.add(&b).unwrap(), vec![1i64, 2, 3].into());
    }

    #[test]
    fn pow_integral_until_overflow() {
        assert_eq!(
            Value::Int(2).pow(&Value::Int(10)).unwrap(),
            Value::Int(1024)
        );
        let big = Value::Int(10).pow(&Value::Int(30)).unwrap();
        assert!(matches!(big, Value::Float(_)));
        assert_eq!(
            Value::Int(2).pow(&Value::Float(0.5)).unwrap(),
            Value::Float(2f64.sqrt())
        );
    }

    #[test]
    fn loose_equality_spans_numeric_tower() {
        assert!(Value::Int(1).loose_eq(&Value::Float(1.0)));
        assert!(!Value::Int(1).loose_eq(&Value::Float(1.5)));
        assert!(Value::from("a").loose_eq(&Value::from("a")));
        assert!(
            !Value::from("1").loose_eq(&Value::Int(1)),
            "no string→number coercion"
        );
    }

    #[test]
    fn comparison() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(1).compare(&Value::Float(1.5)).unwrap(), Less);
        assert_eq!(
            Value::from("b").compare(&Value::from("a")).unwrap(),
            Greater
        );
        assert!(Value::Int(1).compare(&Value::from("a")).is_err());
        assert!(Value::Float(f64::NAN).compare(&Value::Int(1)).is_err());
    }

    #[test]
    fn indexing() {
        let list: Value = vec![10i64, 20, 30].into();
        assert_eq!(list.index(&Value::Int(0)).unwrap(), Value::Int(10));
        assert_eq!(list.index(&Value::Int(-1)).unwrap(), Value::Int(30));
        assert!(list.index(&Value::Int(3)).is_err());
        assert!(list.index(&Value::Int(-4)).is_err());

        let mut m = BTreeMap::new();
        m.insert("k".to_string(), Value::Int(9));
        let map = Value::Map(m);
        assert_eq!(map.index(&Value::from("k")).unwrap(), Value::Int(9));
        assert_eq!(map.index(&Value::from("nope")).unwrap(), Value::Null);

        let s = Value::from("héllo");
        assert_eq!(s.index(&Value::Int(1)).unwrap(), Value::from("é"));
        assert_eq!(s.index(&Value::Int(-1)).unwrap(), Value::from("o"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Float(3.0).to_string(), "3.0");
        assert_eq!(Value::Float(3.25).to_string(), "3.25");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::from(vec![1i64, 2]).to_string(), "[1, 2]");
        assert_eq!(Value::Map(BTreeMap::new()).to_string(), "[:]");
    }

    #[test]
    fn negation() {
        assert_eq!(Value::Int(5).neg().unwrap(), Value::Int(-5));
        assert_eq!(Value::Float(2.5).neg().unwrap(), Value::Float(-2.5));
        assert!(Value::from("x").neg().is_err());
    }

    #[test]
    fn wrapping_add_does_not_panic() {
        let v = Value::Int(i64::MAX).add(&Value::Int(1)).unwrap();
        assert_eq!(v, Value::Int(i64::MIN));
    }
}
