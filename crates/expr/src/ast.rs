//! Abstract syntax of the expression language.

use crate::value::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Pow,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// Human-readable operator text (for error messages).
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Pow => "**",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// An expression tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Lit(Value),
    /// A variable reference.
    Var(String),
    /// A list literal `[a, b, c]`.
    ListLit(Vec<Expr>),
    /// A map literal `[k: v, ...]` (Groovy syntax; `[:]` is empty).
    MapLit(Vec<(String, Expr)>),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `cond ? then : else`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `a ?: b` — `a` if truthy else `b` (Groovy elvis).
    Elvis(Box<Expr>, Box<Expr>),
    /// Function call `name(args...)`.
    Call(String, Vec<Expr>),
    /// Indexing `base[idx]`.
    Index(Box<Expr>, Box<Expr>),
}

/// A statement: an assignment or a bare expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `name = expr` (optionally prefixed by `def`).
    Assign(String, Expr),
    Expr(Expr),
}

/// A parsed program: a `;`-separated statement list whose value is the
/// value of its last statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    pub stmts: Vec<Stmt>,
}

impl Expr {
    /// Collect the free variable names referenced anywhere in the tree, in
    /// first-occurrence order. The composite sensor provider uses this to
    /// check an expression against its bound child variables.
    pub fn free_vars(&self) -> Vec<String> {
        let mut seen = Vec::new();
        self.walk_vars(&mut seen);
        seen
    }

    fn walk_vars(&self, seen: &mut Vec<String>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Var(name) => {
                if !seen.iter().any(|s| s == name) {
                    seen.push(name.clone());
                }
            }
            Expr::ListLit(items) => {
                for e in items {
                    e.walk_vars(seen);
                }
            }
            Expr::MapLit(pairs) => {
                for (_, e) in pairs {
                    e.walk_vars(seen);
                }
            }
            Expr::Unary(_, e) => e.walk_vars(seen),
            Expr::Binary(_, a, b) => {
                a.walk_vars(seen);
                b.walk_vars(seen);
            }
            Expr::Ternary(c, t, e) => {
                c.walk_vars(seen);
                t.walk_vars(seen);
                e.walk_vars(seen);
            }
            Expr::Elvis(a, b) => {
                a.walk_vars(seen);
                b.walk_vars(seen);
            }
            Expr::Call(_, args) => {
                for e in args {
                    e.walk_vars(seen);
                }
            }
            Expr::Index(b, i) => {
                b.walk_vars(seen);
                i.walk_vars(seen);
            }
        }
    }

    /// Number of nodes in the tree (used for complexity metrics in B6).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Expr::Lit(_) | Expr::Var(_) => 0,
            Expr::ListLit(items) => items.iter().map(Expr::node_count).sum(),
            Expr::MapLit(pairs) => pairs.iter().map(|(_, e)| e.node_count()).sum(),
            Expr::Unary(_, e) => e.node_count(),
            Expr::Binary(_, a, b) => a.node_count() + b.node_count(),
            Expr::Ternary(c, t, e) => c.node_count() + t.node_count() + e.node_count(),
            Expr::Elvis(a, b) => a.node_count() + b.node_count(),
            Expr::Call(_, args) => args.iter().map(Expr::node_count).sum(),
            Expr::Index(b, i) => b.node_count() + i.node_count(),
        }
    }
}

impl Script {
    /// Free variables across all statements, excluding names assigned by an
    /// earlier statement (those are locals, not inputs).
    pub fn free_vars(&self) -> Vec<String> {
        let mut bound: Vec<String> = Vec::new();
        let mut free: Vec<String> = Vec::new();
        for stmt in &self.stmts {
            let expr = match stmt {
                Stmt::Assign(_, e) | Stmt::Expr(e) => e,
            };
            for v in expr.free_vars() {
                if !bound.contains(&v) && !free.contains(&v) {
                    free.push(v);
                }
            }
            if let Stmt::Assign(name, _) = stmt {
                if !bound.iter().any(|b| b == name) {
                    bound.push(name.clone());
                }
            }
        }
        free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(s: &str) -> Expr {
        Expr::Var(s.to_string())
    }

    #[test]
    fn free_vars_deduplicate_in_order() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Binary(
                BinOp::Add,
                Box::new(var("b")),
                Box::new(var("a")),
            )),
            Box::new(var("b")),
        );
        assert_eq!(e.free_vars(), vec!["b", "a"]);
    }

    #[test]
    fn script_free_vars_skip_locals() {
        let script = Script {
            stmts: vec![
                Stmt::Assign(
                    "t".into(),
                    Expr::Binary(BinOp::Add, Box::new(var("a")), Box::new(var("b"))),
                ),
                Stmt::Expr(Expr::Binary(
                    BinOp::Div,
                    Box::new(var("t")),
                    Box::new(var("c")),
                )),
            ],
        };
        assert_eq!(script.free_vars(), vec!["a", "b", "c"]);
    }

    #[test]
    fn node_count() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(var("a")),
            Box::new(Expr::Lit(Value::Int(1))),
        );
        assert_eq!(e.node_count(), 3);
    }

    #[test]
    fn symbols() {
        assert_eq!(BinOp::Pow.symbol(), "**");
        assert_eq!(BinOp::Le.symbol(), "<=");
    }
}
