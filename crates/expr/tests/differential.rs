//! Differential test: the slot-compiled path must agree with the
//! tree-walking interpreter on every expression — same values, same
//! errors, including short-circuit behaviour that hides erroring
//! subtrees. The corpus mirrors the interpreter's own unit tests and adds
//! randomized expression trees from the deterministic check harness.

use sensorcer_expr::interp::{eval_script_with_budget, Scope, DEFAULT_STEP_BUDGET};
use sensorcer_expr::{parse, BinOp, Expr, ExprError, Program, Script, Stmt, UnOp, Value};
use sensorcer_sim::check::{run_cases, Gen};

/// Evaluate through the tree-walking interpreter only.
fn interp(src: &str, bindings: &[(&str, Value)]) -> Result<Value, ExprError> {
    let script = parse(src)?;
    let mut scope = Scope::new();
    for (k, v) in bindings {
        scope.set(*k, v.clone());
    }
    eval_script_with_budget(&script, &mut scope, DEFAULT_STEP_BUDGET)
}

/// Evaluate through the slot-compiled path only.
fn compiled(src: &str, bindings: &[(&str, Value)]) -> Result<Value, ExprError> {
    Program::compile(src)?.bind(bindings)
}

/// Equality that also identifies NaN with NaN (a random float corpus can
/// legitimately produce NaN on both paths).
fn same_value(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x == y || (x.is_nan() && y.is_nan()),
        (Value::List(xs), Value::List(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| same_value(x, y))
        }
        (Value::Map(xs), Value::Map(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|((ka, va), (kb, vb))| ka == kb && same_value(va, vb))
        }
        _ => a == b,
    }
}

fn assert_agree(src: &str, bindings: &[(&str, Value)]) {
    let a = interp(src, bindings);
    let b = compiled(src, bindings);
    match (&a, &b) {
        (Ok(x), Ok(y)) if same_value(x, y) => {}
        (Err(x), Err(y)) if x == y => {}
        _ => panic!(
            "paths diverge on {src:?} with {bindings:?}:\n  interp:   {a:?}\n  compiled: {b:?}"
        ),
    }
}

#[test]
fn interp_test_corpus_agrees() {
    let f = |x: f64| Value::Float(x);
    let i = |x: i64| Value::Int(x);
    // Every evaluation from interp.rs's unit tests, verbatim.
    let cases: &[(&str, &[(&str, Value)])] = &[
        (
            "(a + b + c)/3",
            &[("a", f(20.0)), ("b", f(22.0)), ("c", f(27.0))],
        ),
        ("(a + b)/2", &[("a", f(23.0)), ("b", f(25.0))]),
        ("1 + 2 * 3", &[]),
        ("(1 + 2) * 3", &[]),
        ("2 ** 3 ** 2", &[]),
        ("10 % 3", &[]),
        ("-2 ** 2", &[]),
        ("1 < 2 && 2 < 3", &[]),
        ("1 > 2 || 3 > 2", &[]),
        ("!0", &[]),
        ("1 == 1.0", &[]),
        ("'a' != 'b'", &[]),
        ("false && 1/0", &[]),
        ("true || 1/0", &[]),
        ("true && 1/0", &[]),
        ("5 > 3 ? 'yes' : 'no'", &[]),
        ("0 ?: 42", &[]),
        ("7 ?: 42", &[]),
        ("null ?: 'fallback'", &[]),
        ("t = 4; t * t", &[]),
        ("def x = 1; def y = 2; x + y", &[]),
        ("x = 1; x = x + 1; x", &[]),
        ("[1, 2, 3][1]", &[]),
        ("[x: 5]['x']", &[]),
        ("avg([1, 2, 3])", &[]),
        ("len([1, 2] + [3])", &[]),
        ("[t: 20.5]['missing']", &[]),
        ("max(1, 2.5, 2)", &[]),
        ("round(sqrt(2) * 100) / 100", &[]),
        ("clamp(150, 0, 100)", &[]),
        ("nope", &[]),
        ("nope()", &[]),
        ("'T=' + 21.5", &[]),
        ("'ab' * 3", &[]),
        ("'hello'[1]", &[]),
        ("str(1 + 2) + '!'", &[]),
        ("result = 6 * 7", &[]),
        // Error-path and edge additions beyond the interp corpus.
        ("1/0", &[]),
        ("1 % 0", &[]),
        ("a / b", &[("a", i(1)), ("b", i(0))]),
        ("'a' - 1", &[]),
        ("[1, 2][5]", &[]),
        ("[1, 2][-1]", &[]),
        ("null < 1", &[]),
        ("min()", &[]),
        ("sqrt('no')", &[]),
        ("x ?: 1/0", &[("x", i(0))]),
        ("x ?: 1/0", &[("x", i(9))]),
        ("x && 1/0", &[("x", Value::Bool(false))]),
        ("x || 1/0", &[("x", Value::Bool(true))]),
        ("x ? 1/0 : 5", &[("x", Value::Bool(false))]),
        ("missing + 1", &[]),
        ("t = q; 7", &[]),
        ("[a, [b, 2], 'x']", &[("a", i(1)), ("b", i(2))]),
        ("[k: a, j: 1 + 2]", &[("a", i(4))]),
        ("u = a + 1; v = u * 2; u + v", &[("a", i(3))]),
        ("-x", &[("x", f(2.5))]),
        ("!x", &[("x", Value::Null)]),
        ("median(3, 1, 2)", &[]),
        ("stddev(1)", &[]),
        ("int('12')", &[]),
        ("int('nope')", &[]),
        ("first([])", &[]),
    ];
    for (src, bindings) in cases {
        assert_agree(src, bindings);
    }
}

/// Random statement lists over a small grammar: both paths must agree on
/// value or error for every generated script.
#[test]
fn random_scripts_agree() {
    run_cases("random_scripts_agree", 192, |g| {
        let script = gen_script(g);
        let src = render_script(&script);
        // Re-parse to guarantee the rendered source is what both paths
        // see (and that rendering is valid syntax).
        let reparsed = parse(&src).unwrap_or_else(|e| panic!("render broke {src:?}: {e}"));
        assert_eq!(reparsed, script, "render must round-trip: {src}");
        let bindings: Vec<(&str, Value)> = [
            ("a", Value::Float(g.f64_in(-100.0, 100.0))),
            ("b", Value::Int(g.i64() % 1000)),
            ("c", Value::Bool(g.bool())),
        ]
        .into_iter()
        // Leave some inputs unbound sometimes so UndefinedVariable paths
        // are exercised too.
        .filter(|_| g.u64_in(0, 10) > 0)
        .collect();
        assert_agree(&src, &bindings);
    });
}

fn gen_script(g: &mut Gen) -> Script {
    let n = g.usize_in(1, 4);
    let mut stmts = Vec::new();
    for i in 0..n {
        if i + 1 < n && g.bool() {
            let name = ["t", "u", "a"][g.usize_in(0, 3)];
            stmts.push(Stmt::Assign(name.to_string(), gen_expr(g, 3)));
        } else {
            stmts.push(Stmt::Expr(gen_expr(g, 3)));
        }
    }
    Script { stmts }
}

fn gen_expr(g: &mut Gen, depth: usize) -> Expr {
    if depth == 0 || g.u64_in(0, 4) == 0 {
        // Only non-negative numeric literals: they render and re-parse to
        // the identical AST (negation is covered by Unary(Neg, ..)).
        return match g.u64_in(0, 6) {
            0 => Expr::Lit(Value::Int(g.i64_in(0, 100))),
            1 => Expr::Lit(Value::Float(g.f64_in(0.0, 50.0))),
            2 => Expr::Lit(Value::Bool(g.bool())),
            3 => Expr::Lit(Value::Null),
            4 => Expr::Var(["a", "b", "c", "t", "u"][g.usize_in(0, 5)].to_string()),
            _ => Expr::Lit(Value::Int(0)),
        };
    }
    match g.u64_in(0, 8) {
        0..=2 => {
            let ops = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Rem,
                BinOp::Eq,
                BinOp::Lt,
                BinOp::And,
                BinOp::Or,
            ];
            Expr::Binary(
                ops[g.usize_in(0, ops.len())],
                Box::new(gen_expr(g, depth - 1)),
                Box::new(gen_expr(g, depth - 1)),
            )
        }
        3 => Expr::Unary(
            if g.bool() { UnOp::Neg } else { UnOp::Not },
            Box::new(gen_expr(g, depth - 1)),
        ),
        4 => Expr::Ternary(
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
        ),
        5 => Expr::Elvis(
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
        ),
        6 => {
            let name = ["avg", "max", "min", "abs", "len"][g.usize_in(0, 5)];
            let n_args = g.usize_in(1, 3);
            Expr::Call(
                name.to_string(),
                (0..n_args).map(|_| gen_expr(g, depth - 1)).collect(),
            )
        }
        _ => {
            let n = g.usize_in(0, 3);
            Expr::ListLit((0..n).map(|_| gen_expr(g, depth - 1)).collect())
        }
    }
}

fn render_script(s: &Script) -> String {
    s.stmts
        .iter()
        .map(|st| match st {
            Stmt::Assign(n, e) => format!("{n} = {}", render(e)),
            Stmt::Expr(e) => render(e),
        })
        .collect::<Vec<_>>()
        .join("; ")
}

fn render(e: &Expr) -> String {
    match e {
        Expr::Lit(Value::Null) => "null".into(),
        Expr::Lit(Value::Bool(b)) => b.to_string(),
        Expr::Lit(Value::Int(i)) => {
            assert!(*i >= 0, "generator emits non-negative ints only");
            i.to_string()
        }
        Expr::Lit(Value::Float(f)) => {
            assert!(*f >= 0.0, "generator emits non-negative floats only");
            format!("{f:?}")
        }
        Expr::Lit(v) => panic!("generator does not emit literal {v:?}"),
        Expr::Var(n) => n.clone(),
        Expr::ListLit(xs) => {
            format!("[{}]", xs.iter().map(render).collect::<Vec<_>>().join(", "))
        }
        Expr::MapLit(_) => panic!("generator does not emit map literals"),
        Expr::Unary(UnOp::Neg, e) => format!("(-{})", render(e)),
        Expr::Unary(UnOp::Not, e) => format!("(!{})", render(e)),
        Expr::Binary(op, a, b) => format!("({} {} {})", render(a), op.symbol(), render(b)),
        Expr::Ternary(c, t, f) => {
            format!("({} ? {} : {})", render(c), render(t), render(f))
        }
        Expr::Elvis(a, b) => format!("({} ?: {})", render(a), render(b)),
        Expr::Call(n, args) => {
            format!(
                "{n}({})",
                args.iter().map(render).collect::<Vec<_>>().join(", ")
            )
        }
        Expr::Index(b, i) => format!("{}[{}]", render(b), render(i)),
    }
}
