//! Property tests for the expression language: total parsing (no panics),
//! deterministic evaluation, algebraic identities, and budget behaviour.

use proptest::prelude::*;

use sensorcer_expr::{eval_script_with_budget, parse, Program, Scope, Value};

proptest! {
    /// The front end is total: arbitrary input never panics, it parses or
    /// errors.
    #[test]
    fn parser_never_panics(src in ".{0,200}") {
        let _ = parse(&src);
    }

    /// Same source + same bindings = same value (the CSP relies on this).
    #[test]
    fn evaluation_is_deterministic(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let p = Program::compile("(a + b) * (a - b) + max(a, b)").unwrap();
        let v1 = p.eval_with([("a", a), ("b", b)]).unwrap();
        let v2 = p.eval_with([("a", a), ("b", b)]).unwrap();
        prop_assert_eq!(v1, v2);
    }

    /// Operator precedence: the parser agrees with explicit parentheses.
    #[test]
    fn precedence_matches_parentheses(a in -100i64..100, b in -100i64..100, c in -100i64..100) {
        let flat = Program::compile("a + b * c - a").unwrap()
            .eval_with([("a", a), ("b", b), ("c", c)]).unwrap();
        let parens = Program::compile("(a + (b * c)) - a").unwrap()
            .eval_with([("a", a), ("b", b), ("c", c)]).unwrap();
        prop_assert_eq!(flat, parens);
    }

    /// Addition commutes and multiplication distributes for integers.
    #[test]
    fn integer_algebra(a in -1000i64..1000, b in -1000i64..1000, c in -1000i64..1000) {
        let ev = |src: &str| {
            Program::compile(src).unwrap().eval_with([("a", a), ("b", b), ("c", c)]).unwrap()
        };
        prop_assert_eq!(ev("a + b"), ev("b + a"));
        prop_assert_eq!(ev("a * (b + c)"), ev("a*b + a*c"));
        prop_assert_eq!(ev("-(a)"), Value::Int(-a));
    }

    /// Builtins agree with std: min/max/abs.
    #[test]
    fn builtins_match_std(a in -1e9f64..1e9, b in -1e9f64..1e9) {
        let ev = |src: &str| {
            Program::compile(src).unwrap()
                .eval_with([("a", a), ("b", b)]).unwrap().as_f64().unwrap()
        };
        prop_assert_eq!(ev("min(a, b)"), a.min(b));
        prop_assert_eq!(ev("max(a, b)"), a.max(b));
        prop_assert_eq!(ev("abs(a)"), a.abs());
    }

    /// avg over a literal list equals the arithmetic mean.
    #[test]
    fn avg_matches_mean(xs in prop::collection::vec(-1e4f64..1e4, 1..20)) {
        let list = xs.iter().map(|x| format!("{x:?}")).collect::<Vec<_>>().join(", ");
        let src = format!("avg([{list}])");
        let v = Program::compile(&src).unwrap().eval(&mut Scope::new()).unwrap();
        let want = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((v.as_f64().unwrap() - want).abs() < 1e-6, "{v} vs {want}");
    }

    /// Budget monotonicity: succeeding under budget B implies succeeding
    /// under any larger budget with the same value.
    #[test]
    fn budget_is_monotone(n in 1usize..20) {
        let src = (0..n).map(|i| i.to_string()).collect::<Vec<_>>().join(" + ");
        let script = parse(&src).unwrap();
        // Find the minimal budget by scanning.
        let need = (1..200)
            .find(|&b| eval_script_with_budget(&script, &mut Scope::new(), b).is_ok())
            .expect("some budget suffices");
        let small = eval_script_with_budget(&script, &mut Scope::new(), need).unwrap();
        let large = eval_script_with_budget(&script, &mut Scope::new(), need * 10).unwrap();
        prop_assert_eq!(small, large);
        prop_assert!(
            eval_script_with_budget(&script, &mut Scope::new(), need - 1).is_err(),
            "need was minimal"
        );
    }

    /// String round trip: concatenation length is additive in chars.
    #[test]
    fn string_concat_lengths(a in "[a-z]{0,20}", b in "[a-z]{0,20}") {
        let p = Program::compile("len(a + b)").unwrap();
        let v = p.eval_with([("a", a.as_str()), ("b", b.as_str())]).unwrap();
        prop_assert_eq!(v, Value::Int((a.len() + b.len()) as i64));
    }

    /// Free-variable analysis is complete: evaluation succeeds with
    /// exactly the reported inputs bound, and fails if one is missing.
    #[test]
    fn inputs_are_necessary_and_sufficient(n in 1usize..8) {
        let vars: Vec<String> = (0..n).map(|i| format!("x{i}")).collect();
        let src = vars.join(" + ");
        let p = Program::compile(&src).unwrap();
        prop_assert_eq!(p.inputs(), vars.clone());
        // Sufficient:
        let bound: Vec<(String, f64)> = vars.iter().map(|v| (v.clone(), 1.0)).collect();
        prop_assert!(p.eval_with(bound).is_ok());
        // Necessary: drop the last binding.
        let partial: Vec<(String, f64)> =
            vars.iter().take(n - 1).map(|v| (v.clone(), 1.0)).collect();
        prop_assert!(p.eval_with(partial).is_err());
    }

    /// Comparison operators form a coherent order on integers.
    #[test]
    fn comparisons_coherent(a in -1000i64..1000, b in -1000i64..1000) {
        let ev = |src: &str| {
            Program::compile(src).unwrap().eval_with([("a", a), ("b", b)]).unwrap()
        };
        let lt = ev("a < b") == Value::Bool(true);
        let eq = ev("a == b") == Value::Bool(true);
        let gt = ev("a > b") == Value::Bool(true);
        prop_assert_eq!([lt, eq, gt].iter().filter(|x| **x).count(), 1, "trichotomy");
        prop_assert_eq!(ev("a <= b"), Value::Bool(lt || eq));
        prop_assert_eq!(ev("a >= b"), Value::Bool(gt || eq));
        prop_assert_eq!(ev("a != b"), Value::Bool(!eq));
    }
}
