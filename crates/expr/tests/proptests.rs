//! Property tests for the expression language: total parsing (no panics),
//! deterministic evaluation, algebraic identities, and budget behaviour.
//! Driven by the deterministic harness in `sensorcer_sim::check`.

use sensorcer_sim::check::run_cases;

use sensorcer_expr::{eval_script_with_budget, parse, Program, Scope, Value};

/// The front end is total: arbitrary input never panics, it parses or
/// errors.
#[test]
fn parser_never_panics() {
    run_cases("parser_never_panics", 512, |g| {
        let src = g.ascii_string(200);
        let _ = parse(&src);
    });
}

/// Same source + same bindings = same value (the CSP relies on this).
#[test]
fn evaluation_is_deterministic() {
    run_cases("evaluation_is_deterministic", 128, |g| {
        let a = g.f64_in(-1e6, 1e6);
        let b = g.f64_in(-1e6, 1e6);
        let p = Program::compile("(a + b) * (a - b) + max(a, b)").unwrap();
        let v1 = p.eval_with([("a", a), ("b", b)]).unwrap();
        let v2 = p.eval_with([("a", a), ("b", b)]).unwrap();
        assert_eq!(v1, v2);
    });
}

/// Operator precedence: the parser agrees with explicit parentheses.
#[test]
fn precedence_matches_parentheses() {
    run_cases("precedence_matches_parentheses", 128, |g| {
        let a = g.i64_in(-100, 100);
        let b = g.i64_in(-100, 100);
        let c = g.i64_in(-100, 100);
        let flat = Program::compile("a + b * c - a")
            .unwrap()
            .eval_with([("a", a), ("b", b), ("c", c)])
            .unwrap();
        let parens = Program::compile("(a + (b * c)) - a")
            .unwrap()
            .eval_with([("a", a), ("b", b), ("c", c)])
            .unwrap();
        assert_eq!(flat, parens);
    });
}

/// Addition commutes and multiplication distributes for integers.
#[test]
fn integer_algebra() {
    run_cases("integer_algebra", 128, |g| {
        let a = g.i64_in(-1000, 1000);
        let b = g.i64_in(-1000, 1000);
        let c = g.i64_in(-1000, 1000);
        let ev = |src: &str| {
            Program::compile(src)
                .unwrap()
                .eval_with([("a", a), ("b", b), ("c", c)])
                .unwrap()
        };
        assert_eq!(ev("a + b"), ev("b + a"));
        assert_eq!(ev("a * (b + c)"), ev("a*b + a*c"));
        assert_eq!(ev("-(a)"), Value::Int(-a));
    });
}

/// Builtins agree with std: min/max/abs.
#[test]
fn builtins_match_std() {
    run_cases("builtins_match_std", 128, |g| {
        let a = g.f64_in(-1e9, 1e9);
        let b = g.f64_in(-1e9, 1e9);
        let ev = |src: &str| {
            Program::compile(src)
                .unwrap()
                .eval_with([("a", a), ("b", b)])
                .unwrap()
                .as_f64()
                .unwrap()
        };
        assert_eq!(ev("min(a, b)"), a.min(b));
        assert_eq!(ev("max(a, b)"), a.max(b));
        assert_eq!(ev("abs(a)"), a.abs());
    });
}

/// avg over a literal list equals the arithmetic mean.
#[test]
fn avg_matches_mean() {
    run_cases("avg_matches_mean", 96, |g| {
        let xs = g.vec_of(1, 19, |g| g.f64_in(-1e4, 1e4));
        let list = xs
            .iter()
            .map(|x| format!("{x:?}"))
            .collect::<Vec<_>>()
            .join(", ");
        let src = format!("avg([{list}])");
        let v = Program::compile(&src)
            .unwrap()
            .eval(&mut Scope::new())
            .unwrap();
        let want = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((v.as_f64().unwrap() - want).abs() < 1e-6, "{v} vs {want}");
    });
}

/// Budget monotonicity: succeeding under budget B implies succeeding
/// under any larger budget with the same value.
#[test]
fn budget_is_monotone() {
    run_cases("budget_is_monotone", 32, |g| {
        let n = g.usize_in(1, 20);
        let src = (0..n)
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(" + ");
        let script = parse(&src).unwrap();
        // Find the minimal budget by scanning.
        let need = (1..200)
            .find(|&b| eval_script_with_budget(&script, &mut Scope::new(), b).is_ok())
            .expect("some budget suffices");
        let small = eval_script_with_budget(&script, &mut Scope::new(), need).unwrap();
        let large = eval_script_with_budget(&script, &mut Scope::new(), need * 10).unwrap();
        assert_eq!(small, large);
        assert!(
            eval_script_with_budget(&script, &mut Scope::new(), need - 1).is_err(),
            "need was minimal"
        );
    });
}

/// String round trip: concatenation length is additive in chars.
#[test]
fn string_concat_lengths() {
    run_cases("string_concat_lengths", 128, |g| {
        let a: String = (0..g.usize_in(0, 21))
            .map(|_| (g.u64_in(0, 26) as u8 + b'a') as char)
            .collect();
        let b: String = (0..g.usize_in(0, 21))
            .map(|_| (g.u64_in(0, 26) as u8 + b'a') as char)
            .collect();
        let p = Program::compile("len(a + b)").unwrap();
        let v = p.eval_with([("a", a.as_str()), ("b", b.as_str())]).unwrap();
        assert_eq!(v, Value::Int((a.len() + b.len()) as i64));
    });
}

/// Free-variable analysis is complete: evaluation succeeds with
/// exactly the reported inputs bound, and fails if one is missing.
#[test]
fn inputs_are_necessary_and_sufficient() {
    run_cases("inputs_are_necessary_and_sufficient", 32, |g| {
        let n = g.usize_in(1, 8);
        let vars: Vec<String> = (0..n).map(|i| format!("x{i}")).collect();
        let src = vars.join(" + ");
        let p = Program::compile(&src).unwrap();
        assert_eq!(p.inputs(), vars.clone());
        // Sufficient:
        let bound: Vec<(String, f64)> = vars.iter().map(|v| (v.clone(), 1.0)).collect();
        assert!(p.eval_with(bound).is_ok());
        // Necessary: drop the last binding.
        let partial: Vec<(String, f64)> =
            vars.iter().take(n - 1).map(|v| (v.clone(), 1.0)).collect();
        assert!(p.eval_with(partial).is_err());
    });
}

/// Comparison operators form a coherent order on integers.
#[test]
fn comparisons_coherent() {
    run_cases("comparisons_coherent", 128, |g| {
        let a = g.i64_in(-1000, 1000);
        let b = g.i64_in(-1000, 1000);
        let ev = |src: &str| {
            Program::compile(src)
                .unwrap()
                .eval_with([("a", a), ("b", b)])
                .unwrap()
        };
        let lt = ev("a < b") == Value::Bool(true);
        let eq = ev("a == b") == Value::Bool(true);
        let gt = ev("a > b") == Value::Bool(true);
        assert_eq!([lt, eq, gt].iter().filter(|x| **x).count(), 1, "trichotomy");
        assert_eq!(ev("a <= b"), Value::Bool(lt || eq));
        assert_eq!(ev("a >= b"), Value::Bool(gt || eq));
        assert_eq!(ev("a != b"), Value::Bool(!eq));
    });
}
