//! Property tests for provisioning: QoS matching laws and allocation
//! policy invariants. Driven by the deterministic harness in
//! `sensorcer_sim::check`.

use sensorcer_sim::check::{run_cases, Gen};

use sensorcer_provision::policy::{AllocationPolicy, Candidate};
use sensorcer_provision::qos::{QosCapabilities, QosRequirements};

fn gen_caps(g: &mut Gen) -> QosCapabilities {
    QosCapabilities {
        cpu_cores: g.u64_in(1, 64) as u32,
        cpu_mhz: g.u64_in(100, 4000) as u32,
        memory_mb: g.u64_in(64, 65_536) as u32,
        arch: "x86_64".into(),
        labels: Default::default(),
    }
}

fn gen_req(g: &mut Gen) -> QosRequirements {
    QosRequirements {
        min_cores: g.u64_in(0, 32) as u32,
        min_mhz: g.u64_in(0, 3000) as u32,
        memory_mb: g.u64_in(0, 32_768) as u32,
        arch: None,
        required_labels: Default::default(),
    }
}

/// Monotonicity: if a requirement is satisfied with some reservation,
/// it is satisfied with any smaller reservation; and a strictly weaker
/// requirement is also satisfied.
#[test]
fn qos_satisfaction_monotone() {
    run_cases("qos_satisfaction_monotone", 256, |g| {
        let caps = gen_caps(g);
        let req = gen_req(g);
        let reserved = g.u64_in(0, 65_536) as u32;
        if req.satisfied_by(&caps, reserved) {
            assert!(req.satisfied_by(&caps, reserved.saturating_sub(1)));
            let weaker = QosRequirements {
                min_cores: req.min_cores.saturating_sub(1),
                min_mhz: req.min_mhz.saturating_sub(100),
                memory_mb: req.memory_mb.saturating_sub(1),
                ..req.clone()
            };
            assert!(weaker.satisfied_by(&caps, reserved));
        }
    });
}

/// Headroom is in [0, 1] and decreases as reservation grows.
#[test]
fn headroom_bounded_and_monotone() {
    run_cases("headroom_bounded_and_monotone", 256, |g| {
        let caps = gen_caps(g);
        let req = gen_req(g);
        let r1 = g.u64_in(0, 65_536) as u32;
        let r2 = g.u64_in(0, 65_536) as u32;
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let h_lo = req.headroom(&caps, lo);
        let h_hi = req.headroom(&caps, hi);
        assert!((0.0..=1.0).contains(&h_lo));
        assert!((0.0..=1.0).contains(&h_hi));
        assert!(h_hi <= h_lo + 1e-12, "more reserved, less headroom");
    });
}

/// Every policy returns a valid index on non-empty candidate lists and
/// None on empty ones.
#[test]
fn policies_return_valid_indices() {
    run_cases("policies_return_valid_indices", 128, |g| {
        let reservations = g.vec_of(0, 12, |g| g.u64_in(0, 8_192) as u32);
        let req = gen_req(g);
        let candidates: Vec<Candidate<usize>> = reservations
            .iter()
            .enumerate()
            .map(|(i, &r)| Candidate {
                node: i,
                caps: QosCapabilities::lab_server(),
                reserved_mb: r,
            })
            .collect();
        for policy in AllocationPolicy::ALL {
            let mut cursor = 0;
            match policy.select(&req, &candidates, &mut cursor) {
                Some(idx) => assert!(idx < candidates.len()),
                None => assert!(candidates.is_empty()),
            }
        }
    });
}

/// Round robin visits every candidate exactly once per cycle.
#[test]
fn round_robin_is_fair() {
    run_cases("round_robin_is_fair", 64, |g| {
        let n = g.usize_in(1, 12);
        let cycles = g.usize_in(1, 4);
        let candidates: Vec<Candidate<usize>> = (0..n)
            .map(|i| Candidate {
                node: i,
                caps: QosCapabilities::lab_server(),
                reserved_mb: 0,
            })
            .collect();
        let req = QosRequirements::modest();
        let mut cursor = 0;
        let mut counts = vec![0usize; n];
        for _ in 0..(n * cycles) {
            let idx = AllocationPolicy::RoundRobin
                .select(&req, &candidates, &mut cursor)
                .unwrap();
            counts[idx] += 1;
        }
        assert!(counts.iter().all(|&c| c == cycles), "{counts:?}");
    });
}

/// Least-utilized picks a candidate with maximal headroom; best-fit a
/// minimal one.
#[test]
fn extremal_policies_are_extremal() {
    run_cases("extremal_policies_are_extremal", 128, |g| {
        let reservations = g.vec_of(1, 12, |g| g.u64_in(0, 8_192) as u32);
        let req = QosRequirements {
            memory_mb: 10,
            ..Default::default()
        };
        let candidates: Vec<Candidate<usize>> = reservations
            .iter()
            .enumerate()
            .map(|(i, &r)| Candidate {
                node: i,
                caps: QosCapabilities::lab_server(),
                reserved_mb: r,
            })
            .collect();
        let headrooms: Vec<f64> = candidates
            .iter()
            .map(|c| req.headroom(&c.caps, c.reserved_mb))
            .collect();
        let mut cursor = 0;
        let lu = AllocationPolicy::LeastUtilized
            .select(&req, &candidates, &mut cursor)
            .unwrap();
        let bf = AllocationPolicy::BestFit
            .select(&req, &candidates, &mut cursor)
            .unwrap();
        let max = headrooms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = headrooms.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((headrooms[lu] - max).abs() < 1e-12);
        assert!((headrooms[bf] - min).abs() < 1e-12);
    });
}
