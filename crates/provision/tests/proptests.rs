//! Property tests for provisioning: QoS matching laws and allocation
//! policy invariants.

use proptest::prelude::*;

use sensorcer_provision::policy::{AllocationPolicy, Candidate};
use sensorcer_provision::qos::{QosCapabilities, QosRequirements};

fn caps_strategy() -> impl Strategy<Value = QosCapabilities> {
    (1u32..64, 100u32..4000, 64u32..65_536).prop_map(|(cores, mhz, mem)| QosCapabilities {
        cpu_cores: cores,
        cpu_mhz: mhz,
        memory_mb: mem,
        arch: "x86_64".into(),
        labels: Default::default(),
    })
}

fn req_strategy() -> impl Strategy<Value = QosRequirements> {
    (0u32..32, 0u32..3000, 0u32..32_768).prop_map(|(cores, mhz, mem)| QosRequirements {
        min_cores: cores,
        min_mhz: mhz,
        memory_mb: mem,
        arch: None,
        required_labels: Default::default(),
    })
}

proptest! {
    /// Monotonicity: if a requirement is satisfied with some reservation,
    /// it is satisfied with any smaller reservation; and a strictly weaker
    /// requirement is also satisfied.
    #[test]
    fn qos_satisfaction_monotone(caps in caps_strategy(), req in req_strategy(), reserved in 0u32..65_536) {
        if req.satisfied_by(&caps, reserved) {
            prop_assert!(req.satisfied_by(&caps, reserved.saturating_sub(1)));
            let weaker = QosRequirements {
                min_cores: req.min_cores.saturating_sub(1),
                min_mhz: req.min_mhz.saturating_sub(100),
                memory_mb: req.memory_mb.saturating_sub(1),
                ..req.clone()
            };
            prop_assert!(weaker.satisfied_by(&caps, reserved));
        }
    }

    /// Headroom is in [0, 1] and decreases as reservation grows.
    #[test]
    fn headroom_bounded_and_monotone(caps in caps_strategy(), req in req_strategy(), r1 in 0u32..65_536, r2 in 0u32..65_536) {
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let h_lo = req.headroom(&caps, lo);
        let h_hi = req.headroom(&caps, hi);
        prop_assert!((0.0..=1.0).contains(&h_lo));
        prop_assert!((0.0..=1.0).contains(&h_hi));
        prop_assert!(h_hi <= h_lo + 1e-12, "more reserved, less headroom");
    }

    /// Every policy returns a valid index on non-empty candidate lists and
    /// None on empty ones.
    #[test]
    fn policies_return_valid_indices(
        reservations in prop::collection::vec(0u32..8_192, 0..12),
        req in req_strategy(),
    ) {
        let candidates: Vec<Candidate<usize>> = reservations
            .iter()
            .enumerate()
            .map(|(i, &r)| Candidate {
                node: i,
                caps: QosCapabilities::lab_server(),
                reserved_mb: r,
            })
            .collect();
        for policy in AllocationPolicy::ALL {
            let mut cursor = 0;
            match policy.select(&req, &candidates, &mut cursor) {
                Some(idx) => prop_assert!(idx < candidates.len()),
                None => prop_assert!(candidates.is_empty()),
            }
        }
    }

    /// Round robin visits every candidate exactly once per cycle.
    #[test]
    fn round_robin_is_fair(n in 1usize..12, cycles in 1usize..4) {
        let candidates: Vec<Candidate<usize>> = (0..n)
            .map(|i| Candidate { node: i, caps: QosCapabilities::lab_server(), reserved_mb: 0 })
            .collect();
        let req = QosRequirements::modest();
        let mut cursor = 0;
        let mut counts = vec![0usize; n];
        for _ in 0..(n * cycles) {
            let idx = AllocationPolicy::RoundRobin.select(&req, &candidates, &mut cursor).unwrap();
            counts[idx] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c == cycles), "{counts:?}");
    }

    /// Least-utilized picks a candidate with maximal headroom; best-fit a
    /// minimal one.
    #[test]
    fn extremal_policies_are_extremal(reservations in prop::collection::vec(0u32..8_192, 1..12)) {
        let req = QosRequirements { memory_mb: 10, ..Default::default() };
        let candidates: Vec<Candidate<usize>> = reservations
            .iter()
            .enumerate()
            .map(|(i, &r)| Candidate {
                node: i,
                caps: QosCapabilities::lab_server(),
                reserved_mb: r,
            })
            .collect();
        let headrooms: Vec<f64> =
            candidates.iter().map(|c| req.headroom(&c.caps, c.reserved_mb)).collect();
        let mut cursor = 0;
        let lu = AllocationPolicy::LeastUtilized.select(&req, &candidates, &mut cursor).unwrap();
        let bf = AllocationPolicy::BestFit.select(&req, &candidates, &mut cursor).unwrap();
        let max = headrooms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = headrooms.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!((headrooms[lu] - max).abs() < 1e-12);
        prop_assert!((headrooms[bf] - min).abs() < 1e-12);
    }
}
