//! # sensorcer-provision
//!
//! The Rio substitute (§IV.C of the paper): cybernodes advertising QoS
//! capabilities, operational-string deployment descriptors, pluggable
//! allocation policies, and a provision monitor that keeps planned
//! instance counts alive — re-provisioning onto surviving nodes when a
//! cybernode fails.
//!
//! This is what lets SenSORCER "dynamically adapt to addition and removal
//! of sensor resource on the network" and run "sensor service on the
//! compute resource available in the network that matches required QoS".
//!
//! ```
//! use sensorcer_provision::prelude::*;
//! use sensorcer_sim::prelude::*;
//!
//! let mut env = Env::with_seed(7);
//! let lab = env.add_host("lab", HostKind::Server);
//! let node_host = env.add_host("node", HostKind::Server);
//!
//! struct Bean;
//! let mut factories = FactoryRegistry::new();
//! factories.register_fn("bean", |env, host, _el, inst| {
//!     Ok(env.deploy(host, inst.to_string(), Bean))
//! });
//!
//! let monitor = ProvisionMonitor::deploy(
//!     &mut env, lab, "Monitor", AllocationPolicy::LeastUtilized,
//!     factories, None, SimDuration::from_secs(1),
//! );
//! let node = Cybernode::deploy(&mut env, node_host, "Cybernode",
//!     QosCapabilities::lab_server(), None);
//! env.with_service(monitor.service, |_e, m: &mut ProvisionMonitor| {
//!     m.register_cybernode(node)
//! }).unwrap();
//!
//! let os = OperationalString::new("demo")
//!     .with_element(ServiceElement::singleton("svc", "bean"));
//! let placed = monitor.deploy_opstring(&mut env, lab, os).unwrap().unwrap();
//! assert_eq!(placed.len(), 1);
//! ```

#![forbid(unsafe_code)]
pub mod autoscale;
pub mod cybernode;
pub mod factory;
pub mod monitor;
pub mod opstring;
pub mod policy;
pub mod qos;

/// One-stop imports.
pub mod prelude {
    pub use crate::autoscale::{AutoScaler, AutoScalerConfig, ScaleAction};
    pub use crate::cybernode::{Cybernode, CybernodeError, CybernodeHandle, HostedInstance};
    pub use crate::factory::{FactoryRegistry, FnFactory, ProvisionedService, ServiceFactory};
    pub use crate::monitor::{
        InstanceRecord, MonitorHandle, ProvisionError, ProvisionEvent, ProvisionEventKind,
        ProvisionMonitor,
    };
    pub use crate::opstring::{OperationalString, ServiceElement};
    pub use crate::policy::{AllocationPolicy, Candidate};
    pub use crate::qos::{QosCapabilities, QosRequirements};
}

pub use prelude::*;
