//! Allocation policies — Rio's "pluggable load distribution … mechanisms
//! to effectively make use of resources on the network" (§IV.C).

use crate::qos::{QosCapabilities, QosRequirements};

/// A placement candidate after feasibility filtering.
#[derive(Clone, Debug)]
pub struct Candidate<T> {
    /// Opaque node identity carried through selection.
    pub node: T,
    pub caps: QosCapabilities,
    pub reserved_mb: u32,
}

/// How the monitor picks among feasible cybernodes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AllocationPolicy {
    /// The node with the most free headroom (spreads load).
    #[default]
    LeastUtilized,
    /// Cycle through feasible nodes in order (predictable spread).
    RoundRobin,
    /// The node whose remaining capacity most tightly fits the request
    /// (packs load, keeps big nodes free).
    BestFit,
}

impl AllocationPolicy {
    pub const ALL: [AllocationPolicy; 3] = [
        AllocationPolicy::LeastUtilized,
        AllocationPolicy::RoundRobin,
        AllocationPolicy::BestFit,
    ];

    /// Human-readable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            AllocationPolicy::LeastUtilized => "least-utilized",
            AllocationPolicy::RoundRobin => "round-robin",
            AllocationPolicy::BestFit => "best-fit",
        }
    }

    /// Choose the index of the winning candidate, or `None` when the list
    /// is empty. `rr_cursor` is the monitor's round-robin position, bumped
    /// on use.
    pub fn select<T>(
        self,
        req: &QosRequirements,
        candidates: &[Candidate<T>],
        rr_cursor: &mut usize,
    ) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        match self {
            AllocationPolicy::RoundRobin => {
                let idx = *rr_cursor % candidates.len();
                *rr_cursor = rr_cursor.wrapping_add(1);
                Some(idx)
            }
            AllocationPolicy::LeastUtilized => index_by(candidates, req, |h| h, f64::gt),
            AllocationPolicy::BestFit => index_by(candidates, req, |h| h, f64::lt),
        }
    }
}

/// Pick the candidate whose headroom wins under `better` (ties keep the
/// earlier candidate, for determinism).
fn index_by<T>(
    candidates: &[Candidate<T>],
    req: &QosRequirements,
    key: impl Fn(f64) -> f64,
    better: impl Fn(&f64, &f64) -> bool,
) -> Option<usize> {
    let mut best = 0;
    let mut best_key = key(req.headroom(&candidates[0].caps, candidates[0].reserved_mb));
    for (i, c) in candidates.iter().enumerate().skip(1) {
        let k = key(req.headroom(&c.caps, c.reserved_mb));
        if better(&k, &best_key) {
            best = i;
            best_key = k;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(name: &str, memory_mb: u32, reserved: u32) -> Candidate<String> {
        Candidate {
            node: name.to_string(),
            caps: QosCapabilities {
                memory_mb,
                ..QosCapabilities::lab_server()
            },
            reserved_mb: reserved,
        }
    }

    fn req() -> QosRequirements {
        QosRequirements {
            memory_mb: 100,
            ..Default::default()
        }
    }

    #[test]
    fn least_utilized_prefers_headroom() {
        let cands = vec![cand("busy", 8192, 8000), cand("fresh", 8192, 0)];
        let mut rr = 0;
        let idx = AllocationPolicy::LeastUtilized
            .select(&req(), &cands, &mut rr)
            .unwrap();
        assert_eq!(cands[idx].node, "fresh");
    }

    #[test]
    fn best_fit_prefers_tightest() {
        let cands = vec![cand("huge", 8192, 0), cand("snug", 8192, 8000)];
        let mut rr = 0;
        let idx = AllocationPolicy::BestFit
            .select(&req(), &cands, &mut rr)
            .unwrap();
        assert_eq!(cands[idx].node, "snug");
    }

    #[test]
    fn round_robin_cycles() {
        let cands = vec![cand("a", 1024, 0), cand("b", 1024, 0), cand("c", 1024, 0)];
        let mut rr = 0;
        let picks: Vec<String> = (0..6)
            .map(|_| {
                let i = AllocationPolicy::RoundRobin
                    .select(&req(), &cands, &mut rr)
                    .unwrap();
                cands[i].node.clone()
            })
            .collect();
        assert_eq!(picks, vec!["a", "b", "c", "a", "b", "c"]);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut rr = 0;
        for p in AllocationPolicy::ALL {
            assert_eq!(p.select::<String>(&req(), &[], &mut rr), None);
        }
    }

    #[test]
    fn ties_are_deterministic() {
        let cands = vec![cand("first", 1024, 0), cand("second", 1024, 0)];
        let mut rr = 0;
        let idx = AllocationPolicy::LeastUtilized
            .select(&req(), &cands, &mut rr)
            .unwrap();
        assert_eq!(cands[idx].node, "first");
    }

    #[test]
    fn names() {
        assert_eq!(AllocationPolicy::default().name(), "least-utilized");
        assert_eq!(AllocationPolicy::ALL.len(), 3);
    }
}
