//! SLO-driven autoscaling: the obs→provision feedback loop.
//!
//! PR 5's health engine turned façade traffic into burn rates; this module
//! turns burn rates back into deployment changes, closing the loop the
//! dynamic-adaptation literature motivates — the monitor stops being a
//! passive fault-healer and becomes an actuator. An [`AutoScaler`] watches
//! one opstring element per SLO-tracked service and retargets its planned
//! count through [`ProvisionMonitor::set_planned`]:
//!
//! * **up** when the fast-window burn rate crosses `up_burn` — the error
//!   budget is being eaten faster than capacity can absorb;
//! * **down** when the fast burn has fallen to `down_burn` or below — the
//!   storm has passed and the surplus replicas are idle.
//!
//! Flapping is prevented three ways: the `up_burn`/`down_burn` gap is a
//! hysteresis band where nothing happens, every target has a per-service
//! cool-down between actions, and planned counts are clamped to
//! `[min_planned, max_planned]`. All timing is virtual — the scaler only
//! compares `env.now()` against sim-time stamps.

use std::collections::BTreeMap;

use sensorcer_sim::env::Env;
use sensorcer_sim::time::{SimDuration, SimTime};

use crate::monitor::{MonitorHandle, ProvisionMonitor};

/// Metric keys exported by the autoscaler.
pub mod keys {
    /// Planned-count raises applied.
    pub const ACTIONS_UP: &str = "autoscale.actions.up";
    /// Planned-count cuts applied.
    pub const ACTIONS_DOWN: &str = "autoscale.actions.down";
    /// Evaluations that proposed a change the monitor refused.
    pub const ACTIONS_REJECTED: &str = "autoscale.actions.rejected";
}

/// Scaling behaviour knobs.
#[derive(Clone, Copy, Debug)]
pub struct AutoScalerConfig {
    /// Never plan fewer instances than this (≥ 1).
    pub min_planned: u32,
    /// Never plan more instances than this.
    pub max_planned: u32,
    /// Scale up when the fast-window burn rate reaches this.
    pub up_burn: f64,
    /// Scale down when the fast-window burn rate falls to this or below.
    /// Must sit strictly below `up_burn`; the gap is the hysteresis band.
    pub down_burn: f64,
    /// Minimum virtual time between actions on the same service.
    pub cooldown: SimDuration,
    /// Instances added/removed per action.
    pub step: u32,
}

impl Default for AutoScalerConfig {
    fn default() -> Self {
        AutoScalerConfig {
            min_planned: 1,
            max_planned: 4,
            up_burn: 2.0,
            down_burn: 0.25,
            cooldown: SimDuration::from_secs(45),
            step: 1,
        }
    }
}

/// One applied planned-count change.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaleAction {
    pub at: SimTime,
    pub service: String,
    pub opstring: String,
    pub element: String,
    pub from: u32,
    pub to: u32,
    pub burn_fast: f64,
    pub burn_slow: f64,
}

impl ScaleAction {
    pub fn is_up(&self) -> bool {
        self.to > self.from
    }
}

#[derive(Clone, Debug)]
struct Target {
    opstring: String,
    element: String,
    last_action: Option<SimTime>,
}

/// The feedback controller. Deliberately decoupled from the SLO engine's
/// types: it consumes plain `(service, burn_fast, burn_slow)` tuples (see
/// `SloEngine::burn_rates` in `sensorcer-obs`) so obs and provision stay
/// independent crates.
#[derive(Debug)]
pub struct AutoScaler {
    config: AutoScalerConfig,
    targets: BTreeMap<String, Target>,
    actions: Vec<ScaleAction>,
}

impl AutoScaler {
    pub fn new(config: AutoScalerConfig) -> AutoScaler {
        assert!(config.min_planned >= 1, "an element needs one instance");
        assert!(
            config.max_planned >= config.min_planned,
            "empty scale range"
        );
        assert!(
            config.down_burn < config.up_burn,
            "hysteresis band is empty: down_burn must sit below up_burn"
        );
        assert!(config.step >= 1, "a scaling step must change something");
        AutoScaler {
            config,
            targets: BTreeMap::new(),
            actions: Vec::new(),
        }
    }

    /// Bind an SLO-tracked service name to the opstring element whose
    /// planned count serves it.
    pub fn watch(
        &mut self,
        service: impl Into<String>,
        opstring: impl Into<String>,
        element: impl Into<String>,
    ) {
        self.targets.insert(
            service.into(),
            Target {
                opstring: opstring.into(),
                element: element.into(),
                last_action: None,
            },
        );
    }

    /// Every action applied so far, in order.
    pub fn actions(&self) -> &[ScaleAction] {
        &self.actions
    }

    /// One control-loop pass: compare each watched service's burn rates
    /// against the thresholds and retarget planned counts through the
    /// monitor. Returns the actions applied this pass.
    pub fn evaluate(
        &mut self,
        env: &mut Env,
        monitor: MonitorHandle,
        burns: &[(String, f64, f64)],
    ) -> Vec<ScaleAction> {
        let cfg = self.config;
        let now = env.now();
        let mut applied = Vec::new();
        for (service, burn_fast, burn_slow) in burns {
            let Some(target) = self.targets.get_mut(service) else {
                continue;
            };
            if let Some(last) = target.last_action {
                if now - last < cfg.cooldown {
                    continue;
                }
            }
            let Ok(Some(planned)) = env
                .with_service(monitor.service, |_e, m: &mut ProvisionMonitor| {
                    m.planned_of(&target.opstring, &target.element)
                })
            else {
                continue;
            };
            let to = if *burn_fast >= cfg.up_burn {
                planned.saturating_add(cfg.step).min(cfg.max_planned)
            } else if *burn_fast <= cfg.down_burn {
                planned.saturating_sub(cfg.step).max(cfg.min_planned)
            } else {
                continue; // inside the hysteresis band
            };
            if to == planned {
                continue;
            }
            let opstring = target.opstring.clone();
            let element = target.element.clone();
            let outcome = env.with_service(monitor.service, |env, m: &mut ProvisionMonitor| {
                m.set_planned(env, &opstring, &element, to)
            });
            match outcome {
                Ok(Ok(())) => {
                    let key = if to > planned {
                        keys::ACTIONS_UP
                    } else {
                        keys::ACTIONS_DOWN
                    };
                    env.metrics.add(key, 1);
                    env.metrics.add_labeled(key, service, 1);
                    let cur = env.current_span();
                    if cur.is_valid() {
                        env.span_event(
                            cur,
                            "autoscale.action",
                            vec![
                                ("service", service.as_str().into()),
                                ("from", u64::from(planned).into()),
                                ("to", u64::from(to).into()),
                                ("burn_fast", (*burn_fast).into()),
                            ],
                        );
                    }
                    target.last_action = Some(now);
                    let action = ScaleAction {
                        at: now,
                        service: service.clone(),
                        opstring,
                        element,
                        from: planned,
                        to,
                        burn_fast: *burn_fast,
                        burn_slow: *burn_slow,
                    };
                    self.actions.push(action.clone());
                    applied.push(action);
                }
                _ => {
                    env.metrics.add(keys::ACTIONS_REJECTED, 1);
                }
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cybernode::{Cybernode, CybernodeHandle};
    use crate::factory::FactoryRegistry;
    use crate::opstring::{OperationalString, ServiceElement};
    use crate::policy::AllocationPolicy;
    use crate::qos::QosCapabilities;
    use sensorcer_sim::prelude::*;

    struct Bean;

    fn world() -> (Env, MonitorHandle) {
        let mut env = Env::with_seed(17);
        let lab = env.add_host("lab", HostKind::Server);
        let mut factories = FactoryRegistry::new();
        factories.register_fn("bean", |env, host, _el, instance| {
            Ok(env.deploy(host, instance.to_string(), Bean))
        });
        let monitor = ProvisionMonitor::deploy(
            &mut env,
            lab,
            "Monitor",
            AllocationPolicy::LeastUtilized,
            factories,
            None,
            SimDuration::from_secs(1),
        );
        for i in 0..4 {
            let h = env.add_host(format!("node{i}"), HostKind::Server);
            let n: CybernodeHandle = Cybernode::deploy(
                &mut env,
                h,
                &format!("Cyb-{i}"),
                QosCapabilities::lab_server(),
                None,
            );
            env.with_service(monitor.service, |_e, m: &mut ProvisionMonitor| {
                m.register_cybernode(n)
            })
            .unwrap();
        }
        let os = OperationalString::new("net").with_element(
            ServiceElement::singleton("svc", "bean")
                .with_planned(1)
                .with_max_per_node(4),
        );
        monitor.deploy_opstring(&mut env, lab, os).unwrap().unwrap();
        (env, monitor)
    }

    fn planned(env: &mut Env, monitor: MonitorHandle) -> u32 {
        env.with_service(monitor.service, |_e, m: &mut ProvisionMonitor| {
            m.planned_of("net", "svc").unwrap()
        })
        .unwrap()
    }

    fn burns(f: f64) -> Vec<(String, f64, f64)> {
        vec![("S".to_string(), f, f)]
    }

    #[test]
    fn scales_up_on_burn_down_after_quiet_with_cooldown_and_bounds() {
        let (mut env, monitor) = world();
        let mut scaler = AutoScaler::new(AutoScalerConfig {
            max_planned: 3,
            cooldown: SimDuration::from_secs(30),
            ..Default::default()
        });
        scaler.watch("S", "net", "svc");

        // Hot: one step up, then the cooldown gates the next.
        let acts = scaler.evaluate(&mut env, monitor, &burns(5.0));
        assert_eq!(acts.len(), 1);
        assert!(acts[0].is_up());
        assert_eq!(planned(&mut env, monitor), 2);
        assert!(scaler.evaluate(&mut env, monitor, &burns(5.0)).is_empty());

        // Cooldown elapsed: second step, then clamped at max_planned.
        env.run_for(SimDuration::from_secs(30));
        assert_eq!(scaler.evaluate(&mut env, monitor, &burns(5.0)).len(), 1);
        assert_eq!(planned(&mut env, monitor), 3);
        env.run_for(SimDuration::from_secs(30));
        assert!(scaler.evaluate(&mut env, monitor, &burns(5.0)).is_empty());
        assert_eq!(env.metrics.get(keys::ACTIONS_UP), 2);

        // Inside the hysteresis band: nothing moves either way.
        env.run_for(SimDuration::from_secs(30));
        assert!(scaler.evaluate(&mut env, monitor, &burns(1.0)).is_empty());

        // Quiet: converge back down to min_planned, one step per cooldown.
        assert_eq!(scaler.evaluate(&mut env, monitor, &burns(0.0)).len(), 1);
        env.run_for(SimDuration::from_secs(30));
        assert_eq!(scaler.evaluate(&mut env, monitor, &burns(0.0)).len(), 1);
        assert_eq!(planned(&mut env, monitor), 1);
        env.run_for(SimDuration::from_secs(30));
        assert!(scaler.evaluate(&mut env, monitor, &burns(0.0)).is_empty());
        assert_eq!(env.metrics.get(keys::ACTIONS_DOWN), 2);
        assert_eq!(scaler.actions().len(), 4);
    }

    #[test]
    fn unwatched_services_and_unknown_elements_are_ignored() {
        let (mut env, monitor) = world();
        let mut scaler = AutoScaler::new(AutoScalerConfig::default());
        scaler.watch("S", "net", "ghost-element");
        // Unknown element: planned_of is None → skipped, no panic.
        assert!(scaler.evaluate(&mut env, monitor, &burns(9.0)).is_empty());
        // Service never watched at all.
        let other = vec![("other".to_string(), 9.0, 9.0)];
        assert!(scaler.evaluate(&mut env, monitor, &other).is_empty());
        assert_eq!(env.metrics.get(keys::ACTIONS_UP), 0);
    }
}
