//! Service factories — how a cybernode turns a service element into a
//! running service instance.
//!
//! Rio's cybernode downloads and instantiates service beans; here, the
//! deployer registers a [`ServiceFactory`] per `type_key` and the
//! cybernode invokes it when the provision monitor places an element. The
//! SenSORCER core registers its composite-sensor factory this way, which
//! is what makes §VI step 3 ("provisioned a new composite service on to
//! the network") work.

use std::collections::BTreeMap;
use std::rc::Rc;

use sensorcer_sim::env::{Env, ServiceId};
use sensorcer_sim::topology::HostId;

use crate::opstring::ServiceElement;

/// A successfully instantiated service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvisionedService {
    /// Sim-level handle of the new service object.
    pub service: ServiceId,
    /// Unique instance name (element name, suffixed for replicas).
    pub instance: String,
    /// The element this instance realizes.
    pub element: String,
    /// Where it runs.
    pub host: HostId,
}

/// Instantiates service objects for one element type.
pub trait ServiceFactory {
    /// Create and deploy a service instance on `host`. Implementations
    /// typically `env.deploy(...)` the object and register it with the
    /// lookup service before returning its id.
    fn create(
        &self,
        env: &mut Env,
        host: HostId,
        element: &ServiceElement,
        instance: &str,
    ) -> Result<ServiceId, String>;
}

/// Adapter: any closure is a factory.
pub struct FnFactory<F>(pub F);

impl<F> ServiceFactory for FnFactory<F>
where
    F: Fn(&mut Env, HostId, &ServiceElement, &str) -> Result<ServiceId, String>,
{
    fn create(
        &self,
        env: &mut Env,
        host: HostId,
        element: &ServiceElement,
        instance: &str,
    ) -> Result<ServiceId, String> {
        (self.0)(env, host, element, instance)
    }
}

/// Registry mapping `type_key` → factory. Cloneable (shared `Rc`s) so the
/// monitor can hand it into cybernode calls.
#[derive(Clone, Default)]
pub struct FactoryRegistry {
    factories: BTreeMap<String, Rc<dyn ServiceFactory>>,
}

impl FactoryRegistry {
    pub fn new() -> FactoryRegistry {
        FactoryRegistry::default()
    }

    /// Register a factory for `type_key`, replacing any previous one.
    pub fn register(&mut self, type_key: impl Into<String>, factory: Rc<dyn ServiceFactory>) {
        self.factories.insert(type_key.into(), factory);
    }

    /// Register a closure factory.
    pub fn register_fn<F>(&mut self, type_key: impl Into<String>, f: F)
    where
        F: Fn(&mut Env, HostId, &ServiceElement, &str) -> Result<ServiceId, String> + 'static,
    {
        self.register(type_key, Rc::new(FnFactory(f)));
    }

    pub fn get(&self, type_key: &str) -> Option<Rc<dyn ServiceFactory>> {
        self.factories.get(type_key).cloned()
    }

    pub fn keys(&self) -> Vec<&str> {
        self.factories.keys().map(String::as_str).collect()
    }
}

impl std::fmt::Debug for FactoryRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FactoryRegistry")
            .field("keys", &self.keys())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorcer_sim::prelude::*;

    struct Dummy;

    #[test]
    fn closure_factory_creates_services() {
        let mut env = Env::with_seed(1);
        let host = env.add_host("h", HostKind::Server);
        let mut reg = FactoryRegistry::new();
        reg.register_fn("dummy", |env, host, _el, instance| {
            Ok(env.deploy(host, instance.to_string(), Dummy))
        });
        let el = ServiceElement::singleton("svc", "dummy");
        let factory = reg.get("dummy").unwrap();
        let id = factory.create(&mut env, host, &el, "svc-1").unwrap();
        assert_eq!(env.service_name(id), Some("svc-1"));
        assert!(reg.get("missing").is_none());
        assert_eq!(reg.keys(), vec!["dummy"]);
    }

    #[test]
    fn factory_errors_propagate() {
        let mut env = Env::with_seed(2);
        let host = env.add_host("h", HostKind::Server);
        let mut reg = FactoryRegistry::new();
        reg.register_fn("broken", |_env, _host, _el, _i| Err("nope".to_string()));
        let el = ServiceElement::singleton("svc", "broken");
        let err = reg
            .get("broken")
            .unwrap()
            .create(&mut env, host, &el, "svc-1")
            .unwrap_err();
        assert_eq!(err, "nope");
    }

    #[test]
    fn registry_clone_shares_factories() {
        let mut reg = FactoryRegistry::new();
        reg.register_fn("a", |_e, _h, _el, _i| Err("x".into()));
        let clone = reg.clone();
        assert!(clone.get("a").is_some());
    }
}
