//! Operational strings — Rio's deployment descriptors.
//!
//! "The Rio provisioning framework provides a model to dynamically
//! instantiate, monitor and manage service components as described in a
//! deployment descriptor called an Operational-String" (§IV.C). An
//! [`OperationalString`] lists [`ServiceElement`]s with planned instance
//! counts and QoS requirements; the provision monitor keeps actual counts
//! equal to planned counts.

use std::collections::BTreeMap;

use crate::qos::QosRequirements;

/// One deployable service kind within an opstring.
#[derive(Clone, PartialEq, Debug)]
pub struct ServiceElement {
    /// Deployment name (instances get `name`, `name-2`, ... as needed).
    pub name: String,
    /// Factory key: which registered service factory instantiates this
    /// element (e.g. `"composite-sensor"`).
    pub type_key: String,
    /// How many instances the monitor must keep alive.
    pub planned: u32,
    /// At most this many instances per cybernode (Rio's per-node cap).
    pub max_per_node: u32,
    pub qos: QosRequirements,
    /// Free-form configuration handed to the factory (e.g. the compute
    /// expression and child names for a provisioned composite).
    pub config: BTreeMap<String, String>,
}

impl ServiceElement {
    /// A single-instance element with modest QoS.
    pub fn singleton(name: impl Into<String>, type_key: impl Into<String>) -> ServiceElement {
        ServiceElement {
            name: name.into(),
            type_key: type_key.into(),
            planned: 1,
            max_per_node: 1,
            qos: QosRequirements::modest(),
            config: BTreeMap::new(),
        }
    }

    pub fn with_planned(mut self, n: u32) -> Self {
        self.planned = n;
        self
    }

    pub fn with_max_per_node(mut self, n: u32) -> Self {
        self.max_per_node = n;
        self
    }

    pub fn with_qos(mut self, qos: QosRequirements) -> Self {
        self.qos = qos;
        self
    }

    pub fn with_config(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.config.insert(key.into(), value.into());
        self
    }

    /// Validate the element definition.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("service element needs a name".into());
        }
        if self.type_key.is_empty() {
            return Err(format!("element '{}' needs a factory type key", self.name));
        }
        if self.planned == 0 {
            return Err(format!("element '{}' plans zero instances", self.name));
        }
        if self.max_per_node == 0 {
            return Err(format!(
                "element '{}' allows zero instances per node",
                self.name
            ));
        }
        Ok(())
    }
}

/// A named collection of service elements deployed and managed together.
#[derive(Clone, PartialEq, Debug)]
pub struct OperationalString {
    pub name: String,
    pub elements: Vec<ServiceElement>,
}

impl OperationalString {
    pub fn new(name: impl Into<String>) -> OperationalString {
        OperationalString {
            name: name.into(),
            elements: Vec::new(),
        }
    }

    pub fn with_element(mut self, element: ServiceElement) -> Self {
        self.elements.push(element);
        self
    }

    /// Total planned instances across all elements.
    pub fn total_planned(&self) -> u32 {
        self.elements.iter().map(|e| e.planned).sum()
    }

    /// Validate the whole opstring (non-empty, unique element names, valid
    /// elements).
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("operational string needs a name".into());
        }
        if self.elements.is_empty() {
            return Err(format!("opstring '{}' has no elements", self.name));
        }
        let mut seen = std::collections::BTreeSet::new();
        for e in &self.elements {
            e.validate()?;
            if !seen.insert(&e.name) {
                return Err(format!("duplicate element name '{}'", e.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let os = OperationalString::new("sensor-net").with_element(
            ServiceElement::singleton("New-Composite", "composite-sensor")
                .with_planned(2)
                .with_max_per_node(1)
                .with_config("expression", "(a + b)/2"),
        );
        assert_eq!(os.total_planned(), 2);
        assert!(os.validate().is_ok());
        assert_eq!(os.elements[0].config["expression"], "(a + b)/2");
    }

    #[test]
    fn validation_failures() {
        assert!(
            OperationalString::new("x").validate().is_err(),
            "no elements"
        );
        assert!(OperationalString::new("")
            .with_element(ServiceElement::singleton("a", "t"))
            .validate()
            .is_err());
        let dup = OperationalString::new("x")
            .with_element(ServiceElement::singleton("a", "t"))
            .with_element(ServiceElement::singleton("a", "t"));
        assert!(dup.validate().is_err());
        assert!(ServiceElement::singleton("", "t").validate().is_err());
        assert!(ServiceElement::singleton("a", "").validate().is_err());
        assert!(ServiceElement::singleton("a", "t")
            .with_planned(0)
            .validate()
            .is_err());
        assert!(ServiceElement::singleton("a", "t")
            .with_max_per_node(0)
            .validate()
            .is_err());
    }
}
