//! The provision monitor — Rio's deployment brain.
//!
//! Keeps every [`OperationalString`]'s actual instance count equal to its
//! planned count: places elements on QoS-matching cybernodes via the
//! configured [`AllocationPolicy`], watches instances with a heartbeat
//! timer, and re-provisions onto a different node when one fails — the
//! paper's "fault tolerance achieved by dynamically allocating the service
//! to a different compute node (cyber node), if the original node fails"
//! (§IV.C).

use std::collections::BTreeMap;

use sensorcer_sim::env::{Env, ServiceId};
use sensorcer_sim::time::{SimDuration, SimTime};
use sensorcer_sim::topology::{HostId, NetError};
use sensorcer_sim::trace::{Outcome, SpanId};
use sensorcer_sim::wire::ProtocolStack;

use sensorcer_registry::attributes::Entry;
use sensorcer_registry::ids::{interfaces, SvcUuid};
use sensorcer_registry::item::{ServiceItem, ServiceTemplate};
use sensorcer_registry::lus::LusHandle;

use crate::cybernode::CybernodeHandle;
use crate::factory::{FactoryRegistry, ProvisionedService};
use crate::opstring::{OperationalString, ServiceElement};
use crate::policy::{AllocationPolicy, Candidate};

/// Provisioning failures surfaced to the deployer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProvisionError {
    /// The opstring failed validation.
    Invalid(String),
    /// No factory registered for an element's `type_key`.
    UnknownFactory(String),
    /// No cybernode satisfies the element's QoS (or all attempts failed).
    NoCandidate(String),
    /// The named opstring is not deployed.
    UnknownOpstring(String),
    /// The named opstring is already deployed.
    AlreadyDeployed(String),
}

impl std::fmt::Display for ProvisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProvisionError::Invalid(e) => write!(f, "invalid opstring: {e}"),
            ProvisionError::UnknownFactory(k) => write!(f, "no factory for type '{k}'"),
            ProvisionError::NoCandidate(e) => write!(f, "no capable cybernode for element '{e}'"),
            ProvisionError::UnknownOpstring(n) => write!(f, "opstring '{n}' is not deployed"),
            ProvisionError::AlreadyDeployed(n) => write!(f, "opstring '{n}' is already deployed"),
        }
    }
}

impl std::error::Error for ProvisionError {}

/// What happened to an instance, for the event log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProvisionEventKind {
    /// Placed on a node.
    Deployed { node: HostId },
    /// Moved from a failed node to a new one.
    Failover { from: HostId, to: HostId },
    /// Planned but currently unplaceable; will be retried.
    Pending,
    /// Torn down.
    Undeployed,
}

/// One entry in the monitor's event log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvisionEvent {
    pub at: SimTime,
    pub opstring: String,
    pub element: String,
    pub instance: String,
    pub kind: ProvisionEventKind,
}

/// A live placed instance.
#[derive(Clone, Debug)]
pub struct InstanceRecord {
    pub element: String,
    pub instance: String,
    pub node: CybernodeHandle,
    pub service: ServiceId,
}

/// A managed opstring. Fields are private: the instance list and pending
/// queue are state-machine state only `check`/`place` may move.
#[derive(Debug)]
pub struct Deployment {
    opstring: OperationalString,
    instances: Vec<InstanceRecord>,
    /// Instances planned but currently unplaced (retried each check),
    /// with the node that last hosted them so a rebooted node's stale
    /// copy can be cleaned up before re-placement.
    pending: Vec<(String, Option<CybernodeHandle>)>,
}

impl Deployment {
    fn element(&self, name: &str) -> Option<&ServiceElement> {
        self.opstring.elements.iter().find(|e| e.name == name)
    }

    /// Element an instance name belongs to (`name` or `name-k`).
    fn element_of_instance(&self, instance: &str) -> Option<&ServiceElement> {
        self.opstring
            .elements
            .iter()
            .find(|e| instance == e.name || instance.starts_with(&format!("{}-", e.name)))
    }
}

/// Lifecycle entity id for `opstring/instance` (FNV-1a, stable across
/// runs so the verifier can correlate transitions).
pub fn provision_entity(opstring: &str, instance: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in opstring.bytes().chain([b'/']).chain(instance.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// The monitor service.
pub struct ProvisionMonitor {
    host: HostId,
    policy: AllocationPolicy,
    factories: FactoryRegistry,
    cybernodes: Vec<CybernodeHandle>,
    rr_cursor: usize,
    deployments: BTreeMap<String, Deployment>,
    events: Vec<ProvisionEvent>,
    failovers_total: u64,
}

impl ProvisionMonitor {
    pub fn new(host: HostId, policy: AllocationPolicy, factories: FactoryRegistry) -> Self {
        ProvisionMonitor {
            host,
            policy,
            factories,
            cybernodes: Vec::new(),
            rr_cursor: 0,
            deployments: BTreeMap::new(),
            events: Vec::new(),
            failovers_total: 0,
        }
    }

    /// Deploy a monitor on `host` with a heartbeat check every
    /// `heartbeat`; registers with `lus` when given.
    pub fn deploy(
        env: &mut Env,
        host: HostId,
        name: &str,
        policy: AllocationPolicy,
        factories: FactoryRegistry,
        lus: Option<LusHandle>,
        heartbeat: SimDuration,
    ) -> MonitorHandle {
        let service = env.deploy(host, name, ProvisionMonitor::new(host, policy, factories));
        if let Some(lus) = lus {
            let item = ServiceItem::new(
                SvcUuid::NIL,
                host,
                service,
                vec![interfaces::PROVISION_MONITOR.into()],
                vec![
                    Entry::Name(name.to_string()),
                    Entry::ServiceType("MONITOR".into()),
                ],
            );
            let _ = lus.register(env, host, item, None);
        }
        env.schedule_every(heartbeat, heartbeat, move |env| {
            env.with_service(service, |env, m: &mut ProvisionMonitor| m.check(env))
                .is_ok()
        });
        MonitorHandle { service, host }
    }

    /// Make a cybernode available for placement.
    pub fn register_cybernode(&mut self, node: CybernodeHandle) {
        if !self.cybernodes.contains(&node) {
            self.cybernodes.push(node);
        }
    }

    /// Discover cybernodes from a lookup service and register them.
    pub fn discover_cybernodes(&mut self, env: &mut Env, lus: LusHandle) -> usize {
        let found = lus
            .lookup(
                env,
                self.host,
                &ServiceTemplate::by_interface(interfaces::CYBERNODE),
                usize::MAX,
            )
            .unwrap_or_default();
        let mut added = 0;
        for item in found {
            let handle = CybernodeHandle {
                service: item.service,
                host: item.host,
            };
            if !self.cybernodes.contains(&handle) {
                self.cybernodes.push(handle);
                added += 1;
            }
        }
        added
    }

    pub fn cybernode_count(&self) -> usize {
        self.cybernodes.len()
    }

    /// The host this monitor runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    pub fn policy(&self) -> AllocationPolicy {
        self.policy
    }

    /// Register an additional factory after construction.
    pub fn register_factory(
        &mut self,
        type_key: impl Into<String>,
        factory: std::rc::Rc<dyn crate::factory::ServiceFactory>,
    ) {
        self.factories.register(type_key, factory);
    }

    /// Deploy an opstring: place every planned instance. On a placement
    /// failure everything placed so far is rolled back and the error
    /// returned (the all-or-nothing flavour keeps tests crisp; pending
    /// retry still applies to *failover*, not initial deploy).
    pub fn deploy_opstring(
        &mut self,
        env: &mut Env,
        opstring: OperationalString,
    ) -> Result<Vec<ProvisionedService>, ProvisionError> {
        let span = if env.tracing_enabled() {
            let label = opstring.name.clone();
            let s = env.span_start("provision.deploy", &label, self.host);
            env.span_field(s, "elements", opstring.elements.len());
            s
        } else {
            SpanId::INVALID
        };
        let result = self.deploy_opstring_inner(env, opstring);
        if span.is_valid() {
            match &result {
                Ok(placed) => env.span_field(span, "placed", placed.len()),
                Err(e) => env.span_field(span, "error", e.to_string()),
            }
        }
        env.span_end(
            span,
            if result.is_ok() {
                Outcome::Ok
            } else {
                Outcome::Error
            },
        );
        result
    }

    fn deploy_opstring_inner(
        &mut self,
        env: &mut Env,
        opstring: OperationalString,
    ) -> Result<Vec<ProvisionedService>, ProvisionError> {
        opstring.validate().map_err(ProvisionError::Invalid)?;
        if self.deployments.contains_key(&opstring.name) {
            return Err(ProvisionError::AlreadyDeployed(opstring.name));
        }
        let mut placed: Vec<InstanceRecord> = Vec::new();
        let mut results = Vec::new();
        for element in &opstring.elements {
            if self.factories.get(&element.type_key).is_none() {
                self.rollback(env, &opstring.name, &placed);
                return Err(ProvisionError::UnknownFactory(element.type_key.clone()));
            }
            for i in 0..element.planned {
                let instance = if element.planned == 1 {
                    element.name.clone()
                } else {
                    format!("{}-{}", element.name, i + 1)
                };
                match self.place(env, &opstring.name, element, &instance) {
                    Some(p) => {
                        env.lifecycle(
                            "provision",
                            provision_entity(&opstring.name, &instance),
                            "deploy",
                            p.host.0 as u64,
                        );
                        placed.push(InstanceRecord {
                            element: element.name.clone(),
                            instance: instance.clone(),
                            node: CybernodeHandle {
                                service: self.node_service_for(p.host),
                                host: p.host,
                            },
                            service: p.service,
                        });
                        results.push(p);
                    }
                    None => {
                        self.rollback(env, &opstring.name, &placed);
                        return Err(ProvisionError::NoCandidate(element.name.clone()));
                    }
                }
            }
        }
        self.deployments.insert(
            opstring.name.clone(),
            Deployment {
                opstring,
                instances: placed,
                pending: Vec::new(),
            },
        );
        Ok(results)
    }

    fn node_service_for(&self, host: HostId) -> ServiceId {
        self.cybernodes
            .iter()
            .find(|c| c.host == host)
            .map(|c| c.service)
            // lint:allow(unwrap): cybernodes register before any placement
            .expect("placement only happens on registered cybernodes")
    }

    fn rollback(&mut self, env: &mut Env, opstring: &str, placed: &[InstanceRecord]) {
        for rec in placed {
            let _ = rec.node.terminate(env, self.host, &rec.instance);
            env.lifecycle(
                "provision",
                provision_entity(opstring, &rec.instance),
                "undeploy",
                0,
            );
        }
    }

    /// Place one instance; returns `None` if every candidate refuses.
    fn place(
        &mut self,
        env: &mut Env,
        opstring: &str,
        element: &ServiceElement,
        instance: &str,
    ) -> Option<ProvisionedService> {
        let factory = self.factories.get(&element.type_key)?;
        // Build the feasible candidate list by querying each node (paying
        // the network cost of the utilization calls).
        let mut candidates: Vec<Candidate<CybernodeHandle>> = Vec::new();
        for node in self.cybernodes.clone() {
            let Ok((caps, reserved)) = node.utilization(env, self.host) else {
                continue;
            };
            if !element.qos.satisfied_by(&caps, reserved) {
                continue;
            }
            let Ok(count) = node.count_of(env, self.host, &element.name) else {
                continue;
            };
            if count >= element.max_per_node {
                continue;
            }
            candidates.push(Candidate {
                node,
                caps,
                reserved_mb: reserved,
            });
        }
        while !candidates.is_empty() {
            let idx = self
                .policy
                .select(&element.qos, &candidates, &mut self.rr_cursor)?;
            let chosen = candidates.remove(idx);
            match chosen
                .node
                .instantiate(env, self.host, element, instance, factory.clone())
            {
                Ok(Ok(p)) => {
                    self.events.push(ProvisionEvent {
                        at: env.now(),
                        opstring: opstring.to_string(),
                        element: element.name.clone(),
                        instance: instance.to_string(),
                        kind: ProvisionEventKind::Deployed {
                            node: chosen.node.host,
                        },
                    });
                    return Some(p);
                }
                // Refused or unreachable: try the next candidate.
                Ok(Err(_)) | Err(_) => continue,
            }
        }
        None
    }

    /// Undeploy an opstring, terminating all its instances.
    pub fn undeploy_opstring(&mut self, env: &mut Env, name: &str) -> Result<(), ProvisionError> {
        let dep = self
            .deployments
            .remove(name)
            .ok_or_else(|| ProvisionError::UnknownOpstring(name.to_string()))?;
        for rec in &dep.instances {
            let _ = rec.node.terminate(env, self.host, &rec.instance);
            self.events.push(ProvisionEvent {
                at: env.now(),
                opstring: name.to_string(),
                element: rec.element.clone(),
                instance: rec.instance.clone(),
                kind: ProvisionEventKind::Undeployed,
            });
            env.lifecycle(
                "provision",
                provision_entity(name, &rec.instance),
                "undeploy",
                0,
            );
        }
        Ok(())
    }

    /// Heartbeat pass: verify every instance is up; re-provision dead ones
    /// onto other nodes; retry pending placements.
    pub fn check(&mut self, env: &mut Env) {
        let names: Vec<String> = self.deployments.keys().cloned().collect();
        for name in names {
            // Take the deployment out to sidestep aliasing with `self`.
            let Some(mut dep) = self.deployments.remove(&name) else {
                continue;
            };

            // 1. Find dead instances.
            let mut survivors = Vec::new();
            let mut dead: Vec<InstanceRecord> = Vec::new();
            for rec in dep.instances.drain(..) {
                if env.is_service_up(rec.service) {
                    survivors.push(rec);
                } else {
                    dead.push(rec);
                }
            }
            dep.instances = survivors;

            // 2. Re-place dead instances. If the old node has come back up
            // (reboot), its stale copy still occupies the instance slot —
            // terminate it first so placement isn't refused by the
            // per-node cap.
            for rec in dead {
                let Some(element) = dep.element(&rec.element).cloned() else {
                    continue;
                };
                // Each re-placement is a `provision.failover` span: the
                // failed host, and where the instance landed (or pending).
                let span = if env.tracing_enabled() {
                    let s = env.span_start("provision.failover", &rec.instance, self.host);
                    env.span_field(s, "opstring", name.as_str());
                    env.span_field(s, "from_host", rec.node.host.0 as u64);
                    s
                } else {
                    SpanId::INVALID
                };
                let _ = rec.node.terminate(env, self.host, &rec.instance);
                match self.place(env, &name, &element, &rec.instance) {
                    Some(p) => {
                        self.failovers_total += 1;
                        if span.is_valid() {
                            env.span_field(span, "to_host", p.host.0 as u64);
                        }
                        env.span_end(span, Outcome::Ok);
                        self.events.push(ProvisionEvent {
                            at: env.now(),
                            opstring: name.clone(),
                            element: rec.element.clone(),
                            instance: rec.instance.clone(),
                            kind: ProvisionEventKind::Failover {
                                from: rec.node.host,
                                to: p.host,
                            },
                        });
                        env.lifecycle(
                            "provision",
                            provision_entity(&name, &rec.instance),
                            "failover",
                            p.host.0 as u64,
                        );
                        dep.instances.push(InstanceRecord {
                            element: rec.element,
                            instance: rec.instance,
                            node: CybernodeHandle {
                                service: self.node_service_for(p.host),
                                host: p.host,
                            },
                            service: p.service,
                        });
                    }
                    None => {
                        if span.is_valid() {
                            env.span_field(span, "pending", true);
                        }
                        env.span_end(span, Outcome::Degraded);
                        self.events.push(ProvisionEvent {
                            at: env.now(),
                            opstring: name.clone(),
                            element: rec.element.clone(),
                            instance: rec.instance.clone(),
                            kind: ProvisionEventKind::Pending,
                        });
                        env.lifecycle(
                            "provision",
                            provision_entity(&name, &rec.instance),
                            "pending",
                            0,
                        );
                        dep.pending.push((rec.instance, Some(rec.node)));
                    }
                }
            }

            // 3. Retry pending placements, cleaning up any stale copy on a
            // node that has since rebooted.
            let pending = std::mem::take(&mut dep.pending);
            for (instance, last_node) in pending {
                let Some(element) = dep.element_of_instance(&instance).cloned() else {
                    continue;
                };
                if let Some(node) = last_node {
                    let _ = node.terminate(env, self.host, &instance);
                }
                match self.place(env, &name, &element, &instance) {
                    Some(p) => {
                        env.lifecycle(
                            "provision",
                            provision_entity(&name, &instance),
                            "deploy",
                            p.host.0 as u64,
                        );
                        dep.instances.push(InstanceRecord {
                            element: element.name.clone(),
                            instance,
                            node: CybernodeHandle {
                                service: self.node_service_for(p.host),
                                host: p.host,
                            },
                            service: p.service,
                        });
                    }
                    None => dep.pending.push((instance, last_node)),
                }
            }

            self.deployments.insert(name, dep);
        }
    }

    /// The planned count of an element, if deployed.
    pub fn planned_of(&self, opstring: &str, element: &str) -> Option<u32> {
        self.deployments
            .get(opstring)?
            .element(element)
            .map(|e| e.planned)
    }

    /// Retarget an element's planned count and converge immediately: a
    /// raise places the new instances now (unplaceable ones go pending and
    /// are retried each heartbeat), a cut terminates surplus instances
    /// highest-index first. This is the autoscaler's actuator — the same
    /// opstring mutation an operator would make, minus redeploying.
    pub fn set_planned(
        &mut self,
        env: &mut Env,
        opstring: &str,
        element: &str,
        planned: u32,
    ) -> Result<(), ProvisionError> {
        if planned == 0 {
            return Err(ProvisionError::Invalid(format!(
                "element '{element}' cannot plan zero instances"
            )));
        }
        let Some(mut dep) = self.deployments.remove(opstring) else {
            return Err(ProvisionError::UnknownOpstring(opstring.to_string()));
        };
        let Some(pos) = dep.opstring.elements.iter().position(|e| e.name == element) else {
            let name = dep.opstring.name.clone();
            self.deployments.insert(name, dep);
            return Err(ProvisionError::Invalid(format!(
                "opstring '{opstring}' has no element '{element}'"
            )));
        };
        let old = dep.opstring.elements[pos].planned;
        dep.opstring.elements[pos].planned = planned;
        let el = dep.opstring.elements[pos].clone();

        if planned > old {
            for i in old..planned {
                let instance = format!("{}-{}", el.name, i + 1);
                match self.place(env, opstring, &el, &instance) {
                    Some(p) => {
                        env.lifecycle(
                            "provision",
                            provision_entity(opstring, &instance),
                            "deploy",
                            p.host.0 as u64,
                        );
                        dep.instances.push(InstanceRecord {
                            element: el.name.clone(),
                            instance,
                            node: CybernodeHandle {
                                service: self.node_service_for(p.host),
                                host: p.host,
                            },
                            service: p.service,
                        });
                    }
                    None => {
                        self.events.push(ProvisionEvent {
                            at: env.now(),
                            opstring: opstring.to_string(),
                            element: el.name.clone(),
                            instance: instance.clone(),
                            kind: ProvisionEventKind::Pending,
                        });
                        env.lifecycle(
                            "provision",
                            provision_entity(opstring, &instance),
                            "pending",
                            0,
                        );
                        dep.pending.push((instance, None));
                    }
                }
            }
        } else if planned < old {
            // Surplus pending slots are free capacity: drop those first.
            let mut surplus = (old - planned) as usize;
            let belongs = |n: &str| n == el.name || n.starts_with(&format!("{}-", el.name));
            while surplus > 0 {
                let Some(idx) = dep.pending.iter().rposition(|(n, _)| belongs(n)) else {
                    break;
                };
                dep.pending.remove(idx);
                surplus -= 1;
            }
            // Then terminate live instances, highest index first (the bare
            // `name` instance counts as index 1 and goes last).
            let index_of = |n: &str| -> u32 {
                n.rsplit('-')
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(1)
            };
            for _ in 0..surplus {
                let Some(idx) = dep
                    .instances
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.element == el.name)
                    .max_by_key(|(_, r)| index_of(&r.instance))
                    .map(|(i, _)| i)
                else {
                    break;
                };
                let rec = dep.instances.remove(idx);
                let _ = rec.node.terminate(env, self.host, &rec.instance);
                self.events.push(ProvisionEvent {
                    at: env.now(),
                    opstring: opstring.to_string(),
                    element: rec.element.clone(),
                    instance: rec.instance.clone(),
                    kind: ProvisionEventKind::Undeployed,
                });
                env.lifecycle(
                    "provision",
                    provision_entity(opstring, &rec.instance),
                    "undeploy",
                    0,
                );
            }
        }
        self.deployments.insert(dep.opstring.name.clone(), dep);
        Ok(())
    }

    /// The live instances of an opstring.
    pub fn instances(&self, opstring: &str) -> Vec<InstanceRecord> {
        self.deployments
            .get(opstring)
            .map(|d| d.instances.clone())
            .unwrap_or_default()
    }

    pub fn events(&self) -> &[ProvisionEvent] {
        &self.events
    }

    pub fn failovers_total(&self) -> u64 {
        self.failovers_total
    }
}

impl std::fmt::Debug for ProvisionMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProvisionMonitor")
            .field("host", &self.host)
            .field("policy", &self.policy)
            .field("cybernodes", &self.cybernodes.len())
            .field("deployments", &self.deployments.len())
            .finish()
    }
}

/// Remote handle to a deployed monitor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MonitorHandle {
    pub service: ServiceId,
    pub host: HostId,
}

impl MonitorHandle {
    /// Remote opstring deployment (requestor → monitor).
    pub fn deploy_opstring(
        &self,
        env: &mut Env,
        from: HostId,
        opstring: OperationalString,
    ) -> Result<Result<Vec<ProvisionedService>, ProvisionError>, NetError> {
        let req = 200
            + opstring
                .elements
                .iter()
                .map(|e| e.name.len() + e.type_key.len() + 64)
                .sum::<usize>();
        env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            req,
            move |env, m: &mut ProvisionMonitor| (m.deploy_opstring(env, opstring), 96),
        )
    }

    /// Remote undeploy.
    pub fn undeploy_opstring(
        &self,
        env: &mut Env,
        from: HostId,
        name: &str,
    ) -> Result<Result<(), ProvisionError>, NetError> {
        let name = name.to_string();
        env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            64,
            move |env, m: &mut ProvisionMonitor| (m.undeploy_opstring(env, &name), 8),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cybernode::Cybernode;
    use crate::qos::{QosCapabilities, QosRequirements};
    use sensorcer_sim::prelude::*;

    struct Bean;

    struct World {
        env: Env,
        monitor: MonitorHandle,
        nodes: Vec<CybernodeHandle>,
        client: HostId,
    }

    fn setup(node_count: usize, policy: AllocationPolicy) -> World {
        let mut env = Env::with_seed(1);
        let mon_host = env.add_host("monitor", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        let mut factories = FactoryRegistry::new();
        factories.register_fn("bean", |env, host, _el, instance| {
            Ok(env.deploy(host, instance.to_string(), Bean))
        });
        let monitor = ProvisionMonitor::deploy(
            &mut env,
            mon_host,
            "Monitor",
            policy,
            factories,
            None,
            SimDuration::from_secs(1),
        );
        let mut nodes = Vec::new();
        for i in 0..node_count {
            let h = env.add_host(format!("node{i}"), HostKind::Server);
            let n = Cybernode::deploy(
                &mut env,
                h,
                &format!("Cybernode-{i}"),
                QosCapabilities::lab_server(),
                None,
            );
            env.with_service(monitor.service, |_e, m: &mut ProvisionMonitor| {
                m.register_cybernode(n)
            })
            .unwrap();
            nodes.push(n);
        }
        World {
            env,
            monitor,
            nodes,
            client,
        }
    }

    fn opstring(n_planned: u32) -> OperationalString {
        OperationalString::new("net").with_element(
            ServiceElement::singleton("svc", "bean")
                .with_planned(n_planned)
                .with_max_per_node(10)
                .with_qos(QosRequirements {
                    memory_mb: 64,
                    ..Default::default()
                }),
        )
    }

    #[test]
    fn deploys_singleton() {
        let mut w = setup(2, AllocationPolicy::LeastUtilized);
        let placed = w
            .monitor
            .deploy_opstring(&mut w.env, w.client, opstring(1))
            .unwrap()
            .unwrap();
        assert_eq!(placed.len(), 1);
        assert!(w.env.is_service_up(placed[0].service));
    }

    #[test]
    fn replicas_spread_with_least_utilized() {
        let mut w = setup(3, AllocationPolicy::LeastUtilized);
        let placed = w
            .monitor
            .deploy_opstring(&mut w.env, w.client, opstring(3))
            .unwrap()
            .unwrap();
        let hosts: std::collections::BTreeSet<HostId> = placed.iter().map(|p| p.host).collect();
        assert_eq!(hosts.len(), 3, "least-utilized must spread replicas");
    }

    #[test]
    fn max_per_node_forces_spread_even_with_best_fit() {
        let mut w = setup(3, AllocationPolicy::BestFit);
        let os = OperationalString::new("net").with_element(
            ServiceElement::singleton("svc", "bean")
                .with_planned(3)
                .with_max_per_node(1),
        );
        let placed = w
            .monitor
            .deploy_opstring(&mut w.env, w.client, os)
            .unwrap()
            .unwrap();
        let hosts: std::collections::BTreeSet<HostId> = placed.iter().map(|p| p.host).collect();
        assert_eq!(hosts.len(), 3);
    }

    #[test]
    fn no_capable_node_rolls_back() {
        let mut w = setup(1, AllocationPolicy::LeastUtilized);
        let os = OperationalString::new("net").with_element(
            ServiceElement::singleton("svc", "bean")
                .with_planned(2)
                .with_max_per_node(1), // second replica cannot fit anywhere
        );
        let err = w
            .monitor
            .deploy_opstring(&mut w.env, w.client, os)
            .unwrap()
            .unwrap_err();
        assert_eq!(err, ProvisionError::NoCandidate("svc".into()));
        // Rollback: the node hosts nothing.
        w.env
            .with_service(w.nodes[0].service, |_e, n: &mut Cybernode| {
                assert_eq!(n.hosted().count(), 0);
            })
            .unwrap();
    }

    #[test]
    fn unknown_factory_and_duplicate_errors() {
        let mut w = setup(1, AllocationPolicy::LeastUtilized);
        let os = OperationalString::new("net")
            .with_element(ServiceElement::singleton("svc", "no-such-factory"));
        let err = w
            .monitor
            .deploy_opstring(&mut w.env, w.client, os)
            .unwrap()
            .unwrap_err();
        assert_eq!(
            err,
            ProvisionError::UnknownFactory("no-such-factory".into())
        );

        w.monitor
            .deploy_opstring(&mut w.env, w.client, opstring(1))
            .unwrap()
            .unwrap();
        let err = w
            .monitor
            .deploy_opstring(&mut w.env, w.client, opstring(1))
            .unwrap()
            .unwrap_err();
        assert_eq!(err, ProvisionError::AlreadyDeployed("net".into()));
    }

    #[test]
    fn failover_moves_instance_to_surviving_node() {
        let mut w = setup(2, AllocationPolicy::LeastUtilized);
        let placed = w
            .monitor
            .deploy_opstring(&mut w.env, w.client, opstring(1))
            .unwrap()
            .unwrap();
        let original_host = placed[0].host;
        w.env.crash_host(original_host);
        // The heartbeat (1 s) must detect and re-provision.
        w.env.run_for(SimDuration::from_secs(3));
        let instances = w
            .env
            .with_service(w.monitor.service, |_e, m: &mut ProvisionMonitor| {
                m.instances("net")
            })
            .unwrap();
        assert_eq!(instances.len(), 1);
        assert_ne!(
            instances[0].node.host, original_host,
            "must move to the other node"
        );
        assert!(w.env.is_service_up(instances[0].service));
        w.env
            .with_service(w.monitor.service, |_e, m: &mut ProvisionMonitor| {
                assert_eq!(m.failovers_total(), 1);
                assert!(m
                    .events()
                    .iter()
                    .any(|e| matches!(e.kind, ProvisionEventKind::Failover { .. })));
            })
            .unwrap();
    }

    #[test]
    fn unplaceable_failover_goes_pending_then_recovers() {
        let mut w = setup(1, AllocationPolicy::LeastUtilized);
        w.monitor
            .deploy_opstring(&mut w.env, w.client, opstring(1))
            .unwrap()
            .unwrap();
        let node_host = w.nodes[0].host;
        w.env.crash_host(node_host);
        w.env.run_for(SimDuration::from_secs(3));
        w.env
            .with_service(w.monitor.service, |_e, m: &mut ProvisionMonitor| {
                assert_eq!(m.instances("net").len(), 0);
                assert!(m
                    .events()
                    .iter()
                    .any(|e| e.kind == ProvisionEventKind::Pending));
            })
            .unwrap();
        // Node comes back: pending placement is retried. (The cybernode's
        // state survived the crash — same machine rebooted.)
        w.env.restart_host(node_host);
        w.env.run_for(SimDuration::from_secs(3));
        let instances = w
            .env
            .with_service(w.monitor.service, |_e, m: &mut ProvisionMonitor| {
                m.instances("net")
            })
            .unwrap();
        assert_eq!(
            instances.len(),
            1,
            "pending instance must be placed on recovery"
        );
    }

    #[test]
    fn undeploy_terminates_instances() {
        let mut w = setup(2, AllocationPolicy::RoundRobin);
        let placed = w
            .monitor
            .deploy_opstring(&mut w.env, w.client, opstring(2))
            .unwrap()
            .unwrap();
        w.monitor
            .undeploy_opstring(&mut w.env, w.client, "net")
            .unwrap()
            .unwrap();
        for p in placed {
            assert!(!w.env.is_service_up(p.service) || w.env.service_host(p.service).is_none());
        }
        let err = w
            .monitor
            .undeploy_opstring(&mut w.env, w.client, "net")
            .unwrap()
            .unwrap_err();
        assert_eq!(err, ProvisionError::UnknownOpstring("net".into()));
    }

    #[test]
    fn set_planned_scales_up_and_back_down() {
        let mut w = setup(3, AllocationPolicy::LeastUtilized);
        w.monitor
            .deploy_opstring(&mut w.env, w.client, opstring(1))
            .unwrap()
            .unwrap();
        w.env
            .with_service(w.monitor.service, |env, m: &mut ProvisionMonitor| {
                assert_eq!(m.planned_of("net", "svc"), Some(1));
                m.set_planned(env, "net", "svc", 3).unwrap();
                assert_eq!(m.planned_of("net", "svc"), Some(3));
                let mut names: Vec<String> = m
                    .instances("net")
                    .iter()
                    .map(|r| r.instance.clone())
                    .collect();
                names.sort();
                assert_eq!(names, vec!["svc", "svc-2", "svc-3"]);

                // Cut back: highest indices terminated first, the original
                // singleton survives.
                m.set_planned(env, "net", "svc", 1).unwrap();
                let live = m.instances("net");
                assert_eq!(live.len(), 1);
                assert_eq!(live[0].instance, "svc");
                assert!(m
                    .events()
                    .iter()
                    .any(|e| e.kind == ProvisionEventKind::Undeployed && e.instance == "svc-3"));
            })
            .unwrap();
    }

    #[test]
    fn set_planned_rejects_bad_targets_and_goes_pending_when_full() {
        let mut w = setup(1, AllocationPolicy::LeastUtilized);
        let os = OperationalString::new("net").with_element(
            ServiceElement::singleton("svc", "bean")
                .with_planned(1)
                .with_max_per_node(1),
        );
        w.monitor
            .deploy_opstring(&mut w.env, w.client, os)
            .unwrap()
            .unwrap();
        w.env
            .with_service(w.monitor.service, |env, m: &mut ProvisionMonitor| {
                assert!(matches!(
                    m.set_planned(env, "net", "svc", 0),
                    Err(ProvisionError::Invalid(_))
                ));
                assert!(matches!(
                    m.set_planned(env, "ghost", "svc", 2),
                    Err(ProvisionError::UnknownOpstring(_))
                ));
                assert!(matches!(
                    m.set_planned(env, "net", "ghost", 2),
                    Err(ProvisionError::Invalid(_))
                ));
                // The single node is at its per-element cap: the raise
                // sticks, but the extra instance parks as pending.
                m.set_planned(env, "net", "svc", 2).unwrap();
                assert_eq!(m.instances("net").len(), 1);
                assert!(m
                    .events()
                    .iter()
                    .any(|e| e.kind == ProvisionEventKind::Pending));
                // Cutting back consumes the pending slot, not the live one.
                m.set_planned(env, "net", "svc", 1).unwrap();
                assert_eq!(m.instances("net").len(), 1);
            })
            .unwrap();
        // A later heartbeat must not resurrect the cancelled pending slot.
        w.env.run_for(SimDuration::from_secs(3));
        w.env
            .with_service(w.monitor.service, |_e, m: &mut ProvisionMonitor| {
                assert_eq!(m.instances("net").len(), 1);
            })
            .unwrap();
    }

    #[test]
    fn discovery_registers_cybernodes_from_lus() {
        let mut env = Env::with_seed(5);
        let lab = env.add_host("lab", HostKind::Server);
        let lus = sensorcer_registry::lus::LookupService::deploy(
            &mut env,
            lab,
            "LUS",
            "public",
            sensorcer_registry::lease::LeasePolicy::default(),
            SimDuration::from_millis(500),
        );
        for i in 0..3 {
            let h = env.add_host(format!("n{i}"), HostKind::Server);
            Cybernode::deploy(
                &mut env,
                h,
                &format!("Cyb-{i}"),
                QosCapabilities::lab_server(),
                Some(lus),
            );
        }
        let monitor = ProvisionMonitor::deploy(
            &mut env,
            lab,
            "Monitor",
            AllocationPolicy::LeastUtilized,
            FactoryRegistry::new(),
            Some(lus),
            SimDuration::from_secs(1),
        );
        let added = env
            .with_service(monitor.service, |env, m: &mut ProvisionMonitor| {
                m.discover_cybernodes(env, lus)
            })
            .unwrap();
        assert_eq!(added, 3);
        // Idempotent.
        let again = env
            .with_service(monitor.service, |env, m: &mut ProvisionMonitor| {
                m.discover_cybernodes(env, lus)
            })
            .unwrap();
        assert_eq!(again, 0);
    }
}
