//! Cybernodes — Rio's compute nodes.
//!
//! "Dynamic network formation of sensors in SenSORCER dynamically
//! allocates a CSP to the capable cybernode (the Rio compute node) with
//! operational specifications provided by the requestor" (§V.B). A
//! [`Cybernode`] advertises its [`QosCapabilities`], accepts instantiation
//! requests from the provision monitor, tracks its memory reservations,
//! and tears services down on request.

use std::collections::BTreeMap;
use std::rc::Rc;

use sensorcer_sim::env::{Env, ServiceId};
use sensorcer_sim::topology::{HostId, NetError};
use sensorcer_sim::wire::ProtocolStack;

use sensorcer_registry::attributes::Entry;
use sensorcer_registry::ids::{interfaces, SvcUuid};
use sensorcer_registry::item::ServiceItem;
use sensorcer_registry::lus::LusHandle;

use crate::factory::{ProvisionedService, ServiceFactory};
use crate::opstring::ServiceElement;
use crate::qos::QosCapabilities;

/// One instance the cybernode is hosting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostedInstance {
    pub instance: String,
    pub element: String,
    pub service: ServiceId,
    pub memory_mb: u32,
}

/// Why an instantiation request was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CybernodeError {
    /// QoS no longer satisfiable (capacity taken since matching).
    InsufficientCapacity,
    /// Per-node instance cap for the element reached.
    ElementCapReached,
    /// The factory failed to build the service.
    FactoryFailed(String),
    /// Unknown instance name on terminate.
    UnknownInstance,
}

impl std::fmt::Display for CybernodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CybernodeError::InsufficientCapacity => f.write_str("insufficient capacity"),
            CybernodeError::ElementCapReached => f.write_str("per-node element cap reached"),
            CybernodeError::FactoryFailed(e) => write!(f, "factory failed: {e}"),
            CybernodeError::UnknownInstance => f.write_str("unknown instance"),
        }
    }
}

impl std::error::Error for CybernodeError {}

/// The compute-node service.
#[derive(Debug)]
pub struct Cybernode {
    pub host: HostId,
    caps: QosCapabilities,
    reserved_mb: u32,
    hosted: BTreeMap<String, HostedInstance>,
    instantiations_total: u64,
}

impl Cybernode {
    pub fn new(host: HostId, caps: QosCapabilities) -> Cybernode {
        Cybernode {
            host,
            caps,
            reserved_mb: 0,
            hosted: BTreeMap::new(),
            instantiations_total: 0,
        }
    }

    /// Deploy a cybernode on `host`; if `lus` is given, register it there
    /// (interface `Cybernode`) so monitors can discover it.
    pub fn deploy(
        env: &mut Env,
        host: HostId,
        name: &str,
        caps: QosCapabilities,
        lus: Option<LusHandle>,
    ) -> CybernodeHandle {
        let service = env.deploy(host, name, Cybernode::new(host, caps));
        if let Some(lus) = lus {
            let item = ServiceItem::new(
                SvcUuid::NIL,
                host,
                service,
                vec![interfaces::CYBERNODE.into()],
                vec![
                    Entry::Name(name.to_string()),
                    Entry::ServiceType("CYBERNODE".into()),
                ],
            );
            // Cybernodes are infrastructure: register with a long lease.
            let _ = lus.register(env, host, item, None);
        }
        CybernodeHandle { service, host }
    }

    pub fn capabilities(&self) -> &QosCapabilities {
        &self.caps
    }

    pub fn reserved_mb(&self) -> u32 {
        self.reserved_mb
    }

    /// Number of hosted instances of `element`.
    pub fn count_of(&self, element: &str) -> u32 {
        self.hosted
            .values()
            .filter(|h| h.element == element)
            .count() as u32
    }

    pub fn hosted(&self) -> impl Iterator<Item = &HostedInstance> {
        self.hosted.values()
    }

    pub fn instantiations_total(&self) -> u64 {
        self.instantiations_total
    }

    fn instantiate(
        &mut self,
        env: &mut Env,
        element: &ServiceElement,
        instance: &str,
        factory: Rc<dyn ServiceFactory>,
    ) -> Result<ProvisionedService, CybernodeError> {
        if !element.qos.satisfied_by(&self.caps, self.reserved_mb) {
            return Err(CybernodeError::InsufficientCapacity);
        }
        if self.count_of(&element.name) >= element.max_per_node {
            return Err(CybernodeError::ElementCapReached);
        }
        // Instantiation is not free: class loading / bean wiring.
        env.consume(sensorcer_sim::time::SimDuration::from_millis(20));
        let service = factory
            .create(env, self.host, element, instance)
            .map_err(CybernodeError::FactoryFailed)?;
        self.reserved_mb += element.qos.memory_mb;
        self.hosted.insert(
            instance.to_string(),
            HostedInstance {
                instance: instance.to_string(),
                element: element.name.clone(),
                service,
                memory_mb: element.qos.memory_mb,
            },
        );
        self.instantiations_total += 1;
        Ok(ProvisionedService {
            service,
            instance: instance.to_string(),
            element: element.name.clone(),
            host: self.host,
        })
    }

    fn terminate(&mut self, env: &mut Env, instance: &str) -> Result<(), CybernodeError> {
        let rec = self
            .hosted
            .remove(instance)
            .ok_or(CybernodeError::UnknownInstance)?;
        self.reserved_mb = self.reserved_mb.saturating_sub(rec.memory_mb);
        env.undeploy(rec.service);
        Ok(())
    }
}

/// Remote handle to a cybernode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CybernodeHandle {
    pub service: ServiceId,
    pub host: HostId,
}

impl CybernodeHandle {
    /// Ask the node to instantiate an element (monitor → node).
    pub fn instantiate(
        &self,
        env: &mut Env,
        from: HostId,
        element: &ServiceElement,
        instance: &str,
        factory: Rc<dyn ServiceFactory>,
    ) -> Result<Result<ProvisionedService, CybernodeError>, NetError> {
        let element = element.clone();
        let instance = instance.to_string();
        // The request carries the element descriptor (roughly its debug
        // size) — in Rio this is the serialized service bean config.
        let req = 160
            + element
                .config
                .iter()
                .map(|(k, v)| k.len() + v.len())
                .sum::<usize>();
        env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            req,
            move |env, node: &mut Cybernode| {
                (node.instantiate(env, &element, &instance, factory), 64)
            },
        )
    }

    /// Tear an instance down.
    pub fn terminate(
        &self,
        env: &mut Env,
        from: HostId,
        instance: &str,
    ) -> Result<Result<(), CybernodeError>, NetError> {
        let instance = instance.to_string();
        env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            48,
            move |env, node: &mut Cybernode| (node.terminate(env, &instance), 8),
        )
    }

    /// Fetch utilization for placement decisions.
    pub fn utilization(
        &self,
        env: &mut Env,
        from: HostId,
    ) -> Result<(QosCapabilities, u32), NetError> {
        env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            16,
            |_env, node: &mut Cybernode| ((node.caps.clone(), node.reserved_mb), 96),
        )
    }

    /// Heartbeat: is the node reachable and responding?
    pub fn ping(&self, env: &mut Env, from: HostId) -> Result<(), NetError> {
        env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            8,
            |_env, _node: &mut Cybernode| ((), 8),
        )
    }

    /// Per-element instance count (used by placement).
    pub fn count_of(&self, env: &mut Env, from: HostId, element: &str) -> Result<u32, NetError> {
        let element = element.to_string();
        env.call(
            from,
            self.service,
            ProtocolStack::Tcp,
            32,
            move |_env, node: &mut Cybernode| (node.count_of(&element), 8),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::FactoryRegistry;
    use crate::qos::QosRequirements;
    use sensorcer_sim::prelude::*;

    struct Bean;

    fn setup() -> (Env, HostId, HostId, CybernodeHandle, FactoryRegistry) {
        let mut env = Env::with_seed(1);
        let monitor = env.add_host("monitor", HostKind::Server);
        let node_host = env.add_host("node", HostKind::Server);
        let node = Cybernode::deploy(
            &mut env,
            node_host,
            "Cybernode",
            QosCapabilities::lab_server(),
            None,
        );
        let mut reg = FactoryRegistry::new();
        reg.register_fn("bean", |env, host, _el, instance| {
            Ok(env.deploy(host, instance.to_string(), Bean))
        });
        (env, monitor, node_host, node, reg)
    }

    #[test]
    fn instantiate_deploys_and_reserves() {
        let (mut env, monitor, node_host, node, reg) = setup();
        let el = ServiceElement::singleton("svc", "bean").with_qos(QosRequirements {
            memory_mb: 100,
            ..Default::default()
        });
        let p = node
            .instantiate(&mut env, monitor, &el, "svc", reg.get("bean").unwrap())
            .unwrap()
            .unwrap();
        assert_eq!(p.host, node_host);
        assert_eq!(env.service_name(p.service), Some("svc"));
        assert_eq!(node.count_of(&mut env, monitor, "svc").unwrap(), 1);
        env.with_service(node.service, |_e, n: &mut Cybernode| {
            assert_eq!(n.reserved_mb(), 100);
            assert_eq!(n.instantiations_total(), 1);
        })
        .unwrap();
    }

    #[test]
    fn per_node_cap_enforced() {
        let (mut env, monitor, _nh, node, reg) = setup();
        let el = ServiceElement::singleton("svc", "bean").with_max_per_node(1);
        node.instantiate(&mut env, monitor, &el, "svc", reg.get("bean").unwrap())
            .unwrap()
            .unwrap();
        let err = node
            .instantiate(&mut env, monitor, &el, "svc-2", reg.get("bean").unwrap())
            .unwrap()
            .unwrap_err();
        assert_eq!(err, CybernodeError::ElementCapReached);
    }

    #[test]
    fn capacity_exhaustion_refused() {
        let (mut env, monitor, _nh, node, reg) = setup();
        let big = ServiceElement::singleton("fat", "bean")
            .with_max_per_node(10)
            .with_qos(QosRequirements {
                memory_mb: 5000,
                ..Default::default()
            });
        node.instantiate(&mut env, monitor, &big, "fat-1", reg.get("bean").unwrap())
            .unwrap()
            .unwrap();
        let err = node
            .instantiate(&mut env, monitor, &big, "fat-2", reg.get("bean").unwrap())
            .unwrap()
            .unwrap_err();
        assert_eq!(
            err,
            CybernodeError::InsufficientCapacity,
            "8192 MB can't fit 2×5000"
        );
    }

    #[test]
    fn terminate_releases_capacity_and_undeploys() {
        let (mut env, monitor, _nh, node, reg) = setup();
        let el = ServiceElement::singleton("svc", "bean").with_qos(QosRequirements {
            memory_mb: 64,
            ..Default::default()
        });
        let p = node
            .instantiate(&mut env, monitor, &el, "svc", reg.get("bean").unwrap())
            .unwrap()
            .unwrap();
        node.terminate(&mut env, monitor, "svc").unwrap().unwrap();
        assert_eq!(env.service_host(p.service), None, "service undeployed");
        env.with_service(node.service, |_e, n: &mut Cybernode| {
            assert_eq!(n.reserved_mb(), 0);
            assert_eq!(n.hosted().count(), 0);
        })
        .unwrap();
        let err = node
            .terminate(&mut env, monitor, "svc")
            .unwrap()
            .unwrap_err();
        assert_eq!(err, CybernodeError::UnknownInstance);
    }

    #[test]
    fn factory_failure_reserves_nothing() {
        let (mut env, monitor, _nh, node, mut reg) = setup();
        reg.register_fn("broken", |_e, _h, _el, _i| Err("boom".into()));
        let el = ServiceElement::singleton("svc", "broken");
        let err = node
            .instantiate(&mut env, monitor, &el, "svc", reg.get("broken").unwrap())
            .unwrap()
            .unwrap_err();
        assert!(matches!(err, CybernodeError::FactoryFailed(_)));
        env.with_service(node.service, |_e, n: &mut Cybernode| {
            assert_eq!(n.reserved_mb(), 0);
        })
        .unwrap();
    }

    #[test]
    fn ping_and_utilization() {
        let (mut env, monitor, _nh, node, _reg) = setup();
        assert!(node.ping(&mut env, monitor).is_ok());
        let (caps, reserved) = node.utilization(&mut env, monitor).unwrap();
        assert_eq!(caps, QosCapabilities::lab_server());
        assert_eq!(reserved, 0);
        env.crash_host(node.host);
        assert!(node.ping(&mut env, monitor).is_err());
    }

    #[test]
    fn deploy_with_lus_registers() {
        let mut env = Env::with_seed(9);
        let lab = env.add_host("lab", HostKind::Server);
        let lus = sensorcer_registry::lus::LookupService::deploy(
            &mut env,
            lab,
            "LUS",
            "public",
            sensorcer_registry::lease::LeasePolicy::default(),
            SimDuration::from_millis(500),
        );
        Cybernode::deploy(
            &mut env,
            lab,
            "Cybernode",
            QosCapabilities::lab_server(),
            Some(lus),
        );
        let found = lus
            .lookup(
                &mut env,
                lab,
                &sensorcer_registry::item::ServiceTemplate::by_interface(interfaces::CYBERNODE),
                10,
            )
            .unwrap();
        assert_eq!(found.len(), 1);
    }
}
