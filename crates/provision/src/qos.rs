//! Quality-of-service capability matching.
//!
//! Rio provisions a service onto "the compute resource available in the
//! network that matches required QoS" (§IV.C). A cybernode advertises
//! [`QosCapabilities`]; a service element states [`QosRequirements`]; the
//! monitor matches and scores candidates.

use std::collections::BTreeSet;

/// What a cybernode offers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QosCapabilities {
    pub cpu_cores: u32,
    pub cpu_mhz: u32,
    pub memory_mb: u32,
    /// Platform tag ("x86_64", "arm", ...).
    pub arch: String,
    /// Free-form capability labels ("gpu", "rack-3", "edge", ...).
    pub labels: BTreeSet<String>,
}

impl QosCapabilities {
    /// A mid-range lab server (the paper's cybernodes ran on lab machines).
    pub fn lab_server() -> QosCapabilities {
        QosCapabilities {
            cpu_cores: 4,
            cpu_mhz: 2400,
            memory_mb: 8192,
            arch: "x86_64".into(),
            labels: BTreeSet::new(),
        }
    }

    /// A small edge box.
    pub fn edge_box() -> QosCapabilities {
        QosCapabilities {
            cpu_cores: 1,
            cpu_mhz: 800,
            memory_mb: 512,
            arch: "arm".into(),
            labels: ["edge".to_string()].into_iter().collect(),
        }
    }

    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.labels.insert(label.into());
        self
    }
}

/// What a service element demands.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct QosRequirements {
    pub min_cores: u32,
    pub min_mhz: u32,
    /// Memory this service will reserve on the node.
    pub memory_mb: u32,
    /// Required platform, if any.
    pub arch: Option<String>,
    /// Labels the node must carry.
    pub required_labels: BTreeSet<String>,
}

impl QosRequirements {
    /// No constraints beyond a nominal memory reservation.
    pub fn modest() -> QosRequirements {
        QosRequirements {
            memory_mb: 64,
            ..Default::default()
        }
    }

    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.required_labels.insert(label.into());
        self
    }

    /// Hard feasibility: can a node with `caps`, of which `reserved_mb` is
    /// already spoken for, host this element?
    pub fn satisfied_by(&self, caps: &QosCapabilities, reserved_mb: u32) -> bool {
        if caps.cpu_cores < self.min_cores || caps.cpu_mhz < self.min_mhz {
            return false;
        }
        if caps.memory_mb.saturating_sub(reserved_mb) < self.memory_mb {
            return false;
        }
        if let Some(arch) = &self.arch {
            if caps.arch != *arch {
                return false;
            }
        }
        self.required_labels.iter().all(|l| caps.labels.contains(l))
    }

    /// Soft score for ranking feasible nodes: headroom remaining after
    /// placement, in `[0, 1]` (higher = more headroom). Used by the
    /// best-fit policy (which prefers the *least* headroom) and the
    /// least-utilized policy (most headroom).
    pub fn headroom(&self, caps: &QosCapabilities, reserved_mb: u32) -> f64 {
        let free = caps.memory_mb.saturating_sub(reserved_mb) as f64;
        if caps.memory_mb == 0 {
            return 0.0;
        }
        ((free - self.memory_mb as f64) / caps.memory_mb as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modest_fits_lab_server() {
        let req = QosRequirements::modest();
        assert!(req.satisfied_by(&QosCapabilities::lab_server(), 0));
        assert!(req.satisfied_by(&QosCapabilities::edge_box(), 0));
    }

    #[test]
    fn memory_reservation_counts() {
        let req = QosRequirements {
            memory_mb: 512,
            ..Default::default()
        };
        let caps = QosCapabilities::edge_box(); // 512 MB total
        assert!(req.satisfied_by(&caps, 0));
        assert!(
            !req.satisfied_by(&caps, 1),
            "one MB reserved leaves too little"
        );
    }

    #[test]
    fn arch_and_labels_are_hard_constraints() {
        let req = QosRequirements {
            arch: Some("x86_64".into()),
            ..Default::default()
        };
        assert!(req.satisfied_by(&QosCapabilities::lab_server(), 0));
        assert!(!req.satisfied_by(&QosCapabilities::edge_box(), 0));

        let req = QosRequirements::modest().with_label("edge");
        assert!(req.satisfied_by(&QosCapabilities::edge_box(), 0));
        assert!(!req.satisfied_by(&QosCapabilities::lab_server(), 0));
        assert!(req.satisfied_by(&QosCapabilities::lab_server().with_label("edge"), 0));
    }

    #[test]
    fn cpu_constraints() {
        let req = QosRequirements {
            min_cores: 2,
            min_mhz: 1000,
            ..Default::default()
        };
        assert!(req.satisfied_by(&QosCapabilities::lab_server(), 0));
        assert!(!req.satisfied_by(&QosCapabilities::edge_box(), 0));
    }

    #[test]
    fn headroom_orders_nodes() {
        let req = QosRequirements {
            memory_mb: 100,
            ..Default::default()
        };
        let caps = QosCapabilities::lab_server(); // 8192 MB
        let fresh = req.headroom(&caps, 0);
        let loaded = req.headroom(&caps, 6000);
        assert!(fresh > loaded);
        assert!((0.0..=1.0).contains(&fresh));
        assert!((0.0..=1.0).contains(&loaded));
    }

    #[test]
    fn headroom_floors_at_zero() {
        let req = QosRequirements {
            memory_mb: 100_000,
            ..Default::default()
        };
        assert_eq!(req.headroom(&QosCapabilities::edge_box(), 0), 0.0);
    }
}
