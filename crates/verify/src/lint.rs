//! In-repo source lints for the workspace (`harness lint`).
//!
//! Seven rules — six over `crates/*/src`, one over the `Cargo.toml`
//! manifests:
//!
//! * `unwrap-outside-tests` — `.unwrap()` / `.expect(` in production
//!   code. Panicking on a fallible path contradicts the federation's
//!   degrade-don't-die posture; tests, benches (the `bench` crate) and
//!   `#[cfg(test)]` modules are exempt. A deliberate, justified panic
//!   site is allowlisted with a `// lint:allow(unwrap): <why>` comment
//!   on the same or the preceding line.
//! * `wallclock-in-sim` — `SystemTime::now` / `Instant::now` in
//!   deterministic code. Virtual time is the whole point of the sim;
//!   only the `bench` crate (real measurements) and `runtime` (thread
//!   pool) may read the wall clock. Allowlist: `lint:allow(wallclock)`.
//! * `pub-field-on-state-machine` — `pub` fields on the lifecycle
//!   state-machine types checked by this crate. Their invariants hold
//!   only if every mutation goes through their methods.
//! * `direct-queue-access` — `timer_queue` touched from `sim` code other
//!   than `env.rs`/`shard.rs`. The sharded engine's determinism rests on
//!   every push and pop flowing through `Env`'s scheduling API (global
//!   `(deadline, seq)` order, window migration); shard-local code going
//!   around it can reorder timers. Allowlist: `lint:allow(queue)`.
//! * `admission-bypass` — a raw `exert(`/`exert_on(` call in the façade
//!   layer (`core`'s `facade.rs`). Overload protection only holds if
//!   every tenant-facing dispatch passes the admission gate; a direct
//!   exertion from façade code skips the token buckets, QoS classing and
//!   shedding entirely. The one legitimate site — the client-side call
//!   *into* the gate itself — is allowlisted: `lint:allow(admission)`.
//! * `interior-mut-in-shard-callback` — a Send-audit for the
//!   compute-spreading path: `Rc`/`RefCell`/`Cell`/`thread_local!`
//!   captured by (or constructed inside) a closure passed to
//!   `schedule_on`/`schedule_at_on`. Those closures are the shard-lane
//!   surface; unsynchronized interior mutability shared across lanes is
//!   exactly what the FastTrack-lite detector flags at runtime, and this
//!   rule catches the idiom statically. A justified capture (explorer
//!   bookkeeping, a deliberately racy fixture) is allowlisted with
//!   `lint:allow(shard)`.
//! * `no-external-deps` — every entry in a `[dependencies]`,
//!   `[dev-dependencies]`, `[build-dependencies]` or
//!   `[workspace.dependencies]` section of the root or a crate manifest
//!   must be workspace-internal (`path = "…"` or `workspace = true`).
//!   The reproduction's dependency-free invariant is what keeps it
//!   buildable offline; this pins it. Escape: `lint:allow(deps)`.
//!
//! The scanner is deliberately line-based and dependency-free: it
//! understands `//` comments, brace/paren depth and `#[cfg(test)]`
//! blocks, which is exactly enough for this repo's own style.

use std::path::{Path, PathBuf};

/// `(crate, type)` pairs whose fields must stay private (their
/// transitions are checked against [`crate::lifecycle`] tables). Scoped
/// by crate so unrelated types sharing a name — e.g. the federation
/// deployment bundle in `core` — are not swept in.
const STATE_MACHINE_TYPES: &[(&str, &str)] = &[
    ("registry", "LeaseTable"),
    ("registry", "LookupService"),
    ("registry", "EventMailbox"),
    ("provision", "ProvisionMonitor"),
    ("provision", "Deployment"),
    ("trace", "FlightRecorder"),
];

/// Crates allowed to use `.unwrap()`/`.expect()` freely (benchmarks).
const UNWRAP_EXEMPT_CRATES: &[&str] = &["bench"];

/// Crates allowed to read the wall clock.
const WALLCLOCK_EXEMPT_CRATES: &[&str] = &["bench", "runtime"];

/// One lint hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintFinding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    pub excerpt: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule,
            self.excerpt.trim()
        )
    }
}

/// Everything before a `//` comment (string-blind, which is fine for
/// detection: a `//` inside a string literal only makes the check more
/// lenient on that line, never a false positive about a comment).
fn code_of(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn allows(raw: &str, prev: Option<&str>, marker: &str) -> bool {
    let tag = format!("lint:allow({marker})");
    raw.contains(&tag) || prev.is_some_and(|p| p.contains(&tag))
}

/// Whether `code` contains any of `pats` at an identifier boundary —
/// the boundary check keeps wrapper names like `admitted_exert(` (and
/// `ShadowCell<` for the `Cell<` pattern) from matching.
fn calls_any(code: &str, pats: &[&str]) -> bool {
    for pat in pats {
        let mut from = 0;
        while let Some(i) = code[from..].find(pat) {
            let at = from + i;
            let ident_before = code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
            if !ident_before {
                return true;
            }
            from = at + pat.len();
        }
    }
    false
}

/// Whether `code` contains a call to `exert(` or `exert_on(`.
fn calls_exert(code: &str) -> bool {
    calls_any(code, &["exert(", "exert_on("])
}

/// The shard-lane scheduling entry points the Send-audit guards.
const SHARD_SCHEDULE_CALLS: &[&str] = &["schedule_on(", "schedule_at_on("];

/// How many preceding lines a `let x = Rc::clone(&y);`-style binding
/// taints a `schedule_on`/`schedule_at_on` call — captures are cloned
/// immediately before the call in this repo's idiom.
const SHARD_CAPTURE_WINDOW: usize = 3;

/// Interior-mutability tokens banned from shard callbacks.
fn has_interior_mut(code: &str) -> bool {
    calls_any(
        code,
        // lint:allow(shard): detection patterns, not captures
        &["Rc::", "Rc<", "RefCell", "Cell::", "Cell<", "thread_local!"],
    )
}

fn brace_delta(code: &str) -> i32 {
    let mut d = 0;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

fn paren_delta(code: &str) -> i32 {
    let mut d = 0;
    for c in code.chars() {
        match c {
            '(' => d += 1,
            ')' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Lint one file's source. `crate_name` decides rule applicability.
fn lint_source(crate_name: &str, rel_path: &str, source: &str) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    let check_unwrap = !UNWRAP_EXEMPT_CRATES.contains(&crate_name);
    let check_wallclock = !WALLCLOCK_EXEMPT_CRATES.contains(&crate_name);
    // Only the event engine itself may hold the queue; everything else in
    // `sim` schedules through `Env`'s API.
    let check_queue =
        crate_name == "sim" && !rel_path.ends_with("env.rs") && !rel_path.ends_with("shard.rs");
    // The façade is the tenant-facing entry point: every dispatch it
    // makes must flow through the admission gate, never a raw exertion.
    let check_admission = crate_name == "core" && rel_path.ends_with("facade.rs");

    let mut depth: i32 = 0;
    // Depth at which a `#[cfg(test)] mod` opened; everything inside it is
    // exempt from the unwrap rule.
    let mut test_block: Option<i32> = None;
    let mut pending_cfg_test = false;
    // Depth at which a guarded struct's body opened.
    let mut struct_block: Option<i32> = None;
    let mut prev_raw: Option<&str> = None;
    // Paren depth, and the depth at which a multi-line
    // `schedule_on(`/`schedule_at_on(` call opened (its closure body).
    let mut paren: i32 = 0;
    let mut shard_call: Option<i32> = None;
    // Recent interior-mutability bindings: (line, carried an allow tag).
    let mut recent_interior: Vec<(usize, bool)> = Vec::new();

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let code = code_of(raw);
        let trimmed = code.trim_start();
        let in_test = test_block.is_some();

        if !in_test {
            if raw.trim_start().starts_with("#[cfg(test)]") {
                pending_cfg_test = true;
            } else if pending_cfg_test && !raw.trim_start().starts_with("#[") {
                if trimmed.contains("mod ") || trimmed.contains("fn ") {
                    test_block = Some(depth);
                }
                if !raw.trim().is_empty() {
                    pending_cfg_test = false;
                }
            }
        }

        let exempt = in_test || test_block.is_some();
        if !exempt {
            // `.expect("` (with the quote) keeps parser-combinator methods
            // named `expect` — e.g. `self.expect(Tok::Colon, ..)` — out.
            if check_unwrap
                // lint:allow(unwrap): detection patterns, not calls
                && (code.contains(".unwrap()") || code.contains(".expect(\""))
                && !allows(raw, prev_raw, "unwrap")
            {
                findings.push(LintFinding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: "unwrap-outside-tests",
                    excerpt: raw.trim().to_string(),
                });
            }
            if check_wallclock
                // lint:allow(wallclock): detection patterns, not calls
                && (code.contains("SystemTime::now") || code.contains("Instant::now"))
                && !allows(raw, prev_raw, "wallclock")
            {
                findings.push(LintFinding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: "wallclock-in-sim",
                    excerpt: raw.trim().to_string(),
                });
            }
            if check_queue && code.contains("timer_queue") && !allows(raw, prev_raw, "queue") {
                findings.push(LintFinding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: "direct-queue-access",
                    excerpt: raw.trim().to_string(),
                });
            }
            if check_admission && calls_exert(code) && !allows(raw, prev_raw, "admission") {
                findings.push(LintFinding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: "admission-bypass",
                    excerpt: raw.trim().to_string(),
                });
            }

            // Send-audit: interior mutability reaching a shard callback —
            // either captured via a binding just before the call, on the
            // call line itself, or constructed inside the closure body.
            let interior = has_interior_mut(code);
            let shard_allowed = allows(raw, prev_raw, "shard");
            if shard_call.is_some() {
                if interior && !shard_allowed {
                    findings.push(LintFinding {
                        file: rel_path.to_string(),
                        line: line_no,
                        rule: "interior-mut-in-shard-callback",
                        excerpt: raw.trim().to_string(),
                    });
                }
            } else if calls_any(code, SHARD_SCHEDULE_CALLS) {
                let tainted = interior
                    || recent_interior
                        .iter()
                        .any(|&(l, a)| !a && line_no - l <= SHARD_CAPTURE_WINDOW);
                if tainted && !shard_allowed {
                    findings.push(LintFinding {
                        file: rel_path.to_string(),
                        line: line_no,
                        rule: "interior-mut-in-shard-callback",
                        excerpt: raw.trim().to_string(),
                    });
                }
            } else if interior {
                recent_interior.push((line_no, shard_allowed));
            }
            recent_interior.retain(|&(l, _)| line_no.saturating_sub(l) <= SHARD_CAPTURE_WINDOW);

            if struct_block.is_none()
                && trimmed.contains("struct ")
                && code.contains('{')
                && STATE_MACHINE_TYPES
                    .iter()
                    .filter(|(c, _)| *c == crate_name)
                    .any(|(_, t)| {
                        code.split("struct ").nth(1).is_some_and(|rest| {
                            rest.trim_start().starts_with(t)
                                && !rest
                                    .trim_start()
                                    .as_bytes()
                                    .get(t.len())
                                    .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
                        })
                    })
            {
                struct_block = Some(depth);
            } else if let Some(open) = struct_block {
                if depth > open
                    && trimmed.starts_with("pub ")
                    && !trimmed.starts_with("pub fn")
                    && !trimmed.starts_with("pub const")
                    && trimmed.contains(':')
                {
                    findings.push(LintFinding {
                        file: rel_path.to_string(),
                        line: line_no,
                        rule: "pub-field-on-state-machine",
                        excerpt: raw.trim().to_string(),
                    });
                }
            }
        }

        depth += brace_delta(code);
        let paren_before = paren;
        paren += paren_delta(code);
        match shard_call {
            Some(open) if paren <= open => shard_call = None,
            None if paren > paren_before && calls_any(code, SHARD_SCHEDULE_CALLS) => {
                shard_call = Some(paren_before)
            }
            _ => {}
        }
        if let Some(open) = test_block {
            if depth <= open {
                test_block = None;
            }
        }
        if let Some(open) = struct_block {
            if depth <= open {
                struct_block = None;
            }
        }
        prev_raw = Some(raw);
    }
    findings
}

/// Classify a TOML section header: `Some(false)` = a plain dependency
/// section whose entries are audited per line, `Some(true)` = a dotted
/// `[dependencies.<name>]` item table that must contain a `path` or
/// `workspace` key, `None` = not a dependency section.
fn dep_section(name: &str) -> Option<bool> {
    for base in [
        "dependencies",
        "dev-dependencies",
        "build-dependencies",
        "workspace.dependencies",
    ] {
        if name == base {
            return Some(false);
        }
        if let Some(rest) = name.strip_prefix(base) {
            if rest.starts_with('.') {
                return Some(true);
            }
        }
    }
    // `[target.'cfg(...)'.dependencies]` — audited like a plain section.
    if name.starts_with("target.") && name.ends_with("dependencies") {
        return Some(false);
    }
    None
}

/// Audit one `Cargo.toml` for the dependency-free invariant: every
/// entry in a dependency section must resolve inside the workspace
/// (`path = "…"` or `workspace = true`). Anything that would reach
/// crates.io — a bare version, `git = `, a registry — is flagged.
pub fn lint_manifest(rel_path: &str, source: &str) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    let mut in_dep_section = false;
    // A dotted dep-item table awaiting its path/workspace key:
    // (header line, header excerpt, satisfied).
    let mut dotted: Option<(usize, String, bool)> = None;
    let mut prev_raw: Option<&str> = None;

    fn flush(
        rel_path: &str,
        findings: &mut Vec<LintFinding>,
        dotted: &mut Option<(usize, String, bool)>,
    ) {
        if let Some((line, excerpt, ok)) = dotted.take() {
            if !ok {
                findings.push(LintFinding {
                    file: rel_path.to_string(),
                    line,
                    rule: "no-external-deps",
                    excerpt,
                });
            }
        }
    }

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let code = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        };
        let trimmed = code.trim();
        if trimmed.starts_with('[') {
            flush(rel_path, &mut findings, &mut dotted);
            let name = trimmed.trim_start_matches('[').trim_end_matches(']').trim();
            match dep_section(name) {
                Some(false) => in_dep_section = true,
                Some(true) => {
                    in_dep_section = false;
                    dotted = Some((
                        line_no,
                        raw.trim().to_string(),
                        allows(raw, prev_raw, "deps"),
                    ));
                }
                None => in_dep_section = false,
            }
        } else if let Some(d) = dotted.as_mut() {
            if trimmed.contains("path") && trimmed.contains('=') && trimmed.contains('"')
                || trimmed.contains("workspace") && trimmed.contains("true")
            {
                d.2 = true;
            }
        } else if in_dep_section && !trimmed.is_empty() {
            let internal = trimmed.contains("path = \"")
                || trimmed.contains("path=\"")
                || trimmed.contains("workspace = true")
                || trimmed.contains("workspace=true");
            if !internal && !allows(raw, prev_raw, "deps") {
                findings.push(LintFinding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: "no-external-deps",
                    excerpt: raw.trim().to_string(),
                });
            }
        }
        prev_raw = Some(raw);
    }
    flush(rel_path, &mut findings, &mut dotted);
    findings
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read entry in {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `crates/*/src/**/*.rs` under `root` (the workspace root),
/// plus the root and per-crate `Cargo.toml` manifests.
pub fn lint_tree(root: &Path) -> Result<Vec<LintFinding>, String> {
    let crates_dir = root.join("crates");
    let mut findings = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut manifests = vec![root.join("Cargo.toml")];
    manifests.extend(crate_dirs.iter().map(|d| d.join("Cargo.toml")));
    for manifest in manifests {
        if !manifest.is_file() {
            continue;
        }
        let source = std::fs::read_to_string(&manifest)
            .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
        let rel = manifest
            .strip_prefix(root)
            .unwrap_or(&manifest)
            .display()
            .to_string();
        findings.extend(lint_manifest(&rel, &source));
    }
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        walk(&src, &mut files)?;
        files.sort();
        for file in files {
            let source = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .display()
                .to_string();
            findings.extend(lint_source(&crate_name, &rel, &source));
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_in_production_code() {
        let src = "fn f() {\n    let x = g().unwrap();\n}\n";
        let f = lint_source("core", "crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unwrap-outside-tests");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn cfg_test_blocks_and_bench_crate_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { g().unwrap(); }\n}\n";
        assert!(lint_source("core", "x.rs", src).is_empty());
        let src = "fn f() { g().unwrap(); }\n";
        assert!(lint_source("bench", "x.rs", src).is_empty());
    }

    #[test]
    fn allow_marker_suppresses_on_same_or_previous_line() {
        let same = "fn f() { g().unwrap(); } // lint:allow(unwrap): invariant, g never fails\n";
        assert!(lint_source("core", "x.rs", same).is_empty());
        let prev = "// lint:allow(unwrap): checked above\nfn f() { g().unwrap(); }\n";
        assert!(lint_source("core", "x.rs", prev).is_empty());
    }

    #[test]
    fn comments_and_doc_examples_do_not_count() {
        let src = "/// let x = y.unwrap();\n//! z.unwrap()\n// w.unwrap()\nfn f() {}\n";
        assert!(lint_source("core", "x.rs", src).is_empty());
    }

    #[test]
    fn wallclock_flagged_outside_bench_and_runtime() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(lint_source("sim", "x.rs", src).len(), 1);
        assert!(lint_source("runtime", "x.rs", src).is_empty());
        assert!(lint_source("bench", "x.rs", src).is_empty());
    }

    #[test]
    fn pub_fields_on_state_machine_types_are_flagged() {
        let src = "pub struct LookupService {\n    pub host: u32,\n    group: String,\n}\n";
        let f = lint_source("registry", "x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "pub-field-on-state-machine");
        // Other structs may expose fields freely.
        let src = "pub struct LusHandle {\n    pub host: u32,\n}\n";
        assert!(lint_source("registry", "x.rs", src).is_empty());
        // Prefix names must not match (LookupServiceX is a different type).
        let src = "pub struct LookupServiceStats {\n    pub hits: u64,\n}\n";
        assert!(lint_source("registry", "x.rs", src).is_empty());
        // Same name in another crate (core's deployment bundle) is fine.
        let src = "pub struct Deployment {\n    pub lab: u32,\n}\n";
        assert!(lint_source("core", "x.rs", src).is_empty());
        assert_eq!(lint_source("provision", "x.rs", src).len(), 1);
    }

    #[test]
    fn direct_queue_access_flagged_outside_engine_files() {
        let src = "fn f(env: &mut Env) { env.timer_queue.pop(); }\n";
        let f = lint_source("sim", "crates/sim/src/chaos.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "direct-queue-access");
        // The engine itself owns the queue.
        assert!(lint_source("sim", "crates/sim/src/env.rs", src).is_empty());
        assert!(lint_source("sim", "crates/sim/src/shard.rs", src).is_empty());
        // Other crates cannot reach the private field; the rule is scoped
        // to `sim` so unrelated identifiers elsewhere never trip it.
        assert!(lint_source("core", "crates/core/src/x.rs", src).is_empty());
        // Comments don't count; a justified access is allowlisted.
        let doc = "/// peeks `timer_queue` under the hood\nfn f() {}\n";
        assert!(lint_source("sim", "crates/sim/src/chaos.rs", doc).is_empty());
        let allowed = "// lint:allow(queue): test-only drain helper\n\
                       fn f(env: &mut Env) { env.timer_queue.pop(); }\n";
        assert!(lint_source("sim", "crates/sim/src/chaos.rs", allowed).is_empty());
    }

    #[test]
    fn admission_bypass_flagged_in_facade_code_only() {
        let src = "fn f(env: &mut Env) { exert_on(env, from, svc, task, None); }\n";
        let f = lint_source("core", "crates/core/src/facade.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "admission-bypass");
        // The exertion runtime and the CSP fan-out dispatch legitimately.
        assert!(lint_source("exertion", "crates/exertion/src/exert.rs", src).is_empty());
        assert!(lint_source("core", "crates/core/src/csp.rs", src).is_empty());
        // Plain `exert(` is caught too; wrapper names are not.
        let plain = "fn f() { exert(env, task); }\n";
        assert_eq!(
            lint_source("core", "crates/core/src/facade.rs", plain).len(),
            1
        );
        let wrapper = "fn f() { admitted_exert(env, task); }\n";
        assert!(lint_source("core", "crates/core/src/facade.rs", wrapper).is_empty());
        // The call into the gate itself carries the justification marker.
        let allowed = "// lint:allow(admission): this call targets the gate itself\n\
                       fn f() { exert_on(env, from, svc, task, None); }\n";
        assert!(lint_source("core", "crates/core/src/facade.rs", allowed).is_empty());
    }

    #[test]
    fn interior_mut_captures_in_shard_callbacks_are_flagged() {
        // The clone-just-before-the-call capture idiom.
        let src = "fn f(env: &mut Env) {\n    \
                   let l = Rc::clone(&log);\n    \
                   env.schedule_at_on(h, at, move |env| { l.borrow_mut().push(1); });\n}\n";
        let f = lint_source("core", "x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "interior-mut-in-shard-callback");
        // Interior mutability constructed inside the closure body.
        let src = "fn f(env: &mut Env) {\n    \
                   env.schedule_on(h, d, move |env| {\n        \
                   let c = RefCell::new(0);\n    });\n}\n";
        assert_eq!(lint_source("core", "x.rs", src).len(), 1);
        // `Cell` on the call line itself.
        let src =
            "fn f(env: &mut Env) { env.schedule_on(h, d, { let s = Rc::new(Cell::new(0)); move |_| s.get() }); }\n";
        assert_eq!(lint_source("core", "x.rs", src).len(), 1);
        // A clean closure is fine, as are wrapper-ish type names.
        let src = "fn f(env: &mut Env) {\n    \
                   let cell = ShadowCell::default();\n    \
                   env.schedule_at_on(h, at, move |_env| {});\n}\n";
        assert!(lint_source("core", "x.rs", src).is_empty());
        // The sequential-only `schedule_at` surface is not covered.
        let src = "fn f(env: &mut Env) {\n    \
                   let l = Rc::clone(&log);\n    \
                   env.schedule_at(at, move |env| { l.borrow_mut().push(1); });\n}\n";
        assert!(lint_source("core", "x.rs", src).is_empty());
        // `lint:allow(shard)` on the binding or the call escapes.
        let src = "fn f(env: &mut Env) {\n    \
                   // lint:allow(shard): bookkeeping\n    \
                   let l = Rc::clone(&log);\n    \
                   env.schedule_at_on(h, at, move |env| { l.borrow_mut().push(1); });\n}\n";
        assert!(lint_source("core", "x.rs", src).is_empty());
        // Tests are exempt like every other rule.
        let src = "#[cfg(test)]\nmod tests {\n    fn t(env: &mut Env) {\n        \
                   let l = Rc::clone(&log);\n        \
                   env.schedule_at_on(h, at, move |env| { l.borrow_mut().push(1); });\n    }\n}\n";
        assert!(lint_source("core", "x.rs", src).is_empty());
    }

    #[test]
    fn external_deps_are_flagged_in_manifests() {
        let src = "[dependencies]\nrand = \"0.8\"\n";
        let f = lint_manifest("crates/x/Cargo.toml", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-external-deps");
        assert_eq!(f[0].line, 2);
        // Workspace-internal forms pass, in every spelling the repo uses.
        let src = "[dependencies]\nsensorcer-sim.workspace = true\n\
                   foo = { path = \"../foo\" }\n";
        assert!(lint_manifest("Cargo.toml", src).is_empty());
        // Dev/build sections and the workspace table are audited too.
        assert_eq!(
            lint_manifest(
                "Cargo.toml",
                "[dev-dependencies]\nproptest = { version = \"1\" }\n"
            )
            .len(),
            1
        );
        assert_eq!(
            lint_manifest("Cargo.toml", "[workspace.dependencies]\nserde = \"1\"\n").len(),
            1
        );
        // Dotted item tables: external flagged at the header, path ok.
        assert_eq!(
            lint_manifest("Cargo.toml", "[dependencies.rand]\nversion = \"0.8\"\n").len(),
            1
        );
        assert!(lint_manifest("Cargo.toml", "[dependencies.sim]\npath = \"../sim\"\n").is_empty());
        // Non-dependency sections are ignored.
        let src = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n[profile.release]\ndebug = true\n";
        assert!(lint_manifest("Cargo.toml", src).is_empty());
        // A justified exception is allowlisted.
        let src = "[dependencies]\n# lint:allow(deps): vendored locally\nrand = \"0.8\"\n";
        assert!(lint_manifest("Cargo.toml", src).is_empty());
    }

    #[test]
    fn whole_tree_lints_clean() {
        // CARGO_MANIFEST_DIR = crates/verify → workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = lint_tree(&root).expect("walk the tree");
        assert!(
            findings.is_empty(),
            "banned patterns in production code:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
