//! DPOR-lite schedule exploration over the deterministic scheduler.
//!
//! The discrete-event scheduler in `sensorcer-sim` breaks ties among
//! timers due at the same virtual instant FIFO by registration order.
//! Real networks make no such promise: two messages due "now" can arrive
//! in either order. Every such instant is a *choice point*, and this
//! module drives [`Env::set_tie_chooser`] to explore the tree of
//! delivery orders:
//!
//! * [`ChoicePolicy::Prefix`] replays a recorded choice prefix and
//!   extends it FIFO — the substrate of bounded-exhaustive DFS
//!   ([`explore`] with [`ExploreConfig::exhaustive`]);
//! * [`ChoicePolicy::Random`] draws every choice from a seeded
//!   [`SimRng`] — sampling for scenarios whose trees are too big.
//!
//! Scenarios that declare [`Scenario::shards`] > 0 run on the sharded
//! engine instead: the same choice-prefix protocol drives
//! `Env::set_window_chooser`, so the choice points are *cross-shard* —
//! at each `open_window` boundary the chooser permutes which runnable
//! lane fires first — and the FastTrack-lite race detector
//! ([`sensorcer_sim::race`]) observes every reachable interleaving.
//!
//! Every run executes one [`Scenario`] in a fresh [`Env`] with
//! happens-before tracking on and a lifecycle sink installed; after the
//! run the scenario's own invariants, the happens-before log, the race
//! detector (sharded runs), and the lifecycle state machines are all
//! checked. A schedule is *distinct*
//! when its full choice vector differs; [`ExploreReport`] counts both
//! runs and distinct schedules so a vacuous explorer (no choice points)
//! is visible.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use sensorcer_sim::env::{Env, LifecycleEvent};
use sensorcer_sim::race::RaceActivity;
use sensorcer_sim::rng::SimRng;
use sensorcer_sim::time::{SimDuration, SimTime};

use crate::lifecycle::LifecycleChecker;

/// One schedule-exploration subject: builds a fresh world inside the
/// prepared `env` (hb tracking, lifecycle sink and tie chooser already
/// installed), runs it to its horizon, and reports its own invariants.
pub trait Scenario {
    fn name(&self) -> &'static str;

    /// Seed for the world's `Env` (jitter, chaos draws). Fixed per
    /// scenario so the only varying input across runs is the schedule.
    fn seed(&self) -> u64 {
        1
    }

    /// Grace window passed to [`LifecycleChecker::finish`] — how far past
    /// expiry a lease may linger before "never reaped" fires. Scenarios
    /// with a reaper tick should return at least one tick.
    fn reap_grace(&self) -> SimDuration {
        SimDuration::from_secs(2)
    }

    /// Shard-lane count for this scenario's world. `0` (the default)
    /// runs the sequential engine with same-instant tie choice points.
    /// `> 0` runs the sharded engine with the FastTrack-lite race
    /// detector installed, and the choice points become cross-shard:
    /// at every `open_window` boundary with ≥ 2 runnable lanes, the
    /// chooser permutes which lane's head fires first, so the detector
    /// sees every window interleaving DPOR-lite can reach.
    fn shards(&self) -> usize {
        0
    }

    /// Build, run, and self-check one world under the installed schedule.
    fn run(&self, env: &mut Env) -> ScenarioResult;
}

/// What one scenario run concluded.
#[derive(Clone, Debug, Default)]
pub struct ScenarioResult {
    /// Order-sensitive digest of the end state; used to compare a traced
    /// re-run against an untraced one under the identical schedule.
    pub digest: u64,
    /// Scenario-level invariant violations (empty on a clean run).
    pub violations: Vec<String>,
}

/// How the tie chooser picks at each choice point.
#[derive(Clone, Debug)]
pub enum ChoicePolicy {
    /// Replay `0..prefix.len()` verbatim (clamped), then extend FIFO.
    Prefix(Vec<usize>),
    /// Draw every choice from `SimRng::new(seed)`.
    Random(u64),
}

/// One explored schedule: the choices taken and everything checked.
#[derive(Clone, Debug)]
pub struct ScheduleOutcome {
    /// `(k, picked)` per choice point (k ≥ 2 co-scheduled timers).
    pub choices: Vec<(usize, usize)>,
    pub digest: u64,
    /// Scenario + lifecycle + happens-before violations, prefixed by
    /// their origin.
    pub violations: Vec<String>,
    /// `(deliveries, writes, reads)` the hb tracker processed.
    pub hb_activity: (u64, u64, u64),
    /// Lifecycle transitions checked.
    pub lifecycle_events: u64,
    /// Shadow-state counters when [`Scenario::shards`] > 0 (all zero on
    /// sequential runs) — proves a zero-race schedule was not vacuous.
    pub race_activity: RaceActivity,
}

/// FNV-1a over the choice vector: the identity of a schedule.
pub fn schedule_hash(choices: &[(usize, usize)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &(k, c) in choices {
        for b in [k as u64, c as u64] {
            h ^= b;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
    }
    h
}

/// Run one scenario under one schedule policy. `traced` additionally
/// turns the flight recorder on (used by [`trace_transparency`]).
pub fn run_one(scenario: &dyn Scenario, policy: ChoicePolicy, traced: bool) -> ScheduleOutcome {
    let choices: Rc<RefCell<Vec<(usize, usize)>>> = Rc::default();
    let lifecycle_log: Rc<RefCell<Vec<(SimTime, LifecycleEvent)>>> = Rc::default();

    let mut env = Env::with_seed(scenario.seed());
    env.enable_hb();
    let shards = scenario.shards();
    if shards > 0 {
        env.enable_sharding(shards);
        env.enable_race_detector();
    }
    if traced {
        env.enable_tracing(4096);
    }
    let log = Rc::clone(&lifecycle_log);
    env.set_lifecycle_sink(move |t, ev| log.borrow_mut().push((t, ev)));
    let rec = Rc::clone(&choices);
    // Sharded worlds take their choice points at window boundaries
    // (cross-shard delivery order); sequential worlds at same-instant
    // ties. Same recorded-prefix protocol either way.
    let chooser: Box<dyn FnMut(usize) -> usize> = match policy {
        ChoicePolicy::Prefix(prefix) => Box::new(move |k| {
            let mut cs = rec.borrow_mut();
            let pick = prefix.get(cs.len()).copied().unwrap_or(0).min(k - 1);
            cs.push((k, pick));
            pick
        }),
        ChoicePolicy::Random(seed) => {
            let mut rng = SimRng::new(seed);
            Box::new(move |k| {
                let pick = rng.index(k);
                rec.borrow_mut().push((k, pick));
                pick
            })
        }
    };
    if shards > 0 {
        env.set_window_chooser(chooser);
    } else {
        env.set_tie_chooser(chooser);
    }

    let result = scenario.run(&mut env);
    let mut violations: Vec<String> = result
        .violations
        .iter()
        .map(|v| format!("scenario: {v}"))
        .collect();

    let mut checker = LifecycleChecker::new();
    for &(t, ev) in lifecycle_log.borrow().iter() {
        checker.feed(t, ev);
    }
    checker.finish(env.now(), scenario.reap_grace());
    violations.extend(
        checker
            .violations()
            .iter()
            .map(|v| format!("lifecycle: {v}")),
    );

    // lint:allow(unwrap): enable_hb is called at run start
    let hb = env.disable_hb().expect("hb enabled above");
    violations.extend(
        hb.violations()
            .iter()
            .map(|v| format!("happens-before: {v}")),
    );
    let mut race_activity = RaceActivity::default();
    if shards > 0 {
        // lint:allow(unwrap): enable_race_detector is called at run start
        let rd = env.disable_race_detector().expect("detector enabled above");
        race_activity = rd.activity();
        violations.extend(rd.races().iter().map(|r| format!("race: {r}")));
        if rd.suppressed() > 0 {
            violations.push(format!(
                "race: {} further occurrences deduplicated/suppressed",
                rd.suppressed()
            ));
        }
    }
    if traced {
        if let Some(rec) = env.disable_tracing() {
            violations.extend(
                crate::lifecycle::check_recorder(&rec)
                    .iter()
                    .map(|v| format!("span: {v}")),
            );
        }
    }

    let choices = choices.borrow().clone();
    ScheduleOutcome {
        choices,
        digest: result.digest,
        violations,
        hb_activity: hb.activity(),
        lifecycle_events: checker.events(),
        race_activity,
    }
}

/// Re-run the FIFO schedule with tracing on and compare digests: the
/// trace plane must be an observer, never an actor. Returns a violation
/// string when the digests diverge.
pub fn trace_transparency(scenario: &dyn Scenario) -> Option<String> {
    let plain = run_one(scenario, ChoicePolicy::Prefix(Vec::new()), false);
    let traced = run_one(scenario, ChoicePolicy::Prefix(Vec::new()), true);
    if plain.digest != traced.digest || plain.choices != traced.choices {
        return Some(format!(
            "scenario '{}' diverges under tracing: digest {:#x} vs {:#x}, {} vs {} choice points",
            scenario.name(),
            plain.digest,
            traced.digest,
            plain.choices.len(),
            traced.choices.len(),
        ));
    }
    None
}

/// Exploration strategy and budget.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Depth-first over the whole choice tree when `true`; seeded random
    /// sampling otherwise.
    pub exhaustive: bool,
    /// Maximum schedules to run (DFS truncates, sampling stops).
    pub max_schedules: usize,
    /// Sampling seed (ignored for exhaustive).
    pub seed: u64,
    /// Also verify trace transparency on the FIFO schedule.
    pub check_tracing: bool,
}

impl ExploreConfig {
    pub fn exhaustive(max_schedules: usize) -> ExploreConfig {
        ExploreConfig {
            exhaustive: true,
            max_schedules,
            seed: 0,
            check_tracing: true,
        }
    }

    pub fn sample(seed: u64, schedules: usize) -> ExploreConfig {
        ExploreConfig {
            exhaustive: false,
            max_schedules: schedules,
            seed,
            check_tracing: true,
        }
    }
}

/// What one exploration found.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    pub scenario: String,
    pub schedules_run: usize,
    pub distinct_schedules: usize,
    /// Total choice points crossed, summed over runs.
    pub choice_points: u64,
    /// Widest choice point seen (max co-scheduled timers).
    pub max_width: usize,
    pub hb_deliveries: u64,
    pub hb_reads: u64,
    pub hb_writes: u64,
    pub lifecycle_events: u64,
    /// Shadow-state cell accesses checked, summed over runs (zero for
    /// sequential scenarios).
    pub race_cells_checked: u64,
    /// Window barriers the detector joined, summed over runs.
    pub race_barriers: u64,
    /// Races detected (incl. deduplicated repeats), summed over runs.
    pub races_detected: u64,
    /// Deduplicated violations with the choice vector that produced the
    /// first occurrence of each.
    pub violations: Vec<String>,
    /// DFS ran out of budget before closing the tree.
    pub truncated: bool,
    /// [`schedule_hash`] of every distinct schedule run — lets callers
    /// union coverage across explorations without double counting.
    pub schedule_hashes: Vec<u64>,
}

impl ExploreReport {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Explore one scenario's schedule tree under `cfg`.
pub fn explore(scenario: &dyn Scenario, cfg: &ExploreConfig) -> ExploreReport {
    let mut report = ExploreReport {
        scenario: scenario.name().to_string(),
        ..Default::default()
    };
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut seen_violations: BTreeSet<String> = BTreeSet::new();

    let absorb = |report: &mut ExploreReport,
                  seen: &mut BTreeSet<u64>,
                  seen_violations: &mut BTreeSet<String>,
                  out: &ScheduleOutcome| {
        report.schedules_run += 1;
        if seen.insert(schedule_hash(&out.choices)) {
            report.distinct_schedules += 1;
        }
        report.choice_points += out.choices.len() as u64;
        report.max_width = report
            .max_width
            .max(out.choices.iter().map(|&(k, _)| k).max().unwrap_or(0));
        let (d, w, r) = out.hb_activity;
        report.hb_deliveries += d;
        report.hb_writes += w;
        report.hb_reads += r;
        report.lifecycle_events += out.lifecycle_events;
        report.race_cells_checked += out.race_activity.reads + out.race_activity.writes;
        report.race_barriers += out.race_activity.barriers;
        report.races_detected += out.race_activity.races;
        for v in &out.violations {
            if seen_violations.insert(v.clone()) {
                report.violations.push(format!(
                    "{v} [schedule {:?}]",
                    out.choices.iter().map(|&(_, c)| c).collect::<Vec<_>>()
                ));
            }
        }
    };

    if cfg.exhaustive {
        // DFS over choice prefixes. A run's free suffix (positions beyond
        // the replayed prefix) always picks 0, so each alternative pick at
        // each free position spawns exactly one new prefix — every leaf of
        // the tree is visited once.
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        while let Some(prefix) = stack.pop() {
            if report.schedules_run >= cfg.max_schedules {
                report.truncated = true;
                break;
            }
            let depth = prefix.len();
            let out = run_one(scenario, ChoicePolicy::Prefix(prefix), false);
            for i in depth..out.choices.len() {
                let (k, _) = out.choices[i];
                for alt in 1..k {
                    let mut next: Vec<usize> = out.choices[..i].iter().map(|&(_, c)| c).collect();
                    next.push(alt);
                    stack.push(next);
                }
            }
            absorb(&mut report, &mut seen, &mut seen_violations, &out);
        }
    } else {
        let mut seeds = SimRng::new(cfg.seed);
        // FIFO first — the baseline order is always in the sample.
        let fifo = run_one(scenario, ChoicePolicy::Prefix(Vec::new()), false);
        absorb(&mut report, &mut seen, &mut seen_violations, &fifo);
        while report.schedules_run < cfg.max_schedules {
            let out = run_one(scenario, ChoicePolicy::Random(seeds.next_u64()), false);
            absorb(&mut report, &mut seen, &mut seen_violations, &out);
        }
    }

    if cfg.check_tracing {
        if let Some(v) = trace_transparency(scenario) {
            report.violations.push(format!("trace-transparency: {v}"));
        }
    }
    report.schedule_hashes = seen.into_iter().collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorcer_sim::time::SimDuration;

    /// Three timers co-scheduled at t=1s appending to a shared log; the
    /// digest encodes the order, so 3! = 6 distinct schedules exist.
    struct Permutable;

    impl Scenario for Permutable {
        fn name(&self) -> &'static str {
            "permutable"
        }

        fn run(&self, env: &mut Env) -> ScenarioResult {
            let log: Rc<RefCell<Vec<u64>>> = Rc::default();
            for i in 0..3u64 {
                let l = Rc::clone(&log);
                env.schedule(SimDuration::from_secs(1), move |_env| {
                    l.borrow_mut().push(i)
                });
            }
            env.run_for(SimDuration::from_secs(2));
            let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
            for &v in log.borrow().iter() {
                digest ^= v + 1;
                digest = digest.wrapping_mul(0x1_0000_0000_01b3);
            }
            ScenarioResult {
                digest,
                violations: Vec::new(),
            }
        }
    }

    #[test]
    fn exhaustive_visits_every_permutation_once() {
        let report = explore(&Permutable, &ExploreConfig::exhaustive(100));
        assert_eq!(report.schedules_run, 6, "3! leaf schedules");
        assert_eq!(report.distinct_schedules, 6);
        assert!(!report.truncated);
        assert!(report.passed());
        assert_eq!(report.max_width, 3);
    }

    #[test]
    fn truncation_is_reported() {
        let report = explore(
            &Permutable,
            &ExploreConfig {
                check_tracing: false,
                ..ExploreConfig::exhaustive(2)
            },
        );
        assert!(report.truncated);
        assert_eq!(report.schedules_run, 2);
    }

    #[test]
    fn sampling_finds_multiple_distinct_schedules() {
        let report = explore(&Permutable, &ExploreConfig::sample(42, 40));
        assert_eq!(report.schedules_run, 40);
        assert!(
            report.distinct_schedules >= 4,
            "got {}",
            report.distinct_schedules
        );
        assert!(report.passed());
    }

    /// A scenario whose invariant fails only when timer 1 beats timer 0.
    struct OrderSensitive;

    impl Scenario for OrderSensitive {
        fn name(&self) -> &'static str {
            "order-sensitive"
        }

        fn run(&self, env: &mut Env) -> ScenarioResult {
            let first: Rc<RefCell<Option<u64>>> = Rc::default();
            for i in 0..2u64 {
                let f = Rc::clone(&first);
                env.schedule(SimDuration::from_secs(1), move |_env| {
                    f.borrow_mut().get_or_insert(i);
                });
            }
            env.run_for(SimDuration::from_secs(2));
            let won = first.borrow().unwrap_or(0);
            let violations = if won == 1 {
                vec!["timer 1 overtook timer 0".to_string()]
            } else {
                Vec::new()
            };
            ScenarioResult {
                digest: won,
                violations,
            }
        }
    }

    #[test]
    fn explorer_finds_the_order_bug_fifo_misses() {
        let fifo = run_one(&OrderSensitive, ChoicePolicy::Prefix(Vec::new()), false);
        assert!(fifo.violations.is_empty(), "FIFO hides the bug");
        let report = explore(&OrderSensitive, &ExploreConfig::exhaustive(10));
        assert!(
            !report.passed(),
            "exploration must surface the reordering bug"
        );
        assert!(report.violations.iter().any(|v| v.contains("overtook")));
    }

    #[test]
    fn trace_transparency_holds_for_simple_scenarios() {
        assert_eq!(trace_transparency(&Permutable), None);
    }

    use sensorcer_sim::time::SimTime;
    use sensorcer_sim::topology::{HostKind, SubnetId};

    /// Two mote shards writing one cell at the same instant: a race
    /// under every window interleaving, and exactly one k=2 cross-shard
    /// choice point per run.
    struct ShardRacy;

    impl Scenario for ShardRacy {
        fn name(&self) -> &'static str {
            "shard-racy"
        }

        fn shards(&self) -> usize {
            2
        }

        fn run(&self, env: &mut Env) -> ScenarioResult {
            let a = env.add_host("a", HostKind::SensorMote);
            let b = env.add_host("b", HostKind::SensorMote);
            env.topo.set_subnet(a, SubnetId(0));
            env.topo.set_subnet(b, SubnetId(1));
            let at = SimTime::ZERO + SimDuration::from_millis(5);
            env.schedule_at_on(a, at, |env| env.race_write("fed.routes.map"));
            env.schedule_at_on(b, at, |env| env.race_write("fed.routes.map"));
            env.run_for(SimDuration::from_millis(20));
            ScenarioResult {
                digest: 1,
                violations: Vec::new(),
            }
        }
    }

    #[test]
    fn sharded_exploration_permutes_windows_and_reports_races() {
        let report = explore(
            &ShardRacy,
            &ExploreConfig {
                check_tracing: false,
                ..ExploreConfig::exhaustive(10)
            },
        );
        // One k=2 cross-shard choice point → both window orders visited.
        assert_eq!(report.schedules_run, 2, "{report:?}");
        assert_eq!(report.distinct_schedules, 2);
        assert_eq!(report.max_width, 2);
        // The race is unconditional: every schedule reports it.
        assert_eq!(report.races_detected, 2);
        assert!(report.violations.iter().any(|v| v.contains("race: ")));
        // Non-vacuous: cells were checked and window barriers joined.
        assert!(report.race_cells_checked >= 4, "{report:?}");
        assert!(report.race_barriers > 0);
    }

    #[test]
    fn sequential_scenarios_report_zero_race_activity() {
        let report = explore(&Permutable, &ExploreConfig::exhaustive(100));
        assert_eq!(report.races_detected, 0);
        assert_eq!(report.race_cells_checked, 0);
        assert_eq!(report.race_barriers, 0);
    }
}
