//! # sensorcer-verify
//!
//! Mechanical correctness checking for the SenSORCER reproduction. The
//! federation is a web of concurrent lifecycle state machines — Jini
//! leases, Rio provisioning, SORCER exertions — layered with retries,
//! failover, degraded reads and tracing. This crate makes their ordering
//! discipline checkable by tooling instead of review:
//!
//! * [`explore`] — a DPOR-lite **schedule explorer** over the discrete
//!   event scheduler in `sensorcer-sim`: at every virtual instant with
//!   ≥2 co-scheduled timers it permutes delivery order (bounded
//!   exhaustive for small scenarios, seeded random sampling for large
//!   ones) and asserts federation invariants after every schedule.
//! * happens-before checking — vector clocks on wire deliveries
//!   (`sensorcer_sim::hb`, enabled per run by the explorer) flag any
//!   read of shared federation state not ordered after its write.
//! * [`lifecycle`] — the lease / provisioning / span state machines
//!   declared as transition tables, with a checker that replays every
//!   runtime transition (delivered through `Env::lifecycle` and mirrored
//!   onto flight-recorder spans) against them.
//! * [`lint`] — an in-repo source lint pass (`harness lint`) banning
//!   `unwrap()`/`expect()` outside tests and benches, wall-clock time in
//!   deterministic code, and `pub` fields on state-machine types.
//! * [`scenarios`] — small federated worlds the explorer drives,
//!   including an intentionally buggy one ([`scenarios::BuggyReaper`])
//!   that the mutation test uses to prove the explorer detects a real
//!   ordering bug.

#![forbid(unsafe_code)]

pub mod explore;
pub mod lifecycle;
pub mod lint;
pub mod scenarios;

pub mod prelude {
    pub use crate::explore::{
        explore, run_one, trace_transparency, ChoicePolicy, ExploreConfig, ExploreReport, Scenario,
        ScenarioResult, ScheduleOutcome,
    };
    pub use crate::lifecycle::{
        LifecycleChecker, StateMachine, LEASE_MACHINE, PROVISION_MACHINE, SPAN_MACHINE,
    };
    pub use crate::lint::{lint_tree, LintFinding};
    pub use crate::scenarios::{BuggyReaper, DegradedRead, LeaseChurn, ProvisionFailover};
}

pub use prelude::*;
