//! # sensorcer-verify
//!
//! Mechanical correctness checking for the SenSORCER reproduction. The
//! federation is a web of concurrent lifecycle state machines — Jini
//! leases, Rio provisioning, SORCER exertions — layered with retries,
//! failover, degraded reads and tracing. This crate makes their ordering
//! discipline checkable by tooling instead of review:
//!
//! * [`explore`] — a DPOR-lite **schedule explorer** over the discrete
//!   event scheduler in `sensorcer-sim`: at every virtual instant with
//!   ≥2 co-scheduled timers it permutes delivery order (bounded
//!   exhaustive for small scenarios, seeded random sampling for large
//!   ones) and asserts federation invariants after every schedule.
//!   Scenarios declaring a shard count run on the *sharded* engine with
//!   the choice points moved to `open_window` boundaries, so cross-shard
//!   delivery order is what gets permuted.
//! * happens-before checking — vector clocks on wire deliveries
//!   (`sensorcer_sim::hb`, enabled per run by the explorer) flag any
//!   read of shared federation state not ordered after its write.
//! * shard-race detection — sharded scenarios additionally run under the
//!   FastTrack-lite shadow state (`sensorcer_sim::race`): every
//!   callback's shared-cell accesses are attributed to its shard lane,
//!   and conflicting same-window cross-lane pairs with no separating
//!   window barrier are reported as `race:` violations.
//! * [`lifecycle`] — the lease / provisioning / span state machines
//!   declared as transition tables, with a checker that replays every
//!   runtime transition (delivered through `Env::lifecycle` and mirrored
//!   onto flight-recorder spans) against them.
//! * [`lint`] — an in-repo source lint pass (`harness lint`) banning
//!   `unwrap()`/`expect()` outside tests and benches, wall-clock time in
//!   deterministic code, `pub` fields on state-machine types,
//!   interior-mutability captures in shard callbacks (the Send-audit for
//!   compute-spreading), and external crate dependencies in manifests.
//! * [`scenarios`] — small federated worlds the explorer drives,
//!   including an intentionally buggy one ([`scenarios::BuggyReaper`])
//!   that the mutation test uses to prove the explorer detects a real
//!   ordering bug, plus the shard-race suite: clean shard-local and
//!   barrier-separated worlds, the deliberately racy
//!   [`scenarios::CrossSubnetRacyMap`] mutation, and the
//!   schedule-dependent [`scenarios::HiddenRace`] only window
//!   permutation surfaces.

#![forbid(unsafe_code)]

pub mod explore;
pub mod lifecycle;
pub mod lint;
pub mod scenarios;

pub mod prelude {
    pub use crate::explore::{
        explore, run_one, trace_transparency, ChoicePolicy, ExploreConfig, ExploreReport, Scenario,
        ScenarioResult, ScheduleOutcome,
    };
    pub use crate::lifecycle::{
        LifecycleChecker, StateMachine, LEASE_MACHINE, PROVISION_MACHINE, SPAN_MACHINE,
    };
    pub use crate::lint::{lint_manifest, lint_tree, LintFinding};
    pub use crate::scenarios::{
        BarrierHandoff, BuggyReaper, CrossSubnetRacyMap, DegradedRead, HiddenRace, LeaseChurn,
        ProvisionFailover, ShardLocalChurn,
    };
}

pub use prelude::*;
