//! Lifecycle state machines as data, and a checker that replays runtime
//! transitions against them.
//!
//! The middleware crates report every lifecycle transition through
//! [`Env::lifecycle`](sensorcer_sim::env::Env::lifecycle) — which feeds
//! the sink the explorer installs and mirrors each transition onto the
//! open flight-recorder span. This module declares what the legal
//! machines *are* (transition tables, one row per `(from, transition,
//! to)`) and checks the observed stream against them, plus the temporal
//! invariants a table alone cannot express: a lease is never renewed at
//! or past its expiry, never reaped before it, and never left expired
//! but unreaped at the end of a run.

use std::collections::BTreeMap;

use sensorcer_sim::env::LifecycleEvent;
use sensorcer_sim::time::{SimDuration, SimTime};
use sensorcer_trace::FlightRecorder;

/// A lifecycle state machine: legal transitions between named states.
/// `initial` is the state an entity is in before its first transition.
#[derive(Debug)]
pub struct StateMachine {
    /// Matches [`LifecycleEvent::kind`].
    pub kind: &'static str,
    pub initial: &'static str,
    /// `(from_state, transition, to_state)` rows; a transition observed
    /// with no matching row for the entity's current state is a
    /// violation.
    pub transitions: &'static [(&'static str, &'static str, &'static str)],
}

impl StateMachine {
    fn next(&self, from: &str, transition: &str) -> Option<&'static str> {
        self.transitions
            .iter()
            .find(|(f, t, _)| *f == from && *t == transition)
            .map(|(_, _, to)| *to)
    }
}

/// Jini registration leases ([`sensorcer_registry::lease::LeaseTable`]
/// under [`sensorcer_registry::lus::LookupService`]). `info` carries the
/// expiry (grant/renew) or the reap instant, in nanos of virtual time.
pub static LEASE_MACHINE: StateMachine = StateMachine {
    kind: "lease",
    initial: "new",
    transitions: &[
        ("new", "grant", "held"),
        ("held", "renew", "held"),
        ("held", "cancel", "ended"),
        ("held", "reap", "ended"),
    ],
};

/// Rio provisioning of one opstring instance
/// ([`sensorcer_provision::monitor::ProvisionMonitor`]). A `deploy` of an
/// already-deployed instance — the double-deploy the paper's failover
/// must never produce — has no row and is therefore flagged.
pub static PROVISION_MACHINE: StateMachine = StateMachine {
    kind: "provision",
    initial: "unplaced",
    transitions: &[
        ("unplaced", "deploy", "deployed"),
        ("deployed", "failover", "deployed"),
        ("deployed", "pending", "pending"),
        ("pending", "deploy", "deployed"),
        ("deployed", "undeploy", "unplaced"),
        ("pending", "undeploy", "unplaced"),
    ],
};

/// Flight-recorder spans. Their transitions are not routed through
/// `Env::lifecycle` (the recorder *is* the trace plane); the checker
/// enforces this machine structurally via [`check_recorder`].
pub static SPAN_MACHINE: StateMachine = StateMachine {
    kind: "span",
    initial: "new",
    transitions: &[
        ("new", "start", "open"),
        ("open", "event", "open"),
        ("open", "end", "closed"),
    ],
};

/// Replays a lifecycle event stream against the declared machines.
#[derive(Debug, Default)]
pub struct LifecycleChecker {
    /// Current state per `(kind, entity)`.
    states: BTreeMap<(&'static str, u64), &'static str>,
    /// Lease expiry per entity, maintained from grant/renew `info`.
    lease_expiry: BTreeMap<u64, u64>,
    violations: Vec<String>,
    events: u64,
}

impl LifecycleChecker {
    pub fn new() -> LifecycleChecker {
        LifecycleChecker::default()
    }

    fn machine(kind: &str) -> Option<&'static StateMachine> {
        match kind {
            "lease" => Some(&LEASE_MACHINE),
            "provision" => Some(&PROVISION_MACHINE),
            "span" => Some(&SPAN_MACHINE),
            _ => None,
        }
    }

    /// Feed one observed transition.
    pub fn feed(&mut self, at: SimTime, ev: LifecycleEvent) {
        self.events += 1;
        let Some(machine) = Self::machine(ev.kind) else {
            self.violations
                .push(format!("unknown lifecycle kind '{}'", ev.kind));
            return;
        };
        let key = (machine.kind, ev.entity);
        let state = self.states.get(&key).copied().unwrap_or(machine.initial);
        match machine.next(state, ev.transition) {
            Some(next) => {
                self.states.insert(key, next);
            }
            None => self.violations.push(format!(
                "{} {:#x}: illegal transition '{}' from state '{}' at {:?}",
                ev.kind, ev.entity, ev.transition, state, at
            )),
        }
        if ev.kind == "lease" {
            self.check_lease_timing(at, ev);
        }
    }

    /// The temporal half of the lease machine: expiry bookkeeping.
    fn check_lease_timing(&mut self, at: SimTime, ev: LifecycleEvent) {
        let now = at.as_nanos();
        match ev.transition {
            "grant" => {
                self.lease_expiry.insert(ev.entity, ev.info);
            }
            "renew" => {
                if let Some(&old) = self.lease_expiry.get(&ev.entity) {
                    if now >= old {
                        self.violations.push(format!(
                            "lease {:#x} renewed at {now}ns but expired at {old}ns — used past expiry",
                            ev.entity
                        ));
                    }
                }
                self.lease_expiry.insert(ev.entity, ev.info);
            }
            "reap" => {
                if let Some(&expires) = self.lease_expiry.get(&ev.entity) {
                    if now < expires {
                        self.violations.push(format!(
                            "lease {:#x} reaped at {now}ns before its expiry {expires}ns",
                            ev.entity
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    /// End-of-run check: every lease that expired before `now` (minus a
    /// reaper-interval `grace`) must have been reaped or cancelled —
    /// "every registered servicer is reaped or renewed".
    pub fn finish(&mut self, now: SimTime, grace: SimDuration) {
        for ((kind, entity), state) in self.states.iter() {
            if *kind != "lease" || *state != "held" {
                continue;
            }
            let Some(&expires) = self.lease_expiry.get(entity) else {
                continue;
            };
            if expires.saturating_add(grace.as_nanos()) < now.as_nanos() {
                self.violations.push(format!(
                    "lease {entity:#x} expired at {expires}ns but was never reaped by {}ns",
                    now.as_nanos()
                ));
            }
        }
    }

    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Transitions fed so far — lets harnesses assert non-vacuity.
    pub fn events(&self) -> u64 {
        self.events
    }
}

/// Structural span-machine check over a finished flight recorder: every
/// span must have closed (`open → end → closed`), events only attach to
/// spans that were open, and timestamps must be monotone. Delegates to
/// the recorder's own validator, which enforces exactly this.
pub fn check_recorder(rec: &FlightRecorder) -> Vec<String> {
    let mut problems = rec.validate(true);
    for span in rec.spans() {
        if span.end_ns < span.start_ns {
            problems.push(format!("span '{}' ends before it starts", span.name));
        }
        for ev in &span.events {
            if ev.at_ns < span.start_ns || ev.at_ns > span.end_ns {
                problems.push(format!(
                    "span '{}': event '{}' outside the span's lifetime",
                    span.name, ev.name
                ));
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: &'static str, entity: u64, transition: &'static str, info: u64) -> LifecycleEvent {
        LifecycleEvent {
            kind,
            entity,
            transition,
            info,
        }
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn clean_lease_lifecycle_passes() {
        let mut c = LifecycleChecker::new();
        c.feed(t(0), ev("lease", 1, "grant", t(10).as_nanos()));
        c.feed(t(5), ev("lease", 1, "renew", t(15).as_nanos()));
        c.feed(t(16), ev("lease", 1, "reap", t(16).as_nanos()));
        c.finish(t(20), SimDuration::from_secs(1));
        assert!(c.violations().is_empty(), "{:?}", c.violations());
        assert_eq!(c.events(), 3);
    }

    #[test]
    fn renew_past_expiry_is_flagged() {
        let mut c = LifecycleChecker::new();
        c.feed(t(0), ev("lease", 1, "grant", t(10).as_nanos()));
        c.feed(t(10), ev("lease", 1, "renew", t(20).as_nanos()));
        assert!(
            c.violations()
                .iter()
                .any(|v| v.contains("used past expiry")),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn reap_before_expiry_is_flagged() {
        let mut c = LifecycleChecker::new();
        c.feed(t(0), ev("lease", 1, "grant", t(10).as_nanos()));
        c.feed(t(5), ev("lease", 1, "reap", t(5).as_nanos()));
        assert!(c
            .violations()
            .iter()
            .any(|v| v.contains("before its expiry")));
    }

    #[test]
    fn renew_after_reap_is_an_illegal_transition() {
        let mut c = LifecycleChecker::new();
        c.feed(t(0), ev("lease", 1, "grant", t(10).as_nanos()));
        c.feed(t(11), ev("lease", 1, "reap", t(11).as_nanos()));
        c.feed(t(12), ev("lease", 1, "renew", t(22).as_nanos()));
        assert!(c
            .violations()
            .iter()
            .any(|v| v.contains("illegal transition 'renew'")));
    }

    #[test]
    fn expired_but_unreaped_lease_is_flagged_at_finish() {
        let mut c = LifecycleChecker::new();
        c.feed(t(0), ev("lease", 7, "grant", t(10).as_nanos()));
        c.finish(t(30), SimDuration::from_secs(1));
        assert!(c.violations().iter().any(|v| v.contains("never reaped")));
    }

    #[test]
    fn double_deploy_is_flagged() {
        let mut c = LifecycleChecker::new();
        c.feed(t(0), ev("provision", 9, "deploy", 1));
        c.feed(t(1), ev("provision", 9, "deploy", 2));
        assert!(c
            .violations()
            .iter()
            .any(|v| v.contains("illegal transition 'deploy'")));
    }

    #[test]
    fn failover_and_pending_cycle_is_legal() {
        let mut c = LifecycleChecker::new();
        c.feed(t(0), ev("provision", 9, "deploy", 1));
        c.feed(t(1), ev("provision", 9, "failover", 2));
        c.feed(t(2), ev("provision", 9, "pending", 0));
        c.feed(t(3), ev("provision", 9, "deploy", 3));
        c.feed(t(4), ev("provision", 9, "undeploy", 0));
        assert!(c.violations().is_empty(), "{:?}", c.violations());
    }
}
