//! Federated worlds the schedule explorer drives.
//!
//! Each scenario builds a small but real slice of the federation —
//! lookup service, leases, renewal, provisioning, composite reads — with
//! timer periods deliberately aligned so several events are co-scheduled
//! at the same virtual instant. Those ties are exactly what the explorer
//! permutes; the scenarios assert the federation invariants that must
//! hold under *every* delivery order:
//!
//! * [`LeaseChurn`] — a renewing provider stays registered, a lapsed one
//!   is reaped, a cancelled one disappears; no lease is used past expiry.
//! * [`ProvisionFailover`] — a crashed node's instance moves exactly
//!   once (never double-deploys) and the planned count is restored.
//! * [`DegradedRead`] — composite reads that substitute or drop children
//!   are always flagged suspect with a populated `DegradedInfo`.
//! * [`BuggyReaper`] — an intentionally broken aggressive reaper that
//!   cancels leases *about to* expire: correct under FIFO (renewal is
//!   registered first) but wrong when the explorer delivers the reap
//!   before the same-instant renewal. The mutation test uses it to prove
//!   the explorer detects a real ordering bug.
//!
//! The shard-race scenarios (`shards() > 0`) run on the sharded engine
//! with the FastTrack-lite detector installed and take their choice
//! points at window boundaries instead:
//!
//! * [`ShardLocalChurn`] — every shard churns only its own per-subnet
//!   service map: zero races under every window interleaving.
//! * [`BarrierHandoff`] — cross-shard handoffs spaced strictly past the
//!   lookahead, so the window barrier supplies the happens-before edge.
//! * [`CrossSubnetRacyMap`] — the deliberate mutation: two shards mutate
//!   one cross-subnet route map inside the same window, no barrier
//!   between them. Caught under *every* schedule, FIFO included.
//! * [`HiddenRace`] — a flag-guarded second writer that only touches the
//!   shared map when the publisher fired first: clean under the
//!   canonical window order, racy under the permuted one — the bug only
//!   DPOR-style window exploration surfaces.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use sensorcer_core::csp::DegradationPolicy;
use sensorcer_core::prelude::*;
use sensorcer_provision::cybernode::Cybernode;
use sensorcer_provision::factory::FactoryRegistry;
use sensorcer_provision::monitor::ProvisionMonitor;
use sensorcer_provision::opstring::{OperationalString, ServiceElement};
use sensorcer_provision::policy::AllocationPolicy;
use sensorcer_provision::qos::{QosCapabilities, QosRequirements};
use sensorcer_registry::attributes::Entry;
use sensorcer_registry::ids::{interfaces, SvcUuid};
use sensorcer_registry::item::{ServiceItem, ServiceTemplate};
use sensorcer_registry::lease::LeasePolicy;
use sensorcer_registry::lus::LookupService;
use sensorcer_sensors::prelude::*;
use sensorcer_sim::prelude::*;

use crate::explore::{Scenario, ScenarioResult};

fn fnv(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(0x1_0000_0000_01b3);
}

fn fnv_str(h: &mut u64, s: &str) {
    for b in s.bytes() {
        fnv(h, b as u64);
    }
    fnv(h, 0xFF);
}

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Register a bare provider item named `name` living on `host`.
fn provider_item(name: &str, host: HostId, service: ServiceId) -> ServiceItem {
    ServiceItem::new(
        SvcUuid::NIL,
        host,
        service,
        vec![interfaces::SENSOR_DATA_ACCESSOR.into()],
        vec![Entry::Name(name.to_string())],
    )
}

/// Lease churn under permuted reap/renew/lookup order.
///
/// One LUS (reaper every 500 ms), three providers with 1.5 s leases:
/// `Stable` renews on a 500 ms grid, `Lapser` never renews, `Canceller`
/// cancels at exactly t=1 s. Two clients each look all three up at every
/// grid instant. All workload timers are pinned at *absolute* grid times
/// (relative rescheduling would drift off-grid as calls consume virtual
/// time), so each 500 ms boundary co-schedules a renewal, six lookups
/// and — early on — the reaper, and the explorer owns their order.
#[derive(Clone, Copy, Debug, Default)]
pub struct LeaseChurn;

impl Scenario for LeaseChurn {
    fn name(&self) -> &'static str {
        "lease-churn"
    }

    fn reap_grace(&self) -> SimDuration {
        SimDuration::from_millis(1500)
    }

    fn run(&self, env: &mut Env) -> ScenarioResult {
        let lab = env.add_host("lab", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        let lease = SimDuration::from_millis(1500);
        let lus = LookupService::deploy(
            env,
            lab,
            "LUS",
            "public",
            LeasePolicy {
                max_duration: SimDuration::from_secs(100_000),
                default_duration: lease,
            },
            SimDuration::from_millis(500),
        );

        let mut violations = Vec::new();
        let mut providers = Vec::new();
        for name in ["Stable", "Lapser", "Canceller"] {
            let host = env.add_host(format!("{name}-host"), HostKind::SensorMote);
            let service = env.deploy(host, name, ());
            let reg = match lus.register(env, host, provider_item(name, host, service), Some(lease))
            {
                Ok(reg) => reg,
                Err(e) => {
                    violations.push(format!("registering {name} failed: {e}"));
                    continue;
                }
            };
            providers.push((name, host, reg));
        }

        // Stable renews on the grid: each renewal lands a full second
        // before the running expiry, so it is on time under every order.
        if let Some((_, host, reg)) = providers.iter().find(|(n, _, _)| *n == "Stable").copied() {
            let lease_id = reg.lease.id;
            for tick in 1..=12u64 {
                env.schedule_at(
                    SimTime::ZERO + SimDuration::from_millis(500 * tick),
                    move |env| {
                        let _ =
                            lus.renew(env, host, lease_id, Some(SimDuration::from_millis(1500)));
                    },
                );
            }
        }
        if let Some((_, host, reg)) = providers
            .iter()
            .find(|(n, _, _)| *n == "Canceller")
            .copied()
        {
            let lease_id = reg.lease.id;
            // At t=1s the lease (expiring 1.5s) is still live; the cancel
            // joins the 1s choice point with reap, renewal and lookups.
            env.schedule_at(SimTime::ZERO + SimDuration::from_secs(1), move |env| {
                let _ = lus.cancel(env, host, lease_id);
            });
        }

        // Six independent lookups per grid instant (two clients × three
        // names), each its own timer so the whole batch ties; the results
        // feed the digest so schedule-visible differences are captured.
        let client2 = env.add_host("client2", HostKind::Workstation);
        // (virtual nanos, client index, provider name, found?)
        type LookupLog = Rc<RefCell<Vec<(u64, u8, String, bool)>>>;
        let seen: LookupLog = Rc::default();
        for tick in 1..=12u64 {
            for (who, from) in [(0u8, client), (1u8, client2)] {
                for name in ["Stable", "Lapser", "Canceller"] {
                    let log = Rc::clone(&seen);
                    env.schedule_at(
                        SimTime::ZERO + SimDuration::from_millis(500 * tick),
                        move |env| {
                            let hit = lus
                                .lookup_one(env, from, &ServiceTemplate::by_name(name))
                                .map(|o| o.is_some())
                                .unwrap_or(false);
                            log.borrow_mut().push((
                                env.now().as_nanos(),
                                who,
                                name.to_string(),
                                hit,
                            ));
                        },
                    );
                }
            }
        }

        env.run_for(SimDuration::from_secs(7));

        // End-state invariants: the renewing provider survived, the
        // lapsed and cancelled ones are gone.
        let mut digest = FNV_SEED;
        for (name, expect) in [("Stable", true), ("Lapser", false), ("Canceller", false)] {
            let hit = lus
                .lookup_one(env, client, &ServiceTemplate::by_name(name))
                .map(|o| o.is_some())
                .unwrap_or(false);
            if hit != expect {
                violations.push(format!(
                    "{name}: expected {} at end of run, found {}",
                    if expect { "registered" } else { "absent" },
                    if hit { "registered" } else { "absent" }
                ));
            }
            fnv(&mut digest, hit as u64);
        }
        for (at, who, name, hit) in seen.borrow().iter() {
            fnv(&mut digest, *at);
            fnv(&mut digest, *who as u64);
            fnv_str(&mut digest, name);
            fnv(&mut digest, *hit as u64);
        }
        fnv(
            &mut digest,
            env.metrics
                .get(sensorcer_registry::lus::keys::LEASES_REAPED),
        );
        ScenarioResult { digest, violations }
    }
}

struct Bean;

/// Provision failover under permuted heartbeat/reap order.
///
/// A monitor (heartbeat 500 ms) places two instances across three
/// cybernodes registered with a LUS (reaper 500 ms, renewals 500 ms). The
/// node hosting the first instance crashes at t=1.25 s and reboots at
/// t=2.75 s. Under every delivery order the opstring must return to its
/// planned count with each instance deployed exactly once — the
/// `provision` state machine flags any double-deploy.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProvisionFailover;

impl Scenario for ProvisionFailover {
    fn name(&self) -> &'static str {
        "provision-failover"
    }

    fn run(&self, env: &mut Env) -> ScenarioResult {
        let lab = env.add_host("lab", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        let lus = LookupService::deploy(
            env,
            lab,
            "LUS",
            "public",
            LeasePolicy {
                max_duration: SimDuration::from_secs(100_000),
                default_duration: SimDuration::from_millis(1500),
            },
            SimDuration::from_millis(500),
        );

        let mut factories = FactoryRegistry::new();
        factories.register_fn("bean", |env, host, _el, instance| {
            Ok(env.deploy(host, instance.to_string(), Bean))
        });
        let monitor = ProvisionMonitor::deploy(
            env,
            lab,
            "Monitor",
            AllocationPolicy::LeastUtilized,
            factories,
            Some(lus),
            SimDuration::from_millis(500),
        );
        let mut nodes = Vec::new();
        for i in 0..3 {
            let h = env.add_host(format!("node{i}"), HostKind::Server);
            let n = Cybernode::deploy(
                env,
                h,
                &format!("Cybernode-{i}"),
                QosCapabilities::lab_server(),
                Some(lus),
            );
            env.with_service(monitor.service, |_e, m: &mut ProvisionMonitor| {
                m.register_cybernode(n)
            })
            .ok();
            nodes.push(n);
        }

        let os = OperationalString::new("net").with_element(
            ServiceElement::singleton("svc", "bean")
                .with_planned(2)
                .with_max_per_node(1)
                .with_qos(QosRequirements {
                    memory_mb: 64,
                    ..Default::default()
                }),
        );
        let mut violations = Vec::new();
        let placed = match monitor.deploy_opstring(env, client, os) {
            Ok(Ok(p)) => p,
            other => {
                return ScenarioResult {
                    digest: 0,
                    violations: vec![format!("initial deploy failed: {other:?}")],
                }
            }
        };
        let victim = placed[0].host;
        env.schedule_at(SimTime::ZERO + SimDuration::from_millis(1250), move |env| {
            env.crash_host(victim);
        });
        env.schedule_at(SimTime::ZERO + SimDuration::from_millis(2750), move |env| {
            env.restart_host(victim);
        });

        // Three observer lookups per grid instant — pinned at absolute
        // times so they keep tying with the heartbeat/reap timers and
        // with each other; their hits feed the digest.
        let observed: Rc<RefCell<Vec<(u64, u8, bool)>>> = Rc::default();
        for tick in 1..=11u64 {
            for i in 0..3u8 {
                let log = Rc::clone(&observed);
                env.schedule_at(
                    SimTime::ZERO + SimDuration::from_millis(500 * tick),
                    move |env| {
                        let hit = lus
                            .lookup_one(
                                env,
                                client,
                                &ServiceTemplate::by_name(format!("Cybernode-{i}")),
                            )
                            .map(|o| o.is_some())
                            .unwrap_or(false);
                        log.borrow_mut().push((env.now().as_nanos(), i, hit));
                    },
                );
            }
        }

        env.run_for(SimDuration::from_secs(6));

        let (instances, failovers) = env
            .with_service(monitor.service, |_e, m: &mut ProvisionMonitor| {
                (m.instances("net"), m.failovers_total())
            })
            .unwrap_or_default();
        if instances.len() != 2 {
            violations.push(format!(
                "planned 2 instances, {} live at end",
                instances.len()
            ));
        }
        let mut names: Vec<&str> = instances.iter().map(|r| r.instance.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != instances.len() {
            violations.push("an instance is deployed more than once".to_string());
        }
        for rec in &instances {
            if !env.is_service_up(rec.service) {
                violations.push(format!(
                    "instance {} placed on a dead service",
                    rec.instance
                ));
            }
        }
        if failovers == 0 {
            violations.push("the crashed instance never failed over".to_string());
        }

        let mut digest = FNV_SEED;
        fnv(&mut digest, failovers);
        for rec in &instances {
            fnv_str(&mut digest, &rec.instance);
            fnv(&mut digest, rec.node.host.0 as u64);
        }
        for &(at, i, hit) in observed.borrow().iter() {
            fnv(&mut digest, at);
            fnv(&mut digest, i as u64);
            fnv(&mut digest, hit as u64);
        }
        ScenarioResult { digest, violations }
    }
}

/// Degraded composite reads under permuted read order.
///
/// A `Quorum(2)` composite over three scripted ESPs; three clients each
/// read it at every 500 ms grid instant (absolute-time timers, so the
/// batch of three reads ties at every instant). One mote is crashed at
/// t=1.25 s and rebooted at t=3.25 s. Invariants, per read: a read that
/// substitutes or drops children must be flagged suspect and must carry
/// the affected children in its `DegradedInfo`; after the heal the final
/// read must be clean.
#[derive(Clone, Copy, Debug, Default)]
pub struct DegradedRead;

impl Scenario for DegradedRead {
    fn name(&self) -> &'static str {
        "degraded-read"
    }

    fn run(&self, env: &mut Env) -> ScenarioResult {
        let lab = env.add_host("lab", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        env.topo.join_group(client, "public");
        let lus = LookupService::deploy(
            env,
            lab,
            "LUS",
            "public",
            LeasePolicy {
                max_duration: SimDuration::from_secs(100_000),
                default_duration: SimDuration::from_millis(1500),
            },
            SimDuration::from_millis(500),
        );
        let mut motes = Vec::new();
        for i in 0..3 {
            let name = format!("S{i}");
            let mote = env.add_host(format!("{name}-mote"), HostKind::SensorMote);
            // Leases far longer than the horizon: the crash window (2 s)
            // must not evaporate the registration, or the composite could
            // never reconverge post-heal.
            deploy_esp(
                env,
                EspConfig {
                    lease: SimDuration::from_secs(36_000),
                    ..EspConfig::new(
                        mote,
                        name,
                        Box::new(ScriptedProbe::new(
                            vec![10.0 * (i + 1) as f64],
                            Unit::Celsius,
                        )),
                        lus,
                    )
                },
            );
            motes.push(mote);
        }

        let mut cfg = CspConfig::new(lab, "Quorum", lus);
        cfg.lease = SimDuration::from_secs(36_000);
        cfg.children = vec!["S0".into(), "S1".into(), "S2".into()];
        cfg.degradation = DegradationPolicy::Quorum(2);
        if deploy_csp(env, cfg).is_err() {
            return ScenarioResult {
                digest: 0,
                violations: vec!["composite deploy failed".into()],
            };
        }

        let accessor = sensorcer_exertion::ServiceAccessor::new(vec![lus]);
        let victim = motes[2];
        env.schedule_at(SimTime::ZERO + SimDuration::from_millis(1250), move |env| {
            env.crash_host(victim);
        });
        env.schedule_at(SimTime::ZERO + SimDuration::from_millis(3250), move |env| {
            env.restart_host(victim);
        });

        let mut readers = vec![client];
        for i in 1..3 {
            let c = env.add_host(format!("client{i}"), HostKind::Workstation);
            env.topo.join_group(c, "public");
            readers.push(c);
        }

        let results: Rc<RefCell<Vec<(u64, u8, u8)>>> = Rc::default();
        let violations: Rc<RefCell<Vec<String>>> = Rc::default();
        for tick in 1..=11u64 {
            for (who, from) in readers.iter().copied().enumerate() {
                let (log, bad, acc) = (
                    Rc::clone(&results),
                    Rc::clone(&violations),
                    accessor.clone(),
                );
                env.schedule_at(
                    SimTime::ZERO + SimDuration::from_millis(500 * tick),
                    move |env| {
                        let t = env.now();
                        match client::get_value_detailed(env, from, &acc, "Quorum") {
                            Ok((r, d)) => {
                                if d.is_degraded() {
                                    if r.good {
                                        bad.borrow_mut().push(format!(
                                            "t={t:?}: degraded read not flagged suspect \
                                         (substituted: {:?}, missing: {:?})",
                                            d.substituted, d.missing
                                        ));
                                    }
                                    if d.substituted.is_empty() && d.missing.is_empty() {
                                        bad.borrow_mut().push(format!(
                                            "t={t:?}: degraded read carries an empty DegradedInfo"
                                        ));
                                    }
                                } else if !r.good {
                                    bad.borrow_mut().push(format!(
                                        "t={t:?}: suspect read carries no DegradedInfo at all"
                                    ));
                                }
                                log.borrow_mut().push((
                                    t.as_nanos(),
                                    who as u8,
                                    1 + d.is_degraded() as u8,
                                ));
                            }
                            Err(_) => log.borrow_mut().push((t.as_nanos(), who as u8, 0)),
                        }
                    },
                );
            }
        }

        env.run_for(SimDuration::from_secs(7));

        let mut violations = violations.borrow().clone();
        match client::get_value_detailed(env, client, &accessor, "Quorum") {
            Ok((r, d)) if r.good && !d.is_degraded() => {}
            Ok(_) => violations.push("post-heal read still degraded".into()),
            Err(e) => violations.push(format!("post-heal read failed: {e}")),
        }

        let mut digest = FNV_SEED;
        for &(at, who, outcome) in results.borrow().iter() {
            fnv(&mut digest, at);
            fnv(&mut digest, who as u64);
            fnv(&mut digest, outcome as u64);
        }
        ScenarioResult { digest, violations }
    }
}

/// The intentionally broken scenario behind the mutation test.
///
/// A provider's 3 s lease is renewed by a timer at t=2.5 s. A *buggy*
/// aggressive reaper — "reap anything expiring within the next 600 ms" —
/// is co-scheduled at the same instant, registered after the renewal so
/// FIFO order renews first and the run passes. When the explorer flips
/// the tie, the reap lands first, kills a lease that was about to be
/// renewed on time, and the provider vanishes: the ordering bug the
/// schedule explorer exists to catch.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuggyReaper;

impl Scenario for BuggyReaper {
    fn name(&self) -> &'static str {
        "buggy-reaper"
    }

    fn reap_grace(&self) -> SimDuration {
        SimDuration::from_secs(100)
    }

    fn run(&self, env: &mut Env) -> ScenarioResult {
        let lab = env.add_host("lab", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        let lease_dur = SimDuration::from_secs(3);
        let lus = LookupService::deploy(
            env,
            lab,
            "LUS",
            "public",
            LeasePolicy {
                max_duration: SimDuration::from_secs(100_000),
                default_duration: lease_dur,
            },
            // The legitimate reaper is parked far beyond the horizon; the
            // buggy aggressive one below is the subject.
            SimDuration::from_secs(50_000),
        );

        let host = env.add_host("victim-host", HostKind::SensorMote);
        let service = env.deploy(host, "Victim", ());
        let reg = match lus.register(
            env,
            host,
            provider_item("Victim", host, service),
            Some(lease_dur),
        ) {
            Ok(reg) => reg,
            Err(e) => {
                return ScenarioResult {
                    digest: 0,
                    violations: vec![format!("register failed: {e}")],
                }
            }
        };
        let lease_id = reg.lease.id;
        let expiry: Rc<RefCell<SimTime>> = Rc::new(RefCell::new(reg.lease.expires));

        // Renewal at t=2.5s — 500ms before expiry, comfortably on time.
        let tick = SimTime::ZERO + SimDuration::from_millis(2500);
        let exp = Rc::clone(&expiry);
        env.schedule_at(tick, move |env| {
            if let Ok(Ok(renewed)) = lus.renew(env, host, lease_id, Some(lease_dur)) {
                *exp.borrow_mut() = renewed.expires;
            }
        });
        // The bug: an "aggressive reaper" co-scheduled at the same instant
        // cancels any lease within 600ms of expiry — including one whose
        // renewal is in flight right now.
        let exp = Rc::clone(&expiry);
        env.schedule_at(tick, move |env| {
            let remaining = exp.borrow().as_nanos().saturating_sub(env.now().as_nanos());
            if remaining <= SimDuration::from_millis(600).as_nanos() {
                let _ = lus.cancel(env, lab, lease_id);
            }
        });

        env.run_for(SimDuration::from_secs(4));

        let mut violations = Vec::new();
        let hit = lus
            .lookup_one(env, client, &ServiceTemplate::by_name("Victim"))
            .map(|o| o.is_some())
            .unwrap_or(false);
        if !hit {
            violations.push(
                "provider renewed on time but lost its registration (reap beat the renewal)"
                    .to_string(),
            );
        }
        let mut digest = FNV_SEED;
        fnv(&mut digest, hit as u64);
        fnv(&mut digest, expiry.borrow().as_nanos());
        ScenarioResult { digest, violations }
    }
}

// --------------------------------------------------------------------
// Shard-race scenarios: sharded worlds for the FastTrack-lite detector.
// --------------------------------------------------------------------

/// One mote per subnet `0..n`, so `shards() == n` gives every mote its
/// own shard lane.
fn mote_grid(env: &mut Env, n: u32) -> Vec<HostId> {
    (0..n)
        .map(|s| {
            let h = env.add_host(format!("mote{s}"), HostKind::SensorMote);
            env.topo.set_subnet(h, SubnetId(s));
            h
        })
        .collect()
}

/// Shard-local churn: every shard repeatedly reads and rewrites only its
/// *own* per-subnet service map. All three lanes are co-due at each grid
/// instant, so every window is a k=3 cross-shard choice point — and no
/// interleaving can race, because no cell is shared across lanes.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardLocalChurn;

impl Scenario for ShardLocalChurn {
    fn name(&self) -> &'static str {
        "shard-local-churn"
    }

    fn shards(&self) -> usize {
        3
    }

    fn run(&self, env: &mut Env) -> ScenarioResult {
        let motes = mote_grid(env, 3);
        let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::default();
        for round in 0..2u64 {
            // Mote-only subnets give a 5 ms lookahead; rounds 20 ms apart
            // land in separate windows with a barrier between them.
            let at = SimTime::ZERO + SimDuration::from_millis(5 + 20 * round);
            for (s, &m) in motes.iter().enumerate() {
                // The log is explorer bookkeeping, not simulated shared
                // state — shared cells go through race_write/race_read.
                // lint:allow(shard)
                let log = Rc::clone(&log);
                let key = format!("fed.subnet{s}.services");
                env.schedule_at_on(m, at, move |env| {
                    env.race_read(&key);
                    env.race_write(&key);
                    log.borrow_mut().push((env.now().as_nanos(), s as u32));
                });
            }
        }
        env.run_for(SimDuration::from_millis(60));

        let mut digest = FNV_SEED;
        for &(at, s) in log.borrow().iter() {
            fnv(&mut digest, at);
            fnv(&mut digest, s as u64);
        }
        ScenarioResult {
            digest,
            violations: Vec::new(),
        }
    }
}

/// Barrier-separated cross-shard handoff: each shard publishes a cell
/// the *other* shard consumes, with the read scheduled strictly past
/// `t_write + lookahead` (5 ms on a mote-only world) so a window barrier
/// always separates the pair. The two publishers tie in one window and
/// the two consumers in the next — k=2 choice points throughout — yet
/// every interleaving is clean: the barrier is the happens-before edge.
#[derive(Clone, Copy, Debug, Default)]
pub struct BarrierHandoff;

impl Scenario for BarrierHandoff {
    fn name(&self) -> &'static str {
        "barrier-handoff"
    }

    fn shards(&self) -> usize {
        2
    }

    fn run(&self, env: &mut Env) -> ScenarioResult {
        let motes = mote_grid(env, 2);
        let log: Rc<RefCell<Vec<(u64, u32, u8)>>> = Rc::default();
        for round in 0..2u64 {
            let base = 5 + 20 * round;
            for (w, r, cell) in [
                (0usize, 1usize, "fed.handoff.east"),
                (1, 0, "fed.handoff.west"),
            ] {
                // Explorer bookkeeping log; the handed-off cell itself
                // goes through race_write/race_read.
                // lint:allow(shard)
                let l = Rc::clone(&log);
                env.schedule_at_on(
                    motes[w],
                    SimTime::ZERO + SimDuration::from_millis(base),
                    move |env| {
                        env.race_write(cell);
                        l.borrow_mut().push((env.now().as_nanos(), w as u32, 0));
                    },
                );
                // lint:allow(shard)
                let l = Rc::clone(&log);
                env.schedule_at_on(
                    motes[r],
                    // +6 ms: strictly past the inclusive 5 ms horizon, so
                    // the read is in the next window, behind the barrier.
                    SimTime::ZERO + SimDuration::from_millis(base + 6),
                    move |env| {
                        env.race_read(cell);
                        l.borrow_mut().push((env.now().as_nanos(), r as u32, 1));
                    },
                );
            }
        }
        env.run_for(SimDuration::from_millis(60));

        let mut digest = FNV_SEED;
        for &(at, lane, op) in log.borrow().iter() {
            fnv(&mut digest, at);
            fnv(&mut digest, lane as u64);
            fnv(&mut digest, op as u64);
        }
        ScenarioResult {
            digest,
            violations: Vec::new(),
        }
    }
}

/// The deliberate racy mutation: callbacks on two shards mutate one
/// cross-subnet route map at the same instant — same window, no barrier
/// between them. A write-write race under *every* window interleaving;
/// the detector must report it even on the canonical FIFO schedule.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrossSubnetRacyMap;

impl Scenario for CrossSubnetRacyMap {
    fn name(&self) -> &'static str {
        "cross-subnet-racy-map"
    }

    fn shards(&self) -> usize {
        2
    }

    fn run(&self, env: &mut Env) -> ScenarioResult {
        let motes = mote_grid(env, 2);
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let at = SimTime::ZERO + SimDuration::from_millis(5);
        for (s, &m) in motes.iter().enumerate() {
            // Explorer bookkeeping log. lint:allow(shard)
            let l = Rc::clone(&log);
            env.schedule_at_on(m, at, move |env| {
                env.race_write("fed.routes.map");
                l.borrow_mut().push(s as u32);
            });
        }
        env.run_for(SimDuration::from_millis(20));

        let mut digest = FNV_SEED;
        for &s in log.borrow().iter() {
            fnv(&mut digest, s as u64);
        }
        ScenarioResult {
            digest,
            violations: Vec::new(),
        }
    }
}

/// A schedule-dependent race only window permutation surfaces.
///
/// A probe on shard 1 registers first; a publisher on shard 0 registers
/// second, co-due in the same window. The publisher sets a flag and
/// writes the shared route map; the probe writes the map *only when the
/// flag is already set*. Canonical window order runs the probe first
/// (flag clear → it stays off the map) so only one lane ever touches the
/// cell: clean. The permuted order runs the publisher first, the probe
/// then joins in, and the same-window cross-shard write-write race
/// appears — exactly the kind of bug DPOR window exploration exists to
/// catch and the FIFO-only detector misses.
#[derive(Clone, Copy, Debug, Default)]
pub struct HiddenRace;

impl Scenario for HiddenRace {
    fn name(&self) -> &'static str {
        "hidden-race"
    }

    fn shards(&self) -> usize {
        2
    }

    fn run(&self, env: &mut Env) -> ScenarioResult {
        let motes = mote_grid(env, 2);
        let flag: Rc<Cell<bool>> = Rc::default();
        let at = SimTime::ZERO + SimDuration::from_millis(5);
        // The flag IS the bug under test — unsynchronized cross-shard
        // state the detector flags when both lanes reach the map.
        // lint:allow(shard)
        let f = Rc::clone(&flag);
        env.schedule_at_on(motes[1], at, move |env| {
            if f.get() {
                env.race_write("fed.routes.map");
            }
        });
        // lint:allow(shard): same flag, publisher side
        let f = Rc::clone(&flag);
        env.schedule_at_on(motes[0], at, move |env| {
            f.set(true);
            env.race_write("fed.routes.map");
        });
        env.run_for(SimDuration::from_millis(20));

        let mut digest = FNV_SEED;
        fnv(&mut digest, flag.get() as u64);
        ScenarioResult {
            digest,
            violations: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, run_one, ChoicePolicy, ExploreConfig};

    #[test]
    fn lease_churn_is_clean_under_fifo() {
        let out = run_one(&LeaseChurn, ChoicePolicy::Prefix(Vec::new()), false);
        assert!(out.violations.is_empty(), "{:#?}", out.violations);
        assert!(
            !out.choices.is_empty(),
            "no choice points — the scenario is vacuous"
        );
        assert!(
            out.lifecycle_events > 0,
            "no lifecycle transitions observed"
        );
        let (d, w, r) = out.hb_activity;
        assert!(
            d > 0 && w > 0 && r > 0,
            "hb tracker saw nothing: {:?}",
            (d, w, r)
        );
    }

    #[test]
    fn provision_failover_is_clean_under_fifo() {
        let out = run_one(&ProvisionFailover, ChoicePolicy::Prefix(Vec::new()), false);
        assert!(out.violations.is_empty(), "{:#?}", out.violations);
        assert!(!out.choices.is_empty());
        assert!(out.lifecycle_events > 0);
    }

    #[test]
    fn degraded_read_is_clean_under_fifo() {
        let out = run_one(&DegradedRead, ChoicePolicy::Prefix(Vec::new()), false);
        assert!(out.violations.is_empty(), "{:#?}", out.violations);
        assert!(!out.choices.is_empty());
    }

    #[test]
    fn lease_churn_survives_sampled_schedules() {
        let report = explore(&LeaseChurn, &ExploreConfig::sample(7, 12));
        assert!(report.passed(), "{:#?}", report.violations);
        assert!(
            report.distinct_schedules >= 2,
            "sampling found no reorderings"
        );
    }

    #[test]
    fn buggy_reaper_passes_fifo_but_fails_under_exploration() {
        let fifo = run_one(&BuggyReaper, ChoicePolicy::Prefix(Vec::new()), false);
        assert!(
            fifo.violations.is_empty(),
            "FIFO must hide the bug: {:#?}",
            fifo.violations
        );
        let report = explore(&BuggyReaper, &ExploreConfig::exhaustive(64));
        assert!(
            !report.passed(),
            "the explorer must catch the injected ordering bug"
        );
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("lost its registration")));
    }

    #[test]
    fn shard_local_churn_is_clean_under_every_window_order() {
        let report = explore(&ShardLocalChurn, &ExploreConfig::exhaustive(100));
        assert!(report.passed(), "{:#?}", report.violations);
        assert!(!report.truncated);
        assert_eq!(report.races_detected, 0);
        // Non-vacuous: k=3 window choice points and real cell traffic.
        assert!(report.distinct_schedules >= 6, "{report:?}");
        assert_eq!(report.max_width, 3);
        assert!(report.race_cells_checked > 0);
        assert!(report.race_barriers > 0);
    }

    #[test]
    fn barrier_handoff_is_clean_under_every_window_order() {
        let report = explore(&BarrierHandoff, &ExploreConfig::exhaustive(100));
        assert!(report.passed(), "{:#?}", report.violations);
        assert!(!report.truncated);
        assert_eq!(report.races_detected, 0);
        assert!(report.distinct_schedules >= 4, "{report:?}");
        assert!(report.race_barriers > 0, "no barriers — windows collapsed");
    }

    #[test]
    fn cross_subnet_racy_map_is_caught_even_under_fifo() {
        let fifo = run_one(&CrossSubnetRacyMap, ChoicePolicy::Prefix(Vec::new()), false);
        assert!(
            fifo.violations.iter().any(|v| v.starts_with("race: ")),
            "the canonical schedule must already report the race: {:#?}",
            fifo.violations
        );
        assert!(fifo
            .violations
            .iter()
            .any(|v| v.contains("fed.routes.map") && v.contains("write-write")));
        let report = explore(&CrossSubnetRacyMap, &ExploreConfig::exhaustive(16));
        assert_eq!(
            report.races_detected as usize, report.schedules_run,
            "one race per schedule, every schedule: {report:?}"
        );
    }

    #[test]
    fn hidden_race_passes_fifo_but_fails_under_window_permutation() {
        let fifo = run_one(&HiddenRace, ChoicePolicy::Prefix(Vec::new()), false);
        assert!(
            fifo.violations.is_empty(),
            "the canonical window order must hide the race: {:#?}",
            fifo.violations
        );
        let report = explore(&HiddenRace, &ExploreConfig::exhaustive(16));
        assert!(
            !report.passed(),
            "window permutation must surface the hidden race: {report:?}"
        );
        assert!(report.violations.iter().any(|v| v.starts_with("race: ")));
        assert!(report.races_detected > 0);
    }
}
