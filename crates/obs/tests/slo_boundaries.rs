//! SLO window arithmetic at the awkward sim-time boundaries: traffic
//! straddling t=0 (window start saturates), events exactly one window
//! old (inclusive edge), zero traffic, and whole-run invariants under
//! seeded pseudo-traffic across three pinned seeds.

use sensorcer_obs::{BurnRateWindows, ReadOutcome, SloEngine, SloKind, SloSpec};
use sensorcer_sim::prelude::{SimDuration, SimTime};

const NS: u64 = 1_000_000_000;

fn secs(s: u64) -> SimTime {
    SimTime(s * NS)
}

/// 90% availability, 30s/120s windows, 5x/2x burn.
fn avail_spec() -> SloSpec {
    SloSpec {
        name: "b-avail".into(),
        service: "Svc".into(),
        kind: SloKind::Availability { min_ratio: 0.90 },
        windows: BurnRateWindows {
            fast: SimDuration::from_secs(30),
            slow: SimDuration::from_secs(120),
            fast_burn: 5.0,
            slow_burn: 2.0,
        },
    }
}

#[test]
fn windows_straddling_t0_saturate_instead_of_underflowing() {
    // At t=5s both windows reach back past t=0; the window start must
    // clamp to 0 and count everything fed so far.
    let mut e = SloEngine::new(vec![avail_spec()]);
    for i in 0..5u64 {
        e.record_read(secs(i), "Svc", ReadOutcome::Error, 1_000_000);
    }
    e.evaluate(secs(4));
    let r = e.report(secs(4));
    // All 5 reads are bad: burn = 1.0 / 0.1 = 10 in both windows.
    assert_eq!(r.verdicts[0].total, 5);
    assert_eq!(r.verdicts[0].bad, 5);
    assert!((r.verdicts[0].burn_fast - 10.0).abs() < 1e-9);
    assert!((r.verdicts[0].burn_slow - 10.0).abs() < 1e-9);
    // Both windows saw enough burn from the very first evaluations: the
    // alert fires even though a full window has never elapsed yet.
    assert!(r.verdicts[0].firing);
}

#[test]
fn event_exactly_one_window_old_still_counts_one_nanosecond_later_does_not() {
    let mut e = SloEngine::new(vec![avail_spec()]);
    e.record_read(secs(10), "Svc", ReadOutcome::Error, 1_000_000);

    // Exactly 30s later: [t - fast, t] is inclusive at the left edge.
    let edge = SimTime(secs(40).0);
    e.evaluate(edge);
    let r = e.report(edge);
    assert!(
        r.verdicts[0].burn_fast > 0.0,
        "event exactly `fast` old must still be inside the window"
    );

    // One nanosecond past the edge the event ages out and the fast
    // window is empty again (zero traffic burns zero).
    let past = SimTime(secs(40).0 + 1);
    e.evaluate(past);
    let r = e.report(past);
    assert_eq!(r.verdicts[0].burn_fast, 0.0);
    // ...but it is still inside the 120s slow window.
    assert!(r.verdicts[0].burn_slow > 0.0);
}

#[test]
fn alert_fires_at_the_edge_and_resolves_when_the_window_empties() {
    let mut e = SloEngine::new(vec![avail_spec()]);
    // A burst of failures, then silence. The alert must fire during the
    // burst and resolve once the fast window slides clear of it — with
    // no traffic at all in between.
    for i in 0..10u64 {
        e.record_read(secs(i), "Svc", ReadOutcome::Error, 1_000_000);
        e.evaluate(secs(i));
    }
    let alerts = e.alerts().to_vec();
    assert_eq!(alerts.len(), 1, "burst must fire exactly once");
    assert!(alerts[0].resolved_at.is_none());

    // Last failure at t=9s; at t=39s it is exactly `fast` old (still
    // in), at 39s+1ns the window is empty and the alert resolves.
    assert!(e.evaluate(SimTime(secs(39).0)).is_empty());
    let transitions = e.evaluate(SimTime(secs(39).0 + 1));
    assert_eq!(transitions.len(), 1);
    assert!(!transitions[0].fired);
    let resolved = e.alerts()[0].resolved_at.expect("alert resolved");
    assert_eq!(resolved.as_nanos(), secs(39).0 + 1);
}

#[test]
fn zero_traffic_never_fires_and_reports_healthy() {
    let mut e = SloEngine::new(vec![
        avail_spec(),
        SloSpec {
            name: "b-fresh".into(),
            service: "Svc".into(),
            kind: SloKind::Freshness {
                max_age_ns: 30 * NS,
                min_ratio: 0.95,
            },
            windows: BurnRateWindows::default(),
        },
    ]);
    // Evaluate at t=0 (windows saturate to the empty range) and far out.
    assert!(e.evaluate(secs(0)).is_empty());
    assert!(e.evaluate(secs(100_000)).is_empty());
    let r = e.report(secs(100_000));
    assert!(r.healthy());
    for v in &r.verdicts {
        assert_eq!(v.total, 0);
        assert_eq!(v.burn_fast, 0.0);
        assert_eq!(v.burn_slow, 0.0);
        assert!(v.met, "an idle service is not in violation");
    }
    assert!(r.alerts.is_empty());
}

/// Tiny deterministic LCG so the seeded sweep needs no RNG dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// One outage-shaped traffic pattern: reads every second, failing inside
/// a seeded outage window, evaluated after every read.
fn run_seeded(seed: u64) -> (SloEngine, u64) {
    let mut rng = Lcg(seed);
    let outage_start = 100 + rng.next() % 200;
    let outage_len = 40 + rng.next() % 60;
    let mut e = SloEngine::new(vec![avail_spec()]);
    let horizon = 600u64;
    for i in 0..horizon {
        let failing = i >= outage_start && i < outage_start + outage_len;
        // Mild background error noise outside the outage (~3%).
        let noisy = rng.next() % 100 < 3;
        let outcome = if failing || noisy {
            ReadOutcome::Error
        } else {
            ReadOutcome::Ok
        };
        e.record_read(secs(i), "Svc", outcome, 1_000_000);
        e.evaluate(secs(i));
    }
    e.evaluate(secs(horizon));
    (e, horizon)
}

#[test]
fn seeded_sweeps_hold_the_alert_invariants() {
    for seed in [3u64, 7, 1979] {
        let (e, horizon) = run_seeded(seed);
        let r = e.report(secs(horizon));
        // Totals survive window trimming: every read fed is accounted.
        assert_eq!(r.verdicts[0].total, horizon, "seed {seed}");
        // A 40s+ hard outage must page this objective.
        assert!(!r.alerts.is_empty(), "seed {seed}: outage must fire");
        for a in &r.alerts {
            // Fire/resolve ordering is sane and inside the run.
            let resolved = a.resolved_at.expect("quiet tail resolves every alert");
            assert!(a.fired_at <= resolved, "seed {seed}");
            assert!(resolved <= secs(horizon), "seed {seed}");
            assert!(a.burn_fast >= 5.0 && a.burn_slow >= 2.0, "seed {seed}");
        }
        // Determinism: the same seed reproduces the same report.
        let (e2, _) = run_seeded(seed);
        assert_eq!(
            r.to_json(),
            e2.report(secs(horizon)).to_json(),
            "seed {seed}"
        );
    }
}
