//! Alert/exemplar timeline: the health engine's [`Alert`] history
//! rendered as a Perfetto [`InstantTrack`].
//!
//! Each alert contributes a `slo.alert.fired` instant (and a
//! `slo.alert.resolved` instant when it resolved), plus one
//! `slo.alert.exemplar` instant per attached exemplar. Exemplar instants
//! carry the offending trace's id as their flow, so in ui.perfetto.dev an
//! alert visually connects to the very slices that burned the budget —
//! the export layer drops the flow silently if that trace was evicted
//! from the recorder, keeping every emitted flow resolvable.

use sensorcer_trace::perfetto::{InstantEvent, InstantTrack};

use crate::slo::Alert;

/// Name of the timeline track the obs layer contributes.
pub const ALERT_TRACK: &str = "slo-alerts";

/// Render an alert history as one Perfetto instant track, time-sorted.
pub fn alert_timeline(alerts: &[Alert]) -> InstantTrack {
    let mut events = Vec::with_capacity(alerts.len() * 3);
    for a in alerts {
        events.push(InstantEvent {
            at_ns: a.fired_at.as_nanos(),
            name: "slo.alert.fired".into(),
            flow_trace: a.exemplars.first().map(|e| e.0),
            args: vec![
                ("slo".into(), a.slo.clone()),
                ("service".into(), a.service.clone()),
                ("burn_fast".into(), format!("{:.3}", a.burn_fast)),
                ("burn_slow".into(), format!("{:.3}", a.burn_slow)),
            ],
        });
        for (trace, span, duration_ns) in &a.exemplars {
            events.push(InstantEvent {
                at_ns: a.fired_at.as_nanos(),
                name: "slo.alert.exemplar".into(),
                flow_trace: Some(*trace),
                args: vec![
                    ("slo".into(), a.slo.clone()),
                    ("trace".into(), trace.to_string()),
                    ("span".into(), span.to_string()),
                    ("duration_ns".into(), duration_ns.to_string()),
                ],
            });
        }
        if let Some(t) = a.resolved_at {
            events.push(InstantEvent {
                at_ns: t.as_nanos(),
                name: "slo.alert.resolved".into(),
                flow_trace: None,
                args: vec![
                    ("slo".into(), a.slo.clone()),
                    ("service".into(), a.service.clone()),
                ],
            });
        }
    }
    events.sort_by_key(|e| e.at_ns);
    InstantTrack {
        name: ALERT_TRACK.into(),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorcer_sim::time::SimTime;

    fn alert(fired_s: u64, resolved_s: Option<u64>, exemplars: Vec<(u64, u64, u64)>) -> Alert {
        Alert {
            slo: "availability".into(),
            service: "Bulk-Feed".into(),
            fired_at: SimTime(fired_s * 1_000_000_000),
            resolved_at: resolved_s.map(|s| SimTime(s * 1_000_000_000)),
            burn_fast: 3.2,
            burn_slow: 1.1,
            exemplars,
        }
    }

    #[test]
    fn fired_resolved_and_exemplars_become_instants() {
        let track = alert_timeline(&[alert(10, Some(40), vec![(7, 3, 900), (9, 5, 700)])]);
        assert_eq!(track.name, ALERT_TRACK);
        assert_eq!(track.events.len(), 4);
        let names: Vec<&str> = track.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "slo.alert.fired",
                "slo.alert.exemplar",
                "slo.alert.exemplar",
                "slo.alert.resolved"
            ]
        );
        // The fired instant joins the first exemplar's flow; each
        // exemplar instant joins its own trace's flow.
        assert_eq!(track.events[0].flow_trace, Some(7));
        assert_eq!(track.events[1].flow_trace, Some(7));
        assert_eq!(track.events[2].flow_trace, Some(9));
        assert_eq!(track.events[3].flow_trace, None);
    }

    #[test]
    fn unresolved_alert_has_no_resolved_instant_and_sorts_by_time() {
        let track = alert_timeline(&[alert(50, None, vec![]), alert(10, Some(20), vec![])]);
        let times: Vec<u64> = track.events.iter().map(|e| e.at_ns).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "timeline is time-ordered");
        assert_eq!(track.events.len(), 3);
        assert!(
            track.events[0].flow_trace.is_none(),
            "no exemplars, no flow"
        );
    }
}
