//! Analytics over profiler output: hotspot ranking and flamegraph
//! excerpts from collapsed-stack text.
//!
//! The sim-time profiler (`sensorcer_trace::profile`) emits the
//! standard collapsed-stack format — one `root;child;leaf <self_ns>`
//! line per distinct stack — which is the interchange point between
//! measurement and interpretation. This module consumes that text, so
//! it works identically on a live [`Profiler`] snapshot, a committed
//! report artifact, or output from any external tool speaking the same
//! format.
//!
//! * [`hotspots`] — distinct stacks ranked by self time, with each
//!   stack's share of the total.
//! * [`frame_totals`] — per-frame *inclusive* time (a frame is charged
//!   every nanosecond of self time spent at or below it), the numbers a
//!   flamegraph's box widths encode.
//! * [`flame_excerpt`] — the top-N hotspots rendered as aligned text
//!   with percentage shares, for transcripts and experiment notes.
//!
//! [`Profiler`]: sensorcer_trace::profile::Profiler

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One distinct stack with its exact self time.
#[derive(Clone, Debug, PartialEq)]
pub struct Hotspot {
    /// Full `root;...;leaf` stack.
    pub stack: String,
    /// The innermost frame — where the time was actually spent.
    pub leaf: String,
    /// Virtual nanoseconds of self time attributed to this stack.
    pub self_ns: u64,
    /// Fraction of the profile's total self time, in `[0, 1]`.
    pub share: f64,
}

/// Parse collapsed-stack text into `(stack, self_ns)` pairs, merging
/// duplicate stacks. Lines that don't parse (no trailing integer) are
/// skipped rather than failing the whole profile — excerpts pasted into
/// docs routinely pick up stray prose.
pub fn parse_collapsed(folded: &str) -> BTreeMap<String, u64> {
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for line in folded.lines() {
        let line = line.trim();
        let Some((stack, count)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(ns) = count.parse::<u64>() else {
            continue;
        };
        if stack.is_empty() {
            continue;
        }
        *stacks.entry(stack.to_string()).or_insert(0) += ns;
    }
    stacks
}

/// The distinct stacks of `folded`, hottest first (ties broken by stack
/// name for determinism), truncated to `top_n`. Shares are relative to
/// the *whole* profile, so a truncated listing still reads correctly.
pub fn hotspots(folded: &str, top_n: usize) -> Vec<Hotspot> {
    let stacks = parse_collapsed(folded);
    let total: u64 = stacks.values().sum();
    let mut out: Vec<Hotspot> = stacks
        .into_iter()
        .map(|(stack, self_ns)| {
            let leaf = stack.rsplit(';').next().unwrap_or(&stack).to_string();
            let share = if total == 0 {
                0.0
            } else {
                self_ns as f64 / total as f64
            };
            Hotspot {
                stack,
                leaf,
                self_ns,
                share,
            }
        })
        .collect();
    out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.stack.cmp(&b.stack)));
    out.truncate(top_n);
    out
}

/// Per-frame inclusive time: each frame is charged the self time of
/// every stack it appears on. The root frame's total equals the whole
/// profile; a leaf-only frame's total equals its self time. These are
/// the box widths a flamegraph renders.
pub fn frame_totals(folded: &str) -> BTreeMap<String, u64> {
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for (stack, ns) in parse_collapsed(folded) {
        // A frame repeated on one stack (recursion) must be charged once.
        let mut seen: Vec<&str> = Vec::new();
        for frame in stack.split(';') {
            if seen.contains(&frame) {
                continue;
            }
            seen.push(frame);
            *totals.entry(frame.to_string()).or_insert(0) += ns;
        }
    }
    totals
}

/// The top-N hotspots as aligned `  <pct>  <self_ns>  <stack>` lines —
/// the excerpt experiment notes and harness transcripts embed.
pub fn flame_excerpt(folded: &str, top_n: usize) -> String {
    let hot = hotspots(folded, top_n);
    let width = hot
        .iter()
        .map(|h| h.self_ns.to_string().len())
        .max()
        .unwrap_or(1);
    let mut out = String::new();
    for h in &hot {
        let _ = writeln!(
            out,
            "  {:>5.1}%  {:>width$} ns  {}",
            h.share * 100.0,
            h.self_ns,
            h.stack
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FOLDED: &str = "\
scale.window;mote.sample 600
scale.window;mote.sample;csp.read 100
scale.window 300
noise without a count
scale.window;mote.sample 400
";

    #[test]
    fn parsing_merges_duplicates_and_skips_noise() {
        let stacks = parse_collapsed(FOLDED);
        assert_eq!(stacks.len(), 3);
        assert_eq!(stacks["scale.window;mote.sample"], 1_000);
        assert_eq!(stacks["scale.window"], 300);
    }

    #[test]
    fn hotspots_rank_by_self_time_with_whole_profile_shares() {
        let hot = hotspots(FOLDED, 2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].stack, "scale.window;mote.sample");
        assert_eq!(hot[0].leaf, "mote.sample");
        assert_eq!(hot[0].self_ns, 1_000);
        // Shares stay relative to the full 1400 ns even when truncated.
        assert!((hot[0].share - 1_000.0 / 1_400.0).abs() < 1e-12);
        assert_eq!(hot[1].stack, "scale.window");
    }

    #[test]
    fn frame_totals_are_inclusive_and_recursion_safe() {
        let totals = frame_totals(FOLDED);
        // Root frame carries the whole profile.
        assert_eq!(totals["scale.window"], 1_400);
        assert_eq!(totals["mote.sample"], 1_100);
        assert_eq!(totals["csp.read"], 100);
        // Direct recursion charges the frame once per stack.
        let rec = frame_totals("a;b;a 50\n");
        assert_eq!(rec["a"], 50);
        assert_eq!(rec["b"], 50);
    }

    #[test]
    fn excerpt_lines_carry_share_time_and_stack() {
        let text = flame_excerpt(FOLDED, 3);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("71.4%"));
        assert!(lines[0].ends_with("scale.window;mote.sample"));
        assert!(lines[2].contains("csp.read"));
        assert_eq!(flame_excerpt("", 5), "");
    }
}
