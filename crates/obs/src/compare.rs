//! The perf-regression gate: diff two `BENCH_*.json` runs.
//!
//! `harness smoke` writes an array of flat benchmark rows (see
//! `microbench::results_to_json`). This module parses two such files —
//! with a small hand-rolled reader, the workspace carries no serde —
//! joins them on `(group, id)`, and classifies every pair under a noise
//! threshold:
//!
//! * ratio within `1 ± threshold` → [`Verdict::Ok`] (jitter, ignore)
//! * new median above `old × (1 + threshold)` → [`Verdict::Regressed`]
//! * new median below `old × (1 - threshold)` → [`Verdict::Improved`]
//!
//! Rows present on only one side are reported (`OnlyOld` / `OnlyNew`)
//! but never fail the gate — adding a benchmark must not break CI.
//!
//! The default threshold is ±35%: microbenchmarks on shared CI runners
//! routinely wobble 10–25% run to run, and the gate's job is to catch
//! the 2× cliff, not to litigate 10%. Sub-microsecond rows additionally
//! need an absolute regression of at least [`CompareConfig::floor_ns`]
//! so a 40 ns → 60 ns blip on a trivial bench cannot page anyone.

use std::collections::BTreeMap;

/// One benchmark row from a `BENCH_*.json` file.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRow {
    pub group: String,
    pub id: String,
    pub median_ns: f64,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub samples: u64,
    pub iters_per_sample: u64,
}

// --- minimal JSON reader for the flat bench-row array -----------------

struct Cursor<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Cursor<'a> {
        Cursor {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.peek() {
            Some(got) if got == c => {
                self.i += 1;
                Ok(())
            }
            got => Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                got.map(|b| b as char)
            )),
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .s
                .get(self.i)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .s
                        .get(self.i)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.i += 4;
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the raw bytes through.
                    let start = self.i - 1;
                    let mut end = self.i;
                    while end < self.s.len() && self.s[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let chunk =
                        std::str::from_utf8(&self.s[start..end]).map_err(|e| e.to_string())?;
                    out.push_str(chunk);
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.s.len()
            && matches!(
                self.s[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        let lit = std::str::from_utf8(&self.s[start..self.i]).map_err(|e| e.to_string())?;
        lit.parse::<f64>()
            .map_err(|e| format!("bad number '{lit}' at byte {start}: {e}"))
    }
}

/// Parse the contents of a `BENCH_*.json` file.
pub fn parse_bench_json(text: &str) -> Result<Vec<BenchRow>, String> {
    let mut c = Cursor::new(text);
    let mut rows = Vec::new();
    c.expect(b'[')?;
    if c.eat(b']') {
        return Ok(rows);
    }
    loop {
        c.expect(b'{')?;
        let mut group = String::new();
        let mut id = String::new();
        let mut nums: BTreeMap<String, f64> = BTreeMap::new();
        if !c.eat(b'}') {
            loop {
                let key = c.string()?;
                c.expect(b':')?;
                if c.peek() == Some(b'"') {
                    let v = c.string()?;
                    match key.as_str() {
                        "group" => group = v,
                        "id" => id = v,
                        _ => {}
                    }
                } else {
                    nums.insert(key, c.number()?);
                }
                if !c.eat(b',') {
                    break;
                }
            }
            c.expect(b'}')?;
        }
        if group.is_empty() && id.is_empty() {
            return Err("bench row without group/id".to_string());
        }
        let num = |k: &str| nums.get(k).copied().unwrap_or(0.0);
        rows.push(BenchRow {
            group,
            id,
            median_ns: num("median_ns"),
            mean_ns: num("mean_ns"),
            min_ns: num("min_ns"),
            samples: num("samples") as u64,
            iters_per_sample: num("iters_per_sample") as u64,
        });
        if !c.eat(b',') {
            break;
        }
    }
    c.expect(b']')?;
    Ok(rows)
}

/// How one benchmark moved between the two runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    Ok,
    Improved,
    Regressed,
    /// Present only in the old run (benchmark removed).
    OnlyOld,
    /// Present only in the new run (benchmark added).
    OnlyNew,
}

impl Verdict {
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::OnlyOld => "only-old",
            Verdict::OnlyNew => "only-new",
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub struct CompareConfig {
    /// Relative noise threshold (0.35 = ±35% is jitter).
    pub threshold: f64,
    /// Minimum absolute delta (ns) before a relative regression counts.
    pub floor_ns: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            threshold: 0.35,
            floor_ns: 50.0,
        }
    }
}

/// One joined row of the diff.
#[derive(Clone, Debug)]
pub struct RowDelta {
    pub group: String,
    pub id: String,
    pub old_median_ns: f64,
    pub new_median_ns: f64,
    /// new / old (1.0 when either side is missing).
    pub ratio: f64,
    pub verdict: Verdict,
}

/// The full diff of two bench runs.
#[derive(Clone, Debug)]
pub struct CompareReport {
    pub rows: Vec<RowDelta>,
    pub config: CompareConfig,
}

impl CompareReport {
    /// The gate: true iff nothing regressed.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.verdict != Verdict::Regressed)
    }

    pub fn regressions(&self) -> impl Iterator<Item = &RowDelta> {
        self.rows.iter().filter(|r| r.verdict == Verdict::Regressed)
    }

    /// Human-readable table plus the verdict line CI greps for.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bench-compare (threshold ±{:.0}%, floor {:.0}ns)\n",
            self.config.threshold * 100.0,
            self.config.floor_ns
        ));
        out.push_str(&format!(
            "{:<40} {:>12} {:>12} {:>8}  {}\n",
            "benchmark", "old(ns)", "new(ns)", "ratio", "verdict"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<40} {:>12.1} {:>12.1} {:>8.3}  {}\n",
                format!("{}/{}", r.group, r.id),
                r.old_median_ns,
                r.new_median_ns,
                r.ratio,
                r.verdict.as_str()
            ));
        }
        let n_reg = self.regressions().count();
        if n_reg == 0 {
            out.push_str("PASS: no benchmark regressed beyond the noise threshold\n");
        } else {
            out.push_str(&format!("FAIL: {n_reg} benchmark(s) regressed\n"));
        }
        out
    }
}

/// Join two runs on `(group, id)` and classify every pair.
pub fn compare(old: &[BenchRow], new: &[BenchRow], config: CompareConfig) -> CompareReport {
    let old_by: BTreeMap<(String, String), &BenchRow> = old
        .iter()
        .map(|r| ((r.group.clone(), r.id.clone()), r))
        .collect();
    let new_by: BTreeMap<(String, String), &BenchRow> = new
        .iter()
        .map(|r| ((r.group.clone(), r.id.clone()), r))
        .collect();
    let mut rows = Vec::new();
    for (key, o) in &old_by {
        match new_by.get(key) {
            Some(n) => {
                let ratio = if o.median_ns > 0.0 {
                    n.median_ns / o.median_ns
                } else {
                    1.0
                };
                let delta = n.median_ns - o.median_ns;
                let verdict = if ratio > 1.0 + config.threshold && delta > config.floor_ns {
                    Verdict::Regressed
                } else if ratio < 1.0 - config.threshold && -delta > config.floor_ns {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                rows.push(RowDelta {
                    group: key.0.clone(),
                    id: key.1.clone(),
                    old_median_ns: o.median_ns,
                    new_median_ns: n.median_ns,
                    ratio,
                    verdict,
                });
            }
            None => rows.push(RowDelta {
                group: key.0.clone(),
                id: key.1.clone(),
                old_median_ns: o.median_ns,
                new_median_ns: 0.0,
                ratio: 1.0,
                verdict: Verdict::OnlyOld,
            }),
        }
    }
    for (key, n) in &new_by {
        if !old_by.contains_key(key) {
            rows.push(RowDelta {
                group: key.0.clone(),
                id: key.1.clone(),
                old_median_ns: 0.0,
                new_median_ns: n.median_ns,
                ratio: 1.0,
                verdict: Verdict::OnlyNew,
            });
        }
    }
    CompareReport { rows, config }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(group: &str, id: &str, median: f64) -> BenchRow {
        BenchRow {
            group: group.into(),
            id: id.into(),
            median_ns: median,
            mean_ns: median,
            min_ns: median,
            samples: 10,
            iters_per_sample: 100,
        }
    }

    #[test]
    fn parses_real_bench_output() {
        let text = r#"[
  {"group": "reads", "id": "quorum/4", "median_ns": 1234.5, "mean_ns": 1300.0, "min_ns": 1100.0, "samples": 10, "iters_per_sample": 50},
  {"group": "g\"x", "id": "a/b", "median_ns": 1.5, "mean_ns": 2.0, "min_ns": 1.0, "samples": 3, "iters_per_sample": 7}
]
"#;
        let rows = parse_bench_json(text).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].group, "reads");
        assert_eq!(rows[0].id, "quorum/4");
        assert_eq!(rows[0].median_ns, 1234.5);
        assert_eq!(rows[0].samples, 10);
        assert_eq!(rows[1].group, "g\"x");
    }

    #[test]
    fn parses_empty_array_and_rejects_garbage() {
        assert!(parse_bench_json("[]").unwrap().is_empty());
        assert!(parse_bench_json("[\n]\n").unwrap().is_empty());
        assert!(parse_bench_json("not json").is_err());
        assert!(parse_bench_json("[{\"median_ns\": 1}]").is_err());
    }

    #[test]
    fn self_compare_passes() {
        let rows = vec![row("g", "a", 1000.0), row("g", "b", 5e6)];
        let rep = compare(&rows, &rows, CompareConfig::default());
        assert!(rep.passed());
        assert!(rep.rows.iter().all(|r| r.verdict == Verdict::Ok));
        assert!(rep.render().contains("PASS"));
    }

    #[test]
    fn synthetic_2x_slowdown_is_flagged() {
        let old = vec![row("g", "a", 1000.0), row("g", "b", 1000.0)];
        let new = vec![row("g", "a", 2000.0), row("g", "b", 1000.0)];
        let rep = compare(&old, &new, CompareConfig::default());
        assert!(!rep.passed());
        let regs: Vec<_> = rep.regressions().collect();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].id, "a");
        assert!((regs[0].ratio - 2.0).abs() < 1e-12);
        assert!(rep.render().contains("REGRESSED"));
    }

    #[test]
    fn jitter_under_threshold_is_ok_and_improvements_noted() {
        let old = vec![row("g", "a", 1000.0), row("g", "b", 10_000.0)];
        let new = vec![row("g", "a", 1200.0), row("g", "b", 4_000.0)];
        let rep = compare(&old, &new, CompareConfig::default());
        assert!(rep.passed());
        assert_eq!(rep.rows[0].verdict, Verdict::Ok); // +20% < 35%
        assert_eq!(rep.rows[1].verdict, Verdict::Improved);
    }

    #[test]
    fn absolute_floor_mutes_nanosecond_blips() {
        // 40ns -> 70ns is a 75% "regression" but only 30ns of it — below
        // the 50ns floor, so the gate shrugs.
        let old = vec![row("g", "tiny", 40.0)];
        let new = vec![row("g", "tiny", 70.0)];
        let rep = compare(&old, &new, CompareConfig::default());
        assert!(rep.passed());
        assert_eq!(rep.rows[0].verdict, Verdict::Ok);
    }

    #[test]
    fn added_and_removed_rows_never_fail_the_gate() {
        let old = vec![row("g", "gone", 1000.0)];
        let new = vec![row("g", "fresh", 1000.0)];
        let rep = compare(&old, &new, CompareConfig::default());
        assert!(rep.passed());
        let verdicts: Vec<Verdict> = rep.rows.iter().map(|r| r.verdict).collect();
        assert!(verdicts.contains(&Verdict::OnlyOld));
        assert!(verdicts.contains(&Verdict::OnlyNew));
    }
}
