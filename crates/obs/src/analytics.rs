//! Query layer over exported [`FlightRecorder`] trees.
//!
//! The recorder gives raw spans; operators need answers: *which op got
//! slow, where did that read spend its time, which traces should I look
//! at first?* This module answers those without re-running anything:
//!
//! * [`SpanQuery`] — filter closed spans by op name, outcome, host or
//!   label substring.
//! * [`group_by_op`] — aggregate spans into per-op [`OpStats`] (counts
//!   by outcome plus a duration histogram, so p50/p99 per op are one
//!   call away).
//! * [`critical_path`] — walk a trace tree from its root, at each level
//!   descending into the last-finishing child, yielding the chain of
//!   spans that actually determined end-to-end latency.
//! * [`slowest_offenders`] — the exemplar selector: the N slowest spans
//!   matching a query, as `(trace, span, duration_ns)` triples ready to
//!   attach to an SLO alert or anomaly.

use std::collections::BTreeMap;

use sensorcer_trace::{FlightRecorder, Histogram, Outcome, Span, SpanId};

/// Declarative filter over closed spans. All set conditions must hold.
#[derive(Clone, Debug, Default)]
pub struct SpanQuery {
    pub op: Option<&'static str>,
    pub outcome: Option<Outcome>,
    pub host: Option<u64>,
    pub label_contains: Option<String>,
    /// Shorthand: match spans whose outcome is Degraded *or* Error.
    pub bad_only: bool,
}

impl SpanQuery {
    pub fn new() -> SpanQuery {
        SpanQuery::default()
    }

    pub fn op(mut self, op: &'static str) -> SpanQuery {
        self.op = Some(op);
        self
    }

    pub fn outcome(mut self, o: Outcome) -> SpanQuery {
        self.outcome = Some(o);
        self
    }

    pub fn host(mut self, h: u64) -> SpanQuery {
        self.host = Some(h);
        self
    }

    pub fn label_contains(mut self, s: impl Into<String>) -> SpanQuery {
        self.label_contains = Some(s.into());
        self
    }

    pub fn bad_only(mut self) -> SpanQuery {
        self.bad_only = true;
        self
    }

    pub fn matches(&self, s: &Span) -> bool {
        if let Some(op) = self.op {
            if s.name != op {
                return false;
            }
        }
        if let Some(o) = self.outcome {
            if s.outcome != o {
                return false;
            }
        }
        if self.bad_only && s.outcome == Outcome::Ok {
            return false;
        }
        if let Some(h) = self.host {
            if s.host != h {
                return false;
            }
        }
        if let Some(ref needle) = self.label_contains {
            if !s.label.contains(needle.as_str()) {
                return false;
            }
        }
        true
    }

    /// All closed spans matching this query, in recorder (end) order.
    pub fn run<'a>(&self, rec: &'a FlightRecorder) -> Vec<&'a Span> {
        rec.spans().filter(|s| self.matches(s)).collect()
    }
}

/// Aggregate view of one operation name.
#[derive(Debug)]
pub struct OpStats {
    pub count: u64,
    pub ok: u64,
    pub degraded: u64,
    pub errors: u64,
    /// Span durations in nanoseconds.
    pub durations: Histogram,
}

impl OpStats {
    fn new() -> OpStats {
        OpStats {
            count: 0,
            ok: 0,
            degraded: 0,
            errors: 0,
            durations: Histogram::new(),
        }
    }

    /// Fraction of spans that did not end Ok.
    pub fn bad_ratio(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.degraded + self.errors) as f64 / self.count as f64
        }
    }
}

/// Group every closed span by its operation name.
pub fn group_by_op(rec: &FlightRecorder) -> BTreeMap<&'static str, OpStats> {
    let mut by_op: BTreeMap<&'static str, OpStats> = BTreeMap::new();
    for s in rec.spans() {
        let st = by_op.entry(s.name).or_insert_with(OpStats::new);
        st.count += 1;
        match s.outcome {
            Outcome::Ok => st.ok += 1,
            Outcome::Degraded => st.degraded += 1,
            Outcome::Error => st.errors += 1,
        }
        st.durations.record(s.duration_ns() as f64);
    }
    by_op
}

/// One hop on a critical path.
#[derive(Clone, Debug, PartialEq)]
pub struct PathStep {
    pub span: SpanId,
    pub op: &'static str,
    pub label: String,
    /// Total duration of this span.
    pub duration_ns: u64,
    /// Time this span spent *not* covered by the next step (self time
    /// for interior steps; full duration for the leaf).
    pub self_ns: u64,
}

/// The chain of spans that determined a trace's end-to-end latency.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalPath {
    pub steps: Vec<PathStep>,
    pub total_ns: u64,
}

impl CriticalPath {
    /// The step with the largest self time — "where the time went".
    pub fn dominant(&self) -> Option<&PathStep> {
        self.steps.iter().max_by_key(|s| s.self_ns)
    }
}

/// Extract the critical path of the trace rooted at `root`: starting at
/// the root, repeatedly descend into the child that *finishes last* (ties
/// broken toward the longer child, then lower span id, so the walk is
/// deterministic). Returns `None` if `root` is not a closed span.
pub fn critical_path(rec: &FlightRecorder, root: SpanId) -> Option<CriticalPath> {
    let spans: Vec<&Span> = rec.spans().collect();
    let children = rec.children_index();
    let mut cur = *spans.iter().find(|s| s.id == root)?;
    let total_ns = cur.duration_ns();
    let mut steps = Vec::new();
    loop {
        let next = children
            .get(&cur.id.0)
            .into_iter()
            .flatten()
            .map(|&i| spans[i])
            .max_by(|a, b| {
                a.end_ns
                    .cmp(&b.end_ns)
                    .then(a.duration_ns().cmp(&b.duration_ns()))
                    .then(b.id.0.cmp(&a.id.0))
            });
        let covered = next.map_or(0, |n| n.duration_ns());
        steps.push(PathStep {
            span: cur.id,
            op: cur.name,
            label: cur.label.to_string(),
            duration_ns: cur.duration_ns(),
            self_ns: cur.duration_ns().saturating_sub(covered),
        });
        match next {
            Some(n) => cur = n,
            None => break,
        }
    }
    Some(CriticalPath { steps, total_ns })
}

/// The `n` slowest spans matching `query`, slowest first, as
/// `(trace_id, span_id, duration_ns)` triples — the exemplar format the
/// SLO engine attaches to alerts. Deterministic: ties break on span id.
pub fn slowest_offenders(
    rec: &FlightRecorder,
    query: &SpanQuery,
    n: usize,
) -> Vec<(u64, u64, u64)> {
    let mut hits: Vec<(u64, u64, u64)> = rec
        .spans()
        .filter(|s| query.matches(s))
        .map(|s| (s.trace.0, s.id.0, s.duration_ns()))
        .collect();
    hits.sort_by(|a, b| b.2.cmp(&a.2).then(a.1.cmp(&b.1)));
    hits.truncate(n);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorcer_trace::FieldValue;

    /// A little two-trace world:
    ///
    /// trace A: read(0..100) { probe(10..40), probe(20..90) }   degraded
    /// trace B: read(200..230) { probe(205..225) }              ok
    fn rig() -> FlightRecorder {
        let mut r = FlightRecorder::new(64);
        let ra = r.span_start("csp.read", "Temp", 1, 0);
        let a1 = r.span_start("csp.child", "m1", 2, 10);
        r.span_end(a1, 40, Outcome::Ok);
        let a2 = r.span_start("csp.child", "m2", 3, 20);
        r.span_end(a2, 90, Outcome::Error);
        r.span_field(ra, "quorum", FieldValue::U64(1));
        r.span_end(ra, 100, Outcome::Degraded);

        let rb = r.span_start("csp.read", "Temp", 1, 200);
        let b1 = r.span_start("csp.child", "m1", 2, 205);
        r.span_end(b1, 225, Outcome::Ok);
        r.span_end(rb, 230, Outcome::Ok);
        r
    }

    #[test]
    fn query_filters_compose() {
        let r = rig();
        assert_eq!(SpanQuery::new().op("csp.read").run(&r).len(), 2);
        assert_eq!(SpanQuery::new().op("csp.read").bad_only().run(&r).len(), 1);
        assert_eq!(SpanQuery::new().host(2).run(&r).len(), 2);
        assert_eq!(
            SpanQuery::new()
                .op("csp.child")
                .outcome(Outcome::Error)
                .run(&r)
                .len(),
            1
        );
        assert_eq!(SpanQuery::new().label_contains("m2").run(&r).len(), 1);
    }

    #[test]
    fn group_by_op_counts_and_durations() {
        let r = rig();
        let by_op = group_by_op(&r);
        let reads = &by_op["csp.read"];
        assert_eq!(
            (reads.count, reads.ok, reads.degraded, reads.errors),
            (2, 1, 1, 0)
        );
        assert_eq!(reads.durations.max(), 100.0);
        assert_eq!(reads.durations.min(), 30.0);
        assert!((reads.bad_ratio() - 0.5).abs() < 1e-12);
        let children = &by_op["csp.child"];
        assert_eq!(children.count, 3);
        assert_eq!(children.errors, 1);
    }

    #[test]
    fn critical_path_follows_last_finishing_child() {
        let r = rig();
        let root = r.spans().find(|s| s.duration_ns() == 100).unwrap().id;
        let cp = critical_path(&r, root).unwrap();
        assert_eq!(cp.total_ns, 100);
        assert_eq!(cp.steps.len(), 2);
        // The path goes through the child ending at 90, not the one at 40.
        assert_eq!(cp.steps[1].label, "m2");
        assert_eq!(cp.steps[1].duration_ns, 70);
        assert_eq!(cp.steps[1].self_ns, 70);
        // Root self time: 100 total minus the 70 covered by the child.
        assert_eq!(cp.steps[0].self_ns, 30);
        // The dominant step is the slow probe.
        assert_eq!(cp.dominant().unwrap().label, "m2");
    }

    #[test]
    fn critical_path_of_unknown_span_is_none() {
        let r = rig();
        assert!(critical_path(&r, SpanId(99_999)).is_none());
    }

    #[test]
    fn slowest_offenders_rank_and_truncate() {
        let r = rig();
        let q = SpanQuery::new().op("csp.child");
        let top = slowest_offenders(&r, &q, 2);
        assert_eq!(top.len(), 2);
        // Slowest first: the 70 ns probe, then the 30 ns one.
        assert_eq!(top[0].2, 70);
        assert_eq!(top[1].2, 30);
        // Exemplars resolve back to real spans.
        for (_, span_id, _) in &top {
            assert!(r.span_by_id(SpanId(*span_id)).is_some());
        }
    }
}
