//! The SLO engine: declarative objectives over sim-time sliding windows
//! with multi-window burn-rate alerting.
//!
//! Every objective kind reduces to the same machinery: a bounded stream
//! of timestamped good/bad observations plus an **error budget** (the
//! fraction of observations allowed to be bad). The *burn rate* over a
//! window is `bad_fraction / budget` — 1.0 means spending the budget
//! exactly as fast as the objective tolerates, 10 means burning it ten
//! times too fast. An alert fires only when **both** a fast and a slow
//! window exceed their burn thresholds (the standard multi-window guard:
//! the fast window gives low detection latency, the slow window keeps a
//! brief blip from paging), and resolves once the fast window drops back
//! under burn 1.0.
//!
//! All arithmetic is over virtual time and deterministic inputs, so a
//! seeded run produces a bit-identical alert history.

use std::collections::VecDeque;
use std::fmt::Write as _;

use sensorcer_sim::time::{SimDuration, SimTime};
use sensorcer_trace::Histogram;

/// What a service promises. Each kind maps an observation to good/bad and
/// carries the error budget implied by its target.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SloKind {
    /// At least `min_ratio` of reads complete (degraded still counts as
    /// answered). Budget: `1 - min_ratio` of reads may fail.
    Availability { min_ratio: f64 },
    /// At most 1% of reads may take longer than `max_ns` (a p99 latency
    /// objective phrased as a countable event stream).
    LatencyP99 { max_ns: u64 },
    /// Data served must be fresh: at each freshness check, the age of the
    /// service's last successful reading must not exceed `max_age_ns`.
    /// Budget: `1 - min_ratio` of checks may find stale data.
    Freshness { max_age_ns: u64, min_ratio: f64 },
    /// At most `max_ratio` of answered reads may be degraded
    /// (substituted or missing children).
    DegradedRatio { max_ratio: f64 },
}

impl SloKind {
    /// The fraction of observations this objective allows to be bad.
    pub fn budget(&self) -> f64 {
        match *self {
            SloKind::Availability { min_ratio } => (1.0 - min_ratio).max(1e-9),
            SloKind::LatencyP99 { .. } => 0.01,
            SloKind::Freshness { min_ratio, .. } => (1.0 - min_ratio).max(1e-9),
            SloKind::DegradedRatio { max_ratio } => max_ratio.max(1e-9),
        }
    }

    /// Human-readable objective, for reports.
    pub fn describe(&self) -> String {
        match *self {
            SloKind::Availability { min_ratio } => {
                format!("availability >= {:.2}%", min_ratio * 100.0)
            }
            SloKind::LatencyP99 { max_ns } => {
                format!("read latency p99 <= {:.1}ms", max_ns as f64 / 1e6)
            }
            SloKind::Freshness {
                max_age_ns,
                min_ratio,
            } => format!(
                "data age <= {:.1}s on {:.2}% of checks",
                max_age_ns as f64 / 1e9,
                min_ratio * 100.0
            ),
            SloKind::DegradedRatio { max_ratio } => {
                format!("degraded reads <= {:.2}%", max_ratio * 100.0)
            }
        }
    }

    pub fn key(&self) -> &'static str {
        match self {
            SloKind::Availability { .. } => "availability",
            SloKind::LatencyP99 { .. } => "latency_p99",
            SloKind::Freshness { .. } => "freshness",
            SloKind::DegradedRatio { .. } => "degraded_ratio",
        }
    }
}

/// The two evaluation windows and their burn-rate thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurnRateWindows {
    pub fast: SimDuration,
    pub slow: SimDuration,
    /// Burn-rate threshold the fast window must exceed to fire.
    pub fast_burn: f64,
    /// Burn-rate threshold the slow window must exceed to fire.
    pub slow_burn: f64,
}

impl Default for BurnRateWindows {
    /// 1-minute fast / 10-minute slow windows at 10x / 2x burn — scaled
    /// for soak horizons of minutes rather than SRE months.
    fn default() -> Self {
        BurnRateWindows {
            fast: SimDuration::from_secs(60),
            slow: SimDuration::from_secs(600),
            fast_burn: 10.0,
            slow_burn: 2.0,
        }
    }
}

/// One declared objective for one service.
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// Unique objective name, e.g. `"quorum-availability"`.
    pub name: String,
    /// The service (composite or mote) the objective covers.
    pub service: String,
    pub kind: SloKind,
    pub windows: BurnRateWindows,
}

impl SloSpec {
    pub fn new(name: impl Into<String>, service: impl Into<String>, kind: SloKind) -> SloSpec {
        SloSpec {
            name: name.into(),
            service: service.into(),
            kind,
            windows: BurnRateWindows::default(),
        }
    }
}

/// How one observed read ended, from the SLO engine's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    Ok,
    Degraded,
    Error,
}

/// One burn-rate alert, from firing to (possibly) resolution.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    pub slo: String,
    pub service: String,
    pub fired_at: SimTime,
    pub resolved_at: Option<SimTime>,
    /// Burn rates at the moment of firing.
    pub burn_fast: f64,
    pub burn_slow: f64,
    /// `(trace_id, span_id, duration_ns)` of the slowest offending spans
    /// inside the alert window, linked in by the trace analytics layer.
    pub exemplars: Vec<(u64, u64, u64)>,
}

/// A state change produced by [`SloEngine::evaluate`] — the hook callers
/// use to surface alerts as flight-recorder events.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertTransition {
    pub slo: String,
    pub service: String,
    pub at: SimTime,
    /// `true` = fired, `false` = resolved.
    pub fired: bool,
    pub burn_fast: f64,
    pub burn_slow: f64,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum AlertState {
    Idle,
    /// Index into the engine's alert history.
    Firing(usize),
}

struct SloInstance {
    spec: SloSpec,
    /// Timestamped observations, trimmed to the slow window on evaluate.
    events: VecDeque<(SimTime, bool)>,
    state: AlertState,
    /// Whole-run totals (never trimmed) for the final verdict.
    total: u64,
    bad: u64,
    /// Latency samples for the service (all kinds record them so the
    /// report can quote quantiles next to any verdict).
    latency: Histogram,
}

impl SloInstance {
    fn push(&mut self, t: SimTime, is_bad: bool) {
        self.events.push_back((t, is_bad));
        self.total += 1;
        if is_bad {
            self.bad += 1;
        }
    }

    /// `(bad, total)` over `[t - window, t]`, assuming events are trimmed
    /// to at most the slow window.
    fn window_counts(&self, t: SimTime, window: SimDuration) -> (u64, u64) {
        let from = SimTime(t.as_nanos().saturating_sub(window.as_nanos()));
        let mut bad = 0u64;
        let mut total = 0u64;
        for &(at, b) in self.events.iter().rev() {
            if at < from {
                break;
            }
            total += 1;
            if b {
                bad += 1;
            }
        }
        (bad, total)
    }

    /// Burn rate over a window: bad-fraction divided by the error budget.
    /// Zero traffic burns nothing — an idle service is not in violation.
    fn burn(&self, t: SimTime, window: SimDuration) -> f64 {
        let (bad, total) = self.window_counts(t, window);
        if total == 0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / self.spec.kind.budget()
    }

    fn trim(&mut self, t: SimTime) {
        let keep_from = SimTime(
            t.as_nanos()
                .saturating_sub(self.spec.windows.slow.as_nanos()),
        );
        while let Some(&(at, _)) = self.events.front() {
            if at < keep_from {
                self.events.pop_front();
            } else {
                break;
            }
        }
    }
}

/// The final judgement on one objective.
#[derive(Clone, Debug, PartialEq)]
pub struct SloVerdict {
    pub name: String,
    pub service: String,
    pub objective: String,
    pub kind_key: &'static str,
    /// Whole-run observation counts.
    pub total: u64,
    pub bad: u64,
    /// Whole-run bad fraction vs. the budget.
    pub bad_ratio: f64,
    pub budget: f64,
    /// Did the whole run stay inside the budget?
    pub met: bool,
    /// Burn rates at evaluation time.
    pub burn_fast: f64,
    pub burn_slow: f64,
    /// Is the alert currently firing?
    pub firing: bool,
    /// Latency quantiles over every observation carrying a latency (NaN
    /// when the objective saw none — freshness checks carry no latency).
    pub latency_p50_ns: f64,
    pub latency_p99_ns: f64,
}

/// Everything the engine knows at one evaluation instant.
#[derive(Clone, Debug, PartialEq)]
pub struct SloReport {
    pub at: SimTime,
    pub verdicts: Vec<SloVerdict>,
    /// Full alert history, fired order (resolved alerts included).
    pub alerts: Vec<Alert>,
}

impl SloReport {
    /// No objective missed and no alert still firing.
    pub fn healthy(&self) -> bool {
        self.verdicts.iter().all(|v| v.met && !v.firing)
    }

    pub fn to_json(&self) -> String {
        let mut j = String::new();
        let _ = write!(j, "{{\"at_ns\": {}, \"verdicts\": [", self.at.as_nanos());
        for (i, v) in self.verdicts.iter().enumerate() {
            if i > 0 {
                j.push_str(", ");
            }
            let _ = write!(
                j,
                "{{\"name\": \"{}\", \"service\": \"{}\", \"kind\": \"{}\", \"objective\": \"{}\", \
                 \"total\": {}, \"bad\": {}, \"bad_ratio\": {:.6}, \"budget\": {:.6}, \
                 \"met\": {}, \"burn_fast\": {:.3}, \"burn_slow\": {:.3}, \"firing\": {}",
                esc(&v.name),
                esc(&v.service),
                v.kind_key,
                esc(&v.objective),
                v.total,
                v.bad,
                v.bad_ratio,
                v.budget,
                v.met,
                v.burn_fast,
                v.burn_slow,
                v.firing
            );
            if v.latency_p99_ns.is_finite() {
                let _ = write!(
                    j,
                    ", \"latency_p50_ns\": {:.0}, \"latency_p99_ns\": {:.0}",
                    v.latency_p50_ns, v.latency_p99_ns
                );
            }
            j.push('}');
        }
        j.push_str("], \"alerts\": [");
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                j.push_str(", ");
            }
            let _ = write!(
                j,
                "{{\"slo\": \"{}\", \"service\": \"{}\", \"fired_at_ns\": {}, ",
                esc(&a.slo),
                esc(&a.service),
                a.fired_at.as_nanos()
            );
            match a.resolved_at {
                Some(t) => {
                    let _ = write!(j, "\"resolved_at_ns\": {}, ", t.as_nanos());
                }
                None => j.push_str("\"resolved_at_ns\": null, "),
            }
            let _ = write!(
                j,
                "\"burn_fast\": {:.3}, \"burn_slow\": {:.3}, \"exemplars\": [",
                a.burn_fast, a.burn_slow
            );
            for (k, (trace, span, dur)) in a.exemplars.iter().enumerate() {
                if k > 0 {
                    j.push_str(", ");
                }
                let _ = write!(
                    j,
                    "{{\"trace\": {trace}, \"span\": {span}, \"duration_ns\": {dur}}}"
                );
            }
            j.push_str("]}");
        }
        j.push_str("]}");
        j
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The engine: feed observations, evaluate at sim-time instants, read the
/// verdicts and alert history back.
pub struct SloEngine {
    slos: Vec<SloInstance>,
    alerts: Vec<Alert>,
}

impl SloEngine {
    pub fn new(specs: Vec<SloSpec>) -> SloEngine {
        SloEngine {
            slos: specs
                .into_iter()
                .map(|spec| SloInstance {
                    spec,
                    events: VecDeque::new(),
                    state: AlertState::Idle,
                    total: 0,
                    bad: 0,
                    latency: Histogram::new(),
                })
                .collect(),
            alerts: Vec::new(),
        }
    }

    pub fn specs(&self) -> impl Iterator<Item = &SloSpec> {
        self.slos.iter().map(|s| &s.spec)
    }

    /// Feed one completed read for `service`. Availability, latency and
    /// degraded-ratio objectives on that service each classify it by
    /// their own rule; freshness objectives ignore reads (they observe
    /// [`record_freshness`](Self::record_freshness) checks instead).
    pub fn record_read(
        &mut self,
        t: SimTime,
        service: &str,
        outcome: ReadOutcome,
        latency_ns: u64,
    ) {
        for slo in self.slos.iter_mut().filter(|s| s.spec.service == service) {
            let is_bad = match slo.spec.kind {
                SloKind::Availability { .. } => outcome == ReadOutcome::Error,
                SloKind::LatencyP99 { max_ns } => latency_ns > max_ns,
                SloKind::DegradedRatio { .. } => outcome == ReadOutcome::Degraded,
                SloKind::Freshness { .. } => continue,
            };
            slo.push(t, is_bad);
            slo.latency.record(latency_ns as f64);
        }
    }

    /// Feed one freshness check: the age of `service`'s last successful
    /// reading at time `t`.
    pub fn record_freshness(&mut self, t: SimTime, service: &str, age_ns: u64) {
        for slo in self.slos.iter_mut().filter(|s| s.spec.service == service) {
            if let SloKind::Freshness { max_age_ns, .. } = slo.spec.kind {
                slo.push(t, age_ns > max_age_ns);
            }
        }
    }

    /// Evaluate every objective at instant `t`: trim windows, update the
    /// firing state machines, and return the transitions that happened
    /// (so callers can mirror them into the flight recorder).
    pub fn evaluate(&mut self, t: SimTime) -> Vec<AlertTransition> {
        let mut transitions = Vec::new();
        for slo in &mut self.slos {
            slo.trim(t);
            let w = slo.spec.windows;
            let burn_fast = slo.burn(t, w.fast);
            let burn_slow = slo.burn(t, w.slow);
            match slo.state {
                AlertState::Idle => {
                    if burn_fast >= w.fast_burn && burn_slow >= w.slow_burn {
                        slo.state = AlertState::Firing(self.alerts.len());
                        self.alerts.push(Alert {
                            slo: slo.spec.name.clone(),
                            service: slo.spec.service.clone(),
                            fired_at: t,
                            resolved_at: None,
                            burn_fast,
                            burn_slow,
                            exemplars: Vec::new(),
                        });
                        transitions.push(AlertTransition {
                            slo: slo.spec.name.clone(),
                            service: slo.spec.service.clone(),
                            at: t,
                            fired: true,
                            burn_fast,
                            burn_slow,
                        });
                    }
                }
                AlertState::Firing(idx) => {
                    // Resolve on the fast window dropping under burn 1.0:
                    // the service is again spending less budget than the
                    // objective tolerates.
                    if burn_fast < 1.0 {
                        if let Some(a) = self.alerts.get_mut(idx) {
                            a.resolved_at = Some(t);
                        }
                        slo.state = AlertState::Idle;
                        transitions.push(AlertTransition {
                            slo: slo.spec.name.clone(),
                            service: slo.spec.service.clone(),
                            at: t,
                            fired: false,
                            burn_fast,
                            burn_slow,
                        });
                    }
                }
            }
        }
        transitions
    }

    /// Attach exemplar spans to an alert (by index in firing order).
    pub fn attach_exemplars(&mut self, alert_idx: usize, exemplars: Vec<(u64, u64, u64)>) {
        if let Some(a) = self.alerts.get_mut(alert_idx) {
            a.exemplars = exemplars;
        }
    }

    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Current burn rates per *service*, as `(service, burn_fast,
    /// burn_slow)` tuples in first-seen spec order. A service tracked by
    /// several objectives reports the worst (highest) burn of each
    /// window, so a feedback consumer — the provision-side autoscaler —
    /// reacts to whichever objective is bleeding fastest. Plain tuples by
    /// design: this is the obs→provision hand-off and must not couple the
    /// crates.
    pub fn burn_rates(&self, t: SimTime) -> Vec<(String, f64, f64)> {
        let mut out: Vec<(String, f64, f64)> = Vec::new();
        for slo in &self.slos {
            let w = slo.spec.windows;
            let fast = slo.burn(t, w.fast);
            let slow = slo.burn(t, w.slow);
            match out.iter_mut().find(|(s, _, _)| s == &slo.spec.service) {
                Some(entry) => {
                    entry.1 = entry.1.max(fast);
                    entry.2 = entry.2.max(slow);
                }
                None => out.push((slo.spec.service.clone(), fast, slow)),
            }
        }
        out
    }

    /// The verdict sheet at instant `t`. Does not advance the state
    /// machines — call [`evaluate`](Self::evaluate) for that.
    pub fn report(&self, t: SimTime) -> SloReport {
        let verdicts = self
            .slos
            .iter()
            .map(|slo| {
                let w = slo.spec.windows;
                let bad_ratio = if slo.total == 0 {
                    0.0
                } else {
                    slo.bad as f64 / slo.total as f64
                };
                SloVerdict {
                    name: slo.spec.name.clone(),
                    service: slo.spec.service.clone(),
                    objective: slo.spec.kind.describe(),
                    kind_key: slo.spec.kind.key(),
                    total: slo.total,
                    bad: slo.bad,
                    bad_ratio,
                    budget: slo.spec.kind.budget(),
                    met: bad_ratio <= slo.spec.kind.budget(),
                    burn_fast: slo.burn(t, w.fast),
                    burn_slow: slo.burn(t, w.slow),
                    firing: matches!(slo.state, AlertState::Firing(_)),
                    latency_p50_ns: slo.latency.quantile(0.50),
                    latency_p99_ns: slo.latency.quantile(0.99),
                }
            })
            .collect();
        SloReport {
            at: t,
            verdicts,
            alerts: self.alerts.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    fn avail_spec() -> SloSpec {
        // 90% availability, 30s/120s windows, 5x/2x burn.
        SloSpec {
            name: "t-avail".into(),
            service: "Svc".into(),
            kind: SloKind::Availability { min_ratio: 0.90 },
            windows: BurnRateWindows {
                fast: SimDuration::from_secs(30),
                slow: SimDuration::from_secs(120),
                fast_burn: 5.0,
                slow_burn: 2.0,
            },
        }
    }

    #[test]
    fn healthy_traffic_never_fires() {
        let mut e = SloEngine::new(vec![avail_spec()]);
        for i in 0..200u64 {
            e.record_read(secs(i), "Svc", ReadOutcome::Ok, 1_000_000);
            assert!(e.evaluate(secs(i)).is_empty());
        }
        let r = e.report(secs(200));
        assert!(r.healthy());
        assert_eq!(r.verdicts[0].total, 200);
        assert_eq!(r.verdicts[0].bad, 0);
        assert!(r.alerts.is_empty());
    }

    #[test]
    fn sustained_errors_fire_then_recovery_resolves() {
        let mut e = SloEngine::new(vec![avail_spec()]);
        // Healthy baseline.
        for i in 0..60u64 {
            e.record_read(secs(i), "Svc", ReadOutcome::Ok, 1_000_000);
            e.evaluate(secs(i));
        }
        // Hard outage: every read fails. Burn = 10 (error rate 1.0 over a
        // 0.1 budget) in both windows once enough bad events accumulate.
        let mut fired_at = None;
        for i in 60..120u64 {
            e.record_read(secs(i), "Svc", ReadOutcome::Error, 5_000_000);
            for tr in e.evaluate(secs(i)) {
                if tr.fired {
                    fired_at = Some(i);
                }
            }
        }
        let fired_at = fired_at.expect("outage must fire the burn-rate alert");
        assert!(
            (60..90).contains(&fired_at),
            "fast window should detect within ~30s, fired at {fired_at}"
        );
        // Recovery: clean reads push the fast window back under burn 1.
        let mut resolved = false;
        for i in 120..200u64 {
            e.record_read(secs(i), "Svc", ReadOutcome::Ok, 1_000_000);
            for tr in e.evaluate(secs(i)) {
                if !tr.fired {
                    resolved = true;
                }
            }
        }
        assert!(resolved, "recovery must resolve the alert");
        let r = e.report(secs(200));
        assert_eq!(r.alerts.len(), 1);
        assert!(r.alerts[0].resolved_at.is_some());
        assert!(!r.verdicts[0].firing);
        // The run as a whole blew the 10% budget: 60 bad of 200.
        assert!(!r.verdicts[0].met);
    }

    #[test]
    fn short_blip_does_not_page() {
        let mut e = SloEngine::new(vec![avail_spec()]);
        for i in 0..300u64 {
            // One failure burst of 3 reads in a long healthy run: the
            // slow window never crosses 2x burn.
            let outcome = if (100..103).contains(&i) {
                ReadOutcome::Error
            } else {
                ReadOutcome::Ok
            };
            e.record_read(secs(i), "Svc", outcome, 1_000_000);
            assert!(e.evaluate(secs(i)).is_empty(), "blip must not fire (t={i})");
        }
        assert!(e.report(secs(300)).healthy());
    }

    #[test]
    fn latency_objective_counts_slow_reads() {
        let spec = SloSpec::new(
            "t-lat",
            "Svc",
            SloKind::LatencyP99 {
                max_ns: 10_000_000, // 10ms
            },
        );
        let mut e = SloEngine::new(vec![spec]);
        for i in 0..100u64 {
            let lat = if i % 2 == 0 { 1_000_000 } else { 50_000_000 };
            e.record_read(secs(i), "Svc", ReadOutcome::Ok, lat);
        }
        e.evaluate(secs(100));
        let r = e.report(secs(100));
        assert_eq!(r.verdicts[0].bad, 50);
        assert!(!r.verdicts[0].met, "50% slow blows a 1% budget");
        assert!(r.verdicts[0].latency_p99_ns >= 49_000_000.0);
    }

    #[test]
    fn freshness_checks_ignore_reads_and_vice_versa() {
        let fresh = SloSpec::new(
            "t-fresh",
            "Svc",
            SloKind::Freshness {
                max_age_ns: 5_000_000_000,
                min_ratio: 0.99,
            },
        );
        let mut e = SloEngine::new(vec![fresh, avail_spec()]);
        e.record_read(secs(1), "Svc", ReadOutcome::Ok, 1_000);
        e.record_freshness(secs(2), "Svc", 1_000_000_000);
        e.record_freshness(secs(3), "Svc", 60_000_000_000);
        let r = e.report(secs(3));
        let fresh_v = &r.verdicts[0];
        assert_eq!(fresh_v.total, 2, "freshness sees only its checks");
        assert_eq!(fresh_v.bad, 1);
        let avail_v = &r.verdicts[1];
        assert_eq!(avail_v.total, 1, "availability sees only reads");
    }

    #[test]
    fn degraded_ratio_objective() {
        let spec = SloSpec::new("t-deg", "Svc", SloKind::DegradedRatio { max_ratio: 0.25 });
        let mut e = SloEngine::new(vec![spec]);
        for i in 0..10u64 {
            let o = if i < 2 {
                ReadOutcome::Degraded
            } else {
                ReadOutcome::Ok
            };
            e.record_read(secs(i), "Svc", o, 1_000);
        }
        let r = e.report(secs(10));
        assert_eq!(r.verdicts[0].bad, 2);
        assert!(r.verdicts[0].met, "20% degraded inside a 25% budget");
    }

    #[test]
    fn services_are_isolated() {
        let mut e = SloEngine::new(vec![avail_spec()]);
        e.record_read(secs(1), "Other", ReadOutcome::Error, 1_000);
        let r = e.report(secs(1));
        assert_eq!(r.verdicts[0].total, 0, "other services' reads invisible");
    }

    #[test]
    fn report_json_is_shaped() {
        let mut e = SloEngine::new(vec![avail_spec()]);
        e.record_read(secs(1), "Svc", ReadOutcome::Ok, 2_000_000);
        let j = e.report(secs(2)).to_json();
        assert!(j.contains("\"verdicts\""));
        assert!(j.contains("\"t-avail\""));
        assert!(j.contains("\"alerts\": []"));
        assert!(j.contains("\"burn_fast\""));
    }
}
